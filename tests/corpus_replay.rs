//! Replays every committed regression seed in `tests/corpus/` — one file
//! per historical failure class, each pinning the exact scenario that
//! reproduced it (see the comments inside the `.seed` files).
//!
//! New regressions join the corpus by copying the shrunken replay line
//! that `testkit soak` prints into a new `.seed` file.

use optipart_testkit::corpus;

#[test]
fn corpus_replays_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seed"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 3,
        "corpus must keep at least the three seeded failure classes"
    );
    for file in &files {
        let contents = std::fs::read_to_string(file).unwrap();
        let case = corpus::parse(&contents).unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        println!(
            "corpus {}: {} ({})",
            file.display(),
            case.scenario,
            case.check
        );
        corpus::replay(&case);
    }
}
