//! Determinism: identical inputs produce bit-identical results across the
//! whole stack — the property that makes every figure regenerable.

use optipart::core::optipart::{optipart, OptiPartOptions};
use optipart::core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart::fem::{run_matvec_experiment, DistMesh};
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::Engine;
use optipart::octree::MeshParams;
use optipart::sfc::Curve;

fn engine(p: usize) -> Engine {
    Engine::new(
        p,
        PerfModel::new(
            MachineModel::cloudlab_wisconsin(),
            AppModel::laplacian_matvec(),
        ),
    )
}

#[test]
fn partitioning_is_deterministic() {
    let run = || {
        let tree = MeshParams::normal(5_000, 77).build::<3>(Curve::Hilbert);
        let mut e = engine(16);
        let out = optipart(
            &mut e,
            distribute_tree(&tree, 16),
            OptiPartOptions::default(),
        );
        (
            out.splitters.clone(),
            out.report.counts.clone(),
            out.report.achieved_tolerance,
            e.makespan(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3, "virtual time must be exactly reproducible");
}

#[test]
fn matvec_experiment_is_deterministic() {
    let run = || {
        let tree = MeshParams::normal(3_000, 78).build::<3>(Curve::Morton);
        let mut e = engine(8);
        let out = treesort_partition(
            &mut e,
            distribute_tree(&tree, 8),
            PartitionOptions::with_tolerance(0.2),
        );
        let mesh = DistMesh::build(&mut e, out.dist, Curve::Morton);
        let rep = run_matvec_experiment(&mut e, &mesh, 7);
        (
            rep.seconds,
            rep.energy.total_j,
            rep.ghost_elements,
            rep.bytes_total,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn identical_across_worker_thread_counts() {
    // The fork–join helpers chunk contiguously and stitch in index order,
    // so the worker count can never leak into results: splitters, stats
    // and every per-rank virtual clock are bit-identical at any
    // RAYON_NUM_THREADS.
    let run = || {
        let tree = MeshParams::normal(4_000, 80).build::<3>(Curve::Hilbert);
        let mut e = engine(12);
        let out = treesort_partition(
            &mut e,
            distribute_tree(&tree, 12),
            PartitionOptions::with_tolerance(0.1),
        );
        (
            out.splitters.clone(),
            out.report.counts.clone(),
            e.clocks().to_vec(),
            e.stats().bytes_total,
            e.stats().msgs_total,
        )
    };
    let reference = run();
    for threads in ["1", "4", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        assert_eq!(
            reference,
            run(),
            "divergence at RAYON_NUM_THREADS={threads}"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn trace_export_identical_across_worker_thread_counts() {
    // The tracer only mutates on the engine thread (after every fork–join),
    // so the full event stream — spans, syncs, decisions — and therefore
    // the serialised Chrome trace is byte-identical at any worker count.
    let run = || {
        let tree = MeshParams::normal(3_000, 90).build::<3>(Curve::Hilbert);
        let mut e = engine(8).with_tracing();
        let out = treesort_partition(
            &mut e,
            distribute_tree(&tree, 8),
            PartitionOptions::with_tolerance(0.2),
        );
        let mesh = DistMesh::build(&mut e, out.dist, Curve::Hilbert);
        run_matvec_experiment(&mut e, &mesh, 5);
        e.trace_json()
    };
    let reference = run();
    assert!(reference.contains("\"traceEvents\""));
    for threads in ["1", "4", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        assert_eq!(
            reference,
            run(),
            "trace bytes diverged at RAYON_NUM_THREADS={threads}"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn fault_plans_replay_exactly() {
    // A fault plan is part of the seed: two engines with the same plan see
    // the same stragglers, the same link jitter and the same transient
    // failures, down to the last retry and clock tick.
    use optipart::mpisim::FaultPlan;
    let run = || {
        let tree = MeshParams::normal(3_000, 81).build::<3>(Curve::Morton);
        let plan = FaultPlan::new(4242)
            .with_stragglers(0.25, 5.0)
            .with_tw_jitter(0.3)
            .with_transient_failures(0.25);
        let mut e = engine(8).with_faults(plan);
        let out = treesort_partition(&mut e, distribute_tree(&tree, 8), PartitionOptions::exact());
        let mesh = DistMesh::build(&mut e, out.dist, Curve::Morton);
        let rep = run_matvec_experiment(&mut e, &mesh, 5);
        (
            rep.seconds,
            rep.rank_clocks,
            rep.retries,
            rep.energy.total_j,
        )
    };
    let a = run();
    let b = run();
    assert!(a.2 > 0, "this plan should produce retries");
    assert_eq!(a, b, "fault schedule must replay bit-identically");
}

#[test]
fn different_machines_same_data_movement_semantics() {
    // Changing the machine model changes clocks/energy but never the data:
    // the partitioned cells under *equal-work* splitters are machine
    // independent (only OptiPart is architecture-aware).
    let tree = MeshParams::normal(4_000, 79).build::<3>(Curve::Hilbert);
    let mut outs = Vec::new();
    for machine in MachineModel::presets() {
        let mut e = Engine::new(12, PerfModel::new(machine, AppModel::laplacian_matvec()));
        let out = treesort_partition(
            &mut e,
            distribute_tree(&tree, 12),
            PartitionOptions::exact(),
        );
        outs.push(out.dist.concat());
    }
    assert!(outs.windows(2).all(|w| w[0] == w[1]));
}
