//! Determinism: identical inputs produce bit-identical results across the
//! whole stack — the property that makes every figure regenerable.

use optipart::core::optipart::{optipart, OptiPartOptions};
use optipart::core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart::fem::{run_matvec_experiment, DistMesh};
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::Engine;
use optipart::octree::MeshParams;
use optipart::sfc::Curve;

fn engine(p: usize) -> Engine {
    Engine::new(
        p,
        PerfModel::new(MachineModel::cloudlab_wisconsin(), AppModel::laplacian_matvec()),
    )
}

#[test]
fn partitioning_is_deterministic() {
    let run = || {
        let tree = MeshParams::normal(5_000, 77).build::<3>(Curve::Hilbert);
        let mut e = engine(16);
        let out = optipart(&mut e, distribute_tree(&tree, 16), OptiPartOptions::default());
        (
            out.splitters.clone(),
            out.report.counts.clone(),
            out.report.achieved_tolerance,
            e.makespan(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3, "virtual time must be exactly reproducible");
}

#[test]
fn matvec_experiment_is_deterministic() {
    let run = || {
        let tree = MeshParams::normal(3_000, 78).build::<3>(Curve::Morton);
        let mut e = engine(8);
        let out = treesort_partition(
            &mut e,
            distribute_tree(&tree, 8),
            PartitionOptions::with_tolerance(0.2),
        );
        let mesh = DistMesh::build(&mut e, out.dist, Curve::Morton);
        let rep = run_matvec_experiment(&mut e, &mesh, 7);
        (rep.seconds, rep.energy.total_j, rep.ghost_elements, rep.bytes_total)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn different_machines_same_data_movement_semantics() {
    // Changing the machine model changes clocks/energy but never the data:
    // the partitioned cells under *equal-work* splitters are machine
    // independent (only OptiPart is architecture-aware).
    let tree = MeshParams::normal(4_000, 79).build::<3>(Curve::Hilbert);
    let mut outs = Vec::new();
    for machine in MachineModel::presets() {
        let mut e = Engine::new(12, PerfModel::new(machine, AppModel::laplacian_matvec()));
        let out = treesort_partition(&mut e, distribute_tree(&tree, 12), PartitionOptions::exact());
        outs.push(out.dist.concat());
    }
    assert!(outs.windows(2).all(|w| w[0] == w[1]));
}
