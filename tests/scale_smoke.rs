//! Paper-scale strong-scaling smoke: the sparse/hypercube collectives
//! stack must execute at up to p = 262,144 virtual ranks on one box —
//! the full Titan rank count of the paper's Fig. 4 sweep — with staging
//! memory O(active neighbours + log p) per rank instead of O(p), and a
//! steady state that allocates (essentially) nothing per exchange.
//!
//! Everything runs inside a single `#[test]` so the process-wide
//! allocation counters are not perturbed by concurrent harness threads.

use optipart_bench::alloc_count::{counters, CountingAllocator};
use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::par::par_map_mut_n;
use optipart_mpisim::{AllToAllAlgo, AlltoallvArena, Engine};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The paper's strong-scaling rank counts exercised in tier-1 (Fig. 4
/// runs 4,096 → 262,144; the sweep driver `figures scaling` covers the
/// intermediate doublings).
const RANK_COUNTS: [usize; 3] = [4_096, 65_536, 262_144];

/// Six neighbours per rank: the 3D face-neighbour pattern a balanced
/// octree partition produces (§5.5's sparse communication matrix).
const NEIGHBOURS: [isize; 6] = [-3, -2, -1, 1, 2, 3];

fn engine(p: usize) -> Engine {
    Engine::new(
        p,
        PerfModel::new(
            MachineModel::cloudlab_wisconsin(),
            AppModel::laplacian_matvec(),
        ),
    )
}

/// Stages one 6-neighbour exchange round into `arena`: every rank sends
/// one element to each neighbour, payload derived from the link.
fn stage_round(arena: &mut AlltoallvArena<u64>, p: usize, round: u64) {
    for src in 0..p {
        for d in NEIGHBOURS {
            let dst = (src as isize + d).rem_euclid(p as isize) as usize;
            arena.send(src, dst, [round ^ ((src as u64) << 20) ^ dst as u64]);
        }
    }
}

#[test]
fn paper_scale_exchanges() {
    let mut steady_bytes = Vec::new();
    for p in RANK_COUNTS {
        let mut e = engine(p);
        let mut arena: AlltoallvArena<u64> = AlltoallvArena::new();

        // Round 0 warms every pool: the engine's collective scratch, the
        // arena's staging and delivery buffers.
        stage_round(&mut arena, p, 0);
        e.alltoallv_flat(&mut arena, AllToAllAlgo::Hypercube);
        let m0 = e.makespan();
        assert!(m0.is_finite() && m0 > 0.0, "p = {p}: degenerate makespan");

        // Steady state: staging + exchange reuse warm pools end to end —
        // two more whole rounds must allocate (essentially) nothing.
        let (a1, _) = counters();
        stage_round(&mut arena, p, 1);
        e.alltoallv_flat(&mut arena, AllToAllAlgo::Hypercube);
        stage_round(&mut arena, p, 2);
        e.alltoallv_flat(&mut arena, AllToAllAlgo::Hypercube);
        let (a2, _) = counters();
        assert!(
            a2 - a1 <= 16,
            "p = {p}: two steady-state exchanges allocated {} times",
            a2 - a1
        );
        assert_eq!(
            e.makespan(),
            3.0 * m0,
            "p = {p}: warm exchanges must charge identically to the first"
        );

        // Every element delivered: 6p segments, one element each.
        assert_eq!(arena.recv().count(), 6 * p, "p = {p}: lost segments");
        drop(e);
        drop(arena);

        // One whole cold engine + arena build + exchange is
        // O(p · neighbours + log p) memory end to end — record its bytes
        // for the growth check below.
        let (_, c0) = counters();
        let mut e = engine(p);
        let mut arena: AlltoallvArena<u64> = AlltoallvArena::new();
        stage_round(&mut arena, p, 0);
        e.alltoallv_flat(&mut arena, AllToAllAlgo::Hypercube);
        let (_, c1) = counters();
        steady_bytes.push((p, c1 - c0));
    }

    // O(p · neighbours) total staging: bytes must grow (sub)linearly in
    // p, nowhere near the O(p²) a dense alltoallv would stage. Between
    // 4,096 and 262,144 ranks p grows 64×; a quadratic path would grow
    // 4,096×. Allow 4× slack over linear for pool-growth rounding.
    let (p_lo, b_lo) = steady_bytes[0];
    let (p_hi, b_hi) = *steady_bytes.last().unwrap();
    let growth = b_hi as f64 / b_lo as f64;
    let linear = (p_hi / p_lo) as f64;
    assert!(
        growth <= 4.0 * linear,
        "staging bytes grew {growth:.0}× from p = {p_lo} to p = {p_hi} \
         (linear would be {linear:.0}×) — an O(p²) staging path is back"
    );

    // Determinism at scale: an identical cold run charges the identical
    // makespan, bit for bit.
    let rerun = |p: usize| {
        let mut e = engine(p);
        let mut arena: AlltoallvArena<u64> = AlltoallvArena::new();
        stage_round(&mut arena, p, 0);
        e.alltoallv_flat(&mut arena, AllToAllAlgo::Hypercube);
        e.makespan()
    };
    assert_eq!(rerun(4_096).to_bits(), rerun(4_096).to_bits());
}

/// The trace export at large p is a pure function of the virtual
/// schedule: preparing the payloads under different *explicit* worker
/// budgets (the same knob `RAYON_NUM_THREADS` drives) must leave the
/// Chrome trace byte-identical.
#[test]
fn trace_identity_across_thread_counts() {
    let p = 65_536;
    let run = |threads: usize| {
        // Per-rank payload prep under an explicit thread budget.
        let mut payloads: Vec<Vec<u64>> = (0..p).map(|r| vec![r as u64]).collect();
        par_map_mut_n(threads, &mut payloads, |r, buf| {
            buf[0] = buf[0].wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ r as u64;
        });
        let mut e = engine(p).with_tracing();
        let mut arena: AlltoallvArena<u64> = AlltoallvArena::new();
        for (src, buf) in payloads.iter().enumerate() {
            for d in NEIGHBOURS {
                let dst = (src as isize + d).rem_euclid(p as isize) as usize;
                arena.send(src, dst, buf.iter().copied());
            }
        }
        e.alltoallv_flat(&mut arena, AllToAllAlgo::Hypercube);
        e.trace_json()
    };
    let a = run(1);
    let b = run(4);
    assert!(!a.is_empty(), "trace export came back empty");
    assert!(
        a == b,
        "trace bytes diverge between 1 and 4 worker threads at p = {p}"
    );
}
