//! Shape-level assertions for the paper's experimental claims — the same
//! trends the figure harness prints, pinned as tests at small scale.

use optipart::core::metrics::{
    assignment, boundary_counts, comm_imbalance, communication_matrix, load_imbalance,
    partition_counts,
};
use optipart::core::optipart::{optipart, OptiPartOptions};
use optipart::core::partition::{
    distribute_tree, treesort_partition, PartitionOptions, PHASE_SPLITTER,
};
use optipart::core::quality::partition_quality;
use optipart::core::samplesort::{samplesort_partition, SampleSortOptions};
use optipart::fem::{run_matvec_experiment, DistMesh};
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::Engine;
use optipart::octree::{LinearTree, MeshParams};
use optipart::sfc::{Curve, SfcKey};

fn engine(machine: MachineModel, p: usize) -> Engine {
    Engine::new(p, PerfModel::new(machine, AppModel::laplacian_matvec()))
}

fn split(tree: &LinearTree<3>, p: usize, tol: f64, machine: MachineModel) -> Vec<SfcKey> {
    let mut e = engine(machine, p);
    treesort_partition(
        &mut e,
        distribute_tree(tree, p),
        PartitionOptions::with_tolerance(tol),
    )
    .splitters
}

/// Fig. 11: load and communication imbalance grow with tolerance.
#[test]
fn imbalances_grow_with_tolerance() {
    let p = 24;
    let tree = MeshParams::normal(20_000, 21).build::<3>(Curve::Hilbert);
    let mut lambdas = Vec::new();
    let mut comm = Vec::new();
    for tol in [0.0, 0.25, 0.5] {
        let s = split(&tree, p, tol, MachineModel::cloudlab_clemson());
        let a = assignment(&tree, &s);
        lambdas.push(load_imbalance(&partition_counts(&a, p)));
        comm.push(comm_imbalance(&boundary_counts(&tree, &a, p)));
    }
    assert!(
        lambdas[0] <= lambdas[1] + 1e-9 && lambdas[1] <= lambdas[2] + 1e-9,
        "λ not non-decreasing: {lambdas:?}"
    );
    assert!(
        comm[2] >= comm[0] - 1e-9,
        "comm imbalance should grow overall: {comm:?}"
    );
}

/// Fig. 12: NNZ and total communication decrease with tolerance, and
/// Hilbert stays at or below Morton.
#[test]
fn nnz_decreases_with_tolerance_and_hilbert_wins() {
    let p = 32;
    let nnz_at = |curve: Curve, tol: f64| -> (usize, u64) {
        let tree = MeshParams::normal(20_000, 23).build::<3>(curve);
        let s = split(&tree, p, tol, MachineModel::titan());
        let a = assignment(&tree, &s);
        let m = communication_matrix(&tree, &a, p);
        (m.nnz(), m.total_bytes())
    };
    let (h0, v0) = nnz_at(Curve::Hilbert, 0.0);
    let (h5, v5) = nnz_at(Curve::Hilbert, 0.5);
    let (m0, w0) = nnz_at(Curve::Morton, 0.0);
    assert!(
        h5 <= h0,
        "hilbert nnz should not grow with tolerance: {h0} -> {h5}"
    );
    assert!(
        v5 <= v0,
        "hilbert volume should not grow with tolerance: {v0} -> {v5}"
    );
    assert!(h0 <= m0, "hilbert nnz {h0} should be <= morton {m0}");
    assert!(v0 <= w0, "hilbert volume {v0} should be <= morton {w0}");
}

/// Fig. 11 across seeds: the achieved load imbalance is bounded by the
/// requested flexible tolerance. Every splitter sits within `tol·grain`
/// of its target, so the largest partition is at most
/// `grain·(1 + 2·tol)` (both of a rank's boundaries displaced outward)
/// plus integer rounding — for every mesh seed and every tolerance in the
/// contention-free regime (below 0.5, no two targets can share a bucket
/// edge, so TreeSort honours the request exactly).
#[test]
fn fig11_imbalance_bounded_by_tolerance_across_seeds() {
    let p = 16;
    for seed in [41, 42, 43] {
        let tree = MeshParams::normal(8_000, seed).build::<3>(Curve::Hilbert);
        let grain = tree.len() as f64 / p as f64;
        for tol in [0.1, 0.25, 0.4] {
            let mut e = engine(MachineModel::cloudlab_clemson(), p);
            let out = treesort_partition(
                &mut e,
                distribute_tree(&tree, p),
                PartitionOptions::with_tolerance(tol),
            );
            assert!(
                out.report.achieved_tolerance <= tol + 1e-9,
                "seed {seed} tol {tol}: achieved {} exceeds request",
                out.report.achieved_tolerance
            );
            assert!(
                (out.report.wmax as f64) <= grain * (1.0 + 2.0 * tol) + 2.0,
                "seed {seed} tol {tol}: Wmax {} exceeds grain (1 + 2 tol)",
                out.report.wmax
            );
        }
    }
}

/// Fig. 12 across seeds: relaxing the tolerance never grows the
/// communication surface — both the comm-matrix NNZ and the total bytes
/// moved are non-increasing from exact balance to tol 0.5, for every mesh
/// seed (Hilbert keys, the curve the paper plots).
#[test]
fn fig12_comm_surface_non_increasing_across_seeds() {
    let p = 16;
    for seed in [51, 52, 53] {
        let tree = MeshParams::normal(8_000, seed).build::<3>(Curve::Hilbert);
        let surface = |tol: f64| {
            let s = split(&tree, p, tol, MachineModel::titan());
            let m = communication_matrix(&tree, &assignment(&tree, &s), p);
            (m.nnz(), m.total_bytes())
        };
        let (nnz0, vol0) = surface(0.0);
        let (nnz5, vol5) = surface(0.5);
        assert!(
            nnz5 <= nnz0,
            "seed {seed}: NNZ grew with tolerance: {nnz0} -> {nnz5}"
        );
        assert!(
            vol5 <= vol0,
            "seed {seed}: volume grew with tolerance: {vol0} -> {vol5}"
        );
    }
}

/// Fig. 10: OptiPart's model-chosen partition is essentially as good (in
/// its own predicted time) as every fixed-tolerance alternative on the
/// grid. The stopping rule is greedy (it halts at the first predicted
/// uptick, like Algorithm 3), so allow a small slack rather than exact
/// dominance.
#[test]
fn optipart_prediction_dominates_tolerance_grid() {
    let p = 24;
    let tree = MeshParams::normal(20_000, 29).build::<3>(Curve::Hilbert);
    let mut e = engine(MachineModel::cloudlab_wisconsin(), p);
    let chosen = optipart(
        &mut e,
        distribute_tree(&tree, p),
        OptiPartOptions::default(),
    );

    for tol in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let s = split(&tree, p, tol, MachineModel::cloudlab_wisconsin());
        let mut eq = engine(MachineModel::cloudlab_wisconsin(), p);
        let mut d = distribute_tree(&tree, p);
        let q = partition_quality(&mut eq, &mut d, &s, Curve::Hilbert);
        assert!(
            chosen.report.predicted_tp <= q.tp * 1.02,
            "optipart tp {} beaten by tol {tol}: {}",
            chosen.report.predicted_tp,
            q.tp
        );
    }
}

/// Fig. 6: OptiPart's splitter phase scales better than SampleSort's.
#[test]
fn optipart_splitter_phase_scales_better_than_samplesort() {
    let grain = 500;
    let splitter_times = |p: usize| -> (f64, f64) {
        let tree = MeshParams::normal(grain * p, 31).build::<3>(Curve::Morton);
        let mut e1 = engine(MachineModel::stampede(), p);
        let _ = optipart(
            &mut e1,
            distribute_tree(&tree, p),
            OptiPartOptions::for_curve(Curve::Morton),
        );
        let mut e2 = engine(MachineModel::stampede(), p);
        let _ = samplesort_partition(
            &mut e2,
            distribute_tree(&tree, p),
            SampleSortOptions::default(),
        );
        (e1.phase_time(PHASE_SPLITTER), e2.phase_time(PHASE_SPLITTER))
    };
    let (o_small, s_small) = splitter_times(8);
    let (o_large, s_large) = splitter_times(64);
    // SampleSort's splitter phase grows much faster with p.
    let samplesort_growth = s_large / s_small;
    let optipart_growth = o_large / o_small;
    assert!(
        samplesort_growth > optipart_growth,
        "samplesort growth {samplesort_growth} vs optipart growth {optipart_growth}"
    );
}

/// §5.4: energy and runtime are strongly correlated across tolerances.
#[test]
fn energy_and_runtime_correlate_across_tolerances() {
    let p = 16;
    let tree = MeshParams::normal(10_000, 37).build::<3>(Curve::Hilbert);
    let mut times = Vec::new();
    let mut energies = Vec::new();
    for tol in [0.0, 0.2, 0.4] {
        let mut e = engine(MachineModel::cloudlab_wisconsin(), p);
        let out = treesort_partition(
            &mut e,
            distribute_tree(&tree, p),
            PartitionOptions::with_tolerance(tol),
        );
        let mesh = DistMesh::build(&mut e, out.dist, Curve::Hilbert);
        let rep = run_matvec_experiment(&mut e, &mesh, 10);
        times.push(rep.seconds);
        energies.push(rep.energy.total_j);
    }
    // Pearson correlation over the three points must be positive and strong.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mt, me) = (mean(&times), mean(&energies));
    let cov: f64 = times
        .iter()
        .zip(&energies)
        .map(|(t, e)| (t - mt) * (e - me))
        .sum();
    let st: f64 = times.iter().map(|t| (t - mt).powi(2)).sum::<f64>().sqrt();
    let se: f64 = energies
        .iter()
        .map(|e| (e - me).powi(2))
        .sum::<f64>()
        .sqrt();
    let r = cov / (st * se).max(f64::MIN_POSITIVE);
    assert!(r > 0.9, "energy–time correlation too weak: r = {r}");
}

/// §3.2: with increasing TreeSort level, the induced partition boundary is
/// non-decreasing while λ approaches 1 — the Fig. 2 trade.
#[test]
fn boundary_grows_and_lambda_shrinks_with_level() {
    use optipart::octree::neighbors::segment_surface;
    let p = 3;
    for curve in Curve::ALL {
        let mut prev_surface = 0u64;
        let mut prev_lambda = f64::INFINITY;
        for level in 2u8..=4 {
            let tree: LinearTree<2> =
                LinearTree::root(curve).refine_where(|c| c.level() < level, level);
            let n = tree.len();
            let mut bounds = vec![0usize];
            for r in 1..p {
                bounds.push(r * n / p);
            }
            bounds.push(n);
            let sizes: Vec<usize> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
            let lambda = *sizes.iter().max().unwrap() as f64 / *sizes.iter().min().unwrap() as f64;
            let surface: u64 = bounds
                .windows(2)
                .map(|w| segment_surface(tree.leaves(), w[0], w[1], curve))
                .sum();
            // Normalise surface to the level's edge length so levels compare.
            let edge = 1u64 << (optipart::sfc::MAX_DEPTH - level);
            let surface = surface / edge;
            assert!(
                lambda <= prev_lambda + 1e-9,
                "{curve} level {level}: λ must not grow ({prev_lambda} -> {lambda})"
            );
            assert!(
                surface >= prev_surface,
                "{curve} level {level}: boundary must not shrink ({prev_surface} -> {surface})"
            );
            prev_surface = surface;
            prev_lambda = lambda;
        }
    }
}

/// Acceptance: a 20-step moving-front AMR sequence under the warm-started
/// ladder. The front translates the point cloud on an exact lattice with
/// period 8, so the warm path is fully predictable *per step* — one cold
/// seed, seven table-accelerated replays, then exact fingerprint hits for
/// the rest of the horizon — and a fail-stop kill in step 10's solve
/// shrinks to the survivor set, invalidates every cached partition (they
/// were fingerprinted for the dead rank count), re-seeds the warm state on
/// the new communicator, and still reproduces every fault-free step
/// solution to `1e-12` relative.
#[test]
fn moving_front_warm_replay_and_mid_sequence_recovery() {
    use optipart::core::optipart::{optipart_with_state, PartitionState, WarmStats};
    use optipart::fem::run_matvec_ft;
    use optipart::mpisim::{CheckpointPolicy, DistVec, FaultPlan};
    use optipart::octree::balance::balance21;
    use optipart::scenario::{HierKind, Scenario, Workload};

    const STEPS: usize = 20;
    const KILL_STEP: usize = 10;
    const ITERS: usize = 4;

    let mut scn = Scenario::from_seed(0xF057);
    scn.n = 500;
    scn.p = 6;
    scn.curve = Curve::Hilbert;
    scn.machine = MachineModel::cloudlab_wisconsin();
    scn.hier = HierKind::Smp;
    scn.workload = Workload::MovingFront {
        steps: STEPS as u32,
    };
    scn.faults = None;
    scn.split_budget = None;
    let opts = OptiPartOptions {
        curve: scn.curve,
        ..Default::default()
    };
    // 2:1-balance each step's mesh: the FEM stencil's partition
    // independence (and hence the cross-communicator solution compare)
    // is only guaranteed on balanced meshes. Balancing is per-mesh, so
    // the front's period-8 repetition survives it.
    let trees: Vec<LinearTree<3>> = (0..STEPS).map(|t| balance21(&scn.mesh_at(t))).collect();

    // One letter per step, from the warm counters' deltas: (C)old seed,
    // table-accelerated (R)eplay, exact fingerprint (H)it.
    let class = |before: WarmStats, after: WarmStats| -> char {
        match (
            after.colds - before.colds,
            after.replays - before.replays,
            after.hits - before.hits,
        ) {
            (1, 0, 0) => 'C',
            (0, 1, 0) => 'R',
            (0, 0, 1) => 'H',
            d => panic!("one step must take exactly one warm path, got {d:?}"),
        }
    };
    let matches_to_1e12 = |what: &str, want: &[(SfcKey, f64)], got: &[(SfcKey, f64)]| {
        assert_eq!(want.len(), got.len(), "{what}: solution lengths diverge");
        let norm = want
            .iter()
            .map(|(_, v)| v.abs())
            .fold(f64::MIN_POSITIVE, f64::max);
        for ((ka, a), (kb, b)) in want.iter().zip(got) {
            assert_eq!(ka, kb, "{what}: octant multiset diverged");
            assert!(
                (a - b).abs() <= 1e-12 * norm,
                "{what}: solution diverged: {a} vs {b} (norm {norm:e})"
            );
        }
    };

    // Fault-free pass: reference per-step solutions, per-step warm classes,
    // and the sync-point timeline of step 10's solve (to aim the kill).
    let mut state = PartitionState::new();
    let mut classes = String::new();
    let mut solutions = Vec::with_capacity(STEPS);
    let mut kill_mid = 0u64;
    for (t, tree) in trees.iter().enumerate() {
        let mut e = Engine::new(scn.p, scn.perf());
        let before = state.stats;
        let out = optipart_with_state(
            &mut e,
            DistVec::from_global(tree.leaves(), scn.p),
            opts,
            &mut state,
        );
        classes.push(class(before, state.stats));
        let mesh = DistMesh::build(&mut e, out.dist, scn.curve);
        let rep = run_matvec_ft(&mut e, &mesh, ITERS, CheckpointPolicy::EveryN(2));
        assert!(rep.deaths.is_empty(), "clean step {t} must see no deaths");
        if t == KILL_STEP {
            kill_mid = e.sync_points() / 2;
        }
        solutions.push(rep.solution);
    }
    // Period 8: step 0 cold, 1–7 replays, 8–19 exact hits — a 60% exact-hit
    // rate over the horizon, and the front never forces a second cold run.
    assert_eq!(classes, "CRRRRRRRHHHHHHHHHHHH");
    assert_eq!(
        state.stats,
        WarmStats {
            hits: 12,
            replays: 7,
            colds: 1,
            rejected: 0,
            invalidated: 0,
        }
    );
    assert!(kill_mid >= 2, "step {KILL_STEP} too short to aim a kill");

    // Faulted pass: same sequence, fresh warm state, one rank killed in the
    // middle of step 10's solve. Steps after the shrink run on the survivor
    // communicator: the cached partitions are invalidated wholesale, the
    // ladder re-seeds cold once, and the replay/hit cadence resumes.
    let victim = scn.p - 1;
    let mut state = PartitionState::new();
    let mut classes = String::new();
    let mut cur_p = scn.p;
    for (t, tree) in trees.iter().enumerate() {
        let mut e = Engine::new(cur_p, scn.perf());
        let before = state.stats;
        let out = optipart_with_state(
            &mut e,
            DistVec::from_global(tree.leaves(), cur_p),
            opts,
            &mut state,
        );
        classes.push(class(before, state.stats));
        let mesh = DistMesh::build(&mut e, out.dist, scn.curve);
        let rep = if t == KILL_STEP {
            let mut e = e.with_faults(FaultPlan::new(0x5EED).kill_rank(victim, kill_mid));
            let rep = run_matvec_ft(&mut e, &mesh, ITERS, CheckpointPolicy::EveryN(2));
            assert_eq!(rep.deaths.len(), 1, "the scheduled kill must fire");
            assert_eq!(rep.deaths[0].rank, victim, "wrong victim died");
            assert_eq!(rep.final_p, cur_p - 1, "survivor count after the kill");
            cur_p -= 1;
            rep
        } else {
            let rep = run_matvec_ft(&mut e, &mesh, ITERS, CheckpointPolicy::EveryN(2));
            assert!(rep.deaths.is_empty(), "faulted step {t}: no extra deaths");
            rep
        };
        matches_to_1e12(&format!("step {t}"), &solutions[t], &rep.solution);
    }
    // Steps 0–10 mirror the clean pass; the shrink then invalidates all 8
    // cached partitions, step 11 re-seeds cold, 12–18 replay, and step 19
    // (same front phase as 11) is the first exact hit on the new
    // communicator.
    assert_eq!(classes, "CRRRRRRRHHHCRRRRRRRH");
    assert_eq!(
        state.stats,
        WarmStats {
            hits: 4,
            replays: 14,
            colds: 2,
            rejected: 0,
            invalidated: 8,
        }
    );
}
