//! Shape-level assertions for the paper's experimental claims — the same
//! trends the figure harness prints, pinned as tests at small scale.

use optipart::core::metrics::{
    assignment, boundary_counts, comm_imbalance, communication_matrix, load_imbalance,
    partition_counts,
};
use optipart::core::optipart::{optipart, OptiPartOptions};
use optipart::core::partition::{
    distribute_tree, treesort_partition, PartitionOptions, PHASE_SPLITTER,
};
use optipart::core::quality::partition_quality;
use optipart::core::samplesort::{samplesort_partition, SampleSortOptions};
use optipart::fem::{run_matvec_experiment, DistMesh};
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::Engine;
use optipart::octree::{LinearTree, MeshParams};
use optipart::sfc::{Curve, SfcKey};

fn engine(machine: MachineModel, p: usize) -> Engine {
    Engine::new(p, PerfModel::new(machine, AppModel::laplacian_matvec()))
}

fn split(tree: &LinearTree<3>, p: usize, tol: f64, machine: MachineModel) -> Vec<SfcKey> {
    let mut e = engine(machine, p);
    treesort_partition(
        &mut e,
        distribute_tree(tree, p),
        PartitionOptions::with_tolerance(tol),
    )
    .splitters
}

/// Fig. 11: load and communication imbalance grow with tolerance.
#[test]
fn imbalances_grow_with_tolerance() {
    let p = 24;
    let tree = MeshParams::normal(20_000, 21).build::<3>(Curve::Hilbert);
    let mut lambdas = Vec::new();
    let mut comm = Vec::new();
    for tol in [0.0, 0.25, 0.5] {
        let s = split(&tree, p, tol, MachineModel::cloudlab_clemson());
        let a = assignment(&tree, &s);
        lambdas.push(load_imbalance(&partition_counts(&a, p)));
        comm.push(comm_imbalance(&boundary_counts(&tree, &a, p)));
    }
    assert!(
        lambdas[0] <= lambdas[1] + 1e-9 && lambdas[1] <= lambdas[2] + 1e-9,
        "λ not non-decreasing: {lambdas:?}"
    );
    assert!(
        comm[2] >= comm[0] - 1e-9,
        "comm imbalance should grow overall: {comm:?}"
    );
}

/// Fig. 12: NNZ and total communication decrease with tolerance, and
/// Hilbert stays at or below Morton.
#[test]
fn nnz_decreases_with_tolerance_and_hilbert_wins() {
    let p = 32;
    let nnz_at = |curve: Curve, tol: f64| -> (usize, u64) {
        let tree = MeshParams::normal(20_000, 23).build::<3>(curve);
        let s = split(&tree, p, tol, MachineModel::titan());
        let a = assignment(&tree, &s);
        let m = communication_matrix(&tree, &a, p);
        (m.nnz(), m.total_bytes())
    };
    let (h0, v0) = nnz_at(Curve::Hilbert, 0.0);
    let (h5, v5) = nnz_at(Curve::Hilbert, 0.5);
    let (m0, w0) = nnz_at(Curve::Morton, 0.0);
    assert!(
        h5 <= h0,
        "hilbert nnz should not grow with tolerance: {h0} -> {h5}"
    );
    assert!(
        v5 <= v0,
        "hilbert volume should not grow with tolerance: {v0} -> {v5}"
    );
    assert!(h0 <= m0, "hilbert nnz {h0} should be <= morton {m0}");
    assert!(v0 <= w0, "hilbert volume {v0} should be <= morton {w0}");
}

/// Fig. 11 across seeds: the achieved load imbalance is bounded by the
/// requested flexible tolerance. Every splitter sits within `tol·grain`
/// of its target, so the largest partition is at most
/// `grain·(1 + 2·tol)` (both of a rank's boundaries displaced outward)
/// plus integer rounding — for every mesh seed and every tolerance in the
/// contention-free regime (below 0.5, no two targets can share a bucket
/// edge, so TreeSort honours the request exactly).
#[test]
fn fig11_imbalance_bounded_by_tolerance_across_seeds() {
    let p = 16;
    for seed in [41, 42, 43] {
        let tree = MeshParams::normal(8_000, seed).build::<3>(Curve::Hilbert);
        let grain = tree.len() as f64 / p as f64;
        for tol in [0.1, 0.25, 0.4] {
            let mut e = engine(MachineModel::cloudlab_clemson(), p);
            let out = treesort_partition(
                &mut e,
                distribute_tree(&tree, p),
                PartitionOptions::with_tolerance(tol),
            );
            assert!(
                out.report.achieved_tolerance <= tol + 1e-9,
                "seed {seed} tol {tol}: achieved {} exceeds request",
                out.report.achieved_tolerance
            );
            assert!(
                (out.report.wmax as f64) <= grain * (1.0 + 2.0 * tol) + 2.0,
                "seed {seed} tol {tol}: Wmax {} exceeds grain (1 + 2 tol)",
                out.report.wmax
            );
        }
    }
}

/// Fig. 12 across seeds: relaxing the tolerance never grows the
/// communication surface — both the comm-matrix NNZ and the total bytes
/// moved are non-increasing from exact balance to tol 0.5, for every mesh
/// seed (Hilbert keys, the curve the paper plots).
#[test]
fn fig12_comm_surface_non_increasing_across_seeds() {
    let p = 16;
    for seed in [51, 52, 53] {
        let tree = MeshParams::normal(8_000, seed).build::<3>(Curve::Hilbert);
        let surface = |tol: f64| {
            let s = split(&tree, p, tol, MachineModel::titan());
            let m = communication_matrix(&tree, &assignment(&tree, &s), p);
            (m.nnz(), m.total_bytes())
        };
        let (nnz0, vol0) = surface(0.0);
        let (nnz5, vol5) = surface(0.5);
        assert!(
            nnz5 <= nnz0,
            "seed {seed}: NNZ grew with tolerance: {nnz0} -> {nnz5}"
        );
        assert!(
            vol5 <= vol0,
            "seed {seed}: volume grew with tolerance: {vol0} -> {vol5}"
        );
    }
}

/// Fig. 10: OptiPart's model-chosen partition is essentially as good (in
/// its own predicted time) as every fixed-tolerance alternative on the
/// grid. The stopping rule is greedy (it halts at the first predicted
/// uptick, like Algorithm 3), so allow a small slack rather than exact
/// dominance.
#[test]
fn optipart_prediction_dominates_tolerance_grid() {
    let p = 24;
    let tree = MeshParams::normal(20_000, 29).build::<3>(Curve::Hilbert);
    let mut e = engine(MachineModel::cloudlab_wisconsin(), p);
    let chosen = optipart(
        &mut e,
        distribute_tree(&tree, p),
        OptiPartOptions::default(),
    );

    for tol in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let s = split(&tree, p, tol, MachineModel::cloudlab_wisconsin());
        let mut eq = engine(MachineModel::cloudlab_wisconsin(), p);
        let mut d = distribute_tree(&tree, p);
        let q = partition_quality(&mut eq, &mut d, &s, Curve::Hilbert);
        assert!(
            chosen.report.predicted_tp <= q.tp * 1.02,
            "optipart tp {} beaten by tol {tol}: {}",
            chosen.report.predicted_tp,
            q.tp
        );
    }
}

/// Fig. 6: OptiPart's splitter phase scales better than SampleSort's.
#[test]
fn optipart_splitter_phase_scales_better_than_samplesort() {
    let grain = 500;
    let splitter_times = |p: usize| -> (f64, f64) {
        let tree = MeshParams::normal(grain * p, 31).build::<3>(Curve::Morton);
        let mut e1 = engine(MachineModel::stampede(), p);
        let _ = optipart(
            &mut e1,
            distribute_tree(&tree, p),
            OptiPartOptions::for_curve(Curve::Morton),
        );
        let mut e2 = engine(MachineModel::stampede(), p);
        let _ = samplesort_partition(
            &mut e2,
            distribute_tree(&tree, p),
            SampleSortOptions::default(),
        );
        (e1.phase_time(PHASE_SPLITTER), e2.phase_time(PHASE_SPLITTER))
    };
    let (o_small, s_small) = splitter_times(8);
    let (o_large, s_large) = splitter_times(64);
    // SampleSort's splitter phase grows much faster with p.
    let samplesort_growth = s_large / s_small;
    let optipart_growth = o_large / o_small;
    assert!(
        samplesort_growth > optipart_growth,
        "samplesort growth {samplesort_growth} vs optipart growth {optipart_growth}"
    );
}

/// §5.4: energy and runtime are strongly correlated across tolerances.
#[test]
fn energy_and_runtime_correlate_across_tolerances() {
    let p = 16;
    let tree = MeshParams::normal(10_000, 37).build::<3>(Curve::Hilbert);
    let mut times = Vec::new();
    let mut energies = Vec::new();
    for tol in [0.0, 0.2, 0.4] {
        let mut e = engine(MachineModel::cloudlab_wisconsin(), p);
        let out = treesort_partition(
            &mut e,
            distribute_tree(&tree, p),
            PartitionOptions::with_tolerance(tol),
        );
        let mesh = DistMesh::build(&mut e, out.dist, Curve::Hilbert);
        let rep = run_matvec_experiment(&mut e, &mesh, 10);
        times.push(rep.seconds);
        energies.push(rep.energy.total_j);
    }
    // Pearson correlation over the three points must be positive and strong.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mt, me) = (mean(&times), mean(&energies));
    let cov: f64 = times
        .iter()
        .zip(&energies)
        .map(|(t, e)| (t - mt) * (e - me))
        .sum();
    let st: f64 = times.iter().map(|t| (t - mt).powi(2)).sum::<f64>().sqrt();
    let se: f64 = energies
        .iter()
        .map(|e| (e - me).powi(2))
        .sum::<f64>()
        .sqrt();
    let r = cov / (st * se).max(f64::MIN_POSITIVE);
    assert!(r > 0.9, "energy–time correlation too weak: r = {r}");
}

/// §3.2: with increasing TreeSort level, the induced partition boundary is
/// non-decreasing while λ approaches 1 — the Fig. 2 trade.
#[test]
fn boundary_grows_and_lambda_shrinks_with_level() {
    use optipart::octree::neighbors::segment_surface;
    let p = 3;
    for curve in Curve::ALL {
        let mut prev_surface = 0u64;
        let mut prev_lambda = f64::INFINITY;
        for level in 2u8..=4 {
            let tree: LinearTree<2> =
                LinearTree::root(curve).refine_where(|c| c.level() < level, level);
            let n = tree.len();
            let mut bounds = vec![0usize];
            for r in 1..p {
                bounds.push(r * n / p);
            }
            bounds.push(n);
            let sizes: Vec<usize> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
            let lambda = *sizes.iter().max().unwrap() as f64 / *sizes.iter().min().unwrap() as f64;
            let surface: u64 = bounds
                .windows(2)
                .map(|w| segment_surface(tree.leaves(), w[0], w[1], curve))
                .sum();
            // Normalise surface to the level's edge length so levels compare.
            let edge = 1u64 << (optipart::sfc::MAX_DEPTH - level);
            let surface = surface / edge;
            assert!(
                lambda <= prev_lambda + 1e-9,
                "{curve} level {level}: λ must not grow ({prev_lambda} -> {lambda})"
            );
            assert!(
                surface >= prev_surface,
                "{curve} level {level}: boundary must not shrink ({prev_surface} -> {surface})"
            );
            prev_surface = surface;
            prev_lambda = lambda;
        }
    }
}
