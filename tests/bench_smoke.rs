//! Tier-1 smoke of the bench layer: every kernel in the registry builds
//! and runs at tiny N — no timing assertions, just "bench code cannot
//! bit-rot". Also pins the properties `bench compare` relies on:
//! per-kernel determinism across iterations and thread-budget invariance
//! of the treesort checksums.

use optipart_bench::kernels::{self, checksum_cells, shuffled};
use optipart_bench::report::{compare_reports, KernelResult, Report};
use optipart_core::treesort::{treesort_reference, treesort_threaded};
use optipart_sfc::Curve;

/// Every registry kernel runs at tiny N and returns the same checksum on
/// consecutive iterations (the determinism `bench compare` gates on).
#[test]
fn every_kernel_runs_and_is_deterministic_at_tiny_n() {
    let reg = kernels::registry();
    assert!(reg.len() >= 12, "registry shrank to {}", reg.len());
    for k in reg {
        let mut prep = (k.build)(k.tiny_n);
        assert!(prep.elements > 0, "{}: zero elements", k.name);
        let first = (prep.run)();
        let second = (prep.run)();
        assert_eq!(
            first, second,
            "{}: checksum changed between iterations",
            k.name
        );
    }
}

/// The treesort kernel family computes the same permutation: optimised
/// (any thread budget) and reference checksums agree on the bench input.
#[test]
fn treesort_kernel_checksums_agree_across_variants() {
    let input = shuffled(3_000, Curve::Hilbert);
    let mut reference = input.clone();
    treesort_reference(&mut reference);
    let expected = checksum_cells(&reference);
    for threads in [1usize, 2, 4] {
        let mut a = input.clone();
        treesort_threaded(&mut a, threads);
        assert_eq!(
            checksum_cells(&a),
            expected,
            "treesort checksum diverged at {threads} threads"
        );
    }
    let mut std_sorted = input.clone();
    std_sorted.sort_unstable();
    assert_eq!(
        checksum_cells(&std_sorted),
        expected,
        "sort_unstable disagrees with treesort on leaf-only input"
    );
}

/// End-to-end compare gate: a report compared against itself passes; the
/// same report with a >10% injected slowdown (or an allocation jump) fails.
#[test]
fn compare_gate_trips_on_injected_regression() {
    let kernels = vec![KernelResult {
        name: "treesort_seq".into(),
        group: "treesort".into(),
        n: 3_000,
        elements: 2_990,
        min_iter_ns: 100_000,
        ns_per_elem: 33.44,
        melem_per_s: 29.9,
        allocs_per_iter: 0,
        alloc_bytes_per_iter: 0,
        checksum: "0x00000000deadbeef".into(),
    }];
    let base = Report {
        schema: Report::SCHEMA.into(),
        host: "smoke".into(),
        mode: "tiny".into(),
        samples: 3,
        threads: 4,
        cores: 4,
        kernels,
        derived: Default::default(),
    };
    // Round-trip through JSON, as the real compare path does.
    let mut cur = Report::from_json(&base.to_json()).expect("round trip");
    assert!(compare_reports(&base, &cur, 10.0, false).is_empty());
    cur.kernels[0].ns_per_elem *= 1.2;
    assert_eq!(compare_reports(&base, &cur, 10.0, false).len(), 1);
    cur.kernels[0].ns_per_elem /= 1.2;
    cur.kernels[0].allocs_per_iter = 100;
    assert_eq!(compare_reports(&base, &cur, 10.0, true).len(), 1);
}
