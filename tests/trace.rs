//! Tracing end-to-end: the critical path extracted from a trace is the
//! engine's own virtual makespan (same clock, not a second one), model
//! attribution recovers the machine constants on a clean machine, and the
//! Chrome-trace export is byte-identical across runs.

use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::{DistVec, Engine, FaultPlan, PathKind};

fn engine(p: usize) -> Engine {
    Engine::new(
        p,
        PerfModel::new(
            MachineModel::cloudlab_wisconsin(),
            AppModel::laplacian_matvec(),
        ),
    )
}

/// Asserts the path tiles `[0, makespan]` with no gaps or overlaps.
fn assert_tiles(e: &Engine) {
    let cp = e.critical_path();
    let makespan = e.makespan();
    assert!(
        (cp.covered_s() - makespan).abs() <= 1e-12 * makespan.max(1.0),
        "critical path covers {} s, makespan is {} s",
        cp.covered_s(),
        makespan
    );
    let items = &cp.items;
    assert!(!items.is_empty());
    assert_eq!(items[0].t0, 0.0, "path must start at t=0");
    assert_eq!(
        items.last().unwrap().t1,
        makespan,
        "path must end at the makespan"
    );
    for w in items.windows(2) {
        assert_eq!(w[0].t1, w[1].t0, "gap/overlap between path segments");
    }
}

#[test]
fn two_rank_critical_path_follows_the_blocker() {
    // Phase "heavy1": rank 1 reports 10× the bytes, so it arrives last at
    // the allreduce and the pre-sync path must run on rank 1. Phase
    // "heavy0" inverts the imbalance, so the post-sync path runs on rank 0.
    let mut e = engine(2).with_tracing();
    let mut d = DistVec::from_parts(vec![vec![0u8; 100], vec![0u8; 100]]);
    e.phase("heavy1", |e| {
        e.compute(&mut d, |r, buf| {
            buf.len() as f64 * if r == 1 { 80.0 } else { 8.0 }
        });
        e.allreduce_sum_u64(&[1, 1]);
    });
    e.phase("heavy0", |e| {
        e.compute(&mut d, |r, buf| {
            buf.len() as f64 * if r == 0 { 80.0 } else { 8.0 }
        });
        e.barrier();
    });

    assert_tiles(&e);
    let cp = e.critical_path();
    for item in &cp.items {
        if item.kind == PathKind::Compute {
            match item.phase.as_str() {
                "heavy1" => assert_eq!(item.rank, 1, "pre-sync path must be on the straggler"),
                "heavy0" => assert_eq!(item.rank, 0, "post-sync path must hop to rank 0"),
                other => panic!("unexpected compute phase {other} on path"),
            }
        }
    }
    // Both phases' compute contributed to the path.
    let phases: Vec<&str> = cp
        .items
        .iter()
        .filter(|i| i.kind == PathKind::Compute)
        .map(|i| i.phase.as_str())
        .collect();
    assert!(phases.contains(&"heavy1") && phases.contains(&"heavy0"));
}

#[test]
fn four_rank_critical_path_hops_through_rotating_stragglers() {
    // Three phases, each bound by a different rank (3, then 2, then 1).
    // The backward walk must hop blocker → blocker through all of them.
    let mut e = engine(4).with_tracing();
    let mut d = DistVec::from_parts((0..4).map(|_| vec![0u8; 64]).collect());
    for (phase, slow) in [("a", 3usize), ("b", 2), ("c", 1)] {
        e.phase(phase, |e| {
            e.compute(&mut d, |r, buf| {
                buf.len() as f64 * if r == slow { 100.0 } else { 4.0 }
            });
            e.allreduce_max_u64(&[0, 0, 0, 0]);
        });
    }

    assert_tiles(&e);
    let cp = e.critical_path();
    for item in &cp.items {
        if item.kind == PathKind::Compute {
            let want = match item.phase.as_str() {
                "a" => 3,
                "b" => 2,
                "c" => 1,
                other => panic!("unexpected compute phase {other} on path"),
            };
            assert_eq!(
                item.rank, want,
                "phase {} bound by rank {want}, path says rank {}",
                item.phase, item.rank
            );
        }
    }
    let on_path: std::collections::HashSet<usize> = cp
        .items
        .iter()
        .filter(|i| i.kind == PathKind::Compute)
        .map(|i| i.rank)
        .collect();
    assert_eq!(on_path, [1, 2, 3].into_iter().collect());
}

#[test]
fn attribution_recovers_tc_clean_and_inflates_it_under_stragglers() {
    let tc = engine(4).perf().machine.tc;
    let run = |plan: Option<FaultPlan>| {
        let mut e = engine(4).with_tracing();
        if let Some(plan) = plan {
            e = e.with_faults(plan);
        }
        let mut d = DistVec::from_parts((0..4).map(|_| vec![0u8; 256]).collect());
        e.phase("work", |e| {
            e.compute(&mut d, |_r, buf| buf.len() as f64 * 8.0);
            e.allreduce_sum_u64(&[1; 4]);
        });
        e.model_attribution()
    };

    // Clean machine: measured compute / Wmax bytes is exactly tc.
    let clean = run(None);
    let ph = clean.phase("work").expect("phase attributed");
    let tc_clean = ph.tc_suggested.expect("tc' derivable");
    assert!(
        (tc_clean - tc).abs() <= 1e-12 * tc,
        "clean run must recover tc: got {tc_clean:e}, machine says {tc:e}"
    );
    assert!(ph.wmax_bytes > 0 && ph.cmax_bytes > 0);

    // Every rank straggling 4× ⇒ the fitted tc is 4× the nominal one.
    let faulted = run(Some(FaultPlan::new(5).with_stragglers(1.0, 4.0)));
    let tc_slow = faulted
        .phase("work")
        .and_then(|p| p.tc_suggested)
        .expect("tc' derivable");
    assert!(
        (tc_slow - 4.0 * tc).abs() <= 1e-9 * tc,
        "4× stragglers must fit tc' = 4·tc: got {tc_slow:e}"
    );
    assert!(
        faulted.phase("work").unwrap().residual_s > 0.0,
        "stragglers must leave a positive residual"
    );
}

#[test]
fn trace_export_is_byte_identical_across_runs() {
    let run = || {
        let mut e = engine(4).with_tracing();
        let mut d = DistVec::from_parts((0..4).map(|r| vec![r as u64; 32 * (r + 1)]).collect());
        e.phase("step", |e| {
            e.compute(&mut d, |_r, buf| buf.len() as f64 * 8.0);
            e.allreduce_sum_u64(&[1; 4]);
        });
        e.trace_decision("probe", &[("x", 1.5), ("accepted", 1.0)]);
        e.trace_json()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same program must serialise to the same bytes");
    assert!(a.contains("\"traceEvents\""));
    assert!(a.contains("probe"));
}
