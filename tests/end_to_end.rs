//! Cross-crate integration tests: full pipeline from mesh generation through
//! partitioning, FEM mesh construction, matvec and energy reporting.

use optipart::core::optipart::{optipart, OptiPartOptions};
use optipart::core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart::core::samplesort::{samplesort_partition, SampleSortOptions};
use optipart::fem::{cg_solve, run_matvec_experiment, DistMesh};
use optipart::machine::{AppModel, IpmiSampler, MachineModel, PerfModel};
use optipart::mpisim::{DistVec, Engine};
use optipart::octree::balance::{balance21, is_balanced21};
use optipart::octree::{gaussian_ball, Distribution, MeshParams};
use optipart::sfc::{Curve, KeyedCell};

fn engine(machine: MachineModel, p: usize) -> Engine {
    Engine::new(p, PerfModel::new(machine, AppModel::laplacian_matvec()))
}

/// All three partitioners produce the identical global SFC order.
#[test]
fn all_partitioners_agree_on_global_order() {
    let tree = MeshParams::normal(3_000, 5).build::<3>(Curve::Hilbert);
    let p = 12;
    let mut expected: Vec<KeyedCell<3>> = tree.leaves().to_vec();
    expected.sort_unstable();

    let mut e1 = engine(MachineModel::titan(), p);
    let a = treesort_partition(
        &mut e1,
        distribute_tree(&tree, p),
        PartitionOptions::exact(),
    );
    let mut e2 = engine(MachineModel::titan(), p);
    let b = optipart(
        &mut e2,
        distribute_tree(&tree, p),
        OptiPartOptions::default(),
    );
    let mut e3 = engine(MachineModel::titan(), p);
    let c = samplesort_partition(
        &mut e3,
        distribute_tree(&tree, p),
        SampleSortOptions::default(),
    );

    assert_eq!(a.dist.concat(), expected);
    assert_eq!(b.dist.concat(), expected);
    assert_eq!(c.dist.concat(), expected);
}

/// Full pipeline on every distribution of §4.2 and both curves.
#[test]
fn pipeline_runs_for_all_distributions_and_curves() {
    for dist in Distribution::ALL {
        for curve in Curve::ALL {
            let tree = MeshParams {
                distribution: dist,
                num_points: 1_200,
                seed: 11,
                ..Default::default()
            }
            .build::<3>(curve);
            let p = 6;
            let mut e = engine(MachineModel::cloudlab_wisconsin(), p);
            let out = optipart(
                &mut e,
                distribute_tree(&tree, p),
                OptiPartOptions::for_curve(curve),
            );
            let mesh = DistMesh::build(&mut e, out.dist, curve);
            let rep = run_matvec_experiment(&mut e, &mesh, 5);
            assert!(rep.seconds > 0.0, "{} {curve}", dist.name());
            assert!(rep.ghost_elements > 0, "{} {curve}", dist.name());
        }
    }
}

/// The whole-application story of the paper: on a communication-bound
/// machine, OptiPart's partition must not lose to equal-work partitioning
/// in simulated matvec time, and must move fewer ghost elements.
#[test]
fn optipart_reduces_communication_on_cloudlab() {
    let tree = MeshParams::normal(20_000, 3).build::<3>(Curve::Hilbert);
    let p = 32;

    let mut e1 = engine(MachineModel::cloudlab_wisconsin(), p);
    let exact = treesort_partition(
        &mut e1,
        distribute_tree(&tree, p),
        PartitionOptions::exact(),
    );
    let mesh1 = DistMesh::build(&mut e1, exact.dist, Curve::Hilbert);
    let r_exact = run_matvec_experiment(&mut e1, &mesh1, 10);

    let mut e2 = engine(MachineModel::cloudlab_wisconsin(), p);
    let flex = treesort_partition(
        &mut e2,
        distribute_tree(&tree, p),
        PartitionOptions::with_tolerance(0.2),
    );
    let mesh2 = DistMesh::build(&mut e2, flex.dist, Curve::Hilbert);
    let r_flex = run_matvec_experiment(&mut e2, &mesh2, 10);

    assert!(
        r_flex.ghost_elements <= r_exact.ghost_elements,
        "tolerance must reduce ghosts: {} vs {}",
        r_flex.ghost_elements,
        r_exact.ghost_elements
    );
}

/// Poisson solve on a 2:1-balanced Gaussian-ball mesh: the AMR showcase.
#[test]
fn poisson_on_gaussian_ball() {
    let tree = balance21(&gaussian_ball::<3>(4, Curve::Hilbert));
    assert!(is_balanced21(&tree));
    let p = 8;
    let mut e = engine(MachineModel::cloudlab_clemson(), p);
    let out = optipart(
        &mut e,
        distribute_tree(&tree, p),
        OptiPartOptions::default(),
    );
    let mesh = DistMesh::build(&mut e, out.dist, Curve::Hilbert);
    let b = DistVec::from_parts(mesh.cells.counts().iter().map(|&c| vec![1.0; c]).collect());
    let (u, rep) = cg_solve(&mut e, &mesh, &b, 1e-7, 2000);
    assert!(rep.converged, "residual {}", rep.rel_residual);
    // Maximum principle: positive interior solution.
    assert!(u.parts().iter().flatten().all(|&v| v > 0.0));
}

/// IPMI-sampled energy agrees with the engine's exact accounting.
#[test]
fn ipmi_sampling_matches_exact_energy() {
    let tree = MeshParams::normal(2_000, 17).build::<3>(Curve::Hilbert);
    let p = 8;
    let mut e = engine(MachineModel::cloudlab_wisconsin(), p).record_trace();
    let out = treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact());
    let machine = e.perf().machine.clone();
    let exact = e.energy_report();
    let sampled = IpmiSampler {
        period_s: exact.makespan_s / 10_000.0,
    }
    .measure(
        e.trace().unwrap(),
        &machine.power,
        machine.ranks_per_node,
        machine.nodes_for(p),
    );
    let _ = out;
    let rel = (sampled.total_j - exact.total_j).abs() / exact.total_j;
    assert!(
        rel < 0.05,
        "sampled {} vs exact {} (rel {rel})",
        sampled.total_j,
        exact.total_j
    );
}

/// The facade crate re-exports everything needed for the README quickstart.
#[test]
fn facade_reexports_work() {
    let _ = optipart::sfc::Curve::Hilbert;
    let _ = optipart::machine::MachineModel::titan();
    let tree = optipart::octree::MeshParams::normal(100, 1).build::<3>(Curve::Morton);
    assert!(!tree.leaves().is_empty());
}
