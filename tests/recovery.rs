//! Fail-stop recovery end-to-end: seeded kills remove ranks mid-run, the
//! checkpointed drivers shrink to the survivor set, re-run OptiPart and
//! continue — conserving the global octant multiset, reproducing the
//! fault-free FEM solution to round-off, and staying bit-deterministic
//! (byte-identical Chrome trace, identical makespan) across host thread
//! counts. The critical path must tile `[0, makespan]` exactly *through*
//! the detection, restore and repartition events.

use optipart::core::optipart::WarmStats;
use optipart::core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart::fem::{amr_simulation_ft, run_matvec_ft, AmrConfig, DistMesh};
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::{CheckpointPolicy, Engine, FaultPlan};
use optipart::octree::{balance::balance21, LinearTree, MeshParams};
use optipart::sfc::{Curve, SfcKey};

fn engine(p: usize) -> Engine {
    Engine::new(
        p,
        PerfModel::new(
            MachineModel::cloudlab_wisconsin(),
            AppModel::laplacian_matvec(),
        ),
    )
}

/// 2:1-balanced test mesh — the class (Dendro's) on which the FEM stencil
/// is partition-independent, so faulted and fault-free solutions compare.
fn balanced_tree(n: usize, seed: u64) -> LinearTree<3> {
    balance21(&MeshParams::normal(n, seed).build::<3>(Curve::Hilbert))
}

fn built(e: &mut Engine, tree: &LinearTree<3>) -> DistMesh<3> {
    let out = treesort_partition(e, distribute_tree(tree, e.p()), PartitionOptions::exact());
    DistMesh::build(e, out.dist, Curve::Hilbert)
}

/// `|a - b| ≤ 1e-12` relative to the solution's ∞-norm (per-element relative
/// error is meaningless where the stencil cancels to ~0).
fn assert_solutions_match(want: &[(SfcKey, f64)], got: &[(SfcKey, f64)]) {
    assert_eq!(want.len(), got.len());
    let norm = want
        .iter()
        .map(|(_, v)| v.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    for ((ka, a), (kb, b)) in want.iter().zip(got) {
        assert_eq!(ka, kb, "octant multiset diverged");
        assert!(
            (a - b).abs() <= 1e-12 * norm,
            "solution diverged: {a} vs {b} (norm {norm:e})"
        );
    }
}

#[test]
fn killed_amr_run_completes_on_survivors() {
    // The acceptance scenario: a faulted AMR run that kills one rank
    // mid-solve completes on the survivor set with the same global octant
    // multiset and a FEM solution matching the fault-free run.
    let cfg = AmrConfig {
        steps: 4,
        max_level: 4,
        matvecs_per_step: 3,
        ..Default::default()
    };
    let mut clean = engine(8);
    let want = amr_simulation_ft(&mut clean, &cfg, CheckpointPolicy::EveryStep);
    assert!(want.deaths.is_empty());
    let mid = clean.sync_points() / 2;

    let mut e = engine(8).with_faults(FaultPlan::new(17).kill_rank(5, mid));
    let got = amr_simulation_ft(&mut e, &cfg, CheckpointPolicy::EveryStep);
    assert_eq!(got.deaths.len(), 1);
    assert_eq!(got.deaths[0].rank, 5);
    assert_eq!(got.final_p, 7);
    assert_eq!(got.checkpoint.restores, 1);
    assert_eq!(got.steps.last().unwrap().step, cfg.steps - 1);
    assert!(got.total_seconds > want.total_seconds);
    assert_solutions_match(&want.solution, &got.solution);
}

#[test]
fn shrink_invalidates_warm_state_and_stays_bit_identical() {
    // A mid-run kill shrinks the communicator, so every cached
    // `PartitionState` entry is fingerprinted for a rank count that no
    // longer exists: the recovery repartition must invalidate them all,
    // run cold, and re-seed for the survivor machine — and the whole
    // warm-started faulted run must stay bit-identical to the same run
    // with warm-start disabled.
    let cfg = AmrConfig {
        steps: 4,
        max_level: 4,
        matvecs_per_step: 3,
        ..Default::default()
    };
    let mut clean = engine(8);
    let want = amr_simulation_ft(&mut clean, &cfg, CheckpointPolicy::EveryStep);
    let mid = clean.sync_points() / 2;

    let run = |cfg: &AmrConfig| {
        let mut e = engine(8).with_faults(FaultPlan::new(43).kill_rank(3, mid));
        let rep = amr_simulation_ft(&mut e, cfg, CheckpointPolicy::EveryStep);
        assert_eq!(rep.deaths.len(), 1, "the scheduled kill must fire");
        assert_eq!(rep.final_p, 7);
        rep
    };
    let warm = run(&cfg);
    let cold = run(&AmrConfig {
        warm_start: false,
        ..cfg
    });

    // The shrink dropped the pre-death entries and forced a cold re-seed;
    // nothing was ever rejected as corrupt.
    assert!(
        warm.warm.invalidated >= 1,
        "shrink must invalidate stale state: {:?}",
        warm.warm
    );
    assert!(warm.warm.colds >= 2, "post-shrink ladder must run cold");
    assert_eq!(warm.warm.rejected, 0);
    assert_eq!(cold.warm, WarmStats::default(), "cold run must not warm");

    // Bit-identical faulted trajectories (virtual clocks differ — the warm
    // path charges for fingerprinting), round-off-identical to clean.
    assert_eq!(warm.solution, cold.solution);
    assert_solutions_match(&want.solution, &warm.solution);
}

#[test]
fn seeded_double_kill_shrinks_twice_and_still_matches() {
    // `with_rank_failures(0.25)` on p = 8 seeds two kills early in the run;
    // each is survived by a separate shrink + restore + repartition.
    let tree = balanced_tree(1_500, 53);

    let mut clean = engine(8);
    let mesh_c = built(&mut clean, &tree);
    let want = run_matvec_ft(&mut clean, &mesh_c, 20, CheckpointPolicy::EveryStep);

    let mut e = engine(8);
    let mesh = built(&mut e, &tree);
    let mut e = e.with_faults(FaultPlan::new(29).with_rank_failures(0.25));
    let got = run_matvec_ft(&mut e, &mesh, 20, CheckpointPolicy::EveryStep);
    assert_eq!(got.deaths.len(), 2, "0.25 × 8 ranks ⇒ two seeded kills");
    assert_eq!(got.final_p, 6);
    assert_eq!(got.checkpoint.restores, 2);
    assert_solutions_match(&want.solution, &got.solution);
}

#[test]
fn recovery_is_deterministic_across_thread_counts() {
    // Same seed + kill schedule ⇒ byte-identical Chrome trace and identical
    // makespan at any host thread count, with the critical path tiling
    // [0, makespan] exactly through detection, restore and repartition.
    let tree = balanced_tree(1_200, 59);

    // Probe a clean run's sync-point timeline to aim the kill mid-solve.
    let mut probe = engine(8);
    let mesh_p = built(&mut probe, &tree);
    let _ = run_matvec_ft(&mut probe, &mesh_p, 12, CheckpointPolicy::EveryN(2));
    let mid = probe.sync_points() / 2;
    assert!(mid >= 2);

    let run = || {
        let mut e = engine(8).with_tracing();
        let mesh = built(&mut e, &tree);
        let mut e = e.with_faults(FaultPlan::new(31).kill_rank(4, mid));
        let rep = run_matvec_ft(&mut e, &mesh, 12, CheckpointPolicy::EveryN(2));
        assert_eq!(rep.deaths.len(), 1, "the scheduled kill must fire");
        assert_eq!(rep.final_p, 7);

        // Critical path must tile the whole timeline through the recovery.
        let cp = e.critical_path();
        let makespan = e.makespan();
        assert!(
            (cp.covered_s() - makespan).abs() <= 1e-12 * makespan,
            "critical path ({}) must equal the virtual makespan ({})",
            cp.covered_s(),
            makespan
        );
        (e.trace_json(), makespan, rep.solution.clone())
    };

    let (json, makespan, solution) = run();
    assert!(
        json.contains("fault.death"),
        "the victim's death must be annotated in the trace"
    );
    assert!(
        json.contains("fault.detect"),
        "the survivors' detection sync must be in the trace"
    );
    assert!(
        json.contains("checkpoint"),
        "checkpoint syncs must be traced"
    );
    assert!(json.contains("restore"), "the restore sync must be traced");
    for threads in ["1", "4", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let (json2, makespan2, solution2) = run();
        assert_eq!(json, json2, "trace diverged at RAYON_NUM_THREADS={threads}");
        assert_eq!(makespan, makespan2);
        assert_eq!(solution, solution2);
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn checkpoint_interval_trades_overhead_for_lost_work() {
    // The Young/Daly trade-off the recovery ablation measures: frequent
    // checkpoints cost clean-run time but lose fewer iterations at a death.
    let tree = balanced_tree(1_000, 61);

    let clean_secs = |policy: CheckpointPolicy| {
        let mut e = engine(8);
        let mesh = built(&mut e, &tree);
        let rep = run_matvec_ft(&mut e, &mesh, 20, policy);
        (rep.seconds, e.sync_points())
    };
    let (t_none, _) = clean_secs(CheckpointPolicy::Never);
    let (t_every, _) = clean_secs(CheckpointPolicy::EveryStep);
    let (t_sparse, sync_sparse) = clean_secs(CheckpointPolicy::EveryN(10));
    assert!(t_every > t_sparse, "denser checkpoints must cost more");
    assert!(t_sparse > t_none, "any checkpointing costs virtual time");

    let lost = |policy: CheckpointPolicy, mid: u64| {
        let mut e = engine(8);
        let mesh = built(&mut e, &tree);
        let mut e = e.with_faults(FaultPlan::new(5).kill_rank(1, mid));
        let rep = run_matvec_ft(&mut e, &mesh, 20, policy);
        assert_eq!(rep.deaths.len(), 1);
        rep.lost_iterations
    };
    // Aim both kills at the same point of the sparse run's timeline.
    let mid = sync_sparse / 2;
    assert!(
        lost(CheckpointPolicy::EveryN(10), mid) > lost(CheckpointPolicy::EveryStep, mid),
        "sparse checkpoints must lose more work at a death"
    );
}
