//! Tier-1 suite for the two-level machine hierarchy.
//!
//! Three claims, from model to trace:
//! 1. *Flattening*: a degenerate hierarchy (intra == inter) is bit-identical
//!    to the flat machine through the whole OptiPart + quality + energy
//!    stack — the `hierarchy-flattening` differential oracle, swept over
//!    100 generated scenarios (plus the `front-advection` metamorphic
//!    property at the same width, since both ride the same new scenario
//!    dimensions).
//! 2. *Preference*: on a skewed 6-neighbour exchange pattern the
//!    hierarchical cost model strictly prefers the rank placement that
//!    keeps the heavy edges on-node, while the flat model cannot tell the
//!    placements apart.
//! 3. *Attribution*: the trace's Eq. (3) report splits every phase's wire
//!    bytes into intra- and inter-node parts exactly — the split sums back
//!    to the engine's own run statistics, byte for byte.

use optipart_core::optipart::optipart;
use optipart_core::partition::{distribute_shuffled, distribute_tree};
use optipart_core::quality::partition_quality;
use optipart_core::OptiPartOptions;
use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::rng::mix;
use optipart_mpisim::Engine;
use optipart_octree::MeshParams;
use optipart_sfc::Curve;
use optipart_testkit::scenario::Scenario;
use optipart_testkit::{metamorphic, oracles};

fn sweep(check: fn(&Scenario), stream: u64, count: usize) {
    for i in 0..count {
        let scn = Scenario::from_seed(mix(stream.wrapping_add(i as u64)));
        check(&scn);
    }
}

/// Oracle 9 over 100 scenarios: `hier=flat` (degenerate two-level machine)
/// must be bit-identical to `hier=none` — splitters, slices, report,
/// quality, clocks, makespan and energy report.
#[test]
fn oracle_hierarchy_flattening() {
    sweep(oracles::hierarchy_flattening, 0x0175_0009, 100);
}

/// The front-advection metamorphic property over 100 scenarios: mesh
/// generation commutes with the moving front's lattice translation, and
/// the full period returns partition + quality bit-identically.
#[test]
fn property_front_advection() {
    sweep(metamorphic::front_advection, 0x0175_0018, 100);
}

/// The skewed 6-neighbour exchange: every rank sends `heavy` bytes to its
/// ring neighbours (`r ± 1`) and `light` bytes to the four next-nearest
/// ranks (`r ± 2`, `r ± 3`) — a 1-D stencil with a fat diagonal, the
/// pattern SFC partitions of AMR meshes produce.
fn six_neighbor_traffic(p: usize, heavy: u64, light: u64) -> Vec<(usize, usize, u64)> {
    let mut edges = Vec::new();
    for r in 0..p {
        for (d, bytes) in [(1, heavy), (2, light), (3, light)] {
            edges.push((r, (r + d) % p, bytes));
            edges.push((r, (r + p - d) % p, bytes));
        }
    }
    edges
}

/// Splits an edge list into (inter, intra) byte totals under a rank →
/// physical-slot placement; node of a slot is `slot / ranks_per_node`.
fn split_bytes(edges: &[(usize, usize, u64)], place: &[usize], m: &MachineModel) -> (u64, u64) {
    let (mut inter, mut intra) = (0u64, 0u64);
    for &(src, dst, bytes) in edges {
        if m.node_of(place[src]) == m.node_of(place[dst]) {
            intra += bytes;
        } else {
            inter += bytes;
        }
    }
    (inter, intra)
}

/// Claim 2: under the two-level model the node-aligned placement of a
/// skewed 6-neighbour pattern is strictly cheaper than a node-strided one
/// (its heavy `r ± 1` edges stay on-node), while the flat model charges
/// both placements bit-identically — the cost surface OptiPart descends
/// only becomes placement-aware when the hierarchy is present.
#[test]
fn hierarchical_model_prefers_on_node_heavy_edges() {
    let p = 8;
    let flat = MachineModel::custom("hier-test", 1e-9, 1e-6, 1e-8, 4);
    let smp = flat.clone().hierarchical_smp();
    let edges = six_neighbor_traffic(p, 4096, 64);

    // Contiguous placement: ranks 0..3 on node 0, 4..7 on node 1 (the SFC
    // order). Strided: even ranks on node 0, odd on node 1 — every heavy
    // ring edge crosses nodes.
    let contiguous: Vec<usize> = (0..p).collect();
    let strided: Vec<usize> = (0..p).map(|r| (r % 2) * 4 + r / 2).collect();

    let (inter_c, intra_c) = split_bytes(&edges, &contiguous, &flat);
    let (inter_s, intra_s) = split_bytes(&edges, &strided, &flat);
    assert_eq!(
        inter_c + intra_c,
        inter_s + intra_s,
        "placement must conserve bytes"
    );
    let frac = |inter: u64, intra: u64| intra as f64 / (inter + intra) as f64;
    assert!(
        frac(inter_c, intra_c) > frac(inter_s, intra_s),
        "contiguous placement must keep a larger on-node fraction \
         ({} vs {})",
        frac(inter_c, intra_c),
        frac(inter_s, intra_s)
    );

    // Flat model: indifferent, bit for bit.
    assert_eq!(
        flat.comm_cost(inter_c, intra_c).to_bits(),
        flat.comm_cost(inter_s, intra_s).to_bits(),
        "the flat model must not distinguish placements"
    );
    // Degenerate hierarchy: still indifferent (the flattening contract).
    let degen = flat.clone().hierarchical_flat();
    assert_eq!(
        degen.comm_cost(inter_c, intra_c).to_bits(),
        degen.comm_cost(inter_s, intra_s).to_bits(),
        "a degenerate hierarchy must not distinguish placements"
    );
    // SMP hierarchy: the node-aligned placement wins strictly, in both
    // time and NIC energy.
    assert!(
        smp.comm_cost(inter_c, intra_c) < smp.comm_cost(inter_s, intra_s),
        "the two-level model must prefer heavy edges on-node"
    );
    assert!(
        smp.nic_j(inter_c + intra_c, intra_c) < smp.nic_j(inter_s + intra_s, intra_s),
        "the NIC energy model must prefer heavy edges on-node"
    );

    // And the preference is exactly the additive discount: cost(flat) +
    // (tw_intra − tw) · intra, recomputed independently.
    for (inter, intra) in [(inter_c, intra_c), (inter_s, intra_s)] {
        let h = smp.hierarchy.as_ref().expect("smp carries a hierarchy");
        let want = smp.tw * (inter + intra) as f64 + (h.tw_intra - smp.tw) * intra as f64;
        assert_eq!(smp.comm_cost(inter, intra).to_bits(), want.to_bits());
    }
}

/// Claim 2, engine leg: Algorithm 2 reports a non-trivial intra split for
/// a real partition on a multi-rank-per-node machine, and the reported
/// `Tp` carries exactly the `(tw_intra − tw) · Cmax_intra` discount
/// relative to the flat Eq. (3) prediction.
#[test]
fn quality_tp_carries_the_exact_intra_discount() {
    let tree = MeshParams::normal(4000, 33).build::<3>(Curve::Hilbert);
    let p = 8;
    let machine = MachineModel::custom("hier-test", 1e-9, 1e-6, 1e-8, 4).hierarchical_smp();
    let perf = PerfModel::new(machine, AppModel::laplacian_matvec());

    let mut e = Engine::new(p, perf.clone());
    let out = optipart(
        &mut e,
        distribute_shuffled(&tree, p, 0xA11CE),
        OptiPartOptions {
            curve: Curve::Hilbert,
            ..Default::default()
        },
    );
    let mut eq = Engine::new(p, perf.clone());
    let mut block = distribute_tree(&tree, p);
    let q = partition_quality(&mut eq, &mut block, &out.splitters, Curve::Hilbert);

    assert!(q.cmax_intra <= q.cmax);
    assert!(q.c_intra_total <= q.c_total);
    assert!(
        q.c_intra_total > 0,
        "an SFC partition on a 4-ranks-per-node machine must keep some \
         boundary on-node (got {q:?})"
    );
    assert!(
        q.c_total > q.c_intra_total,
        "node boundaries must leave some surface inter-node (got {q:?})"
    );
    let h = perf.machine.hierarchy.as_ref().unwrap();
    let want = perf.predict(q.wmax, q.cmax)
        + (h.tw_intra - perf.machine.tw) * (q.cmax_intra as f64 * perf.app.elem_bytes);
    assert_eq!(
        q.tp.to_bits(),
        want.to_bits(),
        "quality Tp must be exactly the flat prediction plus the discount"
    );
    assert!(q.tp < perf.predict(q.wmax, q.cmax) || q.cmax_intra == 0);
}

/// Claim 3: the Eq. (3) trace attribution's intra/inter byte split is
/// exact, not modelled. The trace charges point-to-point traffic at both
/// endpoints (sender and receiver) while `RunStats` counts each byte once,
/// and tree collectives are charged once on both sides and are always
/// inter-node — which yields three byte-exact identities:
///
/// * per phase, `intra + inter == total` and `cmax_intra ≤ cmax`;
/// * `Σ trace intra == 2 × stats.bytes_intra` (both endpoints of every
///   on-node pair, vs once in the stats);
/// * with every rank on one node, `stats.bytes_intra == Σ trace total −
///   stats.bytes_total` (the excess of the double-counted trace over the
///   stats is exactly the point-to-point traffic, all of it on-node).
#[test]
fn trace_attribution_splits_intra_inter_bytes_exactly() {
    let tree = MeshParams::normal(2500, 41).build::<3>(Curve::Morton);
    let p = 6;
    let run = |ranks_per_node: usize| {
        let machine = MachineModel::custom("attrib-test", 1e-9, 1e-6, 1e-8, ranks_per_node)
            .hierarchical_numa();
        let mut e = Engine::new(p, PerfModel::new(machine, AppModel::wave_matvec())).with_tracing();
        let _ = optipart(
            &mut e,
            distribute_shuffled(&tree, p, 0xBEE),
            OptiPartOptions {
                curve: Curve::Morton,
                ..Default::default()
            },
        );
        let attrib = e.model_attribution();
        let stats = e.stats().clone();
        (attrib, stats)
    };

    for rpn in [1usize, 2, 8] {
        let (attrib, stats) = run(rpn);
        assert!(!attrib.phases.is_empty(), "rpn {rpn}: attribution is empty");
        let mut total = 0u64;
        let mut intra = 0u64;
        for a in &attrib.phases {
            assert!(
                a.comm_intra_bytes <= a.comm_bytes_total,
                "rpn {rpn}, phase {}: intra bytes exceed the total",
                a.phase
            );
            assert_eq!(
                a.comm_intra_bytes + a.comm_inter_bytes(),
                a.comm_bytes_total,
                "rpn {rpn}, phase {}: the split must be exact",
                a.phase
            );
            assert!(
                a.cmax_intra_bytes <= a.cmax_bytes,
                "rpn {rpn}, phase {}: bottleneck intra exceeds its Cmax",
                a.phase
            );
            total += a.comm_bytes_total;
            intra += a.comm_intra_bytes;
        }
        assert_eq!(
            intra,
            2 * stats.bytes_intra,
            "rpn {rpn}: trace intra must be exactly both endpoints of every \
             on-node byte the stats count once"
        );
        assert!(
            stats.bytes_total <= total && total <= 2 * stats.bytes_total,
            "rpn {rpn}: trace totals must lie between once- and \
             twice-counted stats ({total} vs {})",
            stats.bytes_total
        );
        match rpn {
            // One rank per node: self-sends are elided, so nothing is
            // on-node — in the stats or the trace.
            1 => {
                assert_eq!(stats.bytes_intra, 0, "rpn 1: no on-node pairs exist");
                assert_eq!(intra, 0, "rpn 1: the trace must agree");
            }
            // Everyone on one node: all point-to-point traffic is intra,
            // and that traffic is exactly the trace's double-count excess.
            8 => assert_eq!(
                stats.bytes_intra,
                total - stats.bytes_total,
                "rpn 8 >= p: every point-to-point byte must stay on-node"
            ),
            // Two per node: a genuine mix — some pairs share a node, the
            // tree collectives never do.
            _ => assert!(
                0 < intra && intra < total,
                "rpn {rpn}: expected a strict intra/inter mix (intra {intra} of {total})"
            ),
        }
    }
}
