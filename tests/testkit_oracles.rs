//! Tier-1 wiring of the `optipart-testkit` correctness layer: every
//! differential oracle sweeps 100+ generated scenarios, the metamorphic
//! properties sweep a smaller band, and the whole-stack checks smoke a
//! handful — all deterministic, all reporting a copy-pastable
//! `testkit replay` command on failure.
//!
//! Each sweep uses its own seed stream (`mix(stream + i)`), so every
//! oracle covers its own disjoint slice of the scenario space rather than
//! re-checking the same 100 meshes each time.

use optipart_testkit::mpisim::rng::mix;
use optipart_testkit::scenario::Scenario;
use optipart_testkit::{metamorphic, oracles, soak};

fn sweep(check: fn(&Scenario), stream: u64, count: usize) {
    for i in 0..count {
        let scn = Scenario::from_seed(mix(stream.wrapping_add(i as u64)));
        check(&scn);
    }
}

/// Oracle 1: distributed TreeSort vs the sequential sort, the virtual
/// engine and the real-threads rank view (bit-identical splitters).
#[test]
fn oracle_treesort_differential() {
    sweep(oracles::treesort_differential, 0x0175_0001, 100);
}

/// Oracle 2: OptiPart's Eq. (3) prediction vs a brute-force tolerance
/// grid of fully-converged TreeSort partitions.
#[test]
fn oracle_optipart_bruteforce() {
    sweep(oracles::optipart_bruteforce, 0x0175_0002, 100);
}

/// Oracle 3: SampleSort and TreeSort agree on the sorted global multiset.
#[test]
fn oracle_samplesort_equivalence() {
    sweep(oracles::samplesort_equivalence, 0x0175_0003, 100);
}

/// Oracle 4: a killed-and-recovered run reproduces the fault-free
/// solution bit-for-bit (within the FT comparison tolerance).
#[test]
fn oracle_fault_recovery() {
    sweep(oracles::fault_recovery, 0x0175_0004, 100);
}

/// Oracle 5: the ping-pong/parallel TreeSort is bit-identical to the
/// retained pre-optimisation reference, across thread budgets, scratch
/// reuse and windowed level sorts — including inputs tiled past the
/// parallel-recursion cutoff.
#[test]
fn oracle_treesort_optimized() {
    sweep(oracles::treesort_optimized, 0x0175_0005, 100);
}

/// Oracle 6: a warm-started AMR partition sequence is bit-identical to
/// cold per-step ladders — replayed decisions, exact-hit reuse, report
/// floats compared by bits — across 100 generated scenarios.
#[test]
fn oracle_warm_vs_cold() {
    sweep(oracles::warm_vs_cold, 0x0175_0006, 100);
}

/// Oracle 7: a live optipart-serve server — across worker counts,
/// batching on/off, paused bursts, deadlines and armed fail-stop kills —
/// returns payloads bit-identical to direct library calls, and every
/// request survives a flat-JSON wire round-trip.
#[test]
fn oracle_serve_vs_library() {
    sweep(oracles::serve_vs_library, 0x0175_0007, 100);
}

/// Oracle 8: the sparse and flat-arena all-to-alls deliver bit-identical
/// payloads, comm matrices and virtual-clock charges to the dense p×p
/// reference, for every staging algorithm, clean and faulted.
#[test]
fn oracle_sparse_vs_dense_collectives() {
    sweep(oracles::sparse_vs_dense_collectives, 0x0175_0008, 100);
}

/// Metamorphic: splitters ignore the input's distribution across ranks.
#[test]
fn property_permutation_invariance() {
    sweep(metamorphic::permutation_invariance, 0x0175_0011, 50);
}

/// Metamorphic: duplicating every element keeps ranks non-straddling and
/// the tolerance envelope within one element-grain.
#[test]
fn property_duplication_robustness() {
    sweep(metamorphic::duplication_robustness, 0x0175_0012, 50);
}

/// Metamorphic: Cmax and comm-matrix NNZ do not grow as the tolerance
/// relaxes (Fig. 11/12 trend, per-step slack).
#[test]
fn property_tolerance_monotonicity() {
    sweep(metamorphic::tolerance_monotonicity, 0x0175_0013, 50);
}

/// Metamorphic: rescaling tc/tw by powers of two rescales every Eq. (3)
/// attribution exactly, without moving a single splitter.
#[test]
fn property_scale_invariance() {
    sweep(metamorphic::scale_invariance, 0x0175_0014, 50);
}

/// Metamorphic: TreeSort and the engine's fork–join primitive produce
/// bit-identical output for every explicit worker-thread budget.
#[test]
fn property_thread_count_invariance() {
    sweep(metamorphic::thread_count_invariance, 0x0175_0015, 50);
}

/// Metamorphic: a corrupted or stale `PartitionState` is detected and
/// falls back to a cold ladder with identical output, including the
/// shrink case where the surviving rank count no longer matches.
#[test]
fn property_warm_state_fallback() {
    sweep(metamorphic::warm_state_fallback, 0x0175_0016, 50);
}

/// Metamorphic: padding a hypercube-staged exchange's communicator with
/// idle ranks (2^k, 2^k ± 1, doubling) changes the stage schedule but
/// never the deliveries, comm-matrix entries or conservation totals.
#[test]
fn property_rank_count_scale_invariance() {
    sweep(metamorphic::rank_count_scale_invariance, 0x0175_0017, 50);
}

/// Whole stack: faulted + checkpointed + traced AMR, deterministic twice
/// over, with a critical path that tiles the makespan.
#[test]
fn stack_smoke() {
    sweep(soak::stack_check, 0x0175_0021, 6);
}

/// Trace byte-identity under benign fault plans.
#[test]
fn trace_identity_smoke() {
    sweep(soak::trace_identity, 0x0175_0022, 12);
}
