//! Hostile-input acceptance for the `optipart-serve` binary: bad JSON,
//! missing fields, oversized lines, raw garbage bytes and mid-line
//! disconnects — through both stdin and socket mode — must each cost an
//! error line (or only their own connection), never the stream, and the
//! well-formed requests riding alongside must still serve bit-identically
//! (`--verify` inside the binary checks them against direct library
//! calls).

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_optipart-serve");

fn good_line(id: u64, seed: u64) -> String {
    format!("{{\"id\":{id},\"seed\":{seed}}}")
}

fn spawn_serve(args: &[&str]) -> Child {
    Command::new(BIN)
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn optipart-serve")
}

fn finish(child: Child) -> (i32, String, String) {
    let out = child.wait_with_output().expect("wait for optipart-serve");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The stdin corpus: two good requests surrounded by a parse error, a
/// missing `seed`, an oversized line, invalid UTF-8, and a mid-line EOF.
/// Every hostile line earns an `{"error":...}` response, both good
/// requests serve (verified against the library by `--verify`), and the
/// exit status is poisoned by the bad lines.
#[test]
fn stdin_corpus_isolates_each_hostile_line() {
    let mut child = spawn_serve(&["--workers", "2", "--max-line", "256", "--verify"]);
    {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        stdin.write_all(good_line(1, 777).as_bytes()).unwrap();
        stdin.write_all(b"\n").unwrap();
        stdin.write_all(b"{\"id\":2,\"seed\":}\n").unwrap(); // bad JSON value
        stdin.write_all(b"{\"id\":3,\"p\":4}\n").unwrap(); // missing seed
        let oversized = format!("{{\"id\":4,\"seed\":9,{}}}\n", "x".repeat(400));
        stdin.write_all(oversized.as_bytes()).unwrap(); // past --max-line
        stdin.write_all(b"\xff\xfe\x80 garbage\n").unwrap(); // invalid UTF-8
        stdin.write_all(good_line(6, 778).as_bytes()).unwrap();
        stdin.write_all(b"\n").unwrap();
        stdin.write_all(b"{\"id\":7,\"seed\":7").unwrap(); // mid-line EOF
    }
    drop(child.stdin.take());
    let (code, stdout, stderr) = finish(child);

    assert_ne!(code, 0, "hostile lines must poison the exit status");
    let errors = stdout.matches("\"error\":").count();
    assert_eq!(errors, 4, "one error line per hostile line:\n{stdout}");
    assert!(stdout.contains("exceeds 256 bytes"), "{stdout}");
    assert!(stdout.contains("not valid UTF-8"), "{stdout}");
    for id in [1u64, 6] {
        let served = stdout
            .lines()
            .any(|l| l.contains(&format!("\"id\":{id},")) && l.contains("\"status\":\"ok\""));
        assert!(
            served,
            "request {id} must serve despite its neighbours:\n{stdout}"
        );
    }
    assert!(
        stderr.contains("bit-identical to direct library calls"),
        "--verify must still pass on the good requests:\n{stderr}"
    );
    assert!(
        stderr.contains("malformed"),
        "the summary must count the bad lines:\n{stderr}"
    );
}

fn connect_retry(path: &str) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(e) => {
                assert!(Instant::now() < deadline, "server never listened: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Socket mode, two concurrent clients: one vanishes mid-line after a good
/// request, the other streams clean requests. The hostile client poisons
/// only itself — the clean client gets every response, the hostile one's
/// accepted request is still answered server-side (conservation), and the
/// server exits cleanly.
#[test]
fn hostile_socket_client_poisons_only_its_own_connection() {
    let path = format!("/tmp/optipart-hostile-{}.sock", std::process::id());
    let _ = std::fs::remove_file(&path);
    let child = spawn_serve(&[
        "--socket",
        &path,
        "--accept",
        "2",
        "--workers",
        "2",
        "--verify",
    ]);

    let hostile = connect_retry(&path);
    let clean = connect_retry(&path);

    let clean_thread = std::thread::spawn(move || {
        let mut w = clean.try_clone().expect("clone clean socket");
        for (id, seed) in [(10u64, 900u64), (11, 901), (12, 900)] {
            writeln!(w, "{}", good_line(id, seed)).unwrap();
        }
        clean.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = Vec::new();
        for line in BufReader::new(&clean).lines() {
            lines.push(line.expect("readable response"));
        }
        lines
    });
    {
        let mut w = &hostile;
        write!(w, "{}\n{{\"id\":21,\"seed", good_line(20, 950)).unwrap();
        w.flush().unwrap();
    }
    // Vanish mid-line without shutdown: the server sees EOF inside a line.
    drop(hostile);

    let responses = clean_thread.join().expect("clean client finishes");
    assert_eq!(responses.len(), 3, "clean client must get every response");
    for id in [10u64, 11, 12] {
        assert!(
            responses
                .iter()
                .any(|l| l.contains(&format!("\"id\":{id},")) && l.contains("\"status\":\"ok\"")),
            "missing served response for id {id}: {responses:?}"
        );
    }

    let (code, _stdout, stderr) = finish(child);
    assert_eq!(
        code, 0,
        "a mid-line disconnect is the client's loss, not the server's:\n{stderr}"
    );
    assert!(
        stderr.contains("2 connection(s)"),
        "both connections must be drained and counted:\n{stderr}"
    );
}

/// `--allow-shed` exit semantics: one worker with a 1-slot queue, a large
/// request to occupy it, then a flood of quick ones — the queue overflows
/// and sheds. Strict mode (the default) turns that into a non-zero exit;
/// `--allow-shed` keeps `--verify` green (sheds verify their replay
/// command and retry hint, serves verify bit-identically) and exits 0.
#[test]
fn allow_shed_flag_separates_backpressure_from_failure() {
    let feed = |child: &mut Child| {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        // ~100k elements keeps the single worker busy for many ms — far
        // longer than piping the five quick lines behind it takes.
        writeln!(stdin, "{{\"id\":0,\"seed\":5000,\"n\":100000,\"p\":4}}").unwrap();
        for id in 1..6u64 {
            writeln!(stdin, "{}", good_line(id, 6000)).unwrap();
        }
    };

    let mut strict = spawn_serve(&["--workers", "1", "--queue-cap", "1"]);
    feed(&mut strict);
    drop(strict.stdin.take());
    let (code, stdout, stderr) = finish(strict);
    assert_ne!(code, 0, "sheds must fail a strict serve:\n{stderr}");
    let sheds = stdout.matches("\"status\":\"shed\"").count();
    assert!(
        sheds >= 3,
        "the flood must overflow the 1-slot queue:\n{stdout}"
    );
    assert!(stdout.contains("\"retry_after_s\":"), "{stdout}");

    let mut tolerant = spawn_serve(&[
        "--workers",
        "1",
        "--queue-cap",
        "1",
        "--allow-shed",
        "--verify",
    ]);
    feed(&mut tolerant);
    drop(tolerant.stdin.take());
    let (code, stdout, stderr) = finish(tolerant);
    assert_eq!(
        code, 0,
        "--allow-shed must tolerate pure backpressure:\n{stderr}"
    );
    assert!(
        stdout.matches("\"status\":\"shed\"").count() >= 3,
        "{stdout}"
    );
    assert!(
        stderr.contains("bit-identical to direct library calls"),
        "--verify must cover the served remainder:\n{stderr}"
    );
}
