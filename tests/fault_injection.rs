//! Fault injection end-to-end: seeded fault plans perturb the *virtual
//! machine* (straggling ranks, jittered links, transient all-to-all
//! failures) while the always-on audits check that no collective ever loses
//! or duplicates data and no clock runs backwards. The partitioned data must
//! be bit-identical with faults on or off — faults cost time, never
//! correctness — and OptiPart's measured-cost stopping rule must respond to
//! the perturbed machine by settling for a coarser (or equal) tolerance.

use optipart::core::optipart::{optipart, OptiPartOptions};
use optipart::core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart::fem::{run_matvec_experiment, DistMesh};
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::{Engine, FaultPlan};
use optipart::octree::MeshParams;
use optipart::sfc::Curve;

fn engine(p: usize) -> Engine {
    Engine::new(
        p,
        PerfModel::new(
            MachineModel::cloudlab_wisconsin(),
            AppModel::laplacian_matvec(),
        ),
    )
}

/// A plan exercising all three fault channels at once.
fn stormy(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_stragglers(0.25, 4.0)
        .with_tw_jitter(0.4)
        .with_transient_failures(0.3)
        .with_retry_policy(4, 1e-4)
}

#[test]
fn faulted_run_is_bit_reproducible() {
    // Same fault seed ⇒ identical schedule of stragglers, jitter and
    // failures ⇒ bit-identical splitters, stats and clocks — across repeat
    // runs AND across worker thread counts.
    let run = || {
        let tree = MeshParams::normal(4_000, 81).build::<3>(Curve::Hilbert);
        let mut e = engine(12).with_faults(stormy(7));
        let out = optipart(
            &mut e,
            distribute_tree(&tree, 12),
            OptiPartOptions::default(),
        );
        (
            out.splitters.clone(),
            out.report.counts.clone(),
            e.makespan(),
            e.clocks().to_vec(),
            e.stats().retries_total,
            e.stats().audited_collectives,
        )
    };
    let reference = run();
    assert!(
        reference.4 > 0,
        "the stormy plan should trigger at least one retry"
    );
    assert!(reference.5 > 0, "audits must have run");
    for threads in ["1", "4", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let again = run();
        assert_eq!(
            reference, again,
            "divergence at RAYON_NUM_THREADS={threads}"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn traced_faulted_run_annotates_and_replays() {
    // Tracing a faulted run: the exported trace carries the fault
    // annotations (straggler marks at t=0, retry marks at each failed
    // alltoallv), its critical path is exactly the engine's makespan, and
    // the same seed reproduces the same bytes.
    let run = || {
        let tree = MeshParams::normal(3_000, 91).build::<3>(Curve::Hilbert);
        let mut e = engine(8).with_faults(stormy(7)).with_tracing();
        let out = treesort_partition(&mut e, distribute_tree(&tree, 8), PartitionOptions::exact());
        let mesh = DistMesh::build(&mut e, out.dist, Curve::Hilbert);
        run_matvec_experiment(&mut e, &mesh, 5);
        let cp = e.critical_path();
        let makespan = e.makespan();
        assert!(
            (cp.covered_s() - makespan).abs() <= 1e-12 * makespan,
            "critical path ({}) must equal the virtual makespan ({})",
            cp.covered_s(),
            makespan
        );
        (e.trace_json(), makespan)
    };
    let (json, _) = run();
    assert!(
        json.contains("fault.straggler"),
        "straggler ranks must be annotated in the trace"
    );
    assert!(
        json.contains("fault.retry"),
        "transient-failure retries must be annotated in the trace"
    );
    let (json2, _) = run();
    assert_eq!(json, json2, "faulted trace must replay byte-identically");
}

#[test]
fn faults_cost_time_but_never_touch_data() {
    // TreeSort under the stormy plan: the exchanged + sorted cells are
    // bit-identical to the fault-free run; only the virtual clock suffers.
    let tree = MeshParams::normal(5_000, 82).build::<3>(Curve::Hilbert);
    let p = 16;

    let mut clean = engine(p);
    let out_clean = treesort_partition(
        &mut clean,
        distribute_tree(&tree, p),
        PartitionOptions::exact(),
    );

    let mut faulty = engine(p).with_faults(stormy(11));
    let out_faulty = treesort_partition(
        &mut faulty,
        distribute_tree(&tree, p),
        PartitionOptions::exact(),
    );

    assert_eq!(out_clean.splitters, out_faulty.splitters);
    assert_eq!(out_clean.dist.concat(), out_faulty.dist.concat());
    assert_eq!(out_clean.report.counts, out_faulty.report.counts);
    assert!(
        faulty.makespan() > clean.makespan(),
        "stragglers + retries must inflate virtual time: {} vs {}",
        faulty.makespan(),
        clean.makespan()
    );
    // Both runs were audited end to end; a conservation violation would
    // have panicked above.
    assert!(clean.stats().audited_collectives > 0);
    assert_eq!(
        clean.stats().audited_collectives,
        faulty.stats().audited_collectives
    );
}

#[test]
fn audits_hold_across_algorithms_and_seeds() {
    // Sweep fault seeds over TreeSort, OptiPart and the FEM matvec driver —
    // every collective in every run passes the conservation audit (the
    // audit panics on violation, so reaching the end *is* the assertion).
    for seed in [1u64, 2, 3] {
        let tree = MeshParams::normal(3_000, 83).build::<3>(Curve::Hilbert);
        let p = 8;

        let mut e1 = engine(p).with_faults(stormy(seed));
        let out = treesort_partition(
            &mut e1,
            distribute_tree(&tree, p),
            PartitionOptions::with_tolerance(0.3),
        );
        assert!(e1.stats().audited_collectives > 0);

        let mut e2 = engine(p).with_faults(stormy(seed ^ 0xABCD));
        let _ = optipart(
            &mut e2,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        assert!(e2.stats().audited_collectives > 0);

        let mesh = DistMesh::build(&mut e1, out.dist, Curve::Hilbert);
        let rep = run_matvec_experiment(&mut e1, &mesh, 5);
        assert!(rep.seconds > 0.0);
        assert_eq!(rep.rank_clocks.len(), p);
    }
}

#[test]
fn stragglers_drive_optipart_to_coarser_or_equal_tolerance() {
    // The acceptance-criterion test: with the measured-cost stopping rule
    // (`amortize_over`), straggling ranks inflate the *measured* cost of
    // every further refinement round while the nominal Eq. (3) gain is
    // unchanged — so the search must stop at a coarser (or equal) tolerance
    // than on the clean machine, and the data must still be a valid
    // partition of the same cells.
    // The amortisation horizon is where machine-awareness lives: over 100
    // iterations the clean machine recoups deep refinement, the straggling
    // machine (search phases ~20× slower on hot ranks) cannot.
    let p = 16;
    let mut strictly_coarser = 0usize;
    for seed in [84u64, 85, 86, 87, 88] {
        let tree = MeshParams::normal(6_000, seed).build::<3>(Curve::Hilbert);
        let opts = OptiPartOptions {
            amortize_over: Some(100),
            ..Default::default()
        };

        let mut clean = engine(p);
        let out_clean = optipart(&mut clean, distribute_tree(&tree, p), opts);

        let mut faulty = engine(p).with_faults(FaultPlan::new(seed).with_stragglers(0.25, 20.0));
        let out_faulty = optipart(&mut faulty, distribute_tree(&tree, p), opts);

        let (tol_clean, tol_faulty) = (
            out_clean.report.achieved_tolerance,
            out_faulty.report.achieved_tolerance,
        );
        assert!(
            tol_faulty >= tol_clean - 1e-12,
            "seed {seed}: stragglers made OptiPart pick a finer tolerance \
             ({tol_faulty} < {tol_clean}) — measured-cost rule is inverted"
        );
        if tol_faulty > tol_clean + 1e-12 {
            strictly_coarser += 1;
        }
        // Whatever tolerance was chosen, the partition is complete.
        let mut cells_clean = out_clean.dist.concat();
        let mut cells_faulty = out_faulty.dist.concat();
        cells_clean.sort();
        cells_faulty.sort();
        assert_eq!(
            cells_clean, cells_faulty,
            "seed {seed}: partitions hold different cells"
        );
    }
    assert!(
        strictly_coarser >= 2,
        "severity-20 stragglers changed the tolerance decision on only \
         {strictly_coarser}/5 seeds — the measured cost is not reaching \
         the acceptance rule"
    );
}

#[test]
fn matvec_report_exposes_straggle_and_retries() {
    let tree = MeshParams::normal(2_500, 87).build::<3>(Curve::Hilbert);
    let p = 8;

    let build = |e: &mut Engine| {
        let out = treesort_partition(e, distribute_tree(&tree, p), PartitionOptions::exact());
        DistMesh::build(e, out.dist, Curve::Hilbert)
    };

    let mut clean = engine(p);
    let mesh = build(&mut clean);
    let rep_clean = run_matvec_experiment(&mut clean, &mesh, 10);

    let mut faulty = engine(p).with_faults(
        FaultPlan::new(13)
            .with_stragglers(0.25, 6.0)
            .with_transient_failures(0.2),
    );
    let mesh_f = build(&mut faulty);
    let rep_faulty = run_matvec_experiment(&mut faulty, &mesh_f, 10);

    assert_eq!(rep_clean.retries, 0);
    assert!(
        rep_faulty.retries > 0,
        "transient failures should surface as retries"
    );
    assert!(rep_faulty.seconds > rep_clean.seconds);
    assert_eq!(
        rep_clean.ghost_elements, rep_faulty.ghost_elements,
        "faults moved data"
    );

    // Straggling ranks finish late: the clock spread under faults dwarfs
    // the clean spread (a trailing collective nearly equalises the latter).
    let spread = |clocks: &[f64]| {
        clocks.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - clocks.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    assert!(spread(&rep_faulty.rank_clocks) > spread(&rep_clean.rank_clocks));
}

#[test]
fn reset_replays_the_fault_schedule_byte_identically() {
    // `Engine::reset` must re-arm the *entire* fault schedule: a reset
    // engine re-running the same workload reproduces the same stragglers,
    // jitter draws, retries and trace bytes as its first run.
    let tree = MeshParams::normal(4_000, 81).build::<3>(Curve::Hilbert);
    let p = 12;
    let mut e = engine(p).with_faults(stormy(7)).with_tracing();

    let run = |e: &mut Engine| {
        let out = optipart(e, distribute_tree(&tree, p), OptiPartOptions::default());
        (
            out.splitters.clone(),
            e.makespan(),
            e.clocks().to_vec(),
            e.stats().retries_total,
            e.trace_json(),
        )
    };
    let first = run(&mut e);
    assert!(first.3 > 0, "the stormy plan should trigger retries");
    e.reset();
    let second = run(&mut e);
    assert_eq!(first, second, "reset must replay the fault schedule");
}

#[test]
fn reset_re_arms_a_fired_kill() {
    // A fail-stop kill consumes its schedule entry when it fires; `reset`
    // without a shrink must put it back, so the replayed run dies at the
    // same sync point with a byte-identical `RankDeath`.
    use optipart::mpisim::catch_rank_death;
    let tree = MeshParams::normal(2_000, 94).build::<3>(Curve::Hilbert);
    let p = 8;

    // Probe a clean run's sync-point timeline to aim the kill mid-workload.
    let mut probe = engine(p);
    let _ = treesort_partition(
        &mut probe,
        distribute_tree(&tree, p),
        PartitionOptions::exact(),
    );
    let mid = probe.sync_points() / 2;
    assert!(mid >= 1);

    let mut e = engine(p).with_faults(FaultPlan::new(21).kill_rank(3, mid));
    let die = |e: &mut Engine| {
        catch_rank_death(|| {
            let _ = treesort_partition(e, distribute_tree(&tree, p), PartitionOptions::exact());
        })
        .expect_err("the scheduled kill must fire")
    };
    let d1 = die(&mut e);
    assert_eq!(d1.rank, 3);
    e.reset();
    let d2 = die(&mut e);
    assert_eq!(d1, d2, "reset must re-arm the kill at the same sync point");

    // After a shrink the victim is gone for good: reset keeps it dead and
    // the workload completes on the survivors.
    e.shrink_after_death();
    e.reset();
    assert_eq!(e.p(), p - 1);
    let out = treesort_partition(
        &mut e,
        distribute_tree(&tree, p - 1),
        PartitionOptions::exact(),
    );
    assert_eq!(out.dist.total_len(), tree.len());
}

#[test]
#[should_panic(expected = "audit")]
fn audit_catches_a_lying_splitter_set() {
    // Negative control: a duplicated splitter (an empty-partition bug a
    // broken search could produce) must be refused loudly by the splitter
    // audit every exchange runs through.
    use optipart::core::partition::audit_splitters;
    let tree = MeshParams::normal(1_000, 88).build::<3>(Curve::Hilbert);
    let p = 4;
    let mut e = engine(p);
    let out = treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact());
    let mut bad = out.splitters.clone();
    bad[1] = bad[0]; // duplicate ⇒ partition 1 provably empty
    audit_splitters(&bad, tree.len(), p);
}
