//! Tier-1 acceptance of the optipart-serve front end: a 1000-request mixed
//! stream — repeats over 60 distinct scenarios, fail-stop kills and
//! deadline budgets laced in — served by a 4-worker pool, then verified
//! response-by-response against direct library calls (bit-identical
//! payloads, exact replay commands on sheds, self-consistent deadline
//! flags). This is the end-to-end contract DESIGN.md §15 promises.

use optipart::serve::chaos::{chaos_soak, ChaosKnobs};
use optipart::serve::soak::{mixed_stream, verify_responses, DirectCache};
use optipart::serve::{Admission, Request, ServeConfig, Server, Status};

/// The headline run: 1000 mixed requests at 4 workers — nothing sheds,
/// every payload is bit-identical to the library, rank deaths injected
/// mid-stream are absorbed, and the warm caches serve at least half the
/// requests without a cold ladder.
#[test]
fn thousand_request_stream_is_bit_identical_at_four_workers() {
    let reqs = mixed_stream(0x075E_127E, 1000, 60, 97, 41);
    assert_eq!(reqs.len(), 1000);
    let server = Server::start(ServeConfig {
        workers: 4,
        queue_cap: 1000,
        state_cap: 64,
        engine_cache: 8,
        batching: true,
        admission: Default::default(),
    });
    for r in &reqs {
        assert!(server.submit(r.clone()), "queue_cap 1000 must not shed");
    }
    let resps = server.drain(reqs.len());
    let stats = server.shutdown();

    let sum = verify_responses(&reqs, &resps).expect("stream verifies against the library");
    assert_eq!(sum.checked, 1000);
    assert_eq!(sum.shed, 0);
    assert_eq!(sum.served, 1000);
    assert!(
        stats.deaths > 0,
        "kill plans must exercise mid-stream recovery: {stats:?}"
    );
    assert!(
        stats.warm_request_rate() >= 0.5,
        "warm caches must absorb at least half the stream: rate {:.2} ({stats:?})",
        stats.warm_request_rate()
    );
}

/// The same stream through a deliberately starved server (1 worker, queue
/// capacity 8, paused so the burst hits full queues): sheds are reported —
/// never dropped — and everything that was accepted still verifies.
#[test]
fn overloaded_server_sheds_loudly_and_serves_the_rest_correctly() {
    let reqs = mixed_stream(0xBAC4_44E5, 120, 10, 0, 13);
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 8,
        state_cap: 16,
        engine_cache: 4,
        batching: true,
        admission: Default::default(),
    });
    server.pause();
    let accepted: usize = reqs.iter().filter(|r| server.submit((*r).clone())).count();
    server.release();
    let resps = server.drain(reqs.len());
    let stats = server.shutdown();

    assert_eq!(accepted, 8, "exactly queue_cap requests fit a paused queue");
    assert_eq!(stats.shed, (reqs.len() - accepted) as u64);
    let sum = verify_responses(&reqs, &resps).expect("sheds and serves both verify");
    assert_eq!(sum.shed, reqs.len() - accepted);
    assert_eq!(sum.served, accepted);
    for resp in resps.iter().filter(|r| r.status == Status::Shed) {
        let replay = resp.replay.as_deref().expect("shed carries replay");
        assert!(
            replay.contains("replay") && replay.contains("--seed"),
            "replay command must be runnable: {replay}"
        );
        let retry = resp.retry_after_s.expect("shed carries a retry hint");
        assert!(
            retry.is_finite() && retry > 0.0,
            "retry hint must be a usable backoff: {retry}"
        );
    }
}

/// Batching is an optimisation, never an observable: the same stream with
/// batching on and off produces bit-identical payload sets.
#[test]
fn batching_is_payload_invisible() {
    let reqs = mixed_stream(0xFA57_F00D, 80, 6, 0, 0);
    let run = |batching: bool| -> Vec<(u64, u64)> {
        let server = Server::start(ServeConfig {
            workers: 2,
            queue_cap: 128,
            state_cap: 16,
            engine_cache: 4,
            batching,
            admission: Default::default(),
        });
        server.pause();
        for r in &reqs {
            server.submit(r.clone());
        }
        server.release();
        let resps = server.drain(reqs.len());
        server.shutdown();
        let mut sigs: Vec<(u64, u64)> = resps
            .iter()
            .map(|r| (r.id, r.payload.as_ref().expect("served").sig))
            .collect();
        sigs.sort_unstable();
        sigs
    };
    assert_eq!(run(true), run(false));
}

/// The headline chaos soak (ISSUE acceptance): a 1000-request stream at 4
/// workers under a seeded storm — ≥10 worker panics armed, 5 clients
/// disconnecting mid-stream, 16 corrupted lines — and still: every
/// submitted request answered exactly once, every served payload
/// bit-identical to a direct library call, byte-identical transcripts
/// across two identically-seeded runs, and served payloads that agree
/// bit-for-bit with a 1-worker run of the same plan.
#[test]
fn thousand_request_chaos_soak_conserves_and_stays_deterministic() {
    let knobs = ChaosKnobs {
        panics: 14,
        max_pass: 3,
        disconnects: 5,
        clients: 8,
        corrupt: 16,
        stall_every: 0,
    };
    let cfg = ServeConfig {
        workers: 4,
        queue_cap: 1000,
        state_cap: 64,
        engine_cache: 8,
        batching: true,
        admission: Admission::DeadlineAware,
    };
    let seed = 0x0C4A_0508;
    let mut cache = DirectCache::new();
    let a = chaos_soak(seed, 1000, cfg, knobs, &mut cache).expect("chaos soak verifies");
    let b = chaos_soak(seed, 1000, cfg, knobs, &mut cache).expect("repeat verifies");
    assert_eq!(
        a.transcript, b.transcript,
        "same seed must reproduce the run byte-for-byte"
    );

    let s = &a.summary;
    assert!(s.panics >= 10, "must absorb ≥10 worker panics: {s:?}");
    assert!(s.failed > 0, "panicked passes must fail loudly: {s:?}");
    assert!(
        s.lost_to_disconnect >= 5,
        "disconnects must cost lines: {s:?}"
    );
    assert!(
        s.parse_errors > 0,
        "corruption must claim casualties: {s:?}"
    );
    assert!(s.served > 400, "the bulk of the stream still serves: {s:?}");
    assert_eq!(
        s.submitted,
        s.served + s.failed + s.shed + s.rejected,
        "conservation: every submitted request answered exactly once: {s:?}"
    );
    assert!(a.stats.conservation().is_ok());

    // Same plan at 1 worker: the client-side chaos is identical by
    // construction, so shared served ids must carry identical payloads.
    let solo = chaos_soak(
        seed,
        1000,
        ServeConfig { workers: 1, ..cfg },
        knobs,
        &mut cache,
    )
    .expect("1-worker run verifies");
    let mut common = 0usize;
    for (id, p) in &solo.served_payloads {
        if let Some(q) = a.served_payloads.get(id) {
            assert_eq!(p, q, "payload for id {id} must not depend on worker count");
            common += 1;
        }
    }
    assert!(
        common > 300,
        "the cross-width check must actually compare payloads: {common}"
    );
}

/// Wire-level spot check: a request rebuilt from its own JSON serves to
/// the same payload as the original (the protocol carries everything the
/// engine needs).
#[test]
fn wire_round_trip_preserves_served_payloads() {
    let reqs = mixed_stream(0x1234_5678, 12, 4, 6, 5);
    let rebuilt: Vec<Request> = reqs
        .iter()
        .map(|r| Request::from_json(&r.to_json()).expect("round trip"))
        .collect();
    for (a, b) in reqs.iter().zip(&rebuilt) {
        assert_eq!(a.key(), b.key());
        assert_eq!(
            optipart::serve::direct(&a.scn),
            optipart::serve::direct(&b.scn)
        );
    }
}
