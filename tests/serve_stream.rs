//! Tier-1 acceptance of the optipart-serve front end: a 1000-request mixed
//! stream — repeats over 60 distinct scenarios, fail-stop kills and
//! deadline budgets laced in — served by a 4-worker pool, then verified
//! response-by-response against direct library calls (bit-identical
//! payloads, exact replay commands on sheds, self-consistent deadline
//! flags). This is the end-to-end contract DESIGN.md §15 promises.

use optipart::serve::soak::{mixed_stream, verify_responses};
use optipart::serve::{Request, ServeConfig, Server, Status};

/// The headline run: 1000 mixed requests at 4 workers — nothing sheds,
/// every payload is bit-identical to the library, rank deaths injected
/// mid-stream are absorbed, and the warm caches serve at least half the
/// requests without a cold ladder.
#[test]
fn thousand_request_stream_is_bit_identical_at_four_workers() {
    let reqs = mixed_stream(0x075E_127E, 1000, 60, 97, 41);
    assert_eq!(reqs.len(), 1000);
    let server = Server::start(ServeConfig {
        workers: 4,
        queue_cap: 1000,
        state_cap: 64,
        engine_cache: 8,
        batching: true,
    });
    for r in &reqs {
        assert!(server.submit(r.clone()), "queue_cap 1000 must not shed");
    }
    let resps = server.drain(reqs.len());
    let stats = server.shutdown();

    let sum = verify_responses(&reqs, &resps).expect("stream verifies against the library");
    assert_eq!(sum.checked, 1000);
    assert_eq!(sum.shed, 0);
    assert_eq!(sum.served, 1000);
    assert!(
        stats.deaths > 0,
        "kill plans must exercise mid-stream recovery: {stats:?}"
    );
    assert!(
        stats.warm_request_rate() >= 0.5,
        "warm caches must absorb at least half the stream: rate {:.2} ({stats:?})",
        stats.warm_request_rate()
    );
}

/// The same stream through a deliberately starved server (1 worker, queue
/// capacity 8, paused so the burst hits full queues): sheds are reported —
/// never dropped — and everything that was accepted still verifies.
#[test]
fn overloaded_server_sheds_loudly_and_serves_the_rest_correctly() {
    let reqs = mixed_stream(0xBAC4_44E5, 120, 10, 0, 13);
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 8,
        state_cap: 16,
        engine_cache: 4,
        batching: true,
    });
    server.pause();
    let accepted: usize = reqs.iter().filter(|r| server.submit((*r).clone())).count();
    server.release();
    let resps = server.drain(reqs.len());
    let stats = server.shutdown();

    assert_eq!(accepted, 8, "exactly queue_cap requests fit a paused queue");
    assert_eq!(stats.shed, (reqs.len() - accepted) as u64);
    let sum = verify_responses(&reqs, &resps).expect("sheds and serves both verify");
    assert_eq!(sum.shed, reqs.len() - accepted);
    assert_eq!(sum.served, accepted);
    for resp in resps.iter().filter(|r| r.status == Status::Shed) {
        let replay = resp.replay.as_deref().expect("shed carries replay");
        assert!(
            replay.contains("replay") && replay.contains("--seed"),
            "replay command must be runnable: {replay}"
        );
    }
}

/// Batching is an optimisation, never an observable: the same stream with
/// batching on and off produces bit-identical payload sets.
#[test]
fn batching_is_payload_invisible() {
    let reqs = mixed_stream(0xFA57_F00D, 80, 6, 0, 0);
    let run = |batching: bool| -> Vec<(u64, u64)> {
        let server = Server::start(ServeConfig {
            workers: 2,
            queue_cap: 128,
            state_cap: 16,
            engine_cache: 4,
            batching,
        });
        server.pause();
        for r in &reqs {
            server.submit(r.clone());
        }
        server.release();
        let resps = server.drain(reqs.len());
        server.shutdown();
        let mut sigs: Vec<(u64, u64)> = resps
            .iter()
            .map(|r| (r.id, r.payload.as_ref().expect("served").sig))
            .collect();
        sigs.sort_unstable();
        sigs
    };
    assert_eq!(run(true), run(false));
}

/// Wire-level spot check: a request rebuilt from its own JSON serves to
/// the same payload as the original (the protocol carries everything the
/// engine needs).
#[test]
fn wire_round_trip_preserves_served_payloads() {
    let reqs = mixed_stream(0x1234_5678, 12, 4, 6, 5);
    let rebuilt: Vec<Request> = reqs
        .iter()
        .map(|r| Request::from_json(&r.to_json()).expect("round trip"))
        .collect();
    for (a, b) in reqs.iter().zip(&rebuilt) {
        assert_eq!(a.key(), b.key());
        assert_eq!(
            optipart::serve::direct(&a.scn),
            optipart::serve::direct(&b.scn)
        );
    }
}
