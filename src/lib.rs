//! # optipart — machine- and application-aware AMR partitioning
//!
//! Facade crate of the OptiPart workspace, a Rust reproduction of
//! Fernando, Duplyakin & Sundar, *Machine and Application Aware Partitioning
//! for Adaptive Mesh Refinement Applications* (HPDC 2017). See README.md for
//! the architecture overview, DESIGN.md for the system inventory and
//! substitutions, and EXPERIMENTS.md for the reproduced evaluation.
//!
//! ## Module map
//!
//! * [`sfc`] — space-filling curves (Morton, Hilbert), octree cells, keys.
//! * [`octree`] — linear octrees: construction, completion, 2:1 balance,
//!   neighbours, random AMR mesh generators.
//! * [`mpisim`] — the virtual-process BSP engine (cost-modeled collectives)
//!   and the real-threads runtime used for cross-validation.
//! * [`machine`] — machine models (Titan, Stampede, CloudLab), the Eq. (3)
//!   performance model, power/energy simulation.
//! * [`core`] — the paper's algorithms: TreeSort, flexible-tolerance
//!   partitioning, PartitionQuality, OptiPart, SampleSort and histogram-sort
//!   baselines, partition metrics.
//! * [`fem`] — the test application: distributed octree mesh, ghost
//!   exchange, Laplacian matvec, CG solver, AMR time-stepping driver.
//! * [`trace`] — deterministic structured tracing over the virtual BSP
//!   clock: Chrome-trace export, critical-path extraction, Eq. (3) model
//!   attribution.
//! * [`scenario`] — the seeded scenario model shared by the testkit, the
//!   server protocol and the benchmarks: mesh shapes, element families
//!   (hex/tet/prism/hybrid), machine hierarchies and time-varying
//!   workloads, all derived deterministically from one `u64`.
//! * [`serve`] — partition-as-a-service front end: fingerprint-sharded
//!   warm-state worker pool, request batching, bounded-queue backpressure,
//!   fault-soak verification (the `optipart-serve` binary).
//!
//! ## Minimal example
//!
//! ```
//! use optipart::core::optipart::{optipart, OptiPartOptions};
//! use optipart::core::partition::distribute_tree;
//! use optipart::machine::{AppModel, MachineModel, PerfModel};
//! use optipart::mpisim::Engine;
//! use optipart::octree::MeshParams;
//! use optipart::sfc::Curve;
//!
//! let tree = MeshParams::normal(2_000, 42).build::<3>(Curve::Hilbert);
//! let perf = PerfModel::new(MachineModel::cloudlab_wisconsin(),
//!                           AppModel::laplacian_matvec());
//! let mut engine = Engine::new(16, perf);
//! let out = optipart(&mut engine, distribute_tree(&tree, 16),
//!                    OptiPartOptions::default());
//! assert_eq!(out.dist.total_len(), tree.len());
//! assert!(out.report.lambda >= 1.0);
//! ```

pub use optipart_core as core;
pub use optipart_fem as fem;
pub use optipart_machine as machine;
pub use optipart_mpisim as mpisim;
pub use optipart_octree as octree;
pub use optipart_scenario as scenario;
pub use optipart_serve as serve;
pub use optipart_sfc as sfc;
pub use optipart_trace as trace;
