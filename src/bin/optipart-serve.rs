//! `optipart-serve` — the partition-as-a-service front end as a process.
//!
//! ```text
//! # Serve newline-delimited JSON requests from stdin, responses to stdout:
//! optipart-serve gen --requests 200 --seed 7 | optipart-serve serve --workers 4
//!
//! # Same, but cross-check every response against a direct library call:
//! optipart-serve gen --requests 200 | optipart-serve serve --verify
//!
//! # Serve over a Unix socket (one client at a time, same line protocol):
//! optipart-serve serve --socket /tmp/optipart.sock &
//! optipart-serve gen --requests 50 | nc -U /tmp/optipart.sock
//!
//! # Fault-soak mode: a generated stream laced with fail-stop kills and
//! # deadlines, every response verified bit-identical to the library:
//! optipart-serve soak --requests 500 --workers 4
//! ```
//!
//! A request line is flat JSON with a required `seed`; every other field
//! overrides the scenario that seed expands to (replay semantics — see
//! DESIGN.md §15):
//!
//! ```text
//! {"id":12,"seed":914776577726420758,"p":6,"tolerance":0.25,"deadline_s":0.5}
//! ```
//!
//! Responses mirror the request id and add the partition payload plus
//! service metadata (worker, warm path, batch size, virtual/wall latency).
//! Malformed request lines get an `{"error":...}` line and do not kill the
//! stream. Exit status is non-zero if any request was shed, any line was
//! malformed, or `--verify` found a payload mismatch.

use optipart::serve::soak::{fault_soak, mixed_stream, verify_responses};
use optipart::serve::{Request, ServeConfig, Server};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage("missing subcommand");
    };
    let f = parse_flags(rest);
    match cmd.as_str() {
        "serve" => cmd_serve(&f),
        "gen" => cmd_gen(&f),
        "soak" => cmd_soak(&f),
        "-h" | "--help" => usage(""),
        other => usage(&format!("unknown subcommand '{other}'")),
    }
}

fn config(f: &Flags) -> ServeConfig {
    let d = ServeConfig::default();
    ServeConfig {
        workers: f.parse("workers", d.workers),
        queue_cap: f.parse("queue-cap", d.queue_cap),
        state_cap: f.parse("state-cap", d.state_cap),
        engine_cache: f.parse("engine-cache", d.engine_cache),
        batching: !f.has("no-batching"),
    }
}

/// Streams one connection: requests in from `input`, responses out to
/// `output` as they become ready (arrival order, not submit order).
/// Returns `(requests, responses, malformed_lines)`.
fn pump(
    server: &Server,
    input: impl BufRead,
    mut output: impl Write,
    collect: bool,
) -> (Vec<Request>, Vec<Response>, usize) {
    let mut reqs = Vec::new();
    let mut resps = Vec::new();
    let mut submitted = 0usize;
    let mut received = 0usize;
    let mut malformed = 0usize;
    let put = |r: Response, out: &mut dyn Write, resps: &mut Vec<Response>| {
        let _ = writeln!(out, "{}", r.to_json());
        if collect {
            resps.push(r);
        }
    };
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match Request::from_json(&line) {
            Ok(req) => {
                if collect {
                    reqs.push(req.clone());
                }
                server.submit(req);
                submitted += 1;
            }
            Err(e) => {
                malformed += 1;
                let _ = writeln!(output, "{{\"error\":{}}}", json_err(&e));
            }
        }
        // Forward whatever is already done so the stream stays live.
        while let Some(r) = server.try_recv() {
            received += 1;
            put(r, &mut output, &mut resps);
        }
        let _ = output.flush();
    }
    while received < submitted {
        let r = server.recv();
        received += 1;
        put(r, &mut output, &mut resps);
    }
    let _ = output.flush();
    (reqs, resps, malformed)
}

type Response = optipart::serve::Response;

fn json_err(e: &str) -> String {
    let mut s = String::with_capacity(e.len() + 2);
    s.push('"');
    for c in e.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

fn cmd_serve(f: &Flags) {
    let cfg = config(f);
    let verify = f.has("verify");
    let server = Server::start(cfg);

    let (reqs, resps, malformed) = match f.get("socket") {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            pump(&server, stdin.lock(), BufWriter::new(stdout.lock()), verify)
        }
        Some(path) => serve_socket(&server, path, verify),
    };

    let stats = server.shutdown();
    eprintln!(
        "served {} requests: {} shed, {} engine passes ({} hits, {} replays, \
         {} cold), {} batched riders, {} rank deaths absorbed, warm-request \
         rate {:.2}",
        stats.completed + stats.shed,
        stats.shed,
        stats.engine_passes,
        stats.hit_passes,
        stats.replay_passes,
        stats.cold_passes,
        stats.batched_extra,
        stats.deaths,
        stats.warm_request_rate(),
    );
    if malformed > 0 {
        eprintln!("error: {malformed} malformed request line(s)");
    }
    let mut failed = malformed > 0 || stats.shed > 0;
    if verify {
        match verify_responses(&reqs, &resps) {
            Ok(sum) => eprintln!(
                "verify: {} responses bit-identical to direct library calls \
                 ({} distinct scenarios, {} past deadline)",
                sum.served, sum.distinct, sum.deadline,
            ),
            Err(e) => {
                eprintln!("verify FAILED: {e}");
                failed = true;
            }
        }
    }
    exit(if failed { 1 } else { 0 });
}

/// Accepts clients one at a time on a Unix socket, each speaking the same
/// line protocol as stdin mode. Stops after `--accept N` clients
/// (default 1, so tests and scripts terminate deterministically).
fn serve_socket(
    server: &Server,
    path: &str,
    collect: bool,
) -> (Vec<Request>, Vec<Response>, usize) {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).unwrap_or_else(|e| usage(&format!("--socket {path}: {e}")));
    eprintln!("listening on {path}");
    let accept: usize = std::env::args()
        .skip_while(|a| a != "--accept")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut all = (Vec::new(), Vec::new(), 0usize);
    for _ in 0..accept {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        let reader = BufReader::new(stream.try_clone().expect("clone socket stream"));
        let (mut rq, mut rs, m) = pump(server, reader, BufWriter::new(stream), collect);
        all.0.append(&mut rq);
        all.1.append(&mut rs);
        all.2 += m;
    }
    let _ = std::fs::remove_file(path);
    all
}

fn cmd_gen(f: &Flags) {
    let requests: usize = f.parse("requests", 100);
    let seed: u64 = f.parse("seed", 42);
    let distinct: usize = f.parse("distinct", (requests / 8).clamp(1, 48));
    let kill_every: usize = f.parse("kill-every", 0);
    let deadline_every: usize = f.parse("deadline-every", 0);
    let reqs = mixed_stream(seed, requests, distinct, kill_every, deadline_every);
    let mut out: Box<dyn Write> = match f.get("out") {
        None => Box::new(BufWriter::new(std::io::stdout())),
        Some(p) => Box::new(BufWriter::new(
            std::fs::File::create(p).unwrap_or_else(|e| usage(&format!("{p}: {e}"))),
        )),
    };
    for r in &reqs {
        writeln!(out, "{}", r.to_json()).expect("writable output");
    }
    out.flush().expect("writable output");
    eprintln!(
        "generated {requests} requests over {distinct} distinct scenarios \
         (seed {seed}, kill-every {kill_every}, deadline-every {deadline_every})"
    );
}

fn cmd_soak(f: &Flags) {
    let requests: usize = f.parse("requests", 200);
    let seed: u64 = f.parse("seed", 20260808);
    let cfg = config(f);
    eprintln!(
        "fault-soak: {requests} requests, {} workers, batching {}",
        cfg.workers,
        if cfg.batching { "on" } else { "off" },
    );
    match fault_soak(seed, requests, cfg) {
        Ok((sum, stats)) => {
            eprintln!(
                "soak OK: {} served + {} shed, all bit-identical to the \
                 library ({} distinct scenarios, {} past deadline, {} rank \
                 deaths absorbed, warm-request rate {:.2})",
                sum.served,
                sum.shed,
                sum.distinct,
                sum.deadline,
                stats.deaths,
                stats.warm_request_rate(),
            );
        }
        Err(e) => {
            eprintln!("soak FAILED: {e}");
            exit(1);
        }
    }
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad value for --{key}"))),
        }
    }
    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

fn parse_flags(args: &[String]) -> Flags {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = match a.as_str() {
            s if s.starts_with("--") => s[2..].to_string(),
            other => usage(&format!("unexpected argument '{other}'")),
        };
        if matches!(key.as_str(), "no-batching" | "verify") {
            out.push((key, "true".into()));
        } else {
            let v = it
                .next()
                .unwrap_or_else(|| usage(&format!("--{key} needs a value")));
            out.push((key, v.clone()));
        }
    }
    Flags(out)
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage:\n  optipart-serve serve [--workers N] [--queue-cap N] [--state-cap K] \
         [--engine-cache N] [--no-batching] [--socket PATH [--accept N]] [--verify]\n  \
         optipart-serve gen --requests N [--seed S] [--distinct D] \
         [--kill-every K] [--deadline-every K] [--out FILE]\n  \
         optipart-serve soak [--requests N] [--seed S] [--workers N] \
         [--queue-cap N] [--state-cap K] [--no-batching]\n\n\
         requests are one flat-JSON object per line; `seed` is required and \
         every other field overrides the scenario it expands to:\n  \
         {{\"id\":1,\"seed\":7,\"p\":8,\"tolerance\":0.3,\"deadline_s\":0.5}}"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}
