//! `optipart-serve` — the partition-as-a-service front end as a process.
//!
//! ```text
//! # Serve newline-delimited JSON requests from stdin, responses to stdout:
//! optipart-serve gen --requests 200 --seed 7 | optipart-serve serve --workers 4
//!
//! # Same, but cross-check every response against a direct library call:
//! optipart-serve gen --requests 200 | optipart-serve serve --verify
//!
//! # Serve over a Unix socket: --accept N concurrent clients, one thread
//! # each, all sharing the worker pool (the server exits after the N-th
//! # connection drains, so scripts terminate deterministically):
//! optipart-serve serve --socket /tmp/optipart.sock --accept 3 --workers 4 &
//! optipart-serve gen --requests 50 | optipart-serve client --socket /tmp/optipart.sock
//!
//! # Fault-soak mode: a generated stream laced with fail-stop kills and
//! # deadlines, every response verified bit-identical to the library:
//! optipart-serve soak --requests 500 --workers 4
//!
//! # Chaos soak: seeded worker panics, client disconnects, corrupted lines
//! # and slow readers — conservation, determinism and bit-identity checked:
//! optipart-serve chaos --requests 1000 --seed 20260808 --workers 4
//! ```
//!
//! A request line is flat JSON with a required `seed`; every other field
//! overrides the scenario that seed expands to (replay semantics — see
//! DESIGN.md §15):
//!
//! ```text
//! {"id":12,"seed":914776577726420758,"p":6,"tolerance":0.25,"deadline_s":0.5}
//! ```
//!
//! Responses mirror the request id and add the partition payload plus
//! service metadata (worker, warm path, batch size, virtual/wall latency,
//! retry hints on shed/rejected, the panic summary on failed). Malformed,
//! non-UTF-8 and oversized request lines get an `{"error":...}` line and
//! poison only their own connection's exit status, never the stream. Exit
//! status is non-zero if any line was malformed or oversized, any request
//! failed on a worker panic, any request was shed or rejected (unless
//! `--allow-shed`), or `--verify` found a payload mismatch.

use optipart::serve::chaos::{chaos_soak, chaos_stream, client_scripts, ChaosKnobs, ChaosPlan};
use optipart::serve::soak::{fault_soak, mixed_stream, verify_responses_with, DirectCache};
use optipart::serve::{Admission, ConnStats, Ingress, Request, Response, ServeConfig, Server};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::exit;
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

/// Byte cap on one request line (`--max-line`): past it the rest of the
/// line is swallowed, the client gets an error line, and the connection
/// keeps serving.
const DEFAULT_MAX_LINE: usize = 64 * 1024;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage("missing subcommand");
    };
    let f = parse_flags(rest);
    match cmd.as_str() {
        "serve" => cmd_serve(&f),
        "gen" => cmd_gen(&f),
        "soak" => cmd_soak(&f),
        "chaos" => cmd_chaos(&f),
        "client" => cmd_client(&f),
        "-h" | "--help" => usage(""),
        other => usage(&format!("unknown subcommand '{other}'")),
    }
}

fn config(f: &Flags) -> ServeConfig {
    let d = ServeConfig::default();
    let admission = match f.get("admission") {
        None => d.admission,
        Some("shed") => Admission::ShedOnly,
        Some("deadline") => Admission::DeadlineAware,
        Some(other) => usage(&format!("bad --admission '{other}' (want shed|deadline)")),
    };
    ServeConfig {
        workers: f.parse("workers", d.workers),
        queue_cap: f.parse("queue-cap", d.queue_cap),
        state_cap: f.parse("state-cap", d.state_cap),
        engine_cache: f.parse("engine-cache", d.engine_cache),
        batching: !f.has("no-batching"),
        admission,
    }
}

/// Everything one drained connection produced: the requests it submitted
/// and responses it saw (only when verifying) plus its line counters.
#[derive(Default)]
struct Conn {
    reqs: Vec<Request>,
    resps: Vec<Response>,
    stats: ConnStats,
}

/// One `read_line_capped` outcome.
enum LineRead {
    /// A complete line (newline stripped) is in the buffer.
    Line,
    /// The line blew past the byte cap; its remainder was swallowed up to
    /// the next newline.
    Oversized,
    /// Clean EOF on a line boundary.
    Eof,
    /// EOF in the middle of a line — the client vanished mid-write.
    MidLineEof,
    Err(std::io::Error),
}

/// Reads one newline-terminated line into `buf`, never buffering more than
/// `cap` bytes of it — the guard that keeps one hostile client from
/// ballooning the server's memory.
fn read_line_capped(input: &mut impl BufRead, buf: &mut Vec<u8>, cap: usize) -> LineRead {
    buf.clear();
    loop {
        let chunk = match input.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return LineRead::Err(e),
        };
        if chunk.is_empty() {
            return if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::MidLineEof
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let oversized = buf.len() + pos > cap;
                if !oversized {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                input.consume(pos + 1);
                return if oversized {
                    LineRead::Oversized
                } else {
                    LineRead::Line
                };
            }
            None => {
                let take = chunk.len();
                if buf.len() + take > cap {
                    input.consume(take);
                    return swallow_to_newline(input);
                }
                buf.extend_from_slice(chunk);
                input.consume(take);
            }
        }
    }
}

/// Discards bytes up to and including the next newline. A disconnect
/// before the newline wins over the oversize verdict: the client is gone.
fn swallow_to_newline(input: &mut impl BufRead) -> LineRead {
    loop {
        let chunk = match input.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return LineRead::Err(e),
        };
        if chunk.is_empty() {
            return LineRead::MidLineEof;
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                input.consume(pos + 1);
                return LineRead::Oversized;
            }
            None => {
                let n = chunk.len();
                input.consume(n);
            }
        }
    }
}

fn forward<W: Write>(r: Response, out: &mut W, write_ok: &mut bool, conn: &mut Conn, keep: bool) {
    if *write_ok && writeln!(out, "{}", r.to_json()).is_err() {
        // The client stopped reading; keep draining for conservation but
        // stop writing.
        *write_ok = false;
        conn.stats.io_errors += 1;
    }
    conn.stats.responses += 1;
    if keep {
        conn.resps.push(r);
    }
}

/// Streams one connection: requests in from `input`, responses out to
/// `output` as they become ready (arrival order, not submit order). Every
/// submitted request is answered before this returns — even when the
/// client disconnected mid-stream, so the server-wide conservation
/// invariant holds connection by connection.
fn pump(
    ingress: &Ingress,
    mut input: impl BufRead,
    mut output: impl Write,
    collect: bool,
    max_line: usize,
) -> Conn {
    let (tx, rx) = channel::<Response>();
    let mut conn = Conn::default();
    let mut submitted = 0usize;
    let mut received = 0usize;
    let mut write_ok = true;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match read_line_capped(&mut input, &mut buf, max_line) {
            LineRead::Eof => break,
            LineRead::MidLineEof => {
                conn.stats.mid_line_eof = true;
                break;
            }
            LineRead::Err(e) => {
                eprintln!("connection read error: {e}");
                conn.stats.io_errors += 1;
                break;
            }
            LineRead::Oversized => {
                conn.stats.lines += 1;
                conn.stats.oversized += 1;
                if write_ok
                    && writeln!(
                        output,
                        "{{\"error\":\"request line exceeds {max_line} bytes\"}}"
                    )
                    .is_err()
                {
                    write_ok = false;
                    conn.stats.io_errors += 1;
                }
            }
            LineRead::Line => match std::str::from_utf8(&buf) {
                Err(_) => {
                    conn.stats.lines += 1;
                    conn.stats.malformed += 1;
                    if write_ok
                        && writeln!(output, "{{\"error\":\"request line is not valid UTF-8\"}}")
                            .is_err()
                    {
                        write_ok = false;
                        conn.stats.io_errors += 1;
                    }
                }
                Ok(text) => {
                    let text = text.trim();
                    if text.is_empty() {
                        continue;
                    }
                    conn.stats.lines += 1;
                    match Request::from_json(text) {
                        Ok(req) => {
                            if collect {
                                conn.reqs.push(req.clone());
                            }
                            ingress.submit_with(req, &tx);
                            submitted += 1;
                        }
                        Err(e) => {
                            conn.stats.malformed += 1;
                            if write_ok
                                && writeln!(output, "{{\"error\":{}}}", json_err(&e)).is_err()
                            {
                                write_ok = false;
                                conn.stats.io_errors += 1;
                            }
                        }
                    }
                }
            },
        }
        // Forward whatever is already done so the stream stays live.
        while let Ok(r) = rx.try_recv() {
            received += 1;
            forward(r, &mut output, &mut write_ok, &mut conn, collect);
        }
        if write_ok {
            let _ = output.flush();
        }
    }
    // Conservation drain: answer everything this connection submitted.
    while received < submitted {
        match rx.recv() {
            Ok(r) => {
                received += 1;
                forward(r, &mut output, &mut write_ok, &mut conn, collect);
            }
            // Workers gone — shutdown's conservation check will report it.
            Err(_) => break,
        }
    }
    if write_ok {
        let _ = output.flush();
    }
    conn.stats.submitted = submitted as u64;
    conn
}

fn json_err(e: &str) -> String {
    let mut s = String::with_capacity(e.len() + 2);
    s.push('"');
    for c in e.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

fn cmd_serve(f: &Flags) {
    let cfg = config(f);
    let verify = f.has("verify");
    let allow_shed = f.has("allow-shed");
    let max_line: usize = f.parse("max-line", DEFAULT_MAX_LINE);
    let server = Server::start(cfg);
    let ingress = server.ingress();

    let conns: Vec<Conn> = match f.get("socket") {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            vec![pump(
                &ingress,
                stdin.lock(),
                BufWriter::new(stdout.lock()),
                verify,
                max_line,
            )]
        }
        Some(path) => serve_socket(&ingress, path, f.parse("accept", 1), verify, max_line),
    };

    for c in &conns {
        ingress.fold_connection(&c.stats);
    }
    let stats = server.shutdown();
    eprintln!(
        "served {} requests over {} connection(s): {} shed, {} rejected, \
         {} failed, {} engine passes ({} hits, {} replays, {} cold), \
         {} batched riders, {} rank deaths absorbed, {} worker panic(s), \
         warm-request rate {:.2}",
        stats.submitted,
        stats.connections,
        stats.shed,
        stats.rejected,
        stats.failed,
        stats.engine_passes,
        stats.hit_passes,
        stats.replay_passes,
        stats.cold_passes,
        stats.batched_extra,
        stats.deaths,
        stats.panics,
        stats.warm_request_rate(),
    );

    let mut failed = false;
    let bad_lines = stats.malformed_lines + stats.oversized_lines;
    if bad_lines > 0 {
        eprintln!(
            "error: {} malformed and {} oversized request line(s)",
            stats.malformed_lines, stats.oversized_lines
        );
        failed = true;
    }
    if stats.failed > 0 {
        failed = true;
    }
    if stats.shed + stats.rejected > 0 && !allow_shed {
        eprintln!(
            "error: {} request(s) shed/rejected (pass --allow-shed to tolerate backpressure)",
            stats.shed + stats.rejected
        );
        failed = true;
    }
    for (i, c) in conns.iter().enumerate() {
        if c.stats.responses != c.stats.submitted {
            eprintln!(
                "conservation FAILED: connection {i} saw {} responses for {} submitted requests",
                c.stats.responses, c.stats.submitted
            );
            failed = true;
        }
    }
    if verify {
        let mut cache = DirectCache::new();
        let (mut served, mut away, mut deadline) = (0usize, 0usize, 0usize);
        let mut ok = true;
        for (i, c) in conns.iter().enumerate() {
            match verify_responses_with(&c.reqs, &c.resps, &mut cache) {
                Ok(sum) => {
                    served += sum.served;
                    away += sum.shed + sum.rejected + sum.failed;
                    deadline += sum.deadline;
                }
                Err(e) => {
                    eprintln!("verify FAILED (connection {i}): {e}");
                    ok = false;
                }
            }
        }
        if ok {
            eprintln!(
                "verify: {served} responses bit-identical to direct library calls \
                 ({} distinct scenarios, {deadline} past deadline, {away} answered \
                 without a payload)",
                cache.len(),
            );
        } else {
            failed = true;
        }
    }
    exit(if failed { 1 } else { 0 });
}

/// Accepts `accept` clients on a Unix socket, each drained by its own
/// thread against the shared worker pool, then joins them all (graceful
/// drain: in-flight requests are answered before shutdown).
fn serve_socket(
    ingress: &Ingress,
    path: &str,
    accept: usize,
    collect: bool,
    max_line: usize,
) -> Vec<Conn> {
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).unwrap_or_else(|e| usage(&format!("--socket {path}: {e}")));
    eprintln!("listening on {path} ({accept} connection(s))");
    let mut handles = Vec::new();
    for cid in 0..accept {
        match listener.accept() {
            Ok((stream, _)) => {
                let ing = ingress.clone();
                let h = std::thread::Builder::new()
                    .name(format!("optipart-conn-{cid}"))
                    .spawn(move || handle_conn(ing, stream, collect, max_line))
                    .expect("spawn connection thread");
                handles.push(h);
            }
            Err(e) => {
                eprintln!("accept failed: {e}; stopping accept loop");
                break;
            }
        }
    }
    let conns = handles
        .into_iter()
        .map(|h| {
            h.join().unwrap_or_else(|_| {
                // A panicked connection thread costs that connection, not
                // the server.
                let mut c = Conn::default();
                c.stats.io_errors += 1;
                c
            })
        })
        .collect();
    let _ = std::fs::remove_file(path);
    conns
}

fn handle_conn(ingress: Ingress, stream: UnixStream, collect: bool, max_line: usize) -> Conn {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(e) => {
            // One bad accept must not kill the server: log, count, move on.
            eprintln!("connection setup failed: {e}");
            let mut c = Conn::default();
            c.stats.io_errors += 1;
            return c;
        }
    };
    pump(&ingress, reader, BufWriter::new(stream), collect, max_line)
}

fn connect_retry(path: &str, wait_ms: u64) -> Result<UnixStream, String> {
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("connect {path}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Streams a request file (or stdin) to a serving socket and echoes the
/// responses to stdout. Exits 0 iff one response line came back per
/// request line sent — the shape CI's concurrent-client step asserts.
fn cmd_client(f: &Flags) {
    let Some(path) = f.get("socket") else {
        usage("client needs --socket PATH");
    };
    let quiet = f.has("quiet");
    let stream =
        connect_retry(path, f.parse("connect-wait-ms", 5000)).unwrap_or_else(|e| usage(&e));
    let reader = stream
        .try_clone()
        .unwrap_or_else(|e| usage(&format!("clone socket: {e}")));
    let rd = std::thread::spawn(move || {
        let mut got = 0u64;
        let stdout = std::io::stdout();
        let mut out = BufWriter::new(stdout.lock());
        for line in BufReader::new(reader).lines() {
            let Ok(line) = line else { break };
            got += 1;
            if !quiet {
                let _ = writeln!(out, "{line}");
            }
        }
        let _ = out.flush();
        got
    });
    let input: Box<dyn BufRead> = match f.get("in") {
        None => Box::new(BufReader::new(std::io::stdin())),
        Some(p) => Box::new(BufReader::new(
            std::fs::File::open(p).unwrap_or_else(|e| usage(&format!("{p}: {e}"))),
        )),
    };
    let mut sent = 0u64;
    {
        let mut w = BufWriter::new(&stream);
        for line in input.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if writeln!(w, "{line}").is_err() {
                break;
            }
            sent += 1;
        }
        let _ = w.flush();
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let got = rd.join().unwrap_or(0);
    eprintln!("client: sent {sent} request line(s), received {got} response line(s)");
    exit(if sent > 0 && got == sent { 0 } else { 1 });
}

fn cmd_gen(f: &Flags) {
    let requests: usize = f.parse("requests", 100);
    let seed: u64 = f.parse("seed", 42);
    let distinct: usize = f.parse("distinct", (requests / 8).clamp(1, 48));
    let kill_every: usize = f.parse("kill-every", 0);
    let deadline_every: usize = f.parse("deadline-every", 0);
    let reqs = mixed_stream(seed, requests, distinct, kill_every, deadline_every);
    let mut out: Box<dyn Write> = match f.get("out") {
        None => Box::new(BufWriter::new(std::io::stdout())),
        Some(p) => Box::new(BufWriter::new(
            std::fs::File::create(p).unwrap_or_else(|e| usage(&format!("{p}: {e}"))),
        )),
    };
    for r in &reqs {
        writeln!(out, "{}", r.to_json()).expect("writable output");
    }
    out.flush().expect("writable output");
    eprintln!(
        "generated {requests} requests over {distinct} distinct scenarios \
         (seed {seed}, kill-every {kill_every}, deadline-every {deadline_every})"
    );
}

fn cmd_soak(f: &Flags) {
    let requests: usize = f.parse("requests", 200);
    let seed: u64 = f.parse("seed", 20260808);
    let cfg = config(f);
    eprintln!(
        "fault-soak: {requests} requests, {} workers, batching {}",
        cfg.workers,
        if cfg.batching { "on" } else { "off" },
    );
    match fault_soak(seed, requests, cfg) {
        Ok((sum, stats)) => {
            eprintln!(
                "soak OK: {} served + {} shed, all bit-identical to the \
                 library ({} distinct scenarios, {} past deadline, {} rank \
                 deaths absorbed, warm-request rate {:.2})",
                sum.served,
                sum.shed,
                sum.distinct,
                sum.deadline,
                stats.deaths,
                stats.warm_request_rate(),
            );
        }
        Err(e) => {
            eprintln!("soak FAILED: {e}");
            exit(1);
        }
    }
}

fn chaos_fail(repro: &str, msg: &str) -> ! {
    let text = format!("chaos soak FAILED\n  {msg}\n  replay: {repro}\n");
    eprint!("{text}");
    let _ = std::fs::create_dir_all("target");
    let _ = std::fs::write("target/serve-chaos-repro.txt", &text);
    exit(1);
}

/// The chaos subcommand, two phases:
///
/// 1. **Deterministic core** — [`chaos_soak`] run twice at the configured
///    worker count (transcripts must be byte-identical) and once at 1
///    worker (served payloads for common ids must match bit-for-bit; the
///    plan's client-side chaos is worker-count-independent by
///    construction, so the intersection is large).
/// 2. **Socket phase** — the same plan driven over a real Unix socket:
///    one OS thread per scripted client, disconnecting clients vanish
///    mid-line, slow readers stall; conservation and bit-identity are
///    asserted on whatever nondeterministic interleaving happens.
fn cmd_chaos(f: &Flags) {
    let requests: usize = f.parse("requests", 1000);
    let seed: u64 = f.parse("seed", 20260808);
    let mut cfg = config(f);
    if f.get("queue-cap").is_none() {
        // Deep enough that the paused burst mostly queues, shallow enough
        // that backpressure still fires.
        cfg.queue_cap = (requests / 3).max(8);
    }
    if f.get("admission").is_none() {
        cfg.admission = Admission::DeadlineAware;
    }
    let knobs = ChaosKnobs {
        panics: f.parse("panics", ChaosKnobs::default().panics),
        disconnects: f.parse("disconnects", ChaosKnobs::default().disconnects),
        clients: f.parse("clients", ChaosKnobs::default().clients),
        corrupt: f.parse("corrupt", ChaosKnobs::default().corrupt),
        stall_every: f.parse("stall-every", 7),
        ..ChaosKnobs::default()
    };
    let repro = format!(
        "optipart-serve chaos --requests {requests} --seed {seed} --workers {}",
        cfg.workers
    );
    eprintln!(
        "chaos: {requests} requests, {} workers, targeting {} panics / \
         {} disconnecting clients of {} / {} corrupted lines (seed {seed})",
        cfg.workers, knobs.panics, knobs.disconnects, knobs.clients, knobs.corrupt
    );

    let mut cache = DirectCache::new();
    let a = chaos_soak(seed, requests, cfg, knobs, &mut cache)
        .unwrap_or_else(|e| chaos_fail(&repro, &e));
    let b = chaos_soak(seed, requests, cfg, knobs, &mut cache)
        .unwrap_or_else(|e| chaos_fail(&repro, &e));
    if a.transcript != b.transcript {
        chaos_fail(
            &repro,
            "transcripts differ between two identically-seeded runs",
        );
    }
    eprintln!(
        "  determinism: two seeded runs byte-identical ({} transcript bytes)",
        a.transcript.len()
    );
    if cfg.workers != 1 {
        let solo_cfg = ServeConfig { workers: 1, ..cfg };
        let solo = chaos_soak(seed, requests, solo_cfg, knobs, &mut cache)
            .unwrap_or_else(|e| chaos_fail(&repro, &e));
        let mut common = 0usize;
        for (id, p) in &solo.served_payloads {
            if let Some(q) = a.served_payloads.get(id) {
                common += 1;
                if p != q {
                    chaos_fail(
                        &repro,
                        &format!(
                            "served payload for id {id} differs between 1 and {} workers",
                            cfg.workers
                        ),
                    );
                }
            }
        }
        eprintln!(
            "  cross-width: {common} served ids common to 1 and {} workers, all bit-identical",
            cfg.workers
        );
    }
    let s = &a.summary;
    eprintln!(
        "  outcome: {} submitted ({} lost to disconnects, {} parse casualties) \
         -> {} served, {} failed on {} worker panic(s), {} shed, {} rejected, \
         {} rank deaths absorbed",
        s.submitted,
        s.lost_to_disconnect,
        s.parse_errors,
        s.served,
        s.failed,
        s.panics,
        s.shed,
        s.rejected,
        s.deaths,
    );

    if !f.has("no-socket") {
        socket_chaos(seed, requests, cfg, knobs, &mut cache)
            .unwrap_or_else(|e| chaos_fail(&repro, &e));
    }
    eprintln!("chaos OK");
}

/// Phase 2 of the chaos subcommand: the plan's client scripts written over
/// a real Unix socket by concurrent OS threads.
fn socket_chaos(
    seed: u64,
    requests: usize,
    cfg: ServeConfig,
    knobs: ChaosKnobs,
    cache: &mut DirectCache,
) -> Result<(), String> {
    let reqs = chaos_stream(seed, requests);
    let plan = ChaosPlan::generate(seed, requests, cfg.workers, &knobs);
    let scripts = client_scripts(seed, &reqs, &plan, knobs.clients);
    let clients = scripts.len();
    let stall_every = knobs.stall_every;
    let path = format!("/tmp/optipart-chaos-{}.sock", std::process::id());

    let server = Server::start_chaos(cfg, plan.panics.clone());
    let ingress = server.ingress();
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).map_err(|e| format!("bind {path}: {e}"))?;

    let accept_thread = {
        let ing = ingress.clone();
        std::thread::spawn(move || -> Vec<Conn> {
            let mut handles = Vec::new();
            for cid in 0..clients {
                let Ok((stream, _)) = listener.accept() else {
                    break;
                };
                let ing = ing.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("chaos-conn-{cid}"))
                        .spawn(move || handle_conn(ing, stream, true, DEFAULT_MAX_LINE))
                        .expect("spawn connection thread"),
                );
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        let mut c = Conn::default();
                        c.stats.io_errors += 1;
                        c
                    })
                })
                .collect()
        })
    };
    let client_threads: Vec<_> = scripts
        .into_iter()
        .map(|script| {
            let path = path.clone();
            std::thread::spawn(move || run_chaos_client(&path, &script, stall_every))
        })
        .collect();
    for t in client_threads {
        t.join().map_err(|_| "chaos client thread panicked")?;
    }
    let conns = accept_thread
        .join()
        .map_err(|_| "accept thread panicked".to_string())?;
    for c in &conns {
        ingress.fold_connection(&c.stats);
    }
    let stats = server.shutdown();
    let _ = std::fs::remove_file(&path);
    stats.conservation()?;

    let (mut served, mut answered) = (0usize, 0usize);
    for (i, c) in conns.iter().enumerate() {
        if c.stats.responses != c.stats.submitted {
            return Err(format!(
                "socket connection {i}: {} responses for {} submitted requests",
                c.stats.responses, c.stats.submitted
            ));
        }
        let sum = verify_responses_with(&c.reqs, &c.resps, cache)
            .map_err(|e| format!("socket connection {i}: {e}"))?;
        served += sum.served;
        answered += sum.checked;
    }
    eprintln!(
        "  socket phase: {} connection(s), {answered} responses conserved \
         ({served} served bit-identical to direct calls), {} mid-line \
         disconnect(s), {} bad line(s), {} worker panic(s)",
        conns.len(),
        stats.disconnects,
        stats.malformed_lines + stats.oversized_lines,
        stats.panics,
    );
    Ok(())
}

/// One scripted chaos client: writes its (pre-damaged) lines, optionally
/// vanishes mid-line, and reads responses on a side thread — stalling
/// every `stall_every` lines to back the server's writes up briefly.
fn run_chaos_client(path: &str, script: &optipart::serve::chaos::ClientScript, stall_every: usize) {
    let Ok(stream) = connect_retry(path, 5000) else {
        return;
    };
    let rd = stream.try_clone().ok().map(|r| {
        std::thread::spawn(move || {
            let mut n = 0usize;
            for line in BufReader::new(r).lines() {
                if line.is_err() {
                    break;
                }
                n += 1;
                if stall_every > 0 && n.is_multiple_of(stall_every) {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        })
    });
    {
        let mut w = BufWriter::new(&stream);
        for (_, line) in &script.lines {
            let _ = w.write_all(line);
            let _ = w.write_all(b"\n");
        }
        if script.disconnects {
            // Vanish mid-line: half a request, no newline, gone.
            let _ = w.write_all(b"{\"id\":404,\"seed\":12");
        }
        let _ = w.flush();
    }
    if script.disconnects {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    } else {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    if let Some(h) = rd {
        let _ = h.join();
    }
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad value for --{key}"))),
        }
    }
    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

fn parse_flags(args: &[String]) -> Flags {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = match a.as_str() {
            s if s.starts_with("--") => s[2..].to_string(),
            other => usage(&format!("unexpected argument '{other}'")),
        };
        if matches!(
            key.as_str(),
            "no-batching" | "verify" | "allow-shed" | "quiet" | "no-socket"
        ) {
            out.push((key, "true".into()));
        } else {
            let v = it
                .next()
                .unwrap_or_else(|| usage(&format!("--{key} needs a value")));
            out.push((key, v.clone()));
        }
    }
    Flags(out)
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage:\n  optipart-serve serve [--workers N] [--queue-cap N] [--state-cap K] \
         [--engine-cache N] [--no-batching] [--admission shed|deadline] \
         [--max-line BYTES] [--socket PATH [--accept N]] [--verify] [--allow-shed]\n  \
         optipart-serve client --socket PATH [--in FILE] [--quiet] [--connect-wait-ms MS]\n  \
         optipart-serve gen --requests N [--seed S] [--distinct D] \
         [--kill-every K] [--deadline-every K] [--out FILE]\n  \
         optipart-serve soak [--requests N] [--seed S] [--workers N] \
         [--queue-cap N] [--state-cap K] [--no-batching]\n  \
         optipart-serve chaos [--requests N] [--seed S] [--workers N] \
         [--panics N] [--disconnects N] [--clients N] [--corrupt N] \
         [--stall-every N] [--no-socket]\n\n\
         serve: --accept N drains N socket clients concurrently before \
         exiting (default 1); --allow-shed keeps backpressure sheds and \
         deadline rejections off the exit status; --max-line caps request \
         line bytes (default 65536).\n\
         chaos: a seeded storm of worker panics, client disconnects and \
         corrupted lines; asserts request conservation, transcript \
         determinism and served-payload bit-identity, then replays the \
         same plan over a real socket. Writes target/serve-chaos-repro.txt \
         on failure.\n\n\
         requests are one flat-JSON object per line; `seed` is required and \
         every other field overrides the scenario it expands to:\n  \
         {{\"id\":1,\"seed\":7,\"p\":8,\"tolerance\":0.3,\"deadline_s\":0.5}}"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}
