//! `optipart-cli` — generate, partition and analyse adaptive octree meshes
//! from the command line.
//!
//! ```text
//! optipart-cli gen --points 100000 --dist normal --seed 7 --out mesh.txt
//! optipart-cli partition --mesh mesh.txt --machine wisconsin-8 -p 256 \
//!     --curve hilbert --optipart --out parts.txt
//! optipart-cli partition --mesh mesh.txt -p 64 --tolerance 0.3
//! optipart-cli partition --mesh mesh.txt -p 64 --optipart \
//!     --faults seed=7,straggler=0.2x3,trans=0.01,kill=3@40
//! optipart-cli partition --mesh mesh.txt -p 64 --optipart --steps 10
//! optipart-cli analyze --mesh mesh.txt --parts parts.txt
//! ```
//!
//! Mesh files are plain text: one `x y z level` line per octant (depth-30
//! lattice coordinates). Partition files add the owner rank per line, in
//! mesh order.

use optipart::core::metrics::{
    boundary_counts, comm_imbalance, communication_matrix, load_imbalance, partition_counts,
};
use optipart::core::optipart::{optipart, optipart_with_state, OptiPartOptions, PartitionState};
use optipart::core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart::machine::{AppModel, MachineModel, PerfModel};
use optipart::mpisim::{catch_rank_death, Engine, FaultPlan};
use optipart::octree::Distribution;
use optipart::octree::{LinearTree, MeshParams};
use optipart::sfc::{Cell3, Curve};
use std::io::{BufRead, BufWriter, Write};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage("missing subcommand");
    };
    let opts = parse_flags(rest);
    match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "partition" => cmd_partition(&opts),
        "analyze" => cmd_analyze(&opts),
        "-h" | "--help" => usage(""),
        other => usage(&format!("unknown subcommand '{other}'")),
    }
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad value for --{key}"))),
        }
    }
    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

fn parse_flags(args: &[String]) -> Flags {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = match a.as_str() {
            "-p" => "p".to_string(),
            s if s.starts_with("--") => s[2..].to_string(),
            other => usage(&format!("unexpected argument '{other}'")),
        };
        // Boolean flags: --optipart, --latency-aware.
        if matches!(key.as_str(), "optipart" | "latency-aware") {
            out.push((key, "true".into()));
        } else {
            let v = it
                .next()
                .unwrap_or_else(|| usage(&format!("--{key} needs a value")));
            out.push((key, v.clone()));
        }
    }
    Flags(out)
}

fn curve_of(f: &Flags) -> Curve {
    match f.get("curve").unwrap_or("hilbert") {
        "hilbert" => Curve::Hilbert,
        "morton" => Curve::Morton,
        other => usage(&format!("unknown curve '{other}'")),
    }
}

fn cmd_gen(f: &Flags) {
    let points: usize = f.parse("points", 10_000);
    let seed: u64 = f.parse("seed", 42);
    let dist = match f.get("dist").unwrap_or("normal") {
        "uniform" => Distribution::Uniform,
        "normal" => Distribution::Normal,
        "lognormal" => Distribution::LogNormal,
        other => usage(&format!("unknown distribution '{other}'")),
    };
    let tree: LinearTree<3> = MeshParams {
        distribution: dist,
        num_points: points,
        seed,
        ..Default::default()
    }
    .build(curve_of(f));
    let out = f.get("out").unwrap_or("mesh.txt");
    write_mesh(&tree, out);
    eprintln!("wrote {} octants ({}) to {out}", tree.len(), dist.name());
}

fn cmd_partition(f: &Flags) {
    let tree = read_mesh(
        f.get("mesh").unwrap_or_else(|| usage("--mesh required")),
        curve_of(f),
    );
    let p: usize = f.parse("p", 16);
    let machine = MachineModel::by_name(f.get("machine").unwrap_or("wisconsin-8"))
        .unwrap_or_else(|| usage("unknown machine (titan|stampede|wisconsin-8|clemson-32)"));
    let mut engine = Engine::new(p, PerfModel::new(machine, AppModel::laplacian_matvec()));
    if f.has("trace") {
        engine = engine.with_tracing();
    }
    if let Some(spec) = f.get("faults") {
        let plan: FaultPlan = spec
            .parse()
            .unwrap_or_else(|e| usage(&format!("--faults: {e}")));
        engine = engine.with_faults(plan);
    }
    let input = distribute_tree(&tree, p);

    // `--steps N` re-partitions the same mesh N times through a warm
    // `PartitionState`, the way an AMR or service loop would — step 1
    // pays the full tolerance ladder, every later step is an exact
    // fingerprint hit (bit-identical output, no search).
    let steps: usize = f.parse("steps", 1);
    let mut warm_stats = None;
    let run = catch_rank_death(|| {
        if f.has("optipart") {
            let opts = OptiPartOptions {
                latency_aware: f.has("latency-aware"),
                ..OptiPartOptions::for_curve(curve_of(f))
            };
            if steps > 1 {
                let cap: usize = f.parse("state-cap", optipart::core::optipart::DEFAULT_STATE_CAP);
                let mut state = PartitionState::with_cap(cap);
                let mut out = optipart_with_state(&mut engine, input.clone(), opts, &mut state);
                for _ in 1..steps {
                    out = optipart_with_state(&mut engine, input.clone(), opts, &mut state);
                }
                warm_stats = Some(state.stats);
                out
            } else {
                optipart(&mut engine, input, opts)
            }
        } else {
            let tol: f64 = f.parse("tolerance", 0.0);
            treesort_partition(&mut engine, input, PartitionOptions::with_tolerance(tol))
        }
    });
    let outcome = match run {
        Ok(o) => o,
        Err(death) => {
            eprintln!(
                "error: {death}; partitioning aborted — the CLI runs without a \
                 checkpoint layer (see the library's recovery drivers for \
                 survivable runs)"
            );
            exit(1);
        }
    };
    eprintln!(
        "partitioned {} octants over {p} ranks: λ = {:.4}, tolerance = {:.4}, \
         rounds = {}, simulated {:.2} ms",
        tree.len(),
        outcome.report.lambda,
        outcome.report.achieved_tolerance,
        outcome.report.rounds,
        engine.makespan() * 1e3,
    );
    if let Some(s) = warm_stats {
        eprintln!(
            "warm-start over {steps} steps: {} exact hits, {} replays, {} cold, \
             {} rejected",
            s.hits, s.replays, s.colds, s.rejected,
        );
    }
    if f.has("faults") {
        eprintln!(
            "fault plan: {} transient retries charged, {} rank deaths",
            engine.stats().retries_total,
            engine.stats().deaths,
        );
    }
    if let Some(path) = f.get("trace") {
        std::fs::write(path, engine.trace_json())
            .unwrap_or_else(|e| usage(&format!("{path}: {e}")));
        eprintln!("wrote Chrome trace to {path} (load in chrome://tracing or Perfetto)");
        eprintln!("{}", engine.critical_path().render());
        eprintln!("{}", engine.model_attribution().render());
    }
    if let Some(path) = f.get("out") {
        let assign = optipart::core::metrics::assignment(&tree, &outcome.splitters);
        let file = std::fs::File::create(path).unwrap_or_else(|e| usage(&format!("{path}: {e}")));
        let mut w = BufWriter::new(file);
        for (kc, owner) in tree.leaves().iter().zip(&assign) {
            let a = kc.cell.anchor();
            writeln!(
                w,
                "{} {} {} {} {}",
                a[0],
                a[1],
                a[2],
                kc.cell.level(),
                owner
            )
            .unwrap();
        }
        eprintln!("wrote assignment to {path}");
    }
}

fn cmd_analyze(f: &Flags) {
    let tree = read_mesh(
        f.get("mesh").unwrap_or_else(|| usage("--mesh required")),
        curve_of(f),
    );
    let parts_path = f.get("parts").unwrap_or_else(|| usage("--parts required"));
    let file =
        std::fs::File::open(parts_path).unwrap_or_else(|e| usage(&format!("{parts_path}: {e}")));
    let mut assign = Vec::new();
    for line in std::io::BufReader::new(file).lines() {
        let line = line.expect("readable parts file");
        let owner: usize = line
            .split_whitespace()
            .nth(4)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage("parts file line missing owner column"));
        assign.push(owner);
    }
    if assign.len() != tree.len() {
        usage(&format!(
            "parts file has {} lines, mesh has {}",
            assign.len(),
            tree.len()
        ));
    }
    let p = assign.iter().max().map_or(1, |m| m + 1);
    let counts = partition_counts(&assign, p);
    let bdy = boundary_counts(&tree, &assign, p);
    let m = communication_matrix(&tree, &assign, p);
    println!("octants:            {}", tree.len());
    println!("partitions:         {p}");
    println!("load imbalance:     {:.4}", load_imbalance(&counts));
    println!("comm imbalance:     {:.4}", comm_imbalance(&bdy));
    println!("comm matrix nnz:    {}", m.nnz());
    println!("ghost elements:     {}", m.total_bytes());
    println!("max ghosts/rank:    {}", m.cmax());
}

fn write_mesh(tree: &LinearTree<3>, path: &str) {
    let file = std::fs::File::create(path).unwrap_or_else(|e| usage(&format!("{path}: {e}")));
    let mut w = BufWriter::new(file);
    for kc in tree.leaves() {
        let a = kc.cell.anchor();
        writeln!(w, "{} {} {} {}", a[0], a[1], a[2], kc.cell.level()).unwrap();
    }
}

fn read_mesh(path: &str, curve: Curve) -> LinearTree<3> {
    let file = std::fs::File::open(path).unwrap_or_else(|e| usage(&format!("{path}: {e}")));
    let mut cells = Vec::new();
    for (ln, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.expect("readable mesh file");
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let v: Vec<u32> = line
            .split_whitespace()
            .take(4)
            .map(|s| {
                s.parse()
                    .unwrap_or_else(|_| usage(&format!("{path}:{}: bad number", ln + 1)))
            })
            .collect();
        if v.len() != 4 {
            usage(&format!("{path}:{}: expected 'x y z level'", ln + 1));
        }
        cells.push(Cell3::new([v[0], v[1], v[2]], v[3] as u8));
    }
    LinearTree::from_cells(cells, curve)
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage:\n  optipart-cli gen --points N [--dist uniform|normal|lognormal] \
         [--seed S] [--curve hilbert|morton] [--out FILE]\n  \
         optipart-cli partition --mesh FILE -p RANKS [--machine NAME] \
         [--tolerance T | --optipart [--latency-aware] [--steps N] [--state-cap K]] [--curve C] \
         [--out FILE] [--trace FILE] [--faults SPEC]\n  \
         optipart-cli analyze --mesh FILE --parts FILE [--curve C]\n\n\
         --faults SPEC is a comma-separated fault plan, e.g.\n  \
         seed=7,straggler=0.2x3,jitter=0.1,trans=0.01,retry=4@1e-4,fail=0.12@20,kill=3@40,detect=1e-3"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}
