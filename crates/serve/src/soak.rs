//! Mixed-scenario stream generation, response verification and the
//! fault-soak mode: replay a stream laced with PR 1/3 fault plans
//! (stragglers, transient retries, fail-stop kills with shrink-recovery)
//! against a live server while asserting every response is bit-identical
//! to a direct library call.

use crate::protocol::{Request, Response, Status};
use crate::server::{ServeConfig, Server, ServerStats};
use crate::{direct, Payload};
use optipart_mpisim::rng::SplitMix64;
use optipart_mpisim::FaultPlan;
use optipart_scenario::Scenario;
use std::collections::BTreeMap;

/// RNG stream tags (forked off the stream seed, mirroring the scenario
/// generator's discipline so picks and scenario fields stay decorrelated).
const STREAM_SCENARIOS: u64 = 0x5EB5;
const STREAM_PICKS: u64 = 0x9106;

/// Generates a deterministic request stream: `requests` draws (with
/// repeats) from `distinct` seeded scenarios — the fingerprint-sharded
/// workload whose repeats the warm caches are meant to absorb.
///
/// * `kill_every` > 0 arms a fail-stop kill on every `kill_every`-th
///   request whose scenario has `p ≥ 3` (so the shrink leaves a working
///   communicator), on top of the scenario's own benign plan.
/// * `deadline_every` > 0 attaches a deadline to every `deadline_every`-th
///   request, alternating hopeless (1 ns) and generous (1 Gs) budgets.
pub fn mixed_stream(
    seed: u64,
    requests: usize,
    distinct: usize,
    kill_every: usize,
    deadline_every: usize,
) -> Vec<Request> {
    let distinct = distinct.max(1);
    let mut fields = SplitMix64::new(seed).fork(STREAM_SCENARIOS);
    let scns: Vec<Scenario> = (0..distinct)
        .map(|_| Scenario::from_seed(fields.next_u64()))
        .collect();
    let mut pick = SplitMix64::new(seed).fork(STREAM_PICKS);
    (0..requests)
        .map(|i| {
            let mut scn = scns[pick.next_below(distinct as u64) as usize].clone();
            if kill_every != 0 && i % kill_every == kill_every - 1 && scn.p >= 3 {
                let victim = pick.next_below(scn.p as u64) as usize;
                let at = 3 + pick.next_below(6);
                let plan = scn
                    .faults
                    .clone()
                    .unwrap_or_else(|| FaultPlan::new(scn.seed));
                scn.faults = Some(plan.kill_rank(victim, at));
            }
            let deadline_s = if deadline_every != 0 && i % deadline_every == deadline_every - 1 {
                Some(if pick.next_below(2) == 0 { 1e-9 } else { 1e9 })
            } else {
                None
            };
            Request {
                id: i as u64,
                scn,
                deadline_s,
            }
        })
        .collect()
}

/// Memoized direct-call reference payloads, keyed by canonical scenario
/// key — so verifying a 1000-request stream costs one library call per
/// *distinct* scenario, not per request.
#[derive(Default)]
pub struct DirectCache {
    map: BTreeMap<String, Payload>,
}

impl DirectCache {
    pub fn new() -> DirectCache {
        DirectCache::default()
    }

    /// The reference payload for `scn` (computed on first use).
    pub fn payload(&mut self, scn: &Scenario) -> Payload {
        let key = scn.to_string();
        if let Some(p) = self.map.get(&key) {
            return p.clone();
        }
        let p = direct(scn);
        self.map.insert(key, p.clone());
        p
    }

    /// Distinct scenarios referenced so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// What [`verify_responses`] established.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifySummary {
    /// Responses checked (== requests).
    pub checked: usize,
    /// Responses bit-compared against a direct call.
    pub served: usize,
    /// Shed responses (replay command validated instead).
    pub shed: usize,
    /// Responses rejected by deadline-aware admission (replay command and
    /// retry hint validated).
    pub rejected: usize,
    /// Responses failed by a worker panic (replay command and panic
    /// summary validated).
    pub failed: usize,
    /// Served responses flagged past their deadline budget.
    pub deadline: usize,
    /// Distinct scenarios the direct reference actually ran.
    pub distinct: usize,
}

/// Checks a full request/response exchange against the library:
///
/// * exactly one response per request, matched by id;
/// * every served payload bit-identical to [`direct`] (memoized via
///   `cache`);
/// * deadline flags self-consistent with the serving pass's virtual time;
/// * every shed response carrying the request's exact replay command.
///
/// On the first violation returns `Err` with the offending scenario's
/// one-line replay command.
pub fn verify_responses_with(
    reqs: &[Request],
    resps: &[Response],
    cache: &mut DirectCache,
) -> Result<VerifySummary, String> {
    if resps.len() != reqs.len() {
        return Err(format!(
            "{} responses for {} requests",
            resps.len(),
            reqs.len()
        ));
    }
    let mut by_id: BTreeMap<u64, &Request> = BTreeMap::new();
    for r in reqs {
        if by_id.insert(r.id, r).is_some() {
            return Err(format!("duplicate request id {}", r.id));
        }
    }
    let mut seen: BTreeMap<u64, ()> = BTreeMap::new();
    let mut sum = VerifySummary {
        checked: resps.len(),
        ..Default::default()
    };
    for resp in resps {
        let req = by_id
            .get(&resp.id)
            .ok_or_else(|| format!("response for unknown id {}", resp.id))?;
        if seen.insert(resp.id, ()).is_some() {
            return Err(format!("duplicate response for id {}", resp.id));
        }
        let fail = |what: &str| {
            Err(format!(
                "{what} (id {})\n  scenario: {}\n  replay:   {}",
                resp.id,
                req.scn,
                req.scn.replay_cmd()
            ))
        };
        match resp.status {
            Status::Shed | Status::Rejected => {
                if resp.status == Status::Shed {
                    sum.shed += 1;
                } else {
                    sum.rejected += 1;
                }
                if resp.payload.is_some() {
                    return fail("turned-away response carries a payload");
                }
                if resp.replay.as_deref() != Some(req.scn.replay_cmd().as_str()) {
                    return fail("turned-away response missing/incorrect replay command");
                }
                match resp.retry_after_s {
                    Some(t) if t.is_finite() && t >= 0.0 => {}
                    _ => return fail("turned-away response missing retry_after hint"),
                }
            }
            Status::Failed => {
                sum.failed += 1;
                if resp.payload.is_some() {
                    return fail("failed response carries a payload");
                }
                if resp.replay.as_deref() != Some(req.scn.replay_cmd().as_str()) {
                    return fail("failed response missing/incorrect replay command");
                }
                if resp.error.as_deref().is_none_or(str::is_empty) {
                    return fail("failed response missing its panic summary");
                }
            }
            Status::Ok | Status::Deadline => {
                sum.served += 1;
                let want = cache.payload(&req.scn);
                match &resp.payload {
                    None => return fail("served response has no payload"),
                    Some(got) if *got != want => {
                        return fail(&format!(
                            "payload differs from direct library call\n  served: {got:?}\n  direct: {want:?}"
                        ));
                    }
                    Some(_) => {}
                }
                let over = matches!(req.deadline_s, Some(d) if resp.virtual_s > d);
                if (resp.status == Status::Deadline) != over {
                    return fail("deadline flag inconsistent with the pass's virtual time");
                }
                if resp.status == Status::Deadline {
                    sum.deadline += 1;
                }
            }
        }
    }
    sum.distinct = cache.len();
    Ok(sum)
}

/// [`verify_responses_with`] with a fresh cache.
pub fn verify_responses(reqs: &[Request], resps: &[Response]) -> Result<VerifySummary, String> {
    verify_responses_with(reqs, resps, &mut DirectCache::new())
}

/// The fault-soak mode: stream `requests` seeded scenarios — roughly one
/// in seven armed with a fail-stop kill, one in five with a deadline —
/// through a live server, then verify the whole exchange bit-identical to
/// the library. Returns the verification summary and the server counters.
pub fn fault_soak(
    seed: u64,
    requests: usize,
    cfg: ServeConfig,
) -> Result<(VerifySummary, ServerStats), String> {
    let distinct = (requests / 8).clamp(1, 48);
    let reqs = mixed_stream(seed, requests, distinct, 7, 5);
    let server = Server::start(cfg);
    for r in &reqs {
        server.submit(r.clone());
    }
    let resps = server.drain(reqs.len());
    let stats = server.shutdown();
    stats.conservation()?;
    let sum = verify_responses(&reqs, &resps)?;
    Ok((sum, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_stream_is_deterministic_and_mixes_faults() {
        let a = mixed_stream(11, 60, 8, 6, 5);
        let b = mixed_stream(11, 60, 8, 6, 5);
        assert_eq!(a.len(), 60);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.key(), y.key());
            assert_eq!(x.deadline_s, y.deadline_s);
        }
        assert!(
            a.iter().any(|r| r
                .scn
                .faults
                .as_ref()
                .is_some_and(|f| f.to_string().contains("kill"))),
            "kill_every must arm some kills"
        );
        assert!(a.iter().any(|r| r.deadline_s.is_some()));
        let distinct: std::collections::BTreeSet<String> =
            a.iter().map(|r| r.scn.to_string()).collect();
        assert!(
            distinct.len() > 8,
            "kill variants add keys beyond the base 8"
        );
    }

    #[test]
    fn fault_soak_round_trips_bit_identically() {
        let cfg = ServeConfig {
            workers: 3,
            queue_cap: 64,
            state_cap: 16,
            engine_cache: 4,
            batching: true,
            admission: Default::default(),
        };
        let (sum, stats) = fault_soak(20260808, 48, cfg).expect("soak verifies");
        assert_eq!(sum.checked, 48);
        assert_eq!(sum.served + sum.shed, 48);
        assert!(
            stats.deaths > 0,
            "the kill plans must exercise recovery: {stats:?}"
        );
        assert!(stats.engine_passes > 0);
    }

    #[test]
    fn verify_catches_a_tampered_payload() {
        let reqs = mixed_stream(5, 6, 2, 0, 0);
        let server = Server::start(ServeConfig {
            workers: 1,
            queue_cap: 16,
            state_cap: 8,
            engine_cache: 2,
            batching: false,
            admission: Default::default(),
        });
        for r in &reqs {
            server.submit(r.clone());
        }
        let mut resps = server.drain(reqs.len());
        server.shutdown();
        assert!(verify_responses(&reqs, &resps).is_ok());
        if let Some(p) = resps[3].payload.as_mut() {
            p.sig ^= 1;
        }
        let err = verify_responses(&reqs, &resps).unwrap_err();
        assert!(
            err.contains("replay"),
            "failure must carry a replay command: {err}"
        );
    }
}
