//! Line-delimited request/response protocol.
//!
//! One request per line, as a **flat** JSON object that mirrors the testkit
//! [`Scenario`] one-seed encoding: `seed` is the only required scenario
//! field, every other field is an *override* of that seed's derivation —
//! exactly the semantics of `testkit replay`. A request that names only
//! `{"id":7,"seed":42}` therefore reproduces scenario 42 verbatim, and any
//! request can be turned back into a one-line replay command
//! ([`Scenario::replay_cmd`]) when it is shed or fails verification.
//!
//! The parser is hand-rolled (flat objects only, no nesting) because the
//! workspace's offline policy forbids pulling in a JSON crate; the bench
//! harness's report reader made the same choice.

use crate::Payload;
use optipart_machine::MachineModel;
use optipart_mpisim::FaultPlan;
use optipart_scenario::{
    curve_name, parse_curve, AppKind, ElemFamily, HierKind, MeshShape, Scenario, Workload,
};
use std::fmt::Write as _;

/// One partition request: a replayable scenario plus service metadata.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The workload: mesh + machine model + α (application) + tolerance
    /// budget, all derived from `seed` modulo explicit overrides.
    pub scn: Scenario,
    /// Deadline budget in *virtual* seconds, evaluated against the engine
    /// pass that served the request (warm hits finish sooner and can meet
    /// budgets a cold ladder cannot). `None` = no deadline.
    pub deadline_s: Option<f64>,
}

impl Request {
    /// Canonical scenario key: every field that determines the engine pass
    /// (and nothing else — not `id`, not the deadline). Requests with equal
    /// keys are batchable and always land on the same worker.
    pub fn key(&self) -> String {
        self.scn.to_string()
    }

    /// Shard (worker index) for this request: a stable hash of [`key`]
    /// (FNV-1a), so repeats of a scenario always hit the same worker's
    /// warm `PartitionState`.
    ///
    /// [`key`]: Request::key
    pub fn shard(&self, workers: usize) -> usize {
        (fnv1a(self.key().as_bytes()) % workers.max(1) as u64) as usize
    }

    /// Canonical wire form (all scenario fields spelled out).
    pub fn to_json(&self) -> String {
        let s = &self.scn;
        let mut out = String::with_capacity(192);
        let _ = write!(
            out,
            "{{\"id\":{},\"seed\":{},\"shape\":\"{}\",\"n\":{},\"p\":{},\"curve\":\"{}\",\"tol\":{},",
            self.id,
            s.seed,
            s.shape.name(),
            s.n,
            s.p,
            curve_name(s.curve),
            s.tolerance,
        );
        match s.split_budget {
            Some(k) => {
                let _ = write!(out, "\"budget\":{k},");
            }
            None => out.push_str("\"budget\":null,"),
        }
        let _ = write!(
            out,
            "\"machine\":\"{}\",\"app\":\"{}\",\"hier\":\"{}\",\"family\":\"{}\",\"workload\":\"{}\",\"faults\":",
            s.machine.name,
            s.app.name(),
            s.hier.name(),
            s.family.name(),
            s.workload.encode(),
        );
        match &s.faults {
            Some(plan) => {
                let _ = write!(out, "{}", json_string(&plan.to_string()));
            }
            None => out.push_str("null"),
        }
        if let Some(d) = self.deadline_s {
            let _ = write!(out, ",\"deadline_s\":{d}");
        }
        out.push('}');
        out
    }

    /// Parses one request line. `id` and `seed` are required; every other
    /// scenario field defaults to its seed derivation (replay semantics).
    pub fn from_json(line: &str) -> Result<Request, String> {
        let f = Fields::parse(line)?;
        let id = f
            .num::<u64>("id")?
            .ok_or_else(|| "missing required field 'id'".to_string())?;
        let seed = f
            .num::<u64>("seed")?
            .ok_or_else(|| "missing required field 'seed'".to_string())?;
        let mut scn = Scenario::from_seed(seed);
        if let Some(name) = f.str("shape")? {
            scn.shape = MeshShape::parse(name).ok_or_else(|| format!("unknown shape '{name}'"))?;
        }
        if let Some(n) = f.num::<usize>("n")? {
            scn.n = n;
        }
        if let Some(p) = f.num::<usize>("p")? {
            scn.p = p.max(1);
        }
        if let Some(name) = f.str("curve")? {
            scn.curve = parse_curve(name).ok_or_else(|| format!("unknown curve '{name}'"))?;
        }
        if let Some(t) = f.num::<f64>("tol")? {
            scn.tolerance = t;
        }
        match f.get("budget") {
            None | Some(JsonVal::Null) => {
                if f.get("budget").is_some() {
                    scn.split_budget = None;
                }
            }
            Some(JsonVal::Num(raw)) => {
                scn.split_budget = Some(raw.parse().map_err(|_| format!("bad budget '{raw}'"))?);
            }
            Some(JsonVal::Str(s)) if s == "none" => scn.split_budget = None,
            Some(v) => return Err(format!("bad budget {v:?}")),
        }
        if let Some(name) = f.str("machine")? {
            scn.machine =
                MachineModel::by_name(name).ok_or_else(|| format!("unknown machine '{name}'"))?;
        }
        if let Some(name) = f.str("app")? {
            scn.app = AppKind::parse(name).ok_or_else(|| format!("unknown app '{name}'"))?;
        }
        if let Some(name) = f.str("hier")? {
            scn.hier = HierKind::parse(name).ok_or_else(|| format!("unknown hier '{name}'"))?;
        }
        if let Some(name) = f.str("family")? {
            scn.family =
                ElemFamily::parse(name).ok_or_else(|| format!("unknown family '{name}'"))?;
        }
        if let Some(name) = f.str("workload")? {
            scn.workload =
                Workload::parse(name).ok_or_else(|| format!("unknown workload '{name}'"))?;
        }
        match f.get("faults") {
            None => {}
            Some(JsonVal::Null) => scn.faults = None,
            Some(JsonVal::Str(spec)) if spec == "none" => scn.faults = None,
            Some(JsonVal::Str(spec)) => {
                let plan: FaultPlan = spec.parse().map_err(|e| format!("bad faults: {e}"))?;
                scn.faults = Some(plan);
            }
            Some(v) => return Err(format!("bad faults {v:?}")),
        }
        let deadline_s = f.num::<f64>("deadline_s")?;
        Ok(Request {
            id,
            scn,
            deadline_s,
        })
    }
}

/// Terminal state of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Served; payload attached.
    Ok,
    /// Served, but the engine pass's virtual time exceeded the request's
    /// deadline budget. The payload is still attached.
    Deadline,
    /// Rejected at submit time by bounded-queue backpressure; carries the
    /// replay command instead of a payload.
    Shed,
    /// Rejected at submit time by deadline-aware admission: the target
    /// queue's virtual-time backlog already exceeded the request's deadline
    /// budget, so running it could only produce a [`Status::Deadline`]
    /// miss. Carries the replay command and a `retry_after_s` hint.
    Rejected,
    /// The worker serving this request panicked mid-pass. The request was
    /// never answered with a payload; the response carries the panic
    /// summary (`error`) and the exact replay command so the crash is
    /// reproducible offline. The warm caches implicated in the pass were
    /// quarantined — a later resubmit serves fresh and bit-identically.
    Failed,
}

impl Status {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Deadline => "deadline",
            Status::Shed => "shed",
            Status::Rejected => "rejected",
            Status::Failed => "failed",
        }
    }
}

/// Which warm-start path the serving engine pass took (service metadata —
/// never part of the payload identity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmPath {
    /// Exact fingerprint hit — the ladder was skipped.
    Hit,
    /// Table-accelerated replay on a changed mesh.
    Replay,
    /// Cold ladder (first sight, faulted request, or invalidated state).
    Cold,
    /// No engine pass ran (shed).
    None,
}

impl WarmPath {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            WarmPath::Hit => "hit",
            WarmPath::Replay => "replay",
            WarmPath::Cold => "cold",
            WarmPath::None => "none",
        }
    }
}

/// One response line. The [`Payload`] is the bit-identity surface (equal to
/// a direct library call); everything else is service metadata that may
/// legitimately differ between serving conditions (worker, warm path, batch
/// size, latencies).
#[derive(Clone, Debug)]
pub struct Response {
    /// Echoed request id.
    pub id: u64,
    /// Terminal status.
    pub status: Status,
    /// Partition result; `None` for [`Status::Shed`], [`Status::Rejected`]
    /// and [`Status::Failed`].
    pub payload: Option<Payload>,
    /// Replay command for shed/rejected/failed requests (`None` when a
    /// payload is attached).
    pub replay: Option<String>,
    /// Worker that served the request.
    pub worker: usize,
    /// Warm-start path of the serving pass.
    pub warm: WarmPath,
    /// Requests served by the same engine pass (≥ 1; shed → 0).
    pub batched: u32,
    /// Virtual seconds of the serving engine pass (deadlines are judged
    /// against this; 0 for shed).
    pub virtual_s: f64,
    /// Wall-clock service latency, enqueue → response, microseconds.
    pub wall_us: u64,
    /// Backoff hint on [`Status::Shed`]/[`Status::Rejected`]: the virtual
    /// seconds after which resubmitting could plausibly succeed, computed
    /// deterministically from the target queue's backlog at submit time.
    pub retry_after_s: Option<f64>,
    /// Panic summary on [`Status::Failed`] (`None` otherwise).
    pub error: Option<String>,
}

impl Response {
    /// Wire form.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        let _ = write!(
            out,
            "{{\"id\":{},\"status\":\"{}\",\"worker\":{},\"warm\":\"{}\",\"batched\":{},\"virtual_s\":{},\"wall_us\":{}",
            self.id,
            self.status.name(),
            self.worker,
            self.warm.name(),
            self.batched,
            self.virtual_s,
            self.wall_us,
        );
        if let Some(p) = &self.payload {
            let _ = write!(
                out,
                ",\"sig\":\"{:#018x}\",\"elements\":{},\"final_p\":{},\"deaths\":{},\"lambda\":{},\"tol_achieved\":{},\"rounds\":{},\"splitter_level\":{},\"cmax\":{},\"wmax\":{},\"predicted_tp\":{}",
                p.sig,
                p.elements,
                p.final_p,
                p.deaths,
                p.lambda,
                p.achieved_tolerance,
                p.rounds,
                p.splitter_level,
                p.cmax,
                p.wmax,
                p.predicted_tp,
            );
        }
        if let Some(r) = &self.replay {
            let _ = write!(out, ",\"replay\":{}", json_string(r));
        }
        if let Some(t) = self.retry_after_s {
            let _ = write!(out, ",\"retry_after_s\":{t}");
        }
        if let Some(e) = &self.error {
            let _ = write!(out, ",\"error\":{}", json_string(e));
        }
        out.push('}');
        out
    }
}

/// FNV-1a over bytes — the sharding hash. Stable across platforms and
/// processes (unlike `std`'s `DefaultHasher`), which keeps shard placement
/// and therefore batching behaviour reproducible.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// JSON string literal with escaping.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed flat-JSON value. Numbers keep their raw text so `u64` seeds
/// round-trip exactly (an f64 detour would corrupt seeds above 2⁵³).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonVal {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, unparsed.
    Num(String),
    /// A string literal, unescaped.
    Str(String),
}

/// The fields of one flat JSON object, in document order.
#[derive(Clone, Debug, Default)]
pub struct Fields(Vec<(String, JsonVal)>);

impl Fields {
    /// Parses a single flat JSON object (no nested objects or arrays).
    pub fn parse(line: &str) -> Result<Fields, String> {
        let mut p = Parser {
            s: line.as_bytes(),
            i: 0,
        };
        p.ws();
        p.eat(b'{')?;
        let mut fields = Vec::new();
        p.ws();
        if p.peek() == Some(b'}') {
            p.i += 1;
        } else {
            loop {
                p.ws();
                let key = p.string()?;
                p.ws();
                p.eat(b':')?;
                p.ws();
                let val = p.value()?;
                fields.push((key, val));
                p.ws();
                match p.next() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        p.ws();
        if p.i != p.s.len() {
            return Err(format!("trailing content at byte {}", p.i));
        }
        Ok(Fields(fields))
    }

    /// Last value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&JsonVal> {
        self.0.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric field parsed as `T` (exact text → `FromStr`, no f64 detour).
    pub fn num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None | Some(JsonVal::Null) => Ok(None),
            Some(JsonVal::Num(raw)) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("bad number for '{key}': {raw}")),
            Some(v) => Err(format!("field '{key}' is not a number: {v:?}")),
        }
    }

    /// String field.
    pub fn str(&self, key: &str) -> Result<Option<&str>, String> {
        match self.get(key) {
            None | Some(JsonVal::Null) => Ok(None),
            Some(JsonVal::Str(s)) => Ok(Some(s)),
            Some(v) => Err(format!("field '{key}' is not a string: {v:?}")),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.i += 1;
        }
        b
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == c => Ok(()),
            other => Err(format!("expected '{}', got {other:?}", c as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit '{}'", d as char))?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.i - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.s.len());
                    let chunk = std::str::from_utf8(&self.s[start..end])
                        .map_err(|_| "bad UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonVal, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonVal::Str(self.string()?)),
            Some(b'n') => self.lit("null", JsonVal::Null),
            Some(b't') => self.lit("true", JsonVal::Bool(true)),
            Some(b'f') => self.lit("false", JsonVal::Bool(false)),
            Some(b'{' | b'[') => Err("nested objects/arrays are not part of the protocol".into()),
            Some(_) => {
                let start = self.i;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.i += 1;
                }
                if self.i == start {
                    return Err(format!("bad value at byte {start}"));
                }
                Ok(JsonVal::Num(
                    std::str::from_utf8(&self.s[start..self.i])
                        .unwrap()
                        .to_string(),
                ))
            }
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(&mut self, word: &str, val: JsonVal) -> Result<JsonVal, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(val)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_wire_form() {
        for seed in [1u64, 42, 0xDEAD_BEEF_CAFE_F00D, u64::MAX - 3] {
            let req = Request {
                id: seed ^ 7,
                scn: Scenario::from_seed(seed),
                deadline_s: if seed % 2 == 0 { Some(0.25) } else { None },
            };
            let back = Request::from_json(&req.to_json()).expect("roundtrip");
            assert_eq!(back.id, req.id);
            assert_eq!(back.key(), req.key(), "seed {seed}");
            assert_eq!(back.deadline_s, req.deadline_s);
        }
    }

    #[test]
    fn seed_only_request_replays_the_scenario() {
        let req = Request::from_json("{\"id\":1,\"seed\":9001}").unwrap();
        assert_eq!(req.scn.to_string(), Scenario::from_seed(9001).to_string());
    }

    #[test]
    fn overrides_apply_on_top_of_the_seed() {
        let req = Request::from_json(
            "{\"id\":2,\"seed\":5,\"p\":9,\"tol\":0.3,\"budget\":null,\"faults\":null}",
        )
        .unwrap();
        assert_eq!(req.scn.p, 9);
        assert_eq!(req.scn.tolerance, 0.3);
        assert_eq!(req.scn.split_budget, None);
        assert!(req.scn.faults.is_none());
    }

    #[test]
    fn hierarchy_and_mesh_family_fields_roundtrip() {
        // Overridden hier/family/workload must survive the wire in both
        // directions: encode → parse and parse → encode.
        let mut scn = Scenario::from_seed(11);
        scn.hier = HierKind::Smp;
        scn.family = ElemFamily::Hybrid;
        scn.workload = Workload::MovingFront { steps: 6 };
        let req = Request {
            id: 3,
            scn,
            deadline_s: None,
        };
        let back = Request::from_json(&req.to_json()).expect("roundtrip");
        assert_eq!(back.scn.hier, HierKind::Smp);
        assert_eq!(back.scn.family, ElemFamily::Hybrid);
        assert_eq!(back.scn.workload, Workload::MovingFront { steps: 6 });
        assert_eq!(back.key(), req.key());

        let parsed = Request::from_json(
            "{\"id\":4,\"seed\":11,\"hier\":\"numa\",\"family\":\"tet\",\"workload\":\"blayer3\"}",
        )
        .unwrap();
        assert_eq!(parsed.scn.hier, HierKind::Numa);
        assert_eq!(parsed.scn.family, ElemFamily::Tet);
        assert_eq!(parsed.scn.workload, Workload::BoundaryLayer { steps: 3 });
        let reparsed = Request::from_json(&parsed.to_json()).unwrap();
        assert_eq!(reparsed.key(), parsed.key());

        for bad in [
            "{\"id\":1,\"seed\":2,\"hier\":\"torus\"}",
            "{\"id\":1,\"seed\":2,\"family\":\"pyramid\"}",
            "{\"id\":1,\"seed\":2,\"workload\":\"front\"}",
        ] {
            assert!(Request::from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn old_request_lines_without_new_fields_still_parse() {
        // Pre-hierarchy clients omit hier/family/workload entirely — the
        // parse must fall back to the seed derivation, and unknown fields
        // from *newer* clients must be ignored rather than rejected.
        let old = Request::from_json(
            "{\"id\":9,\"seed\":321,\"p\":4,\"machine\":\"titan\",\"faults\":null}",
        )
        .unwrap();
        let derived = Scenario::from_seed(321);
        assert_eq!(old.scn.hier, derived.hier);
        assert_eq!(old.scn.family, derived.family);
        assert_eq!(old.scn.workload, derived.workload);

        let future =
            Request::from_json("{\"id\":9,\"seed\":321,\"coolant\":\"liquid\",\"zz\":1}").unwrap();
        assert_eq!(future.scn.to_string(), derived.to_string());
    }

    #[test]
    fn malformed_lines_are_rejected_with_reason() {
        for bad in [
            "",
            "{",
            "{\"id\":1}",
            "{\"seed\":1}",
            "{\"id\":1,\"seed\":2,\"shape\":\"donut\"}",
            "{\"id\":1,\"seed\":2,\"nested\":{}}",
            "{\"id\":1,\"seed\":2} trailing",
        ] {
            assert!(Request::from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn sharding_is_stable_and_key_ignores_service_fields() {
        let scn = Scenario::from_seed(77);
        let a = Request {
            id: 1,
            scn: scn.clone(),
            deadline_s: None,
        };
        let b = Request {
            id: 999,
            scn,
            deadline_s: Some(1e-9),
        };
        assert_eq!(a.key(), b.key());
        for w in 1..8 {
            assert_eq!(a.shard(w), b.shard(w));
            assert!(a.shard(w) < w);
        }
    }
}
