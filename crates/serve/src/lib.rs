//! # optipart-serve — partition-as-a-service front end
//!
//! A long-running, std-only concurrent server around the incremental
//! OptiPart engine: streams of partition requests (mesh + machine model +
//! α + tolerance budget, one flat-JSON line each, reusing the testkit
//! `Scenario` one-seed encoding) are sharded by scenario fingerprint to a
//! thread-per-core pool of workers, each owning a long-lived virtual BSP
//! engine and a persistent warm [`PartitionState`] — so steady-state
//! serving rides the exact-hit path the warm-start cache was built for
//! (DESIGN.md §14/§15).
//!
//! The architecture, in one pass through a request:
//!
//! 1. **Shard** — [`protocol::Request::shard`] hashes the canonical
//!    scenario key (FNV-1a over the `Scenario` display form), so repeats of
//!    a scenario always land on the same worker and its `PartitionState`.
//! 2. **Backpressure** — each worker has a *bounded* queue
//!    (`ServeConfig::queue_cap`). A full queue sheds at submit time:
//!    deterministic, deadlock-free, and every shed response carries the
//!    request's one-line replay command.
//! 3. **Batch** — a worker popping a request also drains every queued
//!    request with the *same key* and serves them all with one engine pass
//!    (`ServeConfig::batching`).
//! 4. **Serve** — [`run_request`] runs `optipart_with_state` on the
//!    worker's per-`p` state; a fail-stop rank death unwinds into
//!    `shrink_after_death` + `optipart_survivors_with_state` retry, looping
//!    until the survivors complete (the PR 3 recovery discipline, inline in
//!    the server).
//! 5. **Deadline** — each request may carry a budget in *virtual* seconds;
//!    the response is flagged `deadline` when the serving pass's makespan
//!    exceeds it. Warm hits skip the ladder, so a warm server meets budgets
//!    a cold library call cannot — that is the service's selling point,
//!    measured rather than asserted.
//!
//! **Bit-identity contract**: the [`Payload`] of every served response is
//! byte-for-byte the payload of a *direct* library call ([`direct`]) on a
//! fresh engine and state — guaranteed by PR 6's warm≡cold invariant plus
//! engine-reset determinism, and enforced by the `serve-vs-library` testkit
//! oracle, [`soak::verify_responses`], and the fault-soak mode. Everything
//! that may legitimately differ (worker id, warm path, batch size, wall and
//! virtual latency, deadline status) lives *outside* the payload.

pub use optipart_scenario as scenario;

pub mod chaos;
pub mod protocol;
pub mod server;
pub mod soak;

pub use protocol::{Request, Response, Status, WarmPath};
pub use server::{Admission, Admit, ConnStats, Ingress, ServeConfig, Server, ServerStats};

use optipart_core::optipart::{
    optipart_survivors_with_state, optipart_with_state, OptiPartOptions, PartitionState,
};
use optipart_core::partition::{distribute_tree, PartitionOutcome};
use optipart_mpisim::{catch_rank_death, Engine};
use optipart_scenario::Scenario;

/// The bit-identity surface of a response: everything a direct library call
/// determines, and nothing serving conditions can change. Two payloads are
/// equal iff the underlying partitions (splitters, per-rank counts, report,
/// death count, final rank count) are identical.
#[derive(Clone, Debug, PartialEq)]
pub struct Payload {
    /// Order-sensitive fold of splitters + counts + report bits + deaths —
    /// one u64 that changes if any structural field changes.
    pub sig: u64,
    /// Global element count after the exchange.
    pub elements: u64,
    /// Ranks that completed the partition (initial `p` minus deaths).
    pub final_p: u32,
    /// Fail-stop deaths absorbed while serving this request.
    pub deaths: u32,
    /// Load imbalance `λ = max/min`.
    pub lambda: f64,
    /// Achieved tolerance.
    pub achieved_tolerance: f64,
    /// Ladder rounds.
    pub rounds: u64,
    /// Deepest splitter bucket level.
    pub splitter_level: u8,
    /// `Cmax` from the quality pass.
    pub cmax: u64,
    /// `Wmax` (elements on the busiest rank).
    pub wmax: u64,
    /// Eq. (3) predicted application time.
    pub predicted_tp: f64,
}

/// SplitMix64 finalizer — the payload signature mixer.
fn mix(h: u64, x: u64) -> u64 {
    let mut z = h ^ x.rotate_left(23);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// OptiPart options induced by a scenario: the scenario's tolerance is the
/// *budget* (ladder ceiling), its split budget is Eq. (2)'s `k`.
pub fn optipart_options(scn: &Scenario) -> OptiPartOptions {
    OptiPartOptions {
        max_tolerance: scn.tolerance,
        max_split_per_round: scn.split_budget,
        ..OptiPartOptions::for_curve(scn.curve)
    }
}

fn payload_of(out: &PartitionOutcome<3>, deaths: u32, final_p: usize) -> Payload {
    let r = &out.report;
    let mut sig = 0x6F70_7469_5F73_7276; // "opti_srv"
    for s in &out.splitters {
        sig = mix(sig, (s.path() >> 64) as u64);
        sig = mix(sig, s.path() as u64);
        sig = mix(sig, s.level() as u64);
    }
    for &c in &r.counts {
        sig = mix(sig, c);
    }
    for f in [r.lambda, r.achieved_tolerance, r.predicted_tp] {
        sig = mix(sig, f.to_bits());
    }
    for u in [
        r.rounds as u64,
        r.splitter_level as u64,
        r.cmax,
        r.wmax,
        out.dist.total_len() as u64,
        deaths as u64,
        final_p as u64,
    ] {
        sig = mix(sig, u);
    }
    Payload {
        sig,
        elements: out.dist.total_len() as u64,
        final_p: final_p as u32,
        deaths,
        lambda: r.lambda,
        achieved_tolerance: r.achieved_tolerance,
        rounds: r.rounds as u64,
        splitter_level: r.splitter_level,
        cmax: r.cmax,
        wmax: r.wmax,
        predicted_tp: r.predicted_tp,
    }
}

/// Executes one request on a caller-provided engine and warm state — the
/// single code path shared by server workers and the direct-call reference,
/// which is what reduces serve-vs-library bit-identity to PR 6's warm≡cold
/// guarantee. Returns the payload and the pass's virtual makespan.
///
/// The engine is [`Engine::reset`] first (fresh clocks, re-armed fault
/// schedule). A fail-stop death during the pass shrinks the engine and
/// retries over the survivors, repeating until a pass completes; the warm
/// state survives (entries under the dead rank count are invalidated by
/// fingerprint, exactly as in the PR 6 recovery drivers).
pub fn run_request(
    engine: &mut Engine,
    state: &mut PartitionState,
    scn: &Scenario,
) -> (Payload, f64) {
    engine.reset();
    let tree = scn.build_tree();
    let opts = optipart_options(scn);
    let mut deaths = 0u32;
    let first = catch_rank_death(|| {
        let dist = distribute_tree(&tree, engine.p());
        optipart_with_state(engine, dist, opts, state)
    });
    let mut out = match first {
        Ok(o) => Some(o),
        Err(_) => {
            engine.shrink_after_death();
            deaths += 1;
            None
        }
    };
    while out.is_none() {
        out = match catch_rank_death(|| {
            optipart_survivors_with_state(engine, tree.leaves(), opts, state)
        }) {
            Ok(o) => Some(o),
            Err(_) => {
                engine.shrink_after_death();
                deaths += 1;
                None
            }
        };
    }
    let o = out.expect("partition completed");
    let payload = payload_of(&o, deaths, engine.p());
    (payload, engine.makespan())
}

/// Coarse virtual-time estimate of serving `scn` cold: `⌈log₂ p⌉` exchange
/// rounds of (latency + per-rank payload) plus the local scan, in the
/// scenario's machine model — the Eq. (1)/(3) cost shape with fixed
/// constants. This is *not* a prediction the payload depends on; it exists
/// so deadline-aware admission and `retry_after` hints are pure functions
/// of queue contents (every job's estimate is fixed at submit, and backlog
/// is a sum over queued jobs in order — no clocks, no drift).
pub fn estimate_virtual_s(scn: &Scenario) -> f64 {
    let n = scn.n as f64;
    let p = scn.p.max(1) as f64;
    let m = &scn.machine;
    let per_rank_bytes = (n / p) * 16.0;
    let rounds = p.log2().ceil().max(1.0);
    rounds * (m.ts + per_rank_bytes * m.tw) + (n / p) * 24.0 * m.tc
}

/// The direct library call a served response must be bit-identical to:
/// fresh engine (with the scenario's fault plan), fresh default state, one
/// [`run_request`]. This is the reference side of the `serve-vs-library`
/// oracle and of `--verify`.
pub fn direct(scn: &Scenario) -> Payload {
    let mut engine = scn.engine_faulted();
    let mut state = PartitionState::new();
    run_request(&mut engine, &mut state, scn).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_is_deterministic_and_warm_hit_is_bit_identical() {
        let scn = Scenario::from_seed(314159);
        let a = direct(&scn);
        let b = direct(&scn);
        assert_eq!(a, b);
        // Warm second pass on a persistent state: same payload, fewer
        // syncs (the service's whole premise).
        let mut engine = scn.engine_faulted();
        let mut state = PartitionState::new();
        let (cold, _) = run_request(&mut engine, &mut state, &scn);
        let (warm, _) = run_request(&mut engine, &mut state, &scn);
        assert_eq!(cold, a);
        assert_eq!(warm, a);
        assert_eq!(state.stats.hits, 1, "{:?}", state.stats);
    }

    #[test]
    fn rank_death_is_absorbed_and_reported() {
        use optipart_mpisim::FaultPlan;
        // Find a scenario with p ≥ 3 and arm a mid-partition kill.
        let mut scn = (0..)
            .map(|s| Scenario::from_seed(271828 + s))
            .find(|s| s.p >= 3 && s.n >= 80)
            .unwrap();
        scn.faults = Some(FaultPlan::new(scn.seed).kill_rank(scn.p - 1, 4));
        let pl = direct(&scn);
        assert_eq!(pl.deaths, 1, "kill at sync 4 must fire");
        assert_eq!(pl.final_p as usize, scn.p - 1);
        assert_eq!(pl, direct(&scn), "recovery must be deterministic");
    }
}
