//! The concurrent front end: sharded workers over bounded queues.
//!
//! One OS thread per worker (`mpisim::par` handles intra-pass parallelism;
//! no async runtime — the tier-1 build stays std-only and offline). Each
//! worker owns:
//!
//! * a bounded `Mutex<VecDeque>` + `Condvar` request queue (backpressure:
//!   a full queue sheds at *submit* time, before any worker involvement, so
//!   shedding is deterministic given queue contents and can never block);
//! * one persistent warm [`PartitionState`] **per rank count** `p` (states
//!   are fingerprint-invalidated on `p` mismatch, so a shared state would
//!   thrash between requests of different widths);
//! * a small LRU of long-lived engines keyed `(p, machine, app)` —
//!   **fault-free requests only**. A request carrying a fault plan gets a
//!   fresh engine and a throwaway state: `Engine::reset` re-arms kill
//!   schedules but a shrink is permanent, so an engine that lost a rank
//!   must never serve another request.
//!
//! Batching: the worker pops the queue head, then (with
//! [`ServeConfig::batching`]) drains every queued request with the same
//! scenario key and answers them all from one engine pass. Under
//! [`Server::pause`]/[`Server::release`] the queue contents at release time
//! are exactly the submitted burst, which makes batch composition — and
//! therefore pass counts, warm stats and allocation counts — fully
//! deterministic; the bench kernels and tests rely on this.

use crate::protocol::{Request, Response, Status, WarmPath};
use crate::run_request;
use optipart_core::optipart::{PartitionState, WarmStats, DEFAULT_STATE_CAP};
use optipart_mpisim::Engine;
use optipart_scenario::{AppKind, Scenario};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads (shards). Default: one per core.
    pub workers: usize,
    /// Bounded queue depth per worker; submissions past this are shed.
    pub queue_cap: usize,
    /// Warm [`PartitionState`] LRU bound per (worker, rank count) — the
    /// configurable `STATE_CAP` of DESIGN.md §14.
    pub state_cap: usize,
    /// Long-lived engines kept per worker (fault-free configs only).
    pub engine_cache: usize,
    /// Serve same-key queued requests with one engine pass.
    pub batching: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_cap: 64,
            state_cap: DEFAULT_STATE_CAP,
            engine_cache: 4,
            batching: true,
        }
    }
}

/// Aggregate service counters (monotone over the server's lifetime).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Requests offered to [`Server::submit`].
    pub submitted: u64,
    /// Requests answered with a payload (ok or deadline).
    pub completed: u64,
    /// Requests rejected by backpressure.
    pub shed: u64,
    /// Engine passes run (≤ completed when batching merges requests).
    pub engine_passes: u64,
    /// Passes served from an exact warm hit.
    pub hit_passes: u64,
    /// Passes served from a table-accelerated replay.
    pub replay_passes: u64,
    /// Passes that paid the cold ladder.
    pub cold_passes: u64,
    /// Requests that joined an existing pass (batch followers).
    pub batched_extra: u64,
    /// Fail-stop deaths absorbed while serving.
    pub deaths: u64,
}

impl ServerStats {
    /// Fraction of completed requests served *without* paying a cold
    /// ladder — exact hits, warm replays, or batch followers. This is the
    /// "warm-hit rate" the service is gated on: it lower-bounds to
    /// `1 − distinct_scenarios / requests` regardless of timing, because a
    /// scenario can only go cold once per worker state.
    pub fn warm_request_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        1.0 - self.cold_passes as f64 / self.completed as f64
    }

    /// Exact-hit fraction of engine passes.
    pub fn hit_rate(&self) -> f64 {
        if self.engine_passes == 0 {
            return 0.0;
        }
        self.hit_passes as f64 / self.engine_passes as f64
    }
}

struct Job {
    req: Request,
    enqueued: Instant,
}

#[derive(Default)]
struct QueueState {
    q: VecDeque<Job>,
    paused: bool,
    shutdown: bool,
}

#[derive(Default)]
struct WorkerQueue {
    m: Mutex<QueueState>,
    cv: Condvar,
}

struct Shared {
    cfg: ServeConfig,
    queues: Vec<WorkerQueue>,
    stats: Mutex<ServerStats>,
}

/// A running server. Submit requests, receive [`Response`]s (exactly one
/// per submitted request, shed included), then [`Server::shutdown`].
/// Dropping the server shuts it down implicitly.
pub struct Server {
    shared: Arc<Shared>,
    resp_tx: Option<Sender<Response>>,
    resp_rx: Receiver<Response>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts `cfg.workers` worker threads and returns the handle.
    pub fn start(cfg: ServeConfig) -> Server {
        let cfg = ServeConfig {
            workers: cfg.workers.max(1),
            queue_cap: cfg.queue_cap.max(1),
            ..cfg
        };
        let shared = Arc::new(Shared {
            cfg,
            queues: (0..cfg.workers.max(1))
                .map(|_| WorkerQueue::default())
                .collect(),
            stats: Mutex::new(ServerStats::default()),
        });
        let (resp_tx, resp_rx) = channel();
        let handles = (0..shared.cfg.workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                let tx = resp_tx.clone();
                std::thread::Builder::new()
                    .name(format!("optipart-serve-{idx}"))
                    .spawn(move || worker_loop(shared, idx, tx))
                    .expect("spawn worker")
            })
            .collect();
        Server {
            shared,
            resp_tx: Some(resp_tx),
            resp_rx,
            handles,
        }
    }

    /// Offers a request. Returns `false` when the target worker's queue is
    /// full — the request is *shed*: never executed, answered immediately
    /// on the response channel with [`Status::Shed`] and its one-line
    /// replay command. Exactly one response per submit either way.
    pub fn submit(&self, req: Request) -> bool {
        let w = req.shard(self.shared.cfg.workers);
        let queued = {
            let mut st = self.shared.queues[w].m.lock().unwrap();
            if st.q.len() >= self.shared.cfg.queue_cap {
                false
            } else {
                st.q.push_back(Job {
                    req: req.clone(),
                    enqueued: Instant::now(),
                });
                true
            }
        };
        {
            let mut s = self.shared.stats.lock().unwrap();
            s.submitted += 1;
            if !queued {
                s.shed += 1;
            }
        }
        if queued {
            self.shared.queues[w].cv.notify_one();
        } else {
            let resp = Response {
                id: req.id,
                status: Status::Shed,
                payload: None,
                replay: Some(req.scn.replay_cmd()),
                worker: w,
                warm: WarmPath::None,
                batched: 0,
                virtual_s: 0.0,
                wall_us: 0,
            };
            self.resp_tx
                .as_ref()
                .expect("server running")
                .send(resp)
                .ok();
        }
        queued
    }

    /// Holds all workers: queued and newly submitted requests accumulate
    /// without being popped. With batching on, the queue contents at
    /// [`Server::release`] determine batch composition deterministically.
    pub fn pause(&self) {
        for q in &self.shared.queues {
            q.m.lock().unwrap().paused = true;
        }
    }

    /// Releases paused workers.
    pub fn release(&self) {
        for q in &self.shared.queues {
            q.m.lock().unwrap().paused = false;
            q.cv.notify_all();
        }
    }

    /// Blocking receive of the next response.
    pub fn recv(&self) -> Response {
        self.resp_rx.recv().expect("server running")
    }

    /// Non-blocking receive: the next response if one is ready.
    pub fn try_recv(&self) -> Option<Response> {
        self.resp_rx.try_recv().ok()
    }

    /// Blocking receive of exactly `n` responses (arrival order).
    pub fn drain(&self, n: usize) -> Vec<Response> {
        (0..n).map(|_| self.recv()).collect()
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> ServerStats {
        *self.shared.stats.lock().unwrap()
    }

    /// Stops accepting work, lets workers finish queued requests, joins
    /// them, and returns the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        for q in &self.shared.queues {
            let mut st = q.m.lock().unwrap();
            st.shutdown = true;
            q.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            h.join().expect("worker exits cleanly");
        }
        self.resp_tx = None;
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.stop();
        }
    }
}

type EngineKey = (usize, String, AppKind);

fn worker_loop(shared: Arc<Shared>, idx: usize, tx: Sender<Response>) {
    // Warm state per rank count: entries are fingerprinted by `p`, so one
    // map slot per width keeps every request on its own warm path.
    let mut states: BTreeMap<usize, PartitionState> = BTreeMap::new();
    let mut engines: Vec<(EngineKey, Engine)> = Vec::new();
    while let Some(batch) = next_batch(&shared, idx) {
        serve_batch(&shared, idx, &tx, &mut states, &mut engines, batch);
    }
}

/// Pops the next batch: the queue head plus (with batching) every queued
/// same-key request. Returns `None` on shutdown with an empty queue.
fn next_batch(shared: &Shared, idx: usize) -> Option<Vec<Job>> {
    let wq = &shared.queues[idx];
    let mut st = wq.m.lock().unwrap();
    loop {
        if st.q.is_empty() {
            if st.shutdown {
                return None;
            }
        } else if !st.paused || st.shutdown {
            break;
        }
        st = wq.cv.wait(st).unwrap();
    }
    let head = st.q.pop_front().expect("queue non-empty");
    let mut batch = vec![head];
    if shared.cfg.batching {
        let key = batch[0].req.key();
        let mut rest = VecDeque::with_capacity(st.q.len());
        while let Some(job) = st.q.pop_front() {
            if job.req.key() == key {
                batch.push(job);
            } else {
                rest.push_back(job);
            }
        }
        st.q = rest;
    }
    Some(batch)
}

fn warm_label(before: WarmStats, after: WarmStats) -> WarmPath {
    if after.hits > before.hits {
        WarmPath::Hit
    } else if after.replays > before.replays {
        WarmPath::Replay
    } else {
        WarmPath::Cold
    }
}

fn serve_batch(
    shared: &Shared,
    idx: usize,
    tx: &Sender<Response>,
    states: &mut BTreeMap<usize, PartitionState>,
    engines: &mut Vec<(EngineKey, Engine)>,
    batch: Vec<Job>,
) {
    let scn: Scenario = batch[0].req.scn.clone();
    let (payload, virtual_s, warm) = if scn.faults.is_some() {
        // Fault plans make engines single-use (a shrink is permanent) and
        // their deaths would poison a shared warm state's statistics, so
        // faulted requests run isolated: fresh engine, throwaway state.
        let mut engine = scn.engine_faulted();
        let mut state = PartitionState::with_cap(1);
        let (p, t) = run_request(&mut engine, &mut state, &scn);
        (p, t, warm_label(WarmStats::default(), state.stats))
    } else {
        let engine = cached_engine(engines, shared.cfg.engine_cache, &scn);
        let state = states
            .entry(scn.p)
            .or_insert_with(|| PartitionState::with_cap(shared.cfg.state_cap));
        let before = state.stats;
        let (p, t) = run_request(engine, state, &scn);
        (p, t, warm_label(before, state.stats))
    };
    {
        let mut s = shared.stats.lock().unwrap();
        s.engine_passes += 1;
        match warm {
            WarmPath::Hit => s.hit_passes += 1,
            WarmPath::Replay => s.replay_passes += 1,
            _ => s.cold_passes += 1,
        }
        s.completed += batch.len() as u64;
        s.batched_extra += batch.len() as u64 - 1;
        s.deaths += payload.deaths as u64;
    }
    let size = batch.len() as u32;
    for job in batch {
        let status = match job.req.deadline_s {
            Some(d) if virtual_s > d => Status::Deadline,
            _ => Status::Ok,
        };
        let resp = Response {
            id: job.req.id,
            status,
            payload: Some(payload.clone()),
            replay: None,
            worker: idx,
            warm,
            batched: size,
            virtual_s,
            wall_us: job.enqueued.elapsed().as_micros() as u64,
        };
        // A dropped receiver just means the client went away mid-drain.
        tx.send(resp).ok();
    }
}

/// Looks up (or creates) the worker's long-lived engine for this scenario's
/// `(p, machine, app)` — LRU by recency, fault-free configs only.
fn cached_engine<'a>(
    engines: &'a mut Vec<(EngineKey, Engine)>,
    cap: usize,
    scn: &Scenario,
) -> &'a mut Engine {
    let key: EngineKey = (scn.p, scn.machine.name.clone(), scn.app);
    if let Some(pos) = engines.iter().position(|(k, _)| *k == key) {
        let slot = engines.remove(pos);
        engines.push(slot);
    } else {
        engines.push((key, scn.engine()));
        if engines.len() > cap.max(1) {
            engines.remove(0);
        }
    }
    &mut engines.last_mut().expect("just pushed").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;

    fn cfg(workers: usize, queue_cap: usize, batching: bool) -> ServeConfig {
        ServeConfig {
            workers,
            queue_cap,
            state_cap: 8,
            engine_cache: 2,
            batching,
        }
    }

    fn req(id: u64, seed: u64) -> Request {
        Request {
            id,
            scn: Scenario::from_seed(seed),
            deadline_s: None,
        }
    }

    #[test]
    fn saturated_queue_sheds_deterministically_and_never_deadlocks() {
        // One worker, cap 4, paused: of 10 same-scenario submissions the
        // first 4 queue and the last 6 shed — deterministically, because
        // shedding happens at submit time under the queue lock.
        let server = Server::start(cfg(1, 4, true));
        server.pause();
        let outcomes: Vec<bool> = (0..10).map(|i| server.submit(req(i, 500))).collect();
        assert_eq!(
            outcomes,
            [true, true, true, true, false, false, false, false, false, false]
        );
        // Shed responses arrive immediately, even while workers are paused.
        let shed: Vec<Response> = server.drain(6);
        let want_replay = Scenario::from_seed(500).replay_cmd();
        for r in &shed {
            assert_eq!(r.status, Status::Shed);
            assert!(r.payload.is_none());
            assert_eq!(
                r.replay.as_deref(),
                Some(want_replay.as_str()),
                "every shed request reports its replay seed"
            );
            assert!(r.id >= 4, "only the tail submissions shed");
        }
        server.release();
        let served = server.drain(4);
        assert!(served.iter().all(|r| r.status == Status::Ok));
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.shed, 6);
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn shed_set_is_deterministic_across_multiple_workers() {
        // Sharding is a pure function of the scenario key, so with the
        // submission order fixed, which requests shed is reproducible even
        // with several workers.
        let run = || {
            let server = Server::start(cfg(3, 2, true));
            server.pause();
            let shed_ids: Vec<u64> = (0..24)
                .filter(|&i| !server.submit(req(i, 9000 + (i % 8))))
                .collect();
            server.release();
            server.drain(24);
            server.shutdown();
            shed_ids
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(
            !a.is_empty(),
            "cap 2 × 3 workers cannot hold 8 distinct scenarios × 3"
        );
    }

    #[test]
    fn paused_burst_batches_same_key_requests_into_one_pass() {
        let server = Server::start(cfg(1, 64, true));
        server.pause();
        for i in 0..5 {
            assert!(server.submit(req(i, 1234)));
        }
        server.release();
        let resps = server.drain(5);
        let stats = server.stats();
        assert_eq!(stats.engine_passes, 1, "one pass serves the whole batch");
        assert_eq!(stats.batched_extra, 4);
        let want = direct(&Scenario::from_seed(1234));
        for r in &resps {
            assert_eq!(r.batched, 5);
            assert_eq!(r.payload.as_ref(), Some(&want));
        }
        server.shutdown();
    }

    #[test]
    fn batching_off_serves_each_request_with_its_own_pass() {
        let server = Server::start(cfg(1, 64, false));
        server.pause();
        for i in 0..5 {
            assert!(server.submit(req(i, 1234)));
        }
        server.release();
        let resps = server.drain(5);
        let stats = server.shutdown();
        assert_eq!(stats.engine_passes, 5);
        assert_eq!(stats.hit_passes, 4, "passes 2..5 are exact warm hits");
        let want = direct(&Scenario::from_seed(1234));
        assert!(resps.iter().all(|r| r.payload.as_ref() == Some(&want)));
    }

    #[test]
    fn deadline_budget_is_judged_on_the_serving_pass() {
        let mut tight = req(0, 4321);
        tight.deadline_s = Some(1e-12);
        let mut loose = req(1, 4321);
        loose.deadline_s = Some(1e9);
        let server = Server::start(cfg(1, 8, false));
        server.submit(tight);
        server.submit(loose);
        let resps = server.drain(2);
        server.shutdown();
        let by_id = |id: u64| resps.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id(0).status, Status::Deadline);
        assert!(
            by_id(0).payload.is_some(),
            "deadline responses still carry the result"
        );
        assert_eq!(by_id(1).status, Status::Ok);
        // Both payloads are the same partition regardless of status.
        assert_eq!(by_id(0).payload, by_id(1).payload);
    }

    #[test]
    fn per_p_states_and_engine_cache_keep_mixed_widths_warm() {
        // Alternating two scenarios with different p must not thrash: after
        // the first round both stay on the exact-hit path.
        let mut seeds = (0..).map(Scenario::from_seed);
        let a = seeds.by_ref().find(|s| s.faults.is_none()).unwrap();
        let b = seeds
            .by_ref()
            .find(|s| s.faults.is_none() && s.p != a.p)
            .unwrap();
        let server = Server::start(cfg(1, 64, false));
        let mut id = 0;
        for _ in 0..3 {
            for scn in [&a, &b] {
                server.submit(Request {
                    id,
                    scn: scn.clone(),
                    deadline_s: None,
                });
                id += 1;
            }
        }
        server.drain(id as usize);
        let stats = server.shutdown();
        assert_eq!(stats.engine_passes, 6);
        assert_eq!(stats.cold_passes, 2, "one cold per scenario, ever");
        assert_eq!(stats.hit_passes, 4, "{stats:?}");
    }

    #[test]
    fn faulted_requests_run_isolated_and_stay_bit_identical() {
        use optipart_mpisim::FaultPlan;
        let mut scn = (0..)
            .map(|s| Scenario::from_seed(7100 + s))
            .find(|s| s.p >= 3 && s.n >= 80)
            .unwrap();
        scn.faults = Some(FaultPlan::new(scn.seed).kill_rank(0, 5));
        let clean = Scenario {
            faults: None,
            ..scn.clone()
        };
        let server = Server::start(cfg(1, 16, true));
        server.submit(Request {
            id: 0,
            scn: clean.clone(),
            deadline_s: None,
        });
        server.submit(Request {
            id: 1,
            scn: scn.clone(),
            deadline_s: None,
        });
        server.submit(Request {
            id: 2,
            scn: clean.clone(),
            deadline_s: None,
        });
        let resps = server.drain(3);
        let stats = server.shutdown();
        assert!(stats.deaths >= 1, "the kill must actually fire: {stats:?}");
        let by_id = |id: u64| resps.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id(1).payload.as_ref(), Some(&direct(&scn)));
        assert_eq!(by_id(0).payload.as_ref(), Some(&direct(&clean)));
        assert_eq!(
            by_id(2).payload,
            by_id(0).payload,
            "a death on the faulted request must not leak into clean serving"
        );
    }

    #[test]
    fn shutdown_drains_queued_work_before_exiting() {
        let server = Server::start(cfg(2, 64, true));
        server.pause();
        for i in 0..8 {
            server.submit(req(i, 33000 + i));
        }
        server.release();
        let stats = server.shutdown();
        assert_eq!(stats.completed + stats.shed, 8);
    }
}
