//! The concurrent front end: sharded workers over bounded queues.
//!
//! One OS thread per worker (`mpisim::par` handles intra-pass parallelism;
//! no async runtime — the tier-1 build stays std-only and offline). Each
//! worker owns:
//!
//! * a bounded `Mutex<VecDeque>` + `Condvar` request queue (backpressure:
//!   a full queue sheds at *submit* time, before any worker involvement, so
//!   shedding is deterministic given queue contents and can never block);
//! * one persistent warm [`PartitionState`] **per rank count** `p` (states
//!   are fingerprint-invalidated on `p` mismatch, so a shared state would
//!   thrash between requests of different widths);
//! * a small LRU of long-lived engines keyed `(p, machine, app, hier)` —
//!   **fault-free requests only**. A request carrying a fault plan gets a
//!   fresh engine and a throwaway state: `Engine::reset` re-arms kill
//!   schedules but a shrink is permanent, so an engine that lost a rank
//!   must never serve another request.
//!
//! Batching: the worker pops the queue head, then (with
//! [`ServeConfig::batching`]) drains every queued request with the same
//! scenario key and answers them all from one engine pass. Under
//! [`Server::pause`]/[`Server::release`] the queue contents at release time
//! are exactly the submitted burst, which makes batch composition — and
//! therefore pass counts, warm stats and allocation counts — fully
//! deterministic; the bench kernels and tests rely on this.
//!
//! # Crash isolation and request conservation
//!
//! The invariant everything below defends: **every submitted request id is
//! answered exactly once** — served, shed, rejected, or failed
//! ([`ServerStats::conservation`] checks the counter form of this, and
//! `soak::verify_responses_with` the id-by-id form).
//!
//! Two layers keep a panicking engine pass from breaking it:
//!
//! 1. Every batch is moved from the queue into the worker's `in_flight`
//!    list *under the queue lock* before the pass runs, and each pass runs
//!    inside `catch_unwind`. On a panic the worker quarantines the warm
//!    state for the batch's rank count and the engine-cache entry for its
//!    `(p, machine, app, hier)` key (both may have been mid-mutation),
//!    answers
//!    every in-flight request with [`Status::Failed`] — panic summary plus
//!    exact replay command attached — and keeps serving.
//! 2. If a panic ever escapes the per-pass layer (a bug in the worker loop
//!    itself), an outer `catch_unwind` fails whatever is still in flight
//!    and respawns the loop with fresh caches — the whole-worker
//!    quarantine.
//!
//! Locks use a poison-tolerant helper: a panic while holding the stats or
//! queue mutex must not cascade into every other thread.

use crate::chaos::{panic_summary, PanicPoint, PanicSchedule};
use crate::protocol::{Request, Response, Status, WarmPath};
use crate::run_request;
use optipart_core::optipart::{PartitionState, WarmStats, DEFAULT_STATE_CAP};
use optipart_mpisim::Engine;
use optipart_scenario::{AppKind, HierKind, Scenario};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Locks `m`, recovering the guard if a previous holder panicked: the data
/// under every mutex here (queues, counters) stays structurally valid across
/// a panic, and crash isolation must not turn one panic into a poison
/// cascade.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Submit-time admission policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Admission {
    /// Backpressure only: the sole submit-time rejection is a full queue
    /// (shed). Deadline budgets are judged after serving.
    #[default]
    ShedOnly,
    /// Additionally reject a deadline-carrying request when its target
    /// queue's virtual-time backlog (sum of [`crate::estimate_virtual_s`]
    /// over queued jobs) already exceeds the deadline budget — the pass
    /// could only come back flagged late, so the cycles are better spent on
    /// requests that can still win. Deterministic given queue contents.
    DeadlineAware,
}

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads (shards). Default: one per core.
    pub workers: usize,
    /// Bounded queue depth per worker; submissions past this are shed.
    pub queue_cap: usize,
    /// Warm [`PartitionState`] LRU bound per (worker, rank count) — the
    /// configurable `STATE_CAP` of DESIGN.md §14.
    pub state_cap: usize,
    /// Long-lived engines kept per worker (fault-free configs only).
    pub engine_cache: usize,
    /// Serve same-key queued requests with one engine pass.
    pub batching: bool,
    /// Submit-time admission policy.
    pub admission: Admission,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_cap: 64,
            state_cap: DEFAULT_STATE_CAP,
            engine_cache: 4,
            batching: true,
            admission: Admission::ShedOnly,
        }
    }
}

/// Aggregate service counters (monotone over the server's lifetime).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Requests offered to [`Server::submit`]/[`Ingress::submit_with`].
    pub submitted: u64,
    /// Requests answered with a payload (ok or deadline).
    pub completed: u64,
    /// Requests rejected by backpressure.
    pub shed: u64,
    /// Requests rejected by deadline-aware admission.
    pub rejected: u64,
    /// Requests answered [`Status::Failed`] after a worker panic.
    pub failed: u64,
    /// Worker panics caught (per-pass or whole-loop).
    pub panics: u64,
    /// Engine passes run to completion (≤ completed when batching merges
    /// requests; panicked passes count under `panics`, not here).
    pub engine_passes: u64,
    /// Passes served from an exact warm hit.
    pub hit_passes: u64,
    /// Passes served from a table-accelerated replay.
    pub replay_passes: u64,
    /// Passes that paid the cold ladder.
    pub cold_passes: u64,
    /// Requests that joined an existing pass (batch followers).
    pub batched_extra: u64,
    /// Fail-stop deaths absorbed while serving.
    pub deaths: u64,
    /// Connections a front end folded in ([`Ingress::fold_connection`]).
    pub connections: u64,
    /// Connections that ended in a mid-line EOF (client vanished).
    pub disconnects: u64,
    /// Malformed request lines answered with an error line.
    pub malformed_lines: u64,
    /// Request lines past the byte cap, swallowed and answered with an
    /// error line.
    pub oversized_lines: u64,
    /// Connection-level I/O failures (failed clone, broken pipe, …).
    pub io_errors: u64,
}

impl ServerStats {
    /// Fraction of completed requests served *without* paying a cold
    /// ladder — exact hits, warm replays, or batch followers. This is the
    /// "warm-hit rate" the service is gated on: it lower-bounds to
    /// `1 − distinct_scenarios / requests` regardless of timing, because a
    /// scenario can only go cold once per worker state.
    pub fn warm_request_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        1.0 - self.cold_passes as f64 / self.completed as f64
    }

    /// Exact-hit fraction of engine passes.
    pub fn hit_rate(&self) -> f64 {
        if self.engine_passes == 0 {
            return 0.0;
        }
        self.hit_passes as f64 / self.engine_passes as f64
    }

    /// The request-conservation invariant in counter form: every submitted
    /// request reached exactly one terminal state. Checked at
    /// [`Server::shutdown`] and by every soak/chaos driver.
    pub fn conservation(&self) -> Result<(), String> {
        let answered = self.completed + self.shed + self.rejected + self.failed;
        if answered == self.submitted {
            Ok(())
        } else {
            Err(format!(
                "conservation violated: {} submitted but {} answered \
                 ({} completed + {} shed + {} rejected + {} failed)",
                self.submitted, answered, self.completed, self.shed, self.rejected, self.failed
            ))
        }
    }
}

/// Per-connection counters collected by a front end (one stdin stream or
/// one accepted socket client), folded into the server-wide [`ServerStats`]
/// with [`Ingress::fold_connection`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnStats {
    /// Non-blank request lines read (including bad ones).
    pub lines: u64,
    /// Requests successfully parsed and submitted.
    pub submitted: u64,
    /// Responses delivered back (or drained after the client vanished).
    pub responses: u64,
    /// Lines rejected by the parser.
    pub malformed: u64,
    /// Lines past the byte cap.
    pub oversized: u64,
    /// The stream ended mid-line (client disconnected without a newline).
    pub mid_line_eof: bool,
    /// Write/clone failures on this connection.
    pub io_errors: u64,
}

/// Outcome of [`Ingress::submit_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Queued on its shard; the pass's response will arrive on the reply
    /// channel.
    Queued,
    /// Shed by backpressure; the shed response was already sent.
    Shed,
    /// Rejected by deadline-aware admission; the rejection response was
    /// already sent.
    Rejected,
}

struct Job {
    req: Request,
    /// Coarse virtual-time estimate ([`crate::estimate_virtual_s`]), fixed
    /// at submit so backlog sums are a pure function of queue contents.
    est: f64,
    enqueued: Instant,
    reply: Sender<Response>,
}

#[derive(Default)]
struct QueueState {
    q: VecDeque<Job>,
    /// The batch currently being served: moved here (under the lock) before
    /// the pass runs, so a panicking worker can still answer every job it
    /// had claimed.
    in_flight: Vec<Job>,
    paused: bool,
    shutdown: bool,
}

#[derive(Default)]
struct WorkerQueue {
    m: Mutex<QueueState>,
    cv: Condvar,
}

struct Shared {
    cfg: ServeConfig,
    queues: Vec<WorkerQueue>,
    stats: Mutex<ServerStats>,
    /// Armed chaos panics (worker, pass) — `None` outside chaos runs.
    chaos: Option<PanicSchedule>,
    /// Monotone engine-pass counter per worker (panicked passes included),
    /// the clock chaos schedules fire against.
    pass_counts: Vec<AtomicU64>,
}

/// A cloneable, thread-safe submission handle onto a running [`Server`]:
/// what each connection thread holds. Responses go to the per-connection
/// reply channel passed to [`Ingress::submit_with`], so one slow or dead
/// client never blocks another's responses.
#[derive(Clone)]
pub struct Ingress {
    shared: Arc<Shared>,
}

enum Decision {
    Queued,
    Shed(Request, f64),
    Rejected(Request, f64),
}

impl Ingress {
    /// Offers a request, directing its response to `reply`. Shed and
    /// rejected requests are answered immediately on `reply` (with a
    /// replay command and a deterministic `retry_after_s` hint); queued
    /// requests are answered by their serving worker. Exactly one response
    /// per call either way.
    pub fn submit_with(&self, req: Request, reply: &Sender<Response>) -> Admit {
        let shared = &self.shared;
        let w = req.shard(shared.cfg.workers);
        let est = crate::estimate_virtual_s(&req.scn);
        let decision = {
            let mut st = lock(&shared.queues[w].m);
            if st.q.len() >= shared.cfg.queue_cap {
                // Hint: the head job's pass is what frees the next slot.
                let head_est = st.q.front().map_or(est, |j| j.est);
                Decision::Shed(req, head_est)
            } else {
                let over_budget = match (shared.cfg.admission, req.deadline_s) {
                    (Admission::DeadlineAware, Some(d)) => {
                        let backlog: f64 = st.q.iter().map(|j| j.est).sum();
                        (backlog > d).then_some((backlog - d).max(0.0))
                    }
                    _ => None,
                };
                match over_budget {
                    Some(over) => Decision::Rejected(req, over),
                    None => {
                        st.q.push_back(Job {
                            req,
                            est,
                            enqueued: Instant::now(),
                            reply: reply.clone(),
                        });
                        Decision::Queued
                    }
                }
            }
        };
        {
            let mut s = lock(&shared.stats);
            s.submitted += 1;
            match decision {
                Decision::Queued => {}
                Decision::Shed(..) => s.shed += 1,
                Decision::Rejected(..) => s.rejected += 1,
            }
        }
        match decision {
            Decision::Queued => {
                shared.queues[w].cv.notify_one();
                Admit::Queued
            }
            Decision::Shed(req, retry) => {
                reply.send(turned_away(req, Status::Shed, w, retry)).ok();
                Admit::Shed
            }
            Decision::Rejected(req, retry) => {
                reply
                    .send(turned_away(req, Status::Rejected, w, retry))
                    .ok();
                Admit::Rejected
            }
        }
    }

    /// Folds one finished connection's counters into the server-wide stats.
    pub fn fold_connection(&self, c: &ConnStats) {
        let mut s = lock(&self.shared.stats);
        s.connections += 1;
        s.malformed_lines += c.malformed;
        s.oversized_lines += c.oversized;
        s.io_errors += c.io_errors;
        if c.mid_line_eof {
            s.disconnects += 1;
        }
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> ServerStats {
        *lock(&self.shared.stats)
    }
}

fn turned_away(req: Request, status: Status, worker: usize, retry_after_s: f64) -> Response {
    Response {
        id: req.id,
        status,
        payload: None,
        replay: Some(req.scn.replay_cmd()),
        worker,
        warm: WarmPath::None,
        batched: 0,
        virtual_s: 0.0,
        wall_us: 0,
        retry_after_s: Some(retry_after_s),
        error: None,
    }
}

/// A running server. Submit requests, receive [`Response`]s (exactly one
/// per submitted request — shed, rejected and failed included), then
/// [`Server::shutdown`]. Dropping the server shuts it down implicitly.
pub struct Server {
    shared: Arc<Shared>,
    resp_tx: Option<Sender<Response>>,
    resp_rx: Receiver<Response>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts `cfg.workers` worker threads and returns the handle.
    pub fn start(cfg: ServeConfig) -> Server {
        Server::start_inner(cfg, None)
    }

    /// [`Server::start`] with an armed chaos schedule: the named engine
    /// passes panic on purpose, exercising the crash-isolation path
    /// deterministically (see `serve::chaos`).
    pub fn start_chaos(cfg: ServeConfig, schedule: PanicSchedule) -> Server {
        Server::start_inner(cfg, Some(schedule))
    }

    fn start_inner(cfg: ServeConfig, chaos: Option<PanicSchedule>) -> Server {
        let cfg = ServeConfig {
            workers: cfg.workers.max(1),
            queue_cap: cfg.queue_cap.max(1),
            ..cfg
        };
        let shared = Arc::new(Shared {
            cfg,
            queues: (0..cfg.workers).map(|_| WorkerQueue::default()).collect(),
            stats: Mutex::new(ServerStats::default()),
            chaos,
            pass_counts: (0..cfg.workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let (resp_tx, resp_rx) = channel();
        let handles = (0..shared.cfg.workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("optipart-serve-{idx}"))
                    .spawn(move || worker_thread(shared, idx))
                    .expect("spawn worker")
            })
            .collect();
        Server {
            shared,
            resp_tx: Some(resp_tx),
            resp_rx,
            handles,
        }
    }

    /// A cloneable, thread-safe submission handle for connection threads.
    pub fn ingress(&self) -> Ingress {
        Ingress {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Offers a request with the server's own response channel as the
    /// reply target (the single-stream front). Returns `true` iff queued;
    /// shed/rejected requests are answered immediately on the channel.
    pub fn submit(&self, req: Request) -> bool {
        let reply = self.resp_tx.as_ref().expect("server running");
        self.ingress().submit_with(req, reply) == Admit::Queued
    }

    /// Holds all workers: queued and newly submitted requests accumulate
    /// without being popped. With batching on, the queue contents at
    /// [`Server::release`] determine batch composition deterministically.
    pub fn pause(&self) {
        for q in &self.shared.queues {
            lock(&q.m).paused = true;
        }
    }

    /// Releases paused workers.
    pub fn release(&self) {
        for q in &self.shared.queues {
            lock(&q.m).paused = false;
            q.cv.notify_all();
        }
    }

    /// Blocking receive of the next response.
    pub fn recv(&self) -> Response {
        self.resp_rx.recv().expect("server running")
    }

    /// Non-blocking receive: the next response if one is ready.
    pub fn try_recv(&self) -> Option<Response> {
        self.resp_rx.try_recv().ok()
    }

    /// Blocking receive of exactly `n` responses (arrival order).
    pub fn drain(&self, n: usize) -> Vec<Response> {
        (0..n).map(|_| self.recv()).collect()
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> ServerStats {
        *lock(&self.shared.stats)
    }

    /// Stops accepting work, lets workers finish queued requests, joins
    /// them, and returns the final counters. Panics if the conservation
    /// invariant broke — a response was lost or duplicated somewhere.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        let stats = self.stats();
        if let Err(e) = stats.conservation() {
            panic!("shutdown: {e}");
        }
        stats
    }

    fn stop(&mut self) {
        for q in &self.shared.queues {
            let mut st = lock(&q.m);
            st.shutdown = true;
            q.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            h.join().expect("worker exits cleanly");
        }
        self.resp_tx = None;
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.stop();
        }
    }
}

type EngineKey = (usize, String, AppKind, HierKind);

/// The outer crash-isolation layer: if a panic ever escapes the per-pass
/// `catch_unwind` in [`serve_batch`] (a bug in the loop itself, not the
/// engine), fail whatever was in flight and respawn the loop with fresh
/// caches — the whole-worker quarantine.
fn worker_thread(shared: Arc<Shared>, idx: usize) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, idx))) {
            Ok(()) => return,
            Err(payload) => {
                let summary = panic_summary(payload.as_ref());
                {
                    let mut s = lock(&shared.stats);
                    s.panics += 1;
                }
                fail_in_flight(&shared, idx, &summary);
            }
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    // Warm state per rank count: entries are fingerprinted by `p`, so one
    // map slot per width keeps every request on its own warm path.
    let mut states: BTreeMap<usize, PartitionState> = BTreeMap::new();
    let mut engines: Vec<(EngineKey, Engine)> = Vec::new();
    // Reused across batches: `in_flight` is swapped into this after each
    // pass, so the steady state allocates nothing per batch.
    let mut spare: Vec<Job> = Vec::new();
    while let Some(scn) = next_batch(shared, idx) {
        serve_batch(shared, idx, &mut states, &mut engines, &mut spare, scn);
    }
}

/// Claims the next batch: the queue head plus (with batching) every queued
/// same-key request, moved into the worker's `in_flight` list under the
/// lock — from this instant a crash anywhere still answers them. Returns
/// the batch's scenario, or `None` on shutdown with an empty queue.
fn next_batch(shared: &Shared, idx: usize) -> Option<Scenario> {
    let wq = &shared.queues[idx];
    let mut st = lock(&wq.m);
    loop {
        if st.q.is_empty() {
            if st.shutdown {
                return None;
            }
        } else if !st.paused || st.shutdown {
            break;
        }
        st = wq
            .cv
            .wait(st)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
    let head = st.q.pop_front().expect("queue non-empty");
    let scn = head.req.scn.clone();
    let key = head.req.key();
    st.in_flight.push(head);
    if shared.cfg.batching {
        let mut rest = VecDeque::with_capacity(st.q.len());
        while let Some(job) = st.q.pop_front() {
            if job.req.key() == key {
                st.in_flight.push(job);
            } else {
                rest.push_back(job);
            }
        }
        st.q = rest;
    }
    Some(scn)
}

fn warm_label(before: WarmStats, after: WarmStats) -> WarmPath {
    if after.hits > before.hits {
        WarmPath::Hit
    } else if after.replays > before.replays {
        WarmPath::Replay
    } else {
        WarmPath::Cold
    }
}

fn serve_batch(
    shared: &Shared,
    idx: usize,
    states: &mut BTreeMap<usize, PartitionState>,
    engines: &mut Vec<(EngineKey, Engine)>,
    spare: &mut Vec<Job>,
    scn: Scenario,
) {
    let pass_no = shared.pass_counts[idx].fetch_add(1, Ordering::Relaxed);
    let key: EngineKey = (scn.p, scn.machine.name.clone(), scn.app, scn.hier);
    // The per-pass crash-isolation layer. `AssertUnwindSafe` is justified
    // by what the Err arm does: any value the closure may have left
    // half-mutated (the warm state for this `p`, the cached engine for
    // this key) is quarantined before the worker touches it again.
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(ch) = &shared.chaos {
            ch.check(idx, pass_no, PanicPoint::Before);
        }
        let out = if scn.faults.is_some() {
            // Fault plans make engines single-use (a shrink is permanent)
            // and their deaths would poison a shared warm state's
            // statistics, so faulted requests run isolated: fresh engine,
            // throwaway state.
            let mut engine = scn.engine_faulted();
            let mut state = PartitionState::with_cap(1);
            let (p, t) = run_request(&mut engine, &mut state, &scn);
            (p, t, warm_label(WarmStats::default(), state.stats))
        } else {
            let engine = cached_engine(engines, shared.cfg.engine_cache, &scn);
            let state = states
                .entry(scn.p)
                .or_insert_with(|| PartitionState::with_cap(shared.cfg.state_cap));
            let before = state.stats;
            let (p, t) = run_request(engine, state, &scn);
            (p, t, warm_label(before, state.stats))
        };
        if let Some(ch) = &shared.chaos {
            // The harshest point to die: the caches are already mutated but
            // no response has been sent.
            ch.check(idx, pass_no, PanicPoint::After);
        }
        out
    }));
    // Reclaim the claimed batch — present whether the pass completed or
    // panicked — into the reusable spare vec.
    {
        let mut st = lock(&shared.queues[idx].m);
        std::mem::swap(&mut st.in_flight, spare);
    }
    let size = spare.len() as u32;
    match result {
        Ok((payload, virtual_s, warm)) => {
            {
                let mut s = lock(&shared.stats);
                s.engine_passes += 1;
                match warm {
                    WarmPath::Hit => s.hit_passes += 1,
                    WarmPath::Replay => s.replay_passes += 1,
                    _ => s.cold_passes += 1,
                }
                s.completed += size as u64;
                s.batched_extra += size as u64 - 1;
                s.deaths += payload.deaths as u64;
            }
            for job in spare.drain(..) {
                let status = match job.req.deadline_s {
                    Some(d) if virtual_s > d => Status::Deadline,
                    _ => Status::Ok,
                };
                let resp = Response {
                    id: job.req.id,
                    status,
                    payload: Some(payload.clone()),
                    replay: None,
                    worker: idx,
                    warm,
                    batched: size,
                    virtual_s,
                    wall_us: job.enqueued.elapsed().as_micros() as u64,
                    retry_after_s: None,
                    error: None,
                };
                // A dropped receiver just means the client went away
                // mid-drain.
                job.reply.send(resp).ok();
            }
        }
        Err(payload) => {
            // Quarantine first: both caches this pass touched may hold
            // half-mutated values.
            states.remove(&scn.p);
            if let Some(pos) = engines.iter().position(|(k, _)| *k == key) {
                engines.remove(pos);
            }
            let summary = panic_summary(payload.as_ref());
            {
                let mut s = lock(&shared.stats);
                s.panics += 1;
                s.failed += size as u64;
            }
            for job in spare.drain(..) {
                job.reply
                    .send(failed_response(&job, idx, size, &summary))
                    .ok();
            }
        }
    }
}

fn failed_response(job: &Job, worker: usize, batched: u32, summary: &str) -> Response {
    Response {
        id: job.req.id,
        status: Status::Failed,
        payload: None,
        replay: Some(job.req.scn.replay_cmd()),
        worker,
        warm: WarmPath::None,
        batched,
        virtual_s: 0.0,
        wall_us: job.enqueued.elapsed().as_micros() as u64,
        retry_after_s: None,
        error: Some(summary.to_string()),
    }
}

/// Answers every job the worker had claimed when a panic escaped the
/// per-pass layer (outer quarantine).
fn fail_in_flight(shared: &Shared, idx: usize, summary: &str) {
    let jobs: Vec<Job> = {
        let mut st = lock(&shared.queues[idx].m);
        std::mem::take(&mut st.in_flight)
    };
    if jobs.is_empty() {
        return;
    }
    {
        let mut s = lock(&shared.stats);
        s.failed += jobs.len() as u64;
    }
    let size = jobs.len() as u32;
    for job in &jobs {
        job.reply
            .send(failed_response(job, idx, size, summary))
            .ok();
    }
}

/// Looks up (or creates) the worker's long-lived engine for this scenario's
/// `(p, machine, app, hier)` — LRU by recency, fault-free configs only. The
/// hierarchy is part of the key because an engine's `PerfModel` is fixed at
/// construction: a `hier=smp` request served on an engine built flat would
/// report flat quality scores (and a flat `Tp`) for its payload.
fn cached_engine<'a>(
    engines: &'a mut Vec<(EngineKey, Engine)>,
    cap: usize,
    scn: &Scenario,
) -> &'a mut Engine {
    let key: EngineKey = (scn.p, scn.machine.name.clone(), scn.app, scn.hier);
    if let Some(pos) = engines.iter().position(|(k, _)| *k == key) {
        let slot = engines.remove(pos);
        engines.push(slot);
    } else {
        engines.push((key, scn.engine()));
        if engines.len() > cap.max(1) {
            engines.remove(0);
        }
    }
    &mut engines.last_mut().expect("just pushed").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;

    fn cfg(workers: usize, queue_cap: usize, batching: bool) -> ServeConfig {
        ServeConfig {
            workers,
            queue_cap,
            state_cap: 8,
            engine_cache: 2,
            batching,
            admission: Admission::ShedOnly,
        }
    }

    fn req(id: u64, seed: u64) -> Request {
        Request {
            id,
            scn: Scenario::from_seed(seed),
            deadline_s: None,
        }
    }

    #[test]
    fn saturated_queue_sheds_deterministically_and_never_deadlocks() {
        // One worker, cap 4, paused: of 10 same-scenario submissions the
        // first 4 queue and the last 6 shed — deterministically, because
        // shedding happens at submit time under the queue lock.
        let server = Server::start(cfg(1, 4, true));
        server.pause();
        let outcomes: Vec<bool> = (0..10).map(|i| server.submit(req(i, 500))).collect();
        assert_eq!(
            outcomes,
            [true, true, true, true, false, false, false, false, false, false]
        );
        // Shed responses arrive immediately, even while workers are paused.
        let shed: Vec<Response> = server.drain(6);
        let want_replay = Scenario::from_seed(500).replay_cmd();
        for r in &shed {
            assert_eq!(r.status, Status::Shed);
            assert!(r.payload.is_none());
            assert_eq!(
                r.replay.as_deref(),
                Some(want_replay.as_str()),
                "every shed request reports its replay seed"
            );
            let retry = r.retry_after_s.expect("shed carries a retry hint");
            assert!(retry.is_finite() && retry > 0.0, "retry_after {retry}");
            assert!(r.id >= 4, "only the tail submissions shed");
        }
        server.release();
        let served = server.drain(4);
        assert!(served.iter().all(|r| r.status == Status::Ok));
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.shed, 6);
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn shed_set_is_deterministic_across_multiple_workers() {
        // Sharding is a pure function of the scenario key, so with the
        // submission order fixed, which requests shed is reproducible even
        // with several workers.
        let run = || {
            let server = Server::start(cfg(3, 2, true));
            server.pause();
            let shed_ids: Vec<u64> = (0..24)
                .filter(|&i| !server.submit(req(i, 9000 + (i % 8))))
                .collect();
            server.release();
            server.drain(24);
            server.shutdown();
            shed_ids
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(
            !a.is_empty(),
            "cap 2 × 3 workers cannot hold 8 distinct scenarios × 3"
        );
    }

    #[test]
    fn paused_burst_batches_same_key_requests_into_one_pass() {
        let server = Server::start(cfg(1, 64, true));
        server.pause();
        for i in 0..5 {
            assert!(server.submit(req(i, 1234)));
        }
        server.release();
        let resps = server.drain(5);
        let stats = server.stats();
        assert_eq!(stats.engine_passes, 1, "one pass serves the whole batch");
        assert_eq!(stats.batched_extra, 4);
        let want = direct(&Scenario::from_seed(1234));
        for r in &resps {
            assert_eq!(r.batched, 5);
            assert_eq!(r.payload.as_ref(), Some(&want));
        }
        server.shutdown();
    }

    #[test]
    fn batching_off_serves_each_request_with_its_own_pass() {
        let server = Server::start(cfg(1, 64, false));
        server.pause();
        for i in 0..5 {
            assert!(server.submit(req(i, 1234)));
        }
        server.release();
        let resps = server.drain(5);
        let stats = server.shutdown();
        assert_eq!(stats.engine_passes, 5);
        assert_eq!(stats.hit_passes, 4, "passes 2..5 are exact warm hits");
        let want = direct(&Scenario::from_seed(1234));
        assert!(resps.iter().all(|r| r.payload.as_ref() == Some(&want)));
    }

    #[test]
    fn deadline_budget_is_judged_on_the_serving_pass() {
        let mut tight = req(0, 4321);
        tight.deadline_s = Some(1e-12);
        let mut loose = req(1, 4321);
        loose.deadline_s = Some(1e9);
        let server = Server::start(cfg(1, 8, false));
        server.submit(tight);
        server.submit(loose);
        let resps = server.drain(2);
        server.shutdown();
        let by_id = |id: u64| resps.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id(0).status, Status::Deadline);
        assert!(
            by_id(0).payload.is_some(),
            "deadline responses still carry the result"
        );
        assert_eq!(by_id(1).status, Status::Ok);
        // Both payloads are the same partition regardless of status.
        assert_eq!(by_id(0).payload, by_id(1).payload);
    }

    #[test]
    fn per_p_states_and_engine_cache_keep_mixed_widths_warm() {
        // Alternating two scenarios with different p must not thrash: after
        // the first round both stay on the exact-hit path.
        let mut seeds = (0..).map(Scenario::from_seed);
        let a = seeds.by_ref().find(|s| s.faults.is_none()).unwrap();
        let b = seeds
            .by_ref()
            .find(|s| s.faults.is_none() && s.p != a.p)
            .unwrap();
        let server = Server::start(cfg(1, 64, false));
        let mut id = 0;
        for _ in 0..3 {
            for scn in [&a, &b] {
                server.submit(Request {
                    id,
                    scn: scn.clone(),
                    deadline_s: None,
                });
                id += 1;
            }
        }
        server.drain(id as usize);
        let stats = server.shutdown();
        assert_eq!(stats.engine_passes, 6);
        assert_eq!(stats.cold_passes, 2, "one cold per scenario, ever");
        assert_eq!(stats.hit_passes, 4, "{stats:?}");
    }

    #[test]
    fn faulted_requests_run_isolated_and_stay_bit_identical() {
        use optipart_mpisim::FaultPlan;
        let mut scn = (0..)
            .map(|s| Scenario::from_seed(7100 + s))
            .find(|s| s.p >= 3 && s.n >= 80)
            .unwrap();
        scn.faults = Some(FaultPlan::new(scn.seed).kill_rank(0, 5));
        let clean = Scenario {
            faults: None,
            ..scn.clone()
        };
        let server = Server::start(cfg(1, 16, true));
        server.submit(Request {
            id: 0,
            scn: clean.clone(),
            deadline_s: None,
        });
        server.submit(Request {
            id: 1,
            scn: scn.clone(),
            deadline_s: None,
        });
        server.submit(Request {
            id: 2,
            scn: clean.clone(),
            deadline_s: None,
        });
        let resps = server.drain(3);
        let stats = server.shutdown();
        assert!(stats.deaths >= 1, "the kill must actually fire: {stats:?}");
        let by_id = |id: u64| resps.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id(1).payload.as_ref(), Some(&direct(&scn)));
        assert_eq!(by_id(0).payload.as_ref(), Some(&direct(&clean)));
        assert_eq!(
            by_id(2).payload,
            by_id(0).payload,
            "a death on the faulted request must not leak into clean serving"
        );
    }

    #[test]
    fn shutdown_drains_queued_work_before_exiting() {
        let server = Server::start(cfg(2, 64, true));
        server.pause();
        for i in 0..8 {
            server.submit(req(i, 33000 + i));
        }
        server.release();
        let stats = server.shutdown();
        assert_eq!(stats.completed + stats.shed, 8);
        stats.conservation().expect("drained shutdown conserves");
    }

    #[test]
    fn worker_panic_is_isolated_quarantined_and_conserved() {
        use crate::chaos::{PanicPoint, PanicSchedule};
        // Arm the first engine pass of worker 0 to die *after* mutating
        // its caches — the harshest quarantine test. One worker, paused
        // burst: pass 0 is the seed-500 batch (3 requests, all must come
        // back Failed), pass 1 the seed-501 batch (served), and the
        // post-panic resubmit of seed 500 must serve cold, bit-identically.
        let schedule = PanicSchedule::default().arm(0, 0, PanicPoint::After);
        let server = Server::start_chaos(cfg(1, 64, true), schedule);
        server.pause();
        for i in 0..3 {
            assert!(server.submit(req(i, 500)));
        }
        assert!(server.submit(req(3, 501)));
        server.release();
        let first = server.drain(4);
        assert!(server.submit(req(4, 500)), "the worker must have respawned");
        let retry = server.recv();
        let stats = server.shutdown();

        let by_id = |id: u64| first.iter().find(|r| r.id == id).unwrap();
        let want_replay = Scenario::from_seed(500).replay_cmd();
        for id in 0..3 {
            let r = by_id(id);
            assert_eq!(r.status, Status::Failed, "{r:?}");
            assert!(r.payload.is_none());
            assert_eq!(r.replay.as_deref(), Some(want_replay.as_str()));
            let err = r.error.as_deref().expect("failed carries the summary");
            assert!(err.contains("chaos"), "panic summary: {err}");
        }
        assert_eq!(by_id(3).status, Status::Ok);
        assert_eq!(
            by_id(3).payload.as_ref(),
            Some(&direct(&Scenario::from_seed(501))),
            "the pass after the panic serves bit-identically"
        );
        assert_eq!(retry.status, Status::Ok);
        assert_eq!(
            retry.payload.as_ref(),
            Some(&direct(&Scenario::from_seed(500))),
            "quarantined caches must re-serve the crashed scenario fresh"
        );
        assert_eq!(retry.warm, WarmPath::Cold, "quarantine forces a cold pass");
        assert_eq!(stats.failed, 3);
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.completed, 2);
        stats.conservation().expect("panics conserve responses");
    }

    #[test]
    fn deadline_admission_rejects_deterministically_with_retry_hint() {
        let run = || {
            let cfg = ServeConfig {
                admission: Admission::DeadlineAware,
                ..cfg(1, 8, true)
            };
            let server = Server::start(cfg);
            server.pause();
            // Queue one request to create backlog, then a hopeless
            // deadline: its budget is below the backlog, so admission
            // rejects it before any worker involvement.
            assert!(server.submit(req(0, 600)));
            let mut hopeless = req(1, 601);
            hopeless.deadline_s = Some(1e-12);
            assert_eq!(
                server
                    .ingress()
                    .submit_with(hopeless, server.resp_tx.as_ref().expect("server running")),
                Admit::Rejected
            );
            // A generous budget clears the same backlog and is admitted.
            let mut generous = req(2, 601);
            generous.deadline_s = Some(1e9);
            assert!(server.submit(generous));
            let rejected = server.recv();
            server.release();
            let served = server.drain(2);
            let stats = server.shutdown();
            assert_eq!(rejected.status, Status::Rejected);
            assert!(rejected.payload.is_none());
            assert_eq!(
                rejected.replay.as_deref(),
                Some(Scenario::from_seed(601).replay_cmd().as_str())
            );
            assert_eq!(stats.rejected, 1);
            assert_eq!(stats.completed, 2);
            stats.conservation().expect("rejection conserves");
            assert!(served.iter().all(|r| r.payload.is_some()));
            rejected
                .retry_after_s
                .expect("rejection carries retry hint")
        };
        let a = run();
        let b = run();
        assert!(a > 0.0 && a.is_finite());
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "retry hints are bit-deterministic given queue contents"
        );
    }
}
