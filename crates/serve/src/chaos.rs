//! Seeded, deterministic service-layer chaos.
//!
//! Everything that can go wrong around the engine — a worker panicking
//! mid-pass, a client vanishing mid-line, bytes corrupted on the wire, a
//! reader stalling — is generated here from one seed as a [`ChaosPlan`],
//! then driven through a live [`Server`] by [`chaos_soak`]. The assertions
//! after every run are the PR 7 contract, now under fire:
//!
//! * **conservation** — every submitted request id is answered exactly
//!   once (served, shed, rejected or failed), in both counter form
//!   ([`crate::ServerStats::conservation`]) and id-by-id form
//!   (`verify_responses_with`);
//! * **bit-identity** — every *served* payload equals a direct library
//!   call, chaos or no chaos;
//! * **clean shutdown** — workers join, nothing leaks.
//!
//! Determinism is the point: the same seed reproduces the identical
//! response set byte-for-byte ([`ChaosReport::transcript`]), and because
//! disconnect/corruption streams are forked independently of the panic
//! stream, the *served* payloads agree across worker counts too — the
//! drivers in `optipart-serve chaos` and `tests/serve_stream.rs` check
//! both.

use crate::protocol::{json_string, Request, Response};
use crate::server::{ServeConfig, Server, ServerStats};
use crate::soak::{mixed_stream, verify_responses_with, DirectCache, VerifySummary};
use optipart_mpisim::rng::SplitMix64;
use optipart_mpisim::RankDeath;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Once;

/// RNG stream tags. Panics are forked separately from disconnects and
/// corruption so that changing the worker count (which reshapes the panic
/// schedule) leaves the client-side chaos — and therefore the set of
/// parsed requests per id — untouched. That independence is what makes the
/// 1-vs-4-worker served-payload cross-check meaningful.
const CHAOS_PANICS: u64 = 0xC405_0001;
const CHAOS_DISCONNECTS: u64 = 0xC405_0002;
const CHAOS_CORRUPT: u64 = 0xC405_0003;
const CHAOS_BYTES: u64 = 0xC405_0004;

/// Where in an engine pass an armed chaos panic fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicPoint {
    /// Before the pass touches any cache (the gentle case).
    Before,
    /// After the pass completed — caches mutated, no response sent yet.
    /// The harshest point for the quarantine logic.
    After,
}

impl PanicPoint {
    fn name(self) -> &'static str {
        match self {
            PanicPoint::Before => "before",
            PanicPoint::After => "after",
        }
    }
}

/// The panic payload chaos injection throws. Carried (as its `Display`
/// form) in the `error` field of the [`crate::Status::Failed`] responses
/// it causes.
#[derive(Clone, Debug)]
pub struct ChaosPanic {
    /// Worker whose pass was armed.
    pub worker: usize,
    /// The worker's 0-based engine-pass number.
    pub pass: u64,
    /// Fire point within the pass.
    pub point: PanicPoint,
}

impl fmt::Display for ChaosPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chaos-panic: worker {} pass {} ({})",
            self.worker,
            self.pass,
            self.point.name()
        )
    }
}

/// Armed worker panics, keyed `(worker, pass_number)`. Passed to
/// [`Server::start_chaos`]; each worker consults it at the start and end of
/// every engine pass.
#[derive(Clone, Debug, Default)]
pub struct PanicSchedule {
    at: BTreeMap<(usize, u64), PanicPoint>,
}

impl PanicSchedule {
    /// Arms worker `worker`'s `pass`-th engine pass to panic at `point`.
    pub fn arm(mut self, worker: usize, pass: u64, point: PanicPoint) -> Self {
        self.at.insert((worker, pass), point);
        self
    }

    /// Armed panic count.
    pub fn len(&self) -> usize {
        self.at.len()
    }

    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }

    /// Panics (with a [`ChaosPanic`] payload, kept quiet on stderr) iff
    /// `(worker, pass)` is armed for `point`.
    pub fn check(&self, worker: usize, pass: u64, point: PanicPoint) {
        if self.at.get(&(worker, pass)) == Some(&point) {
            install_chaos_hook();
            std::panic::panic_any(ChaosPanic {
                worker,
                pass,
                point,
            });
        }
    }
}

/// Silences the default panic message for [`ChaosPanic`] payloads only —
/// they are injected on purpose and answered as failed responses; every
/// other panic keeps the previous hook's behaviour (mirrors mpisim's
/// `RankDeath` hook).
fn install_chaos_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Renders a caught panic payload into the `error` field of a failed
/// response. Deterministic for every payload the server itself can raise.
pub(crate) fn panic_summary(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(c) = payload.downcast_ref::<ChaosPanic>() {
        c.to_string()
    } else if let Some(d) = payload.downcast_ref::<RankDeath>() {
        format!("unhandled rank death: {d}")
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// How a request line is damaged on its way in. Corruption never touches
/// the first half of the line (the `id` field stays intact, so a mutated
/// line that still parses keeps its unique id) and never introduces a
/// newline (line framing is the connection layer's own failure mode,
/// exercised separately by mid-line disconnects).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the line somewhere in its third quarter — always unparseable
    /// (the closing brace is gone).
    Truncate,
    /// Flip one bit of one byte in the second half: may still parse (a
    /// mutated-but-valid request, served normally and verified against its
    /// parsed self) or may not — either way deterministic.
    FlipByte,
    /// Overwrite the second half with raw random bytes (frequently invalid
    /// UTF-8, exercising the encoding guard).
    Garbage,
}

/// Applies `kind` to one request line, consuming `rng` deterministically.
pub fn corrupt_line(line: &str, kind: Corruption, rng: &mut SplitMix64) -> Vec<u8> {
    let mut b = line.as_bytes().to_vec();
    let half = b.len() / 2;
    match kind {
        Corruption::Truncate => {
            let keep = half + rng.next_below((b.len() / 4 + 1) as u64) as usize;
            b.truncate(keep.max(1));
        }
        Corruption::FlipByte => {
            if half < b.len() {
                let i = half + rng.next_below((b.len() - half) as u64) as usize;
                b[i] ^= 1 << rng.next_below(8);
            }
        }
        Corruption::Garbage => {
            for x in b.iter_mut().skip(half) {
                *x = rng.next_u64() as u8;
            }
        }
    }
    for x in &mut b {
        if *x == b'\n' || *x == b'\r' {
            *x = b'#';
        }
    }
    b
}

/// Chaos intensity knobs (all counts are targets; see
/// [`ChaosPlan::generate`] for how they clamp).
#[derive(Clone, Copy, Debug)]
pub struct ChaosKnobs {
    /// Worker panics to arm.
    pub panics: usize,
    /// Panics are armed at pass numbers `0..max_pass` — keep this small:
    /// batching compresses many requests into few passes, and a panic
    /// armed past the last pass a worker runs never fires.
    pub max_pass: u64,
    /// Clients that disconnect partway through their line budget.
    pub disconnects: usize,
    /// Virtual clients the stream is split over (round-robin).
    pub clients: usize,
    /// Request lines to corrupt.
    pub corrupt: usize,
    /// In socket mode, a client's reader stalls briefly every N responses
    /// (0 = no stalls). The deterministic in-process soak ignores this.
    pub stall_every: usize,
}

impl Default for ChaosKnobs {
    fn default() -> Self {
        ChaosKnobs {
            panics: 12,
            max_pass: 3,
            disconnects: 5,
            clients: 8,
            corrupt: 16,
            stall_every: 0,
        }
    }
}

/// A fully seeded chaos plan: which passes die, which clients vanish after
/// how many lines, which lines are damaged and how.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Armed worker panics.
    pub panics: PanicSchedule,
    /// Client index → lines it sends before disconnecting.
    pub disconnect_after: BTreeMap<usize, usize>,
    /// Global request index → damage applied to its line.
    pub corrupt: BTreeMap<usize, Corruption>,
    /// Copied from [`ChaosKnobs::stall_every`].
    pub stall_every: usize,
}

impl ChaosPlan {
    /// Generates the plan for a `requests`-line stream over
    /// `knobs.clients` round-robin clients and `workers` workers. Panic
    /// count clamps to `workers × max_pass` distinct slots, disconnects to
    /// the client count, corruption to the request count.
    pub fn generate(seed: u64, requests: usize, workers: usize, knobs: &ChaosKnobs) -> ChaosPlan {
        let workers = workers.max(1);
        let max_pass = knobs.max_pass.max(1);
        let mut panics = PanicSchedule::default();
        let slots = (workers as u64 * max_pass) as usize;
        let want = knobs.panics.min(slots);
        let mut r = SplitMix64::new(seed).fork(CHAOS_PANICS);
        for _ in 0..64 * slots.max(1) {
            if panics.at.len() >= want {
                break;
            }
            let w = r.next_below(workers as u64) as usize;
            let pass = r.next_below(max_pass);
            let point = if r.next_below(2) == 0 {
                PanicPoint::Before
            } else {
                PanicPoint::After
            };
            panics.at.entry((w, pass)).or_insert(point);
        }

        let clients = knobs.clients.max(1);
        let per_client = requests / clients;
        let mut disconnect_after = BTreeMap::new();
        let want_d = knobs.disconnects.min(clients);
        let mut r = SplitMix64::new(seed).fork(CHAOS_DISCONNECTS);
        if per_client > 0 {
            for _ in 0..64 * clients {
                if disconnect_after.len() >= want_d {
                    break;
                }
                let c = r.next_below(clients as u64) as usize;
                let k = r.next_below(per_client as u64) as usize;
                disconnect_after.entry(c).or_insert(k);
            }
        }

        let mut corrupt = BTreeMap::new();
        let want_c = knobs.corrupt.min(requests);
        let mut r = SplitMix64::new(seed).fork(CHAOS_CORRUPT);
        for _ in 0..64 * requests.max(1) {
            if corrupt.len() >= want_c {
                break;
            }
            let i = r.next_below(requests.max(1) as u64) as usize;
            let kind = match r.next_below(3) {
                0 => Corruption::Truncate,
                1 => Corruption::FlipByte,
                _ => Corruption::Garbage,
            };
            corrupt.entry(i).or_insert(kind);
        }

        ChaosPlan {
            panics,
            disconnect_after,
            corrupt,
            stall_every: knobs.stall_every,
        }
    }
}

/// The canonical chaos request stream: `mixed_stream` with kills and
/// deadlines laced in, at the distinct-scenario density the other soaks
/// use. One definition shared by the in-process soak and the socket driver
/// in `optipart-serve`, so their direct-call caches line up.
pub fn chaos_stream(seed: u64, requests: usize) -> Vec<Request> {
    let distinct = (requests / 16).clamp(1, 64);
    mixed_stream(seed, requests, distinct, 23, 11)
}

/// What one virtual client writes: its complete lines (damage already
/// applied, tagged with the global request index), and whether it vanishes
/// mid-line afterwards.
#[derive(Clone, Debug)]
pub struct ClientScript {
    /// `(global request index, line bytes)` in send order.
    pub lines: Vec<(usize, Vec<u8>)>,
    /// The client disconnects without a newline after its last full line.
    pub disconnects: bool,
}

/// Expands a plan into per-client byte scripts: request `i` belongs to
/// client `i % clients`, a disconnecting client stops after its armed line
/// count, and corruption consumes the byte-RNG in global line order. Both
/// the in-process [`chaos_soak`] and the socket driver in `optipart-serve`
/// build their traffic from this, so the same ids carry the same bytes in
/// either mode.
pub fn client_scripts(
    seed: u64,
    reqs: &[Request],
    plan: &ChaosPlan,
    clients: usize,
) -> Vec<ClientScript> {
    let clients = clients.max(1);
    let mut byte_rng = SplitMix64::new(seed).fork(CHAOS_BYTES);
    let mut scripts: Vec<ClientScript> = (0..clients)
        .map(|c| ClientScript {
            lines: Vec::new(),
            disconnects: plan.disconnect_after.contains_key(&c),
        })
        .collect();
    for (i, req) in reqs.iter().enumerate() {
        let c = i % clients;
        if let Some(&k) = plan.disconnect_after.get(&c) {
            if scripts[c].lines.len() >= k {
                continue;
            }
        }
        let line = match plan.corrupt.get(&i) {
            Some(&kind) => corrupt_line(&req.to_json(), kind, &mut byte_rng),
            None => req.to_json().into_bytes(),
        };
        scripts[c].lines.push((i, line));
    }
    scripts
}

/// Outcome counts of one chaos soak.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosSummary {
    /// Lines in the generated stream.
    pub requests: usize,
    /// Lines actually offered to the server (parsed fine).
    pub submitted: usize,
    /// Lines never sent because their client had disconnected.
    pub lost_to_disconnect: usize,
    /// Lines rejected by the parser/UTF-8 guard (corruption casualties).
    pub parse_errors: usize,
    /// Responses served with a payload.
    pub served: usize,
    /// Responses failed by a worker panic.
    pub failed: usize,
    /// Responses shed by backpressure.
    pub shed: usize,
    /// Responses rejected by deadline admission.
    pub rejected: usize,
    /// Worker panics caught.
    pub panics: u64,
    /// Rank deaths absorbed while serving.
    pub deaths: u64,
}

/// Everything one deterministic chaos soak produced.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The full deterministic record of the run: parse-error lines (by
    /// line index), then every response as wire JSON with `wall_us` zeroed
    /// (the only wall-clock field), sorted by id, then a summary line.
    /// Two runs with the same seed and config must produce byte-identical
    /// transcripts.
    pub transcript: String,
    /// id → `Debug` form of the served payload (bit-exact fields), for
    /// cross-worker-count comparison.
    pub served_payloads: BTreeMap<u64, String>,
    /// Final server counters.
    pub stats: ServerStats,
    /// Outcome counts.
    pub summary: ChaosSummary,
    /// What verification established.
    pub verify: VerifySummary,
}

/// Runs the deterministic in-process chaos soak: generate the stream and
/// the plan from `seed`, damage and drop lines exactly as a chaotic client
/// population would, submit the survivors as one paused burst, then verify
/// the whole exchange — conservation, bit-identity, clean shutdown. The
/// `cache` memoizes direct library calls across runs (the 1-vs-4-worker
/// cross-check reuses it).
///
/// Worker panics fire via the armed [`PanicSchedule`]; client disconnects
/// and line corruption are applied in-process (the socket-level versions
/// of the same plan live in the `optipart-serve chaos` subcommand).
pub fn chaos_soak(
    seed: u64,
    requests: usize,
    cfg: ServeConfig,
    knobs: ChaosKnobs,
    cache: &mut DirectCache,
) -> Result<ChaosReport, String> {
    let reqs = chaos_stream(seed, requests);
    let plan = ChaosPlan::generate(seed, requests, cfg.workers, &knobs);
    let scripts = client_scripts(seed, &reqs, &plan, knobs.clients);
    let lost = requests - scripts.iter().map(|s| s.lines.len()).sum::<usize>();

    // Interleave the scripts back into global line order — the same bytes
    // the socket driver writes, submitted as one deterministic burst.
    let mut all: Vec<(usize, &[u8])> = scripts
        .iter()
        .flat_map(|s| s.lines.iter().map(|(i, b)| (*i, b.as_slice())))
        .collect();
    all.sort_unstable_by_key(|&(i, _)| i);

    let mut submitted: Vec<Request> = Vec::new();
    let mut parse_errors: Vec<(usize, String)> = Vec::new();

    let server = Server::start_chaos(cfg, plan.panics.clone());
    server.pause();
    for (i, line) in all {
        let parsed = std::str::from_utf8(line)
            .map_err(|e| format!("invalid UTF-8: {e}"))
            .and_then(Request::from_json);
        match parsed {
            Ok(req) => {
                server.submit(req.clone());
                submitted.push(req);
            }
            Err(e) => parse_errors.push((i, e)),
        }
    }
    server.release();
    let resps = server.drain(submitted.len());
    let stats = server.shutdown();
    stats.conservation()?;

    let verify = verify_responses_with(&submitted, &resps, cache)?;

    let mut served_payloads = BTreeMap::new();
    let mut by_id: Vec<&Response> = resps.iter().collect();
    by_id.sort_by_key(|r| r.id);
    let mut transcript = String::new();
    for (i, e) in &parse_errors {
        transcript.push_str(&format!("{{\"line\":{i},\"error\":{}}}\n", json_string(e)));
    }
    for r in &by_id {
        let mut frozen = (*r).clone();
        frozen.wall_us = 0;
        transcript.push_str(&frozen.to_json());
        transcript.push('\n');
        if let Some(p) = &r.payload {
            served_payloads.insert(r.id, format!("{p:?}"));
        }
    }
    let summary = ChaosSummary {
        requests,
        submitted: submitted.len(),
        lost_to_disconnect: lost,
        parse_errors: parse_errors.len(),
        served: verify.served,
        failed: verify.failed,
        shed: verify.shed,
        rejected: verify.rejected,
        panics: stats.panics,
        deaths: stats.deaths,
    };
    transcript.push_str(&format!(
        "{{\"summary\":true,\"requests\":{},\"submitted\":{},\"lost\":{},\
         \"parse_errors\":{},\"served\":{},\"failed\":{},\"shed\":{},\
         \"rejected\":{},\"panics\":{},\"deaths\":{}}}\n",
        summary.requests,
        summary.submitted,
        summary.lost_to_disconnect,
        summary.parse_errors,
        summary.served,
        summary.failed,
        summary.shed,
        summary.rejected,
        summary.panics,
        summary.deaths,
    ));

    Ok(ChaosReport {
        transcript,
        served_payloads,
        stats,
        summary,
        verify,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Admission;

    #[test]
    fn plan_generation_is_deterministic_and_width_independent_off_panics() {
        let knobs = ChaosKnobs::default();
        let a = ChaosPlan::generate(99, 400, 4, &knobs);
        let b = ChaosPlan::generate(99, 400, 4, &knobs);
        assert_eq!(a.disconnect_after, b.disconnect_after);
        assert_eq!(a.corrupt, b.corrupt);
        assert_eq!(a.panics.at, b.panics.at);
        // Same seed at a different worker count: panics reshape, but the
        // client-side chaos is identical — the cross-width invariant.
        let solo = ChaosPlan::generate(99, 400, 1, &knobs);
        assert_eq!(solo.disconnect_after, a.disconnect_after);
        assert_eq!(solo.corrupt, a.corrupt);
        assert_eq!(solo.panics.len(), 3, "1 worker × max_pass 3 slots");
        assert_eq!(a.panics.len(), 12, "4 workers × max_pass 3 slots");
        assert_eq!(a.disconnect_after.len(), 5);
        assert_eq!(a.corrupt.len(), 16);
    }

    #[test]
    fn corruption_preserves_framing_and_the_id_prefix() {
        let req = chaos_stream(7, 1).remove(0);
        let line = req.to_json();
        let mut rng = SplitMix64::new(5).fork(CHAOS_BYTES);
        for kind in [
            Corruption::Truncate,
            Corruption::FlipByte,
            Corruption::Garbage,
        ] {
            for _ in 0..50 {
                let out = corrupt_line(&line, kind, &mut rng);
                assert!(!out.is_empty());
                assert!(!out.contains(&b'\n') && !out.contains(&b'\r'), "{kind:?}");
                let keep = out.len().min(line.len() / 2);
                assert_eq!(
                    &out[..keep],
                    &line.as_bytes()[..keep],
                    "{kind:?} must not touch the first half (the id field)"
                );
                if kind == Corruption::Truncate {
                    let s = std::str::from_utf8(&out);
                    assert!(
                        s.is_err() || Request::from_json(s.unwrap()).is_err(),
                        "a truncated line can never parse: {out:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn small_chaos_soak_conserves_and_reproduces() {
        let cfg = ServeConfig {
            workers: 2,
            queue_cap: 200,
            state_cap: 16,
            engine_cache: 4,
            batching: true,
            admission: Admission::DeadlineAware,
        };
        let knobs = ChaosKnobs {
            panics: 4,
            max_pass: 2,
            disconnects: 2,
            clients: 4,
            corrupt: 6,
            stall_every: 0,
        };
        let mut cache = DirectCache::new();
        let a = chaos_soak(0xC405, 120, cfg, knobs, &mut cache).expect("soak verifies");
        let b = chaos_soak(0xC405, 120, cfg, knobs, &mut cache).expect("soak verifies");
        assert_eq!(a.transcript, b.transcript, "same seed, same bytes");
        assert!(a.summary.panics >= 1, "{:?}", a.summary);
        assert!(a.summary.failed >= 1, "{:?}", a.summary);
        assert!(a.summary.lost_to_disconnect >= 1, "{:?}", a.summary);
        assert!(a.summary.parse_errors >= 1, "{:?}", a.summary);
        assert!(a.summary.served > 30, "{:?}", a.summary);
        assert_eq!(
            a.summary.submitted,
            a.summary.served + a.summary.failed + a.summary.shed + a.summary.rejected,
            "conservation over the response set: {:?}",
            a.summary
        );
    }
}
