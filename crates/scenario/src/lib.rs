//! Seeded scenario generation: one `u64` → a full partitioning workload.
//!
//! Every scenario field is derived from the seed through forked SplitMix64
//! streams, so (a) the same seed always reproduces the same scenario and
//! (b) a shrinker can override individual fields while the rest stay
//! pinned. [`Scenario::replay_cmd`] encodes exactly the overridden fields,
//! which keeps the one-line replay command short and canonical.
//!
//! This crate sits below both `optipart-testkit` (which re-exports it as
//! `optipart_testkit::scenario` and builds its check registries on
//! [`NamedCheck`]) and `optipart-serve` (whose wire protocol encodes one
//! scenario per request). Keeping it separate is what lets the testkit
//! host a server-vs-library differential oracle without a dependency
//! cycle: scenario ← serve ← testkit.

use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::rng::SplitMix64;
use optipart_mpisim::{Engine, FaultPlan};
use optipart_octree::{
    sample_points, sample_points_shell, sample_points_skewed, tree_from_points, Distribution,
    LinearTree,
};
use optipart_sfc::{Curve, Point};
use std::fmt;

/// Mesh shape classes the generator draws from — the paper's §4.2
/// distributions plus two adversarial classes real AMR codes produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshShape {
    /// Uniform over the unit cube.
    Uniform,
    /// Gaussian-clustered around the centre (the paper's default workload).
    Gaussian,
    /// Log-normal, concentrated near the origin corner.
    LogNormal,
    /// Surface-concentrated: points on a thin spherical shell (shock front
    /// / material interface refinement pattern).
    Surface,
    /// Adversarially skewed: a corner box crammed with most of the points,
    /// exact duplicates in the tail, uniform background.
    Skewed,
}

impl MeshShape {
    /// All generated shapes.
    pub const ALL: [MeshShape; 5] = [
        MeshShape::Uniform,
        MeshShape::Gaussian,
        MeshShape::LogNormal,
        MeshShape::Surface,
        MeshShape::Skewed,
    ];

    /// Canonical name, as accepted by `testkit replay --shape`.
    pub fn name(self) -> &'static str {
        match self {
            MeshShape::Uniform => "uniform",
            MeshShape::Gaussian => "gaussian",
            MeshShape::LogNormal => "lognormal",
            MeshShape::Surface => "surface",
            MeshShape::Skewed => "skewed",
        }
    }

    /// Inverse of [`MeshShape::name`].
    pub fn parse(s: &str) -> Option<MeshShape> {
        MeshShape::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// Application model kind (kept as an enum so scenarios can be compared,
/// printed and replayed by name).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppKind {
    /// `AppModel::laplacian_matvec()` — compute-heavy, α ≈ 8.
    Laplacian,
    /// `AppModel::wave_matvec()` — communication-heavy, α ≈ 2.
    Wave,
}

impl AppKind {
    /// Canonical name, as accepted by `testkit replay --app`.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Laplacian => "laplacian",
            AppKind::Wave => "wave",
        }
    }

    /// Inverse of [`AppKind::name`].
    pub fn parse(s: &str) -> Option<AppKind> {
        match s {
            "laplacian" => Some(AppKind::Laplacian),
            "wave" => Some(AppKind::Wave),
            _ => None,
        }
    }

    /// The corresponding application model.
    pub fn model(self) -> AppModel {
        match self {
            AppKind::Laplacian => AppModel::laplacian_matvec(),
            AppKind::Wave => AppModel::wave_matvec(),
        }
    }
}

/// Independent RNG streams forked off the scenario seed. Points and fault
/// schedules must not share a stream with the field derivation, or a field
/// override would silently reshuffle everything downstream.
const STREAM_FIELDS: u64 = 0xF1E1;
const STREAM_POINTS: u64 = 0x90AB;
const STREAM_SHUFFLE: u64 = 0x5F0E;

/// A named check in one of the testkit registries (`soak::CHECKS`,
/// `oracles::ORACLES`, `metamorphic::PROPERTIES`).
pub type NamedCheck = (&'static str, fn(&Scenario));

/// One generated workload: mesh + machine + partitioner knobs + faults.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The generating seed; every other field is derived from it (possibly
    /// overridden afterwards by a shrinker or a corpus file).
    pub seed: u64,
    /// Point-cloud shape class.
    pub shape: MeshShape,
    /// Number of sample points (leaf count lands within a small factor).
    pub n: usize,
    /// Virtual ranks.
    pub p: usize,
    /// Space-filling curve.
    pub curve: Curve,
    /// Requested load-balance tolerance, quantised to 0.05 steps in
    /// `[0, 0.7]` (the paper's sweep range).
    pub tolerance: f64,
    /// Staged splitter selection cap (Eq. 2's `k`); `None` = unlimited.
    pub split_budget: Option<usize>,
    /// Machine model (one of the Table 1 presets).
    pub machine: MachineModel,
    /// Application model kind.
    pub app: AppKind,
    /// Benign fault plan (stragglers / jitter / transient all-to-all
    /// failures — never fail-stop; oracles add kills themselves).
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    /// Expands a seed into a full scenario.
    pub fn from_seed(seed: u64) -> Scenario {
        let mut r = SplitMix64::new(seed).fork(STREAM_FIELDS);
        let shape = MeshShape::ALL[r.next_below(MeshShape::ALL.len() as u64) as usize];
        // Mostly 80–360 points; 2% of scenarios are degenerate (fewer
        // points than ranks) to fuzz the tiny-input paths.
        let n = if r.next_below(50) == 0 {
            1 + r.next_below(11) as usize
        } else {
            80 + r.next_below(280) as usize
        };
        let p = 2 + r.next_below(11) as usize;
        let curve = if r.next_below(2) == 0 {
            Curve::Morton
        } else {
            Curve::Hilbert
        };
        let tolerance = 0.05 * r.next_below(15) as f64;
        let split_budget = match r.next_below(3) {
            0 => None,
            1 => Some(8),
            _ => Some(32),
        };
        let presets = MachineModel::presets();
        let machine = presets[r.next_below(presets.len() as u64) as usize].clone();
        let app = if r.next_below(2) == 0 {
            AppKind::Laplacian
        } else {
            AppKind::Wave
        };
        let faults = if r.next_below(5) < 2 {
            None
        } else {
            Some(
                FaultPlan::new(seed)
                    .with_stragglers(0.25, 1.5 + 2.5 * r.next_f64())
                    .with_tw_jitter(0.25 * r.next_f64())
                    .with_transient_failures(0.1 * r.next_f64()),
            )
        };
        Scenario {
            seed,
            shape,
            n,
            p,
            curve,
            tolerance,
            split_budget,
            machine,
            app,
            faults,
        }
    }

    /// The scenario's point cloud (deterministic in `seed`, `shape`, `n`).
    pub fn points(&self) -> Vec<Point<3>> {
        let s = SplitMix64::new(self.seed).fork(STREAM_POINTS).next_u64();
        match self.shape {
            MeshShape::Uniform => sample_points::<3>(Distribution::Uniform, self.n, s),
            MeshShape::Gaussian => sample_points::<3>(Distribution::Normal, self.n, s),
            MeshShape::LogNormal => sample_points::<3>(Distribution::LogNormal, self.n, s),
            MeshShape::Surface => sample_points_shell::<3>(self.n, s),
            MeshShape::Skewed => {
                let shift = 4 + (s % 6) as u32;
                sample_points_skewed::<3>(self.n, s, shift)
            }
        }
    }

    /// The scenario's adaptive linear octree.
    pub fn build_tree(&self) -> LinearTree<3> {
        tree_from_points(&self.points(), 1, 12, self.curve)
    }

    /// Seed for shuffled initial distributions (`stream_id` decorrelates
    /// multiple distributions of the same scenario).
    pub fn shuffle_seed(&self, stream_id: u64) -> u64 {
        SplitMix64::new(self.seed)
            .fork(STREAM_SHUFFLE)
            .fork(stream_id)
            .next_u64()
    }

    /// The machine+application performance model.
    pub fn perf(&self) -> PerfModel {
        PerfModel::new(self.machine.clone(), self.app.model())
    }

    /// A fresh fault-free engine.
    pub fn engine(&self) -> Engine {
        Engine::new(self.p, self.perf())
    }

    /// A fresh engine with the scenario's benign fault plan (fault-free if
    /// the scenario drew none).
    pub fn engine_faulted(&self) -> Engine {
        match &self.faults {
            Some(plan) => self.engine().with_faults(plan.clone()),
            None => self.engine(),
        }
    }

    /// Partitioner options induced by the scenario.
    pub fn opts(&self) -> optipart_core::partition::PartitionOptions {
        optipart_core::partition::PartitionOptions {
            tolerance: self.tolerance,
            max_split_per_round: self.split_budget,
            ..Default::default()
        }
    }

    /// The one-line replay command for this scenario: the seed plus exactly
    /// the fields that differ from the seed's derivation (shrinkers and
    /// corpus files override fields; a pristine scenario replays from the
    /// seed alone).
    pub fn replay_cmd(&self) -> String {
        let base = Scenario::from_seed(self.seed);
        let mut cmd = format!(
            "cargo run --release -p optipart-testkit --bin testkit -- replay --seed {}",
            self.seed
        );
        if self.shape != base.shape {
            cmd += &format!(" --shape {}", self.shape.name());
        }
        if self.n != base.n {
            cmd += &format!(" --n {}", self.n);
        }
        if self.p != base.p {
            cmd += &format!(" --p {}", self.p);
        }
        if self.curve != base.curve {
            cmd += &format!(" --curve {}", curve_name(self.curve));
        }
        if self.tolerance != base.tolerance {
            cmd += &format!(" --tol {}", self.tolerance);
        }
        if self.split_budget != base.split_budget {
            match self.split_budget {
                Some(k) => cmd += &format!(" --split-budget {k}"),
                None => cmd += " --split-budget none",
            }
        }
        if self.machine.name != base.machine.name {
            cmd += &format!(" --machine {}", self.machine.name);
        }
        if self.app != base.app {
            cmd += &format!(" --app {}", self.app.name());
        }
        match (&self.faults, &base.faults) {
            (None, Some(_)) => cmd += " --no-faults",
            (Some(f), _) if Some(f.to_string()) != base.faults.as_ref().map(|b| b.to_string()) => {
                cmd += &format!(" --faults {f}");
            }
            _ => {}
        }
        cmd
    }
}

/// Canonical curve name, as accepted by `testkit replay --curve`.
pub fn curve_name(c: Curve) -> &'static str {
    match c {
        Curve::Morton => "morton",
        Curve::Hilbert => "hilbert",
    }
}

/// Inverse of [`curve_name`].
pub fn parse_curve(s: &str) -> Option<Curve> {
    match s {
        "morton" => Some(Curve::Morton),
        "hilbert" => Some(Curve::Hilbert),
        _ => None,
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} shape={} n={} p={} curve={} tol={} budget={} machine={} app={} faults={}",
            self.seed,
            self.shape.name(),
            self.n,
            self.p,
            curve_name(self.curve),
            self.tolerance,
            match self.split_budget {
                Some(k) => k.to_string(),
                None => "none".into(),
            },
            self.machine.name,
            self.app.name(),
            match &self.faults {
                Some(plan) => plan.to_string(),
                None => "none".into(),
            },
        )
    }
}
