//! Seeded scenario generation: one `u64` → a full partitioning workload.
//!
//! Every scenario field is derived from the seed through forked SplitMix64
//! streams, so (a) the same seed always reproduces the same scenario and
//! (b) a shrinker can override individual fields while the rest stay
//! pinned. [`Scenario::replay_cmd`] encodes exactly the overridden fields,
//! which keeps the one-line replay command short and canonical.
//!
//! This crate sits below both `optipart-testkit` (which re-exports it as
//! `optipart_testkit::scenario` and builds its check registries on
//! [`NamedCheck`]) and `optipart-serve` (whose wire protocol encodes one
//! scenario per request). Keeping it separate is what lets the testkit
//! host a server-vs-library differential oracle without a dependency
//! cycle: scenario ← serve ← testkit.

use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::rng::SplitMix64;
use optipart_mpisim::{Engine, FaultPlan};
use optipart_octree::{
    sample_points, sample_points_shell, sample_points_skewed, tree_from_points, Distribution,
    LinearTree,
};
use optipart_sfc::{Curve, Point, MAX_DEPTH};
use std::fmt;

/// Mesh shape classes the generator draws from — the paper's §4.2
/// distributions plus two adversarial classes real AMR codes produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshShape {
    /// Uniform over the unit cube.
    Uniform,
    /// Gaussian-clustered around the centre (the paper's default workload).
    Gaussian,
    /// Log-normal, concentrated near the origin corner.
    LogNormal,
    /// Surface-concentrated: points on a thin spherical shell (shock front
    /// / material interface refinement pattern).
    Surface,
    /// Adversarially skewed: a corner box crammed with most of the points,
    /// exact duplicates in the tail, uniform background.
    Skewed,
}

impl MeshShape {
    /// All generated shapes.
    pub const ALL: [MeshShape; 5] = [
        MeshShape::Uniform,
        MeshShape::Gaussian,
        MeshShape::LogNormal,
        MeshShape::Surface,
        MeshShape::Skewed,
    ];

    /// Canonical name, as accepted by `testkit replay --shape`.
    pub fn name(self) -> &'static str {
        match self {
            MeshShape::Uniform => "uniform",
            MeshShape::Gaussian => "gaussian",
            MeshShape::LogNormal => "lognormal",
            MeshShape::Surface => "surface",
            MeshShape::Skewed => "skewed",
        }
    }

    /// Inverse of [`MeshShape::name`].
    pub fn parse(s: &str) -> Option<MeshShape> {
        MeshShape::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// Application model kind (kept as an enum so scenarios can be compared,
/// printed and replayed by name).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppKind {
    /// `AppModel::laplacian_matvec()` — compute-heavy, α ≈ 8.
    Laplacian,
    /// `AppModel::wave_matvec()` — communication-heavy, α ≈ 2.
    Wave,
}

impl AppKind {
    /// Canonical name, as accepted by `testkit replay --app`.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Laplacian => "laplacian",
            AppKind::Wave => "wave",
        }
    }

    /// Inverse of [`AppKind::name`].
    pub fn parse(s: &str) -> Option<AppKind> {
        match s {
            "laplacian" => Some(AppKind::Laplacian),
            "wave" => Some(AppKind::Wave),
            _ => None,
        }
    }

    /// The corresponding application model.
    pub fn model(self) -> AppModel {
        match self {
            AppKind::Laplacian => AppModel::laplacian_matvec(),
            AppKind::Wave => AppModel::wave_matvec(),
        }
    }
}

/// Two-level machine hierarchy presets the generator draws from
/// (Mohanamuraly & Staffelbach's machine-aware partitioning: intra-node
/// transport is much cheaper than the NIC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HierKind {
    /// Flat machine — no hierarchy (the paper's original model).
    None,
    /// Degenerate hierarchy: intra == inter figures. Must be bit-identical
    /// to [`HierKind::None`] (the `hierarchy-flattening` oracle's contract).
    Flat,
    /// SMP-style shared-memory node: `tw/64`, `ts/16`, `nic/16` on-node.
    Smp,
    /// NUMA-style node whose internal fabric is itself a network:
    /// `tw/8`, `ts/4`, `nic/4` on-node.
    Numa,
}

impl HierKind {
    /// All generated hierarchy kinds.
    pub const ALL: [HierKind; 4] = [
        HierKind::None,
        HierKind::Flat,
        HierKind::Smp,
        HierKind::Numa,
    ];

    /// Canonical name, as accepted by `testkit replay --hier`.
    pub fn name(self) -> &'static str {
        match self {
            HierKind::None => "none",
            HierKind::Flat => "flat",
            HierKind::Smp => "smp",
            HierKind::Numa => "numa",
        }
    }

    /// Inverse of [`HierKind::name`].
    pub fn parse(s: &str) -> Option<HierKind> {
        HierKind::ALL.into_iter().find(|h| h.name() == s)
    }

    /// Applies the hierarchy preset to a flat machine model.
    pub fn apply(self, m: MachineModel) -> MachineModel {
        match self {
            HierKind::None => m,
            HierKind::Flat => m.hierarchical_flat(),
            HierKind::Smp => m.hierarchical_smp(),
            HierKind::Numa => m.hierarchical_numa(),
        }
    }
}

/// Element families beyond octree hexahedra, modeled by expanding each hex
/// leaf into family-shaped sub-elements keyed along the same generalized SFC
/// (the t8code construction: tets and prisms get their own refinement
/// pattern but share the curve, Holke arXiv 1803.04970).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElemFamily {
    /// Plain octree hexahedra — the leaves as generated.
    Hex,
    /// Six tetrahedra per hex (the standard hex→tet split), modeled as six
    /// of the eight child octants carrying one tet key each.
    Tet,
    /// Two prisms per hex, modeled as the first/last child octant keys.
    Prism,
    /// Per-leaf mix of the three families, chosen by a hash of the leaf
    /// cell — the unstructured-hybrid regime.
    Hybrid,
}

impl ElemFamily {
    /// All generated element families.
    pub const ALL: [ElemFamily; 4] = [
        ElemFamily::Hex,
        ElemFamily::Tet,
        ElemFamily::Prism,
        ElemFamily::Hybrid,
    ];

    /// Canonical name, as accepted by `testkit replay --family`.
    pub fn name(self) -> &'static str {
        match self {
            ElemFamily::Hex => "hex",
            ElemFamily::Tet => "tet",
            ElemFamily::Prism => "prism",
            ElemFamily::Hybrid => "hybrid",
        }
    }

    /// Inverse of [`ElemFamily::name`].
    pub fn parse(s: &str) -> Option<ElemFamily> {
        ElemFamily::ALL.into_iter().find(|f| f.name() == s)
    }
}

/// Time evolution of the workload across AMR steps — the dimension that
/// stresses the warm-start replay path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// The mesh never changes: every step is a warm exact hit after the
    /// first.
    Static,
    /// A refinement front advected by exact half-domain lattice
    /// translations: step `t` translates the point cloud by `(1<<29)`
    /// along axis `d` iff bit `d` of `t` is set (wrapping mod `1<<30`),
    /// so the mesh is a cell-exact permutation of the base with period 8.
    MovingFront {
        /// Suggested number of AMR steps a driver should run.
        steps: u32,
    },
    /// A boundary layer growing on the `z = 0` face: each step deepens the
    /// face-layer refinement cap by one level until `steps`, after which
    /// the mesh freezes.
    BoundaryLayer {
        /// Steps over which the layer grows (then the mesh stops changing).
        steps: u32,
    },
}

impl Workload {
    /// Canonical encoding, as accepted by `testkit replay --workload`:
    /// `static`, `front<steps>`, `blayer<steps>`.
    pub fn encode(self) -> String {
        match self {
            Workload::Static => "static".into(),
            Workload::MovingFront { steps } => format!("front{steps}"),
            Workload::BoundaryLayer { steps } => format!("blayer{steps}"),
        }
    }

    /// Inverse of [`Workload::encode`].
    pub fn parse(s: &str) -> Option<Workload> {
        if s == "static" {
            return Some(Workload::Static);
        }
        if let Some(n) = s.strip_prefix("front") {
            return n.parse().ok().map(|steps| Workload::MovingFront { steps });
        }
        if let Some(n) = s.strip_prefix("blayer") {
            return n
                .parse()
                .ok()
                .map(|steps| Workload::BoundaryLayer { steps });
        }
        None
    }

    /// Number of AMR steps a driver should run for this workload (1 for
    /// static scenarios).
    pub fn suggested_steps(self) -> usize {
        match self {
            Workload::Static => 1,
            Workload::MovingFront { steps } | Workload::BoundaryLayer { steps } => steps as usize,
        }
    }
}

/// Independent RNG streams forked off the scenario seed. Points and fault
/// schedules must not share a stream with the field derivation, or a field
/// override would silently reshuffle everything downstream.
const STREAM_FIELDS: u64 = 0xF1E1;
const STREAM_POINTS: u64 = 0x90AB;
const STREAM_SHUFFLE: u64 = 0x5F0E;

/// A named check in one of the testkit registries (`soak::CHECKS`,
/// `oracles::ORACLES`, `metamorphic::PROPERTIES`).
pub type NamedCheck = (&'static str, fn(&Scenario));

/// One generated workload: mesh + machine + partitioner knobs + faults.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The generating seed; every other field is derived from it (possibly
    /// overridden afterwards by a shrinker or a corpus file).
    pub seed: u64,
    /// Point-cloud shape class.
    pub shape: MeshShape,
    /// Number of sample points (leaf count lands within a small factor).
    pub n: usize,
    /// Virtual ranks.
    pub p: usize,
    /// Space-filling curve.
    pub curve: Curve,
    /// Requested load-balance tolerance, quantised to 0.05 steps in
    /// `[0, 0.7]` (the paper's sweep range).
    pub tolerance: f64,
    /// Staged splitter selection cap (Eq. 2's `k`); `None` = unlimited.
    pub split_budget: Option<usize>,
    /// Machine model (one of the Table 1 presets).
    pub machine: MachineModel,
    /// Application model kind.
    pub app: AppKind,
    /// Benign fault plan (stragglers / jitter / transient all-to-all
    /// failures — never fail-stop; oracles add kills themselves).
    pub faults: Option<FaultPlan>,
    /// Machine hierarchy preset applied on top of [`Scenario::machine`].
    pub hier: HierKind,
    /// Element family the hex leaves expand into.
    pub family: ElemFamily,
    /// Time evolution of the mesh across AMR steps.
    pub workload: Workload,
}

impl Scenario {
    /// Expands a seed into a full scenario.
    pub fn from_seed(seed: u64) -> Scenario {
        let mut r = SplitMix64::new(seed).fork(STREAM_FIELDS);
        let shape = MeshShape::ALL[r.next_below(MeshShape::ALL.len() as u64) as usize];
        // Mostly 80–360 points; 2% of scenarios are degenerate (fewer
        // points than ranks) to fuzz the tiny-input paths.
        let n = if r.next_below(50) == 0 {
            1 + r.next_below(11) as usize
        } else {
            80 + r.next_below(280) as usize
        };
        let p = 2 + r.next_below(11) as usize;
        let curve = if r.next_below(2) == 0 {
            Curve::Morton
        } else {
            Curve::Hilbert
        };
        let tolerance = 0.05 * r.next_below(15) as f64;
        let split_budget = match r.next_below(3) {
            0 => None,
            1 => Some(8),
            _ => Some(32),
        };
        let presets = MachineModel::presets();
        let machine = presets[r.next_below(presets.len() as u64) as usize].clone();
        let app = if r.next_below(2) == 0 {
            AppKind::Laplacian
        } else {
            AppKind::Wave
        };
        let faults = if r.next_below(5) < 2 {
            None
        } else {
            Some(
                FaultPlan::new(seed)
                    .with_stragglers(0.25, 1.5 + 2.5 * r.next_f64())
                    .with_tw_jitter(0.25 * r.next_f64())
                    .with_transient_failures(0.1 * r.next_f64()),
            )
        };
        // New dimensions draw strictly AFTER every pre-existing field, so
        // old seeds reproduce their old scenarios field-for-field.
        let hier = match r.next_below(8) {
            0..=3 => HierKind::None,
            4 => HierKind::Flat,
            5 | 6 => HierKind::Smp,
            _ => HierKind::Numa,
        };
        let family = match r.next_below(8) {
            0..=4 => ElemFamily::Hex,
            5 => ElemFamily::Tet,
            6 => ElemFamily::Prism,
            _ => ElemFamily::Hybrid,
        };
        let workload = match r.next_below(8) {
            0..=5 => Workload::Static,
            6 => Workload::MovingFront {
                steps: 4 + r.next_below(5) as u32,
            },
            _ => Workload::BoundaryLayer {
                steps: 3 + r.next_below(4) as u32,
            },
        };
        Scenario {
            seed,
            shape,
            n,
            p,
            curve,
            tolerance,
            split_budget,
            machine,
            app,
            faults,
            hier,
            family,
            workload,
        }
    }

    /// The scenario's point cloud (deterministic in `seed`, `shape`, `n`).
    pub fn points(&self) -> Vec<Point<3>> {
        let s = SplitMix64::new(self.seed).fork(STREAM_POINTS).next_u64();
        match self.shape {
            MeshShape::Uniform => sample_points::<3>(Distribution::Uniform, self.n, s),
            MeshShape::Gaussian => sample_points::<3>(Distribution::Normal, self.n, s),
            MeshShape::LogNormal => sample_points::<3>(Distribution::LogNormal, self.n, s),
            MeshShape::Surface => sample_points_shell::<3>(self.n, s),
            MeshShape::Skewed => {
                let shift = 4 + (s % 6) as u32;
                sample_points_skewed::<3>(self.n, s, shift)
            }
        }
    }

    /// The point cloud at AMR step `t`: the base cloud, translated by the
    /// workload's exact lattice vector for moving-front scenarios. Adding
    /// `1<<29` mod `1<<30` is a single-bit flip, so the translation is
    /// exact and the step-`t` octree is a cell permutation of the base.
    pub fn points_at(&self, t: usize) -> Vec<Point<3>> {
        let mut pts = self.points();
        if matches!(self.workload, Workload::MovingFront { .. }) && !t.is_multiple_of(8) {
            const HALF: u32 = 1 << (MAX_DEPTH - 1);
            for p in &mut pts {
                for (d, c) in p.iter_mut().enumerate() {
                    if (t >> d) & 1 == 1 {
                        *c ^= HALF;
                    }
                }
            }
        }
        pts
    }

    /// The scenario's adaptive linear mesh (element family applied).
    /// Equals [`Scenario::mesh_at`]`(0)` by construction.
    pub fn build_tree(&self) -> LinearTree<3> {
        self.mesh_at(0)
    }

    /// The mesh at AMR step `t`. `mesh_at(0)` is always the base mesh; for
    /// [`Workload::Static`] every step returns it unchanged, a moving front
    /// permutes it by lattice translation (period 8), and a boundary layer
    /// deepens the `z = 0` face refinement until the workload's step cap.
    pub fn mesh_at(&self, t: usize) -> LinearTree<3> {
        let base = match self.workload {
            Workload::MovingFront { .. } => tree_from_points(&self.points_at(t), 1, 12, self.curve),
            Workload::BoundaryLayer { steps } if t > 0 => {
                // One extra face-layer level per step, capped so adversarial
                // draws cannot blow the leaf count up past test scale.
                let cap = (1 + t.min(steps as usize)).min(6) as u8;
                tree_from_points(&self.points(), 1, 12, self.curve)
                    .refine_where(|c| c.anchor()[2] == 0, cap)
            }
            _ => tree_from_points(&self.points(), 1, 12, self.curve),
        };
        self.apply_family(base)
    }

    /// Expands hex leaves into the scenario's element family (identity for
    /// [`ElemFamily::Hex`]). Sub-elements are keyed along the same curve as
    /// child octants of the leaf — the generalized-SFC construction.
    fn apply_family(&self, tree: LinearTree<3>) -> LinearTree<3> {
        if self.family == ElemFamily::Hex {
            return tree;
        }
        let mut cells = Vec::with_capacity(tree.len() * 2);
        for kc in tree.leaves() {
            let kind = match self.family {
                ElemFamily::Hex => unreachable!(),
                ElemFamily::Tet => 1,
                ElemFamily::Prism => 2,
                ElemFamily::Hybrid => {
                    // Per-leaf family choice from the leaf identity alone,
                    // so the mix is stable under re-distribution.
                    let h = (kc.key.path() as u64)
                        ^ ((kc.key.path() >> 64) as u64).rotate_left(31)
                        ^ ((kc.key.level() as u64) << 56);
                    SplitMix64::new(h).next_below(3)
                }
            };
            let c = kc.cell;
            if kind == 0 || c.level() >= MAX_DEPTH {
                cells.push(c);
            } else if kind == 1 {
                // Hex → 6 tets: six child octant keys carry one tet each.
                for i in 1..7 {
                    cells.push(c.child(i));
                }
            } else {
                // Hex → 2 prisms: the curve-extremal child octant keys.
                cells.push(c.child(0));
                cells.push(c.child(7));
            }
        }
        LinearTree::from_cells(cells, self.curve)
    }

    /// Seed for shuffled initial distributions (`stream_id` decorrelates
    /// multiple distributions of the same scenario).
    pub fn shuffle_seed(&self, stream_id: u64) -> u64 {
        SplitMix64::new(self.seed)
            .fork(STREAM_SHUFFLE)
            .fork(stream_id)
            .next_u64()
    }

    /// The machine with the scenario's hierarchy preset applied.
    pub fn machine_model(&self) -> MachineModel {
        self.hier.apply(self.machine.clone())
    }

    /// The machine+application performance model (hierarchy included).
    pub fn perf(&self) -> PerfModel {
        PerfModel::new(self.machine_model(), self.app.model())
    }

    /// A fresh fault-free engine.
    pub fn engine(&self) -> Engine {
        Engine::new(self.p, self.perf())
    }

    /// A fresh engine with the scenario's benign fault plan (fault-free if
    /// the scenario drew none).
    pub fn engine_faulted(&self) -> Engine {
        match &self.faults {
            Some(plan) => self.engine().with_faults(plan.clone()),
            None => self.engine(),
        }
    }

    /// Partitioner options induced by the scenario.
    pub fn opts(&self) -> optipart_core::partition::PartitionOptions {
        optipart_core::partition::PartitionOptions {
            tolerance: self.tolerance,
            max_split_per_round: self.split_budget,
            ..Default::default()
        }
    }

    /// The one-line replay command for this scenario: the seed plus exactly
    /// the fields that differ from the seed's derivation (shrinkers and
    /// corpus files override fields; a pristine scenario replays from the
    /// seed alone).
    pub fn replay_cmd(&self) -> String {
        let base = Scenario::from_seed(self.seed);
        let mut cmd = format!(
            "cargo run --release -p optipart-testkit --bin testkit -- replay --seed {}",
            self.seed
        );
        if self.shape != base.shape {
            cmd += &format!(" --shape {}", self.shape.name());
        }
        if self.n != base.n {
            cmd += &format!(" --n {}", self.n);
        }
        if self.p != base.p {
            cmd += &format!(" --p {}", self.p);
        }
        if self.curve != base.curve {
            cmd += &format!(" --curve {}", curve_name(self.curve));
        }
        if self.tolerance != base.tolerance {
            cmd += &format!(" --tol {}", self.tolerance);
        }
        if self.split_budget != base.split_budget {
            match self.split_budget {
                Some(k) => cmd += &format!(" --split-budget {k}"),
                None => cmd += " --split-budget none",
            }
        }
        if self.machine.name != base.machine.name {
            cmd += &format!(" --machine {}", self.machine.name);
        }
        if self.app != base.app {
            cmd += &format!(" --app {}", self.app.name());
        }
        match (&self.faults, &base.faults) {
            (None, Some(_)) => cmd += " --no-faults",
            (Some(f), _) if Some(f.to_string()) != base.faults.as_ref().map(|b| b.to_string()) => {
                cmd += &format!(" --faults {f}");
            }
            _ => {}
        }
        if self.hier != base.hier {
            cmd += &format!(" --hier {}", self.hier.name());
        }
        if self.family != base.family {
            cmd += &format!(" --family {}", self.family.name());
        }
        if self.workload != base.workload {
            cmd += &format!(" --workload {}", self.workload.encode());
        }
        cmd
    }
}

/// Canonical curve name, as accepted by `testkit replay --curve`.
pub fn curve_name(c: Curve) -> &'static str {
    match c {
        Curve::Morton => "morton",
        Curve::Hilbert => "hilbert",
    }
}

/// Inverse of [`curve_name`].
pub fn parse_curve(s: &str) -> Option<Curve> {
    match s {
        "morton" => Some(Curve::Morton),
        "hilbert" => Some(Curve::Hilbert),
        _ => None,
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} shape={} n={} p={} curve={} tol={} budget={} machine={} app={} faults={} \
             hier={} family={} workload={}",
            self.seed,
            self.shape.name(),
            self.n,
            self.p,
            curve_name(self.curve),
            self.tolerance,
            match self.split_budget {
                Some(k) => k.to_string(),
                None => "none".into(),
            },
            self.machine.name,
            self.app.name(),
            match &self.faults {
                Some(plan) => plan.to_string(),
                None => "none".into(),
            },
            self.hier.name(),
            self.family.name(),
            self.workload.encode(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every enum dimension's canonical name must survive a parse
    /// round-trip — these strings are the replay/corpus wire format.
    #[test]
    fn dimension_names_round_trip() {
        for s in MeshShape::ALL {
            assert_eq!(MeshShape::parse(s.name()), Some(s));
        }
        for h in HierKind::ALL {
            assert_eq!(HierKind::parse(h.name()), Some(h));
        }
        for f in ElemFamily::ALL {
            assert_eq!(ElemFamily::parse(f.name()), Some(f));
        }
        for a in [AppKind::Laplacian, AppKind::Wave] {
            assert_eq!(AppKind::parse(a.name()), Some(a));
        }
        for c in [Curve::Morton, Curve::Hilbert] {
            assert_eq!(parse_curve(curve_name(c)), Some(c));
        }
        for w in [
            Workload::Static,
            Workload::MovingFront { steps: 7 },
            Workload::BoundaryLayer { steps: 3 },
        ] {
            assert_eq!(Workload::parse(&w.encode()), Some(w));
        }
        assert_eq!(Workload::parse("front"), None);
        assert_eq!(Workload::parse("sideways4"), None);
    }

    /// The new dimensions draw strictly after every pre-existing field, so
    /// seeds from before the hierarchy PR must reproduce the same mesh —
    /// and overriding a new dimension must not reshuffle the point stream.
    #[test]
    fn point_stream_is_independent_of_new_dimensions() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let base = Scenario::from_seed(seed);
            let mut overridden = base.clone();
            overridden.hier = HierKind::Smp;
            overridden.family = base.family; // family changes the mesh, not the points
            overridden.workload = Workload::MovingFront { steps: 8 };
            assert_eq!(base.points(), overridden.points(), "seed {seed}");
        }
    }

    /// `build_tree` is `mesh_at(0)`; a static workload never changes the
    /// mesh; a moving front returns to the base mesh at its period.
    #[test]
    fn mesh_evolution_contracts() {
        let mut scn = Scenario::from_seed(0x175);
        scn.n = 150;
        scn.workload = Workload::Static;
        let base = scn.build_tree();
        assert_eq!(base.leaves(), scn.mesh_at(0).leaves());
        assert_eq!(base.leaves(), scn.mesh_at(5).leaves());

        scn.workload = Workload::MovingFront { steps: 9 };
        let front_base = scn.mesh_at(0);
        assert_eq!(front_base.leaves(), scn.build_tree().leaves());
        assert_ne!(front_base.leaves(), scn.mesh_at(1).leaves());
        assert_eq!(front_base.leaves(), scn.mesh_at(8).leaves());
        assert_eq!(scn.mesh_at(3).leaves(), scn.mesh_at(11).leaves());

        scn.workload = Workload::BoundaryLayer { steps: 2 };
        let l0 = scn.mesh_at(0);
        // By the step cap the face layer must have refined past the base
        // mesh (early steps can be no-ops when the face is already finer
        // than the step's level cap), and past the cap the mesh freezes.
        let capped = scn.mesh_at(2);
        assert!(capped.len() > l0.len(), "the boundary layer must refine");
        assert_eq!(capped.leaves(), scn.mesh_at(6).leaves());
    }

    /// A pristine scenario replays from the seed alone; overridden new
    /// dimensions (and only those) appear as flags, spelled exactly as the
    /// testkit CLI accepts them.
    #[test]
    fn replay_cmd_encodes_exactly_the_overrides() {
        let seed = 0xC0FFEE;
        let base = Scenario::from_seed(seed);
        assert!(
            base.replay_cmd().ends_with(&format!("--seed {seed}")),
            "pristine scenario must replay from the seed alone: {}",
            base.replay_cmd()
        );

        let mut scn = base.clone();
        scn.hier = if base.hier == HierKind::Numa {
            HierKind::Smp
        } else {
            HierKind::Numa
        };
        scn.family = if base.family == ElemFamily::Tet {
            ElemFamily::Prism
        } else {
            ElemFamily::Tet
        };
        scn.workload = Workload::BoundaryLayer { steps: 5 };
        let cmd = scn.replay_cmd();
        assert!(
            cmd.contains(&format!(" --hier {}", scn.hier.name())),
            "{cmd}"
        );
        assert!(
            cmd.contains(&format!(" --family {}", scn.family.name())),
            "{cmd}"
        );
        assert!(cmd.contains(" --workload blayer5"), "{cmd}");
        assert!(
            !cmd.contains("--shape"),
            "un-overridden fields must stay out: {cmd}"
        );
    }

    /// The hierarchy presets applied by `machine_model` keep the flat
    /// figures untouched and only attach (or don't) a `Hierarchy`.
    #[test]
    fn machine_model_applies_hier_preset() {
        let mut scn = Scenario::from_seed(9);
        scn.hier = HierKind::None;
        assert!(scn.machine_model().hierarchy.is_none());
        scn.hier = HierKind::Smp;
        let m = scn.machine_model();
        let h = m.hierarchy.as_ref().expect("smp attaches a hierarchy");
        assert_eq!(m.tw, scn.machine.tw);
        assert!(h.tw_intra < m.tw);
    }
}
