//! A real shared-memory SPMD runtime: every rank is an OS thread.
//!
//! The virtual-process [`crate::Engine`] simulates message passing to reach
//! Titan-scale rank counts; this module is its ground-truth counterpart for
//! small `p`: ranks run concurrently as threads and exchange **real
//! messages** over channels, with no cost model and no global view. The
//! partitioning algorithms implemented against [`ThreadComm`] (see
//! `optipart-core::threaded`) must produce bit-identical results to the
//! virtual engine — which is exactly what the cross-validation tests assert.
//!
//! Messages are boxed `dyn Any` payloads over `std::sync::mpsc` channels (typed
//! end-to-end by the `send`/`recv` call pair), with per-source stashing so
//! out-of-order arrivals from different sources do not block each other —
//! the same guarantees MPI point-to-point ordering gives per (source, comm).

use std::any::Any;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};

type Packet = (usize, Box<dyn Any + Send>);

/// One rank's endpoint of the threaded communicator.
pub struct ThreadComm {
    rank: usize,
    p: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    barrier: Arc<Barrier>,
    /// Early arrivals from each source, preserving per-source order.
    stash: Vec<VecDeque<Box<dyn Any + Send>>>,
}

impl ThreadComm {
    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Communicator size.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Sends a message to `dst` (non-blocking, unbounded buffering).
    pub fn send<T: Send + 'static>(&self, dst: usize, msg: T) {
        self.senders[dst]
            .send((self.rank, Box::new(msg)))
            .expect("receiver alive for the scope's duration");
    }

    /// Receives the next message from `src`, blocking until it arrives.
    ///
    /// # Panics
    /// Panics if the arrived payload is not a `T` — a protocol error, which
    /// in these SPMD algorithms means ranks diverged.
    pub fn recv<T: Send + 'static>(&mut self, src: usize) -> T {
        loop {
            if let Some(b) = self.stash[src].pop_front() {
                return *b
                    .downcast::<T>()
                    .expect("protocol mismatch: wrong payload type");
            }
            let (from, payload) = self
                .receiver
                .recv()
                .expect("peers alive for the scope's duration");
            self.stash[from].push_back(payload);
        }
    }

    /// Synchronises all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// All-gather: every rank contributes one value; all receive the vector
    /// in rank order.
    pub fn allgather<T: Clone + Send + 'static>(&mut self, mine: T) -> Vec<T> {
        for dst in 0..self.p {
            if dst != self.rank {
                self.send(dst, mine.clone());
            }
        }
        (0..self.p)
            .map(|src| {
                if src == self.rank {
                    mine.clone()
                } else {
                    self.recv::<T>(src)
                }
            })
            .collect()
    }

    /// Sum all-reduce over `u64`.
    pub fn allreduce_sum_u64(&mut self, mine: u64) -> u64 {
        self.allgather(mine).into_iter().sum()
    }

    /// Element-wise sum all-reduce over a `u64` vector.
    pub fn allreduce_sum_vec_u64(&mut self, mine: Vec<u64>) -> Vec<u64> {
        let all = self.allgather(mine);
        let len = all[0].len();
        let mut out = vec![0u64; len];
        for v in &all {
            debug_assert_eq!(v.len(), len);
            for (o, x) in out.iter_mut().zip(v) {
                *o += x;
            }
        }
        out
    }

    /// Personalised all-to-all: `bufs[dst]` is delivered to `dst`; returns
    /// the buffers received from every source, in rank order.
    pub fn alltoallv<T: Send + 'static>(&mut self, mut bufs: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(bufs.len(), self.p);
        // The rank's own slice never crosses a channel.
        let mut own = Some(std::mem::take(&mut bufs[self.rank]));
        for (dst, buf) in bufs.into_iter().enumerate() {
            if dst != self.rank {
                self.send(dst, buf);
            }
        }
        (0..self.p)
            .map(|src| {
                if src == self.rank {
                    own.take().expect("own slice taken once")
                } else {
                    self.recv::<Vec<T>>(src)
                }
            })
            .collect()
    }

    /// Sparse personalised all-to-all: only the supplied `(dst, buf)` pairs
    /// cross a channel (one message per pair; empty buffers are skipped).
    /// Every rank first learns its in-degree through a counting exchange,
    /// then receives its `(src, buf)` pairs, returned sorted by source —
    /// the threaded ground truth for [`crate::Engine::alltoallv_sparse`].
    pub fn alltoallv_sparse<T: Send + 'static>(
        &mut self,
        send: Vec<(usize, Vec<T>)>,
    ) -> Vec<(usize, Vec<T>)> {
        // In-degree announcement: one flag per destination.
        let mut sends_to = vec![0u64; self.p];
        for (dst, buf) in &send {
            assert!(*dst < self.p, "destination {dst} out of range");
            if !buf.is_empty() {
                sends_to[*dst] += 1;
            }
        }
        let flags = self.alltoallv(sends_to.into_iter().map(|f| vec![f]).collect());
        let mut own: Vec<(usize, Vec<T>)> = Vec::new();
        for (dst, buf) in send {
            if buf.is_empty() {
                continue;
            }
            if dst == self.rank {
                own.push((self.rank, buf));
            } else {
                self.send(dst, buf);
            }
        }
        let mut recv: Vec<(usize, Vec<T>)> = own;
        for (src, flag) in flags.into_iter().enumerate() {
            if src == self.rank {
                continue;
            }
            for _ in 0..flag[0] {
                let buf = self.recv::<Vec<T>>(src);
                recv.push((src, buf));
            }
        }
        recv.sort_by_key(|(src, _)| *src);
        recv
    }
}

/// Runs `f` as `p` SPMD ranks on OS threads; returns each rank's result in
/// rank order.
pub fn run<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut ThreadComm) -> R + Sync,
{
    assert!(p >= 1);
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel::<Packet>();
        senders.push(tx);
        receivers.push(rx);
    }
    let barrier = Arc::new(Barrier::new(p));
    let mut comms: Vec<ThreadComm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| ThreadComm {
            rank,
            p,
            senders: senders.clone(),
            receiver,
            barrier: Arc::clone(&barrier),
            stash: (0..p).map(|_| VecDeque::new()).collect(),
        })
        .collect();
    drop(senders);

    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .iter_mut()
            .map(|comm| scope.spawn(|| f(comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_and_reduce() {
        let results = run(4, |comm| {
            let r = comm.rank() as u64;
            let gathered = comm.allgather(r * 10);
            let sum = comm.allreduce_sum_u64(r);
            (gathered, sum)
        });
        for (gathered, sum) in results {
            assert_eq!(gathered, vec![0, 10, 20, 30]);
            assert_eq!(sum, 6);
        }
    }

    #[test]
    fn alltoallv_transposes() {
        let results = run(3, |comm| {
            let r = comm.rank();
            let bufs: Vec<Vec<u32>> = (0..3).map(|d| vec![(r * 10 + d) as u32]).collect();
            comm.alltoallv(bufs)
        });
        for (dst, recv) in results.into_iter().enumerate() {
            for (src, buf) in recv.into_iter().enumerate() {
                assert_eq!(buf, vec![(src * 10 + dst) as u32]);
            }
        }
    }

    #[test]
    fn sparse_alltoallv_delivers_sorted_pairs() {
        let p = 5;
        let results = run(p, |comm| {
            let r = comm.rank();
            // Two ring neighbours, one self-message, one duplicate link and
            // one empty buffer that must be dropped.
            let send: Vec<(usize, Vec<u64>)> = vec![
                ((r + 1) % p, vec![r as u64]),
                ((r + 1) % p, vec![r as u64 + 100]),
                (r, vec![r as u64 + 1000]),
                ((r + 2) % p, vec![]),
            ];
            comm.alltoallv_sparse(send)
        });
        for (dst, row) in results.into_iter().enumerate() {
            let prev = (dst + p - 1) % p;
            let mut expected = vec![
                (prev, vec![prev as u64]),
                (prev, vec![prev as u64 + 100]),
                (dst, vec![dst as u64 + 1000]),
            ];
            expected.sort_by_key(|(src, _)| *src);
            assert_eq!(row, expected);
        }
    }

    #[test]
    fn vector_allreduce() {
        let results = run(5, |comm| {
            comm.allreduce_sum_vec_u64(vec![comm.rank() as u64, 1])
        });
        for v in results {
            assert_eq!(v, vec![10, 5]);
        }
    }

    #[test]
    fn out_of_order_sources_are_stashed() {
        // Rank 0 receives from 2 first even though 1 sent earlier in
        // program order — the stash keeps per-source streams intact.
        let results = run(3, |comm| match comm.rank() {
            0 => {
                let from2: u64 = comm.recv(2);
                let from1: u64 = comm.recv(1);
                from2 * 100 + from1
            }
            r => {
                comm.send(0, r as u64);
                0
            }
        });
        assert_eq!(results[0], 201);
    }

    #[test]
    fn mixed_payload_types() {
        let results = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7u64);
                comm.send(1, vec![1.5f64, 2.5]);
                0.0
            } else {
                let a: u64 = comm.recv(0);
                let b: Vec<f64> = comm.recv(0);
                a as f64 + b.iter().sum::<f64>()
            }
        });
        assert_eq!(results[1], 11.0);
    }

    #[test]
    fn single_rank() {
        let results = run(1, |comm| comm.allreduce_sum_u64(42));
        assert_eq!(results, vec![42]);
    }
}
