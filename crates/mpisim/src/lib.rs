//! # optipart-mpisim — virtual-process BSP engine
//!
//! The paper's algorithms run as MPI programs on up to 262,144 Titan cores.
//! Rust has no mature MPI bindings and we have no Titan, so this crate
//! provides the substitute substrate described in DESIGN.md: a deterministic
//! **bulk-synchronous virtual-process engine**.
//!
//! ## Programming model
//!
//! Algorithms are written in *global view* SPMD style against [`Engine`]:
//! rank-local state lives in a [`DistVec`] (one `Vec` per virtual rank),
//! local compute phases run all ranks' closures in parallel on scoped
//! threads ([`par`], honouring `RAYON_NUM_THREADS`), and
//! collectives ([`Engine::allreduce_sum_u64`], [`Engine::alltoallv_sparse`], …)
//! move real data between rank buffers *and* charge every rank's virtual
//! clock using the machine model's LogGP-style costs (Eqs. 1–2 of the
//! paper). This preserves the quantities the paper's claims rest on — who
//! holds how much work, who exchanges how many bytes, how many messages fly
//! — while letting a laptop host hundreds of thousands of "ranks".
//!
//! ## Clock semantics
//!
//! * A compute phase advances each rank's clock independently by the cost
//!   the phase reports (modeled: `bytes × tc`).
//! * A collective is a synchronisation point: every rank waits for the last
//!   arrival (`max` of clocks), pays the collective's cost, and leaves with
//!   a common (or per-rank, for `alltoallv`) completion time. Waiting time
//!   is the load-imbalance penalty — it costs wall-clock *and* idle energy.
//!
//! ## What is recorded
//!
//! [`RunStats`] counts messages and bytes (optionally a full rank×rank
//! communication matrix — the `M` of §5.5), always-on phase counters
//! ([`Engine::phase_time`] / [`Engine::phase_bytes`], backed by
//! `optipart-trace`) give the partition/all2all/splitter breakdowns of
//! Figs. 5–6, and an energy accumulator feeds `optipart-machine`'s
//! per-node reports. [`Engine::with_tracing`] additionally records every
//! compute segment, collective charge and synchronisation point on the
//! virtual timeline — see [`Engine::trace_json`],
//! [`Engine::critical_path`] and [`Engine::model_attribution`].
//!
//! ## Fault injection and auditing
//!
//! An engine built with [`Engine::with_faults`] applies a seeded
//! [`FaultPlan`]: per-rank compute stragglers (clock-only slowdowns),
//! per-link `tw` perturbation, and transient `alltoallv` failures that cost
//! modeled retry-with-backoff time on the virtual clock. Faults never touch
//! payload data — only clocks — so the same seed reproduces the same
//! makespan bit-for-bit at any host thread count, and data-level results
//! are identical with faults on or off.
//!
//! Independently of faults, an always-on audit checks conservation
//! invariants after every collective — `alltoallv` neither loses nor
//! duplicates elements, byte accounting matches the buffers actually
//! moved, virtual clocks never run backwards — and panics with rank-level
//! diagnostics on the first violation. See DESIGN.md, "Fault model and
//! audits".
//!
//! ## Fail-stop failures and recovery
//!
//! A [`FaultPlan`] can additionally schedule **fail-stop rank deaths**
//! ([`FaultPlan::with_rank_failures`], [`FaultPlan::kill_rank`]): the
//! victim stops arriving at synchronisation points, survivors detect the
//! death at the next collective after a timeout charge, and the engine
//! unwinds with a [`RankDeath`] payload. Drivers catch it with
//! [`catch_rank_death`], call [`Engine::shrink_after_death`] to continue as
//! a `p − 1`-rank machine, restore app state from a [`CheckpointStore`]
//! (in-memory partner checkpointing, [`checkpoint`] module), repartition
//! over the survivors, and re-run lost work — every recovery cost lands on
//! the virtual clocks and in the critical path. See DESIGN.md §11.

pub mod checkpoint;
pub mod collectives;
pub mod dist;
pub mod engine;
pub mod faults;
pub mod par;
pub mod rng;
pub mod stats;
pub mod threaded;

pub use checkpoint::{
    Checkpoint, CheckpointPolicy, CheckpointStats, CheckpointStore, Replicated, Snapshot,
};
pub use collectives::{AllToAllAlgo, AlltoallvArena};
pub use dist::DistVec;
pub use engine::{Engine, TimeMode};
pub use faults::{catch_rank_death, FaultPlan, RankDeath, RankFaults};
pub use optipart_trace::{CriticalPath, ModelAttribution, PathKind, Profile, Tracer};
pub use stats::{CommMatrix, RunStats};

// Property-test suites need the external `proptest` crate, which the
// offline tier-1 build cannot fetch; enable with `--features proptest`
// once a vendored copy is available.
#[cfg(all(test, feature = "proptest"))]
mod proptests;
