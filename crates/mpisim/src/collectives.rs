//! Collective operations with LogGP-style cost accounting.
//!
//! Every collective is a BSP synchronisation point: ranks wait for the last
//! arrival, pay the operation's modeled cost, and leave together (or with
//! per-rank completion times for `alltoallv`, whose cost depends on each
//! rank's traffic). The cost formulas follow §3.1 of the paper: tree-based
//! collectives cost `log p · (ts + tw · bytes)`; the all-to-all exchange is
//! the `tw · N/p` term plus per-message latencies.

use crate::engine::Engine;

/// All-to-all scheduling algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllToAllAlgo {
    /// Direct pairwise exchange: one message per non-empty destination.
    /// Latency-bound for large `p` with small payloads.
    Direct,
    /// Staged/Bruck-style exchange (the paper's §3.1: "the all-to-all
    /// exchange is also performed in a staged manner similar to [4, 34],
    /// avoiding potential network congestion"): `log p` rounds, each payload
    /// forwarded through intermediate ranks — fewer messages, slightly more
    /// volume.
    Staged,
}

/// Bandwidth overhead of staged forwarding (payloads traverse ~1.25 hops on
/// average under radix-2 staging of typical AMR traffic).
const STAGED_VOLUME_OVERHEAD: f64 = 1.25;

impl Engine {
    /// Per-rank clock charges of an all-to-all exchange: latency + volume
    /// cost under the chosen schedule (with the rank's effective `tw`), plus
    /// deterministic retry-with-backoff when the fault plan makes this
    /// exchange fail transiently on a rank. Every retry pays the rank's
    /// transfer cost again after an exponentially growing backoff wait.
    fn charge_alltoall(
        &mut self,
        algo: AllToAllAlgo,
        send_bytes: &[u64],
        recv_bytes: &[u64],
        out_msgs: &[u64],
        in_msgs: &[u64],
    ) {
        let t0 = self.sync_start("alltoallv");
        let ts = self.perf.machine.ts;
        let logp = self.log_p();
        let seq = self.collective_seq;
        self.collective_seq += 1;
        let plan = self.faults.as_ref().map(|(plan, _)| plan.clone());
        for r in 0..self.p {
            let vol = send_bytes[r].max(recv_bytes[r]) as f64;
            let base = match algo {
                AllToAllAlgo::Direct => {
                    ts * (out_msgs[r] + in_msgs[r]) as f64 + self.effective_tw(r) * vol
                }
                AllToAllAlgo::Staged => {
                    ts * logp + self.effective_tw(r) * vol * STAGED_VOLUME_OVERHEAD
                }
            };
            let mut cost = base;
            if let Some(plan) = &plan {
                // Ranks that moved no bytes sent no messages that could
                // fail.
                if send_bytes[r] + recv_bytes[r] > 0 {
                    let retries = plan.retries_for(seq, self.tracks[r]);
                    for k in 0..retries {
                        cost += plan.backoff_s(k) + base;
                    }
                    self.stats.retries_total += retries as u64;
                    if retries > 0 {
                        // First failure surfaces after the base attempt.
                        self.tracer
                            .mark(self.tracks[r], t0 + base, "fault.retry", retries as f64);
                    }
                }
            }
            self.charge_comm(r, t0, cost, send_bytes[r] + recv_bytes[r]);
        }
    }
    /// Synchronises all ranks to the maximum clock and returns that time,
    /// recording the sync point (and the blocking rank — the last arrival,
    /// lowest rank on ties) on the structured trace. Every sync point
    /// advances the global `sync_seq` and first fires any fail-stop kill
    /// scheduled at or before it ([`Engine::check_failstop`] unwinds with a
    /// `RankDeath` in that case — the collective never happens).
    pub(crate) fn sync_start(&mut self, name: &str) -> f64 {
        self.check_failstop();
        self.sync_seq += 1;
        let mut t = 0.0;
        let mut blocker = 0;
        for (r, &c) in self.clocks.iter().enumerate() {
            if c > t {
                t = c;
                blocker = r;
            }
        }
        self.clocks.iter_mut().for_each(|c| *c = t);
        self.tracer.begin_collective(name, t, self.tracks[blocker]);
        t
    }

    /// Barrier: `log p` latencies.
    pub fn barrier(&mut self) {
        let t0 = self.sync_start("barrier");
        let cost = self.log_p() * self.perf.machine.ts;
        self.stats.collectives += 1;
        self.stats.msgs_total += (self.p as u64) * self.log_p() as u64;
        for r in 0..self.p {
            self.charge_comm(r, t0, cost, 0);
        }
    }

    /// Generic reduction plumbing: each rank contributes `bytes_per_rank`
    /// bytes, every rank pays `log p (ts + tw b)` — with `tw` the rank's
    /// *effective* wire slowness, so link jitter desynchronises completion
    /// times exactly as a perturbed network would.
    fn charge_tree_collective(&mut self, name: &str, bytes_per_rank: u64) {
        let t0 = self.sync_start(name);
        let ts = self.perf.machine.ts;
        let logp = self.log_p();
        self.stats.collectives += 1;
        let moved = bytes_per_rank * self.p as u64 * logp as u64;
        self.stats.msgs_total += self.p as u64 * logp as u64;
        self.stats.bytes_total += moved;
        for r in 0..self.p {
            let cost = logp * (ts + self.effective_tw(r) * bytes_per_rank as f64);
            self.charge_comm(r, t0, cost, bytes_per_rank * logp as u64);
        }
    }

    /// `MPI_Allreduce(SUM)` over one `u64` per rank.
    pub fn allreduce_sum_u64(&mut self, contrib: &[u64]) -> u64 {
        assert_eq!(contrib.len(), self.p);
        self.charge_tree_collective("allreduce", 8);
        contrib.iter().sum()
    }

    /// `MPI_Allreduce(MAX)` over one `u64` per rank.
    pub fn allreduce_max_u64(&mut self, contrib: &[u64]) -> u64 {
        assert_eq!(contrib.len(), self.p);
        self.charge_tree_collective("allreduce", 8);
        contrib.iter().copied().max().unwrap_or(0)
    }

    /// `MPI_Allreduce(MAX)` over one `f64` per rank.
    pub fn allreduce_max_f64(&mut self, contrib: &[f64]) -> f64 {
        assert_eq!(contrib.len(), self.p);
        self.charge_tree_collective("allreduce", 8);
        contrib.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// `MPI_Allreduce(SUM)` over one `f64` per rank.
    pub fn allreduce_sum_f64(&mut self, contrib: &[f64]) -> f64 {
        assert_eq!(contrib.len(), self.p);
        self.charge_tree_collective("allreduce", 8);
        contrib.iter().sum()
    }

    /// Element-wise `MPI_Allreduce(SUM)` over a `u64` vector per rank —
    /// the reduction OptiPart uses to obtain global bucket counts
    /// (Algorithm 3 line 18). The vector length is the splitter/bucket
    /// count `k`, so the cost realises the `(ts + tw·k) log p` term of
    /// Eq. (2).
    pub fn allreduce_sum_vec_u64(&mut self, contribs: &[Vec<u64>]) -> Vec<u64> {
        assert_eq!(contribs.len(), self.p);
        let len = contribs[0].len();
        assert!(
            contribs.iter().all(|c| c.len() == len),
            "ragged contributions"
        );
        self.charge_tree_collective("allreduce", 8 * len as u64);
        let mut out = vec![0u64; len];
        for c in contribs {
            for (o, v) in out.iter_mut().zip(c) {
                *o += v;
            }
        }
        out
    }

    /// Element-wise `MPI_Allreduce(MAX)` over a `u64` vector per rank.
    pub fn allreduce_max_vec_u64(&mut self, contribs: &[Vec<u64>]) -> Vec<u64> {
        assert_eq!(contribs.len(), self.p);
        let len = contribs[0].len();
        assert!(
            contribs.iter().all(|c| c.len() == len),
            "ragged contributions"
        );
        self.charge_tree_collective("allreduce", 8 * len as u64);
        let mut out = vec![0u64; len];
        for c in contribs {
            for (o, v) in out.iter_mut().zip(c) {
                *o = (*o).max(*v);
            }
        }
        out
    }

    /// Exclusive prefix sum (`MPI_Exscan`): rank `r` receives
    /// `sum(contrib[0..r])`; rank 0 receives 0.
    pub fn exscan_sum_u64(&mut self, contrib: &[u64]) -> Vec<u64> {
        assert_eq!(contrib.len(), self.p);
        self.charge_tree_collective("exscan", 8);
        let mut out = Vec::with_capacity(self.p);
        let mut acc = 0u64;
        for &c in contrib {
            out.push(acc);
            acc += c;
        }
        out
    }

    /// Broadcast of `bytes` from one rank to all.
    pub fn bcast_cost(&mut self, bytes: u64) {
        self.charge_tree_collective("bcast", bytes);
    }

    /// `MPI_Allgather`: every rank contributes a small buffer; all ranks
    /// receive the concatenation (rank order). Recursive-doubling cost:
    /// `log p · ts + tw · total_bytes`.
    pub fn allgather<T: Clone>(&mut self, contribs: &[Vec<T>]) -> Vec<T> {
        assert_eq!(contribs.len(), self.p);
        let elem = std::mem::size_of::<T>() as u64;
        let total: u64 = contribs.iter().map(|c| c.len() as u64 * elem).sum();
        let t0 = self.sync_start("allgather");
        let ts = self.perf.machine.ts;
        let logp = self.log_p();
        self.stats.collectives += 1;
        self.stats.msgs_total += self.p as u64 * logp as u64;
        self.stats.bytes_total += total * logp as u64;
        for r in 0..self.p {
            let cost = logp * ts + self.effective_tw(r) * total as f64;
            self.charge_comm(r, t0, cost, total);
        }
        let mut out = Vec::with_capacity((total / elem.max(1)) as usize);
        for c in contribs {
            out.extend_from_slice(c);
        }
        out
    }

    /// `MPI_Alltoallv`: `send[src][dst]` buffers are delivered as
    /// `recv[dst][src]`.
    ///
    /// Per-rank cost: latency per message (Direct) or per stage (Staged),
    /// plus slowness × the larger of the rank's send and receive volumes.
    /// Records the communication matrix when enabled.
    pub fn alltoallv<T: Send>(
        &mut self,
        send: Vec<Vec<Vec<T>>>,
        algo: AllToAllAlgo,
    ) -> Vec<Vec<Vec<T>>> {
        let p = self.p;
        assert_eq!(send.len(), p, "send must have one row per rank");
        assert!(send.iter().all(|row| row.len() == p), "ragged send rows");
        let elem = std::mem::size_of::<T>() as u64;

        // Traffic accounting.
        let mut send_bytes = vec![0u64; p];
        let mut recv_bytes = vec![0u64; p];
        let mut out_msgs = vec![0u64; p];
        let mut in_msgs = vec![0u64; p];
        for (src, row) in send.iter().enumerate() {
            for (dst, buf) in row.iter().enumerate() {
                if buf.is_empty() || src == dst {
                    continue;
                }
                let b = buf.len() as u64 * elem;
                send_bytes[src] += b;
                recv_bytes[dst] += b;
                out_msgs[src] += 1;
                in_msgs[dst] += 1;
                if let Some(mat) = &mut self.comm_matrix {
                    mat.add(self.tracks[src], self.tracks[dst], b);
                }
            }
        }
        let total_bytes: u64 = send_bytes.iter().sum();
        let total_msgs: u64 = out_msgs.iter().sum();
        self.stats.collectives += 1;
        self.stats.bytes_total += total_bytes;
        self.stats.msgs_total += match algo {
            AllToAllAlgo::Direct => total_msgs,
            AllToAllAlgo::Staged => p as u64 * self.log_p() as u64,
        };

        // Clock charges (+ fault retries).
        self.charge_alltoall(algo, &send_bytes, &recv_bytes, &out_msgs, &in_msgs);

        // Audit bookkeeping: element counts per (src, dst) before the move.
        let expected: Option<Vec<Vec<usize>>> = self.audit.then(|| {
            send.iter()
                .map(|row| row.iter().map(Vec::len).collect())
                .collect()
        });

        // Data movement: recv[dst][src] = send[src][dst]. Iterating rows in
        // ascending src order fills every recv row in src order directly —
        // no reversal pass, no intermediate shuffling.
        let mut recv: Vec<Vec<Vec<T>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
        for row in send {
            for (dst, buf) in row.into_iter().enumerate() {
                recv[dst].push(buf);
            }
        }

        if let Some(expected) = expected {
            self.audit_alltoallv(&expected, &recv, total_bytes, elem);
        }
        recv
    }

    /// Conservation audit for a dense all-to-all: every `(src, dst)` buffer
    /// arrived with exactly the element count it was sent with (nothing
    /// lost, nothing duplicated), and the byte total charged to [`RunStats`]
    /// equals the off-rank bytes actually moved.
    fn audit_alltoallv<T>(
        &mut self,
        expected: &[Vec<usize>],
        recv: &[Vec<Vec<T>>],
        charged_bytes: u64,
        elem: u64,
    ) {
        let p = self.p;
        let mut moved = 0u64;
        for dst in 0..p {
            for src in 0..p {
                let sent = expected[src][dst];
                let got = recv[dst][src].len();
                assert!(
                    got == sent,
                    "audit: alltoallv #{} lost/duplicated data on link {src}->{dst}: \
                     sent {sent} elements, received {got}",
                    self.collective_seq - 1,
                );
                if src != dst {
                    moved += sent as u64 * elem;
                }
            }
        }
        assert!(
            moved == charged_bytes,
            "audit: alltoallv #{} byte accounting mismatch: charged {charged_bytes} B \
             to stats, buffers moved {moved} B",
            self.collective_seq - 1,
        );
        self.stats.audited_collectives += 1;
    }

    /// Sparse `MPI_Alltoallv`: each rank supplies only its non-empty
    /// `(destination, buffer)` pairs; each rank receives its `(source,
    /// buffer)` pairs sorted by source.
    ///
    /// Identical cost model and recording as [`Engine::alltoallv`], without
    /// materialising `p²` buffers — essential for large virtual rank counts
    /// where each rank talks to a handful of neighbours (exactly the sparse
    /// communication matrix the paper is about).
    pub fn alltoallv_sparse<T: Send>(
        &mut self,
        send: Vec<Vec<(usize, Vec<T>)>>,
        algo: AllToAllAlgo,
    ) -> Vec<Vec<(usize, Vec<T>)>> {
        let p = self.p;
        assert_eq!(send.len(), p, "send must have one row per rank");
        let elem = std::mem::size_of::<T>() as u64;

        let mut send_bytes = vec![0u64; p];
        let mut recv_bytes = vec![0u64; p];
        let mut out_msgs = vec![0u64; p];
        let mut in_msgs = vec![0u64; p];
        for (src, row) in send.iter().enumerate() {
            for (dst, buf) in row {
                debug_assert!(*dst < p, "destination {dst} out of range");
                if buf.is_empty() || src == *dst {
                    continue;
                }
                let b = buf.len() as u64 * elem;
                send_bytes[src] += b;
                recv_bytes[*dst] += b;
                out_msgs[src] += 1;
                in_msgs[*dst] += 1;
                if let Some(mat) = &mut self.comm_matrix {
                    mat.add(self.tracks[src], self.tracks[*dst], b);
                }
            }
        }
        let total_bytes: u64 = send_bytes.iter().sum();
        let total_msgs: u64 = out_msgs.iter().sum();
        self.stats.collectives += 1;
        self.stats.bytes_total += total_bytes;
        self.stats.msgs_total += match algo {
            AllToAllAlgo::Direct => total_msgs,
            AllToAllAlgo::Staged => p as u64 * self.log_p() as u64,
        };

        self.charge_alltoall(algo, &send_bytes, &recv_bytes, &out_msgs, &in_msgs);

        // Audit bookkeeping: sent element count per (src, dst) pair.
        let expected: Option<std::collections::HashMap<(usize, usize), usize>> =
            self.audit.then(|| {
                let mut m = std::collections::HashMap::new();
                for (src, row) in send.iter().enumerate() {
                    for (dst, buf) in row {
                        *m.entry((src, *dst)).or_insert(0) += buf.len();
                    }
                }
                m
            });

        let mut recv: Vec<Vec<(usize, Vec<T>)>> = (0..p).map(|_| Vec::new()).collect();
        for (src, row) in send.into_iter().enumerate() {
            for (dst, buf) in row {
                recv[dst].push((src, buf));
            }
        }
        for row in &mut recv {
            row.sort_by_key(|(src, _)| *src);
        }

        if let Some(mut expected) = expected {
            for (dst, row) in recv.iter().enumerate() {
                for (src, buf) in row {
                    let e = expected.get_mut(&(*src, dst));
                    let sent = e.as_deref().copied().unwrap_or(0);
                    assert!(
                        sent >= buf.len(),
                        "audit: alltoallv_sparse #{} duplicated data on link {src}->{dst}: \
                         sent {sent} elements, received {}",
                        self.collective_seq - 1,
                        buf.len(),
                    );
                    *e.expect("audited above") -= buf.len();
                }
            }
            let lost: usize = expected.values().sum();
            assert!(
                lost == 0,
                "audit: alltoallv_sparse #{} lost {lost} elements \
                 (per-link leftovers: {:?})",
                self.collective_seq - 1,
                expected.iter().filter(|(_, &v)| v > 0).collect::<Vec<_>>(),
            );
            self.stats.audited_collectives += 1;
        }
        recv
    }

    /// Convenience: all-to-all where rank `r` sends `send[r]` elements
    /// routed by a destination function.
    pub fn alltoallv_by<T: Send, F: Fn(usize, &T) -> usize>(
        &mut self,
        send: Vec<Vec<T>>,
        dest: F,
        algo: AllToAllAlgo,
    ) -> Vec<Vec<T>> {
        let p = self.p;
        // Two-pass staging: count per destination first, then scatter into
        // exact-capacity buffers. The routing scratch (`dests`, the sparse
        // `slot`/`counts` maps) is reused across rows and reset only at the
        // destinations a row touched, so per-round allocation is one
        // right-sized Vec per non-empty (src, dst) pair — no binary-search
        // inserts, no growth reallocations.
        let mut dests: Vec<usize> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        let mut counts = vec![0usize; p];
        let mut slot = vec![usize::MAX; p];
        let sparse: Vec<Vec<(usize, Vec<T>)>> = send
            .into_iter()
            .enumerate()
            .map(|(src, local)| {
                dests.clear();
                dests.reserve(local.len());
                for item in &local {
                    let d = dest(src, item);
                    debug_assert!(d < p, "destination {d} out of range");
                    if counts[d] == 0 {
                        touched.push(d);
                    }
                    counts[d] += 1;
                    dests.push(d);
                }
                touched.sort_unstable();
                let mut row: Vec<(usize, Vec<T>)> = Vec::with_capacity(touched.len());
                for (i, &d) in touched.iter().enumerate() {
                    slot[d] = i;
                    row.push((d, Vec::with_capacity(counts[d])));
                }
                for (item, &d) in local.into_iter().zip(&dests) {
                    row[slot[d]].1.push(item);
                }
                for &d in &touched {
                    counts[d] = 0;
                    slot[d] = usize::MAX;
                }
                touched.clear();
                row
            })
            .collect();
        let recv = self.alltoallv_sparse(sparse, algo);
        recv.into_iter()
            .map(|row| row.into_iter().flat_map(|(_, buf)| buf).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DistVec;
    use optipart_machine::{AppModel, MachineModel, PerfModel};

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
        )
    }

    #[test]
    fn allreduce_sum_and_max() {
        let mut e = engine(4);
        assert_eq!(e.allreduce_sum_u64(&[1, 2, 3, 4]), 10);
        assert_eq!(e.allreduce_max_u64(&[1, 9, 3, 4]), 9);
        assert_eq!(e.allreduce_max_f64(&[0.5, -1.0, 2.5, 0.0]), 2.5);
        assert!(e.makespan() > 0.0);
        assert_eq!(e.stats().collectives, 3);
    }

    #[test]
    fn vector_allreduce_sums_elementwise() {
        let mut e = engine(3);
        let out = e.allreduce_sum_vec_u64(&[vec![1, 0], vec![2, 5], vec![3, 1]]);
        assert_eq!(out, vec![6, 6]);
    }

    #[test]
    fn exscan_is_exclusive() {
        let mut e = engine(4);
        assert_eq!(e.exscan_sum_u64(&[5, 1, 2, 7]), vec![0, 5, 6, 8]);
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let mut e = engine(3);
        let out = e.allgather(&[vec![1u32], vec![2, 3], vec![]]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn alltoallv_transposes_buffers() {
        let mut e = engine(3);
        // send[src][dst] = vec![src*10 + dst]
        let send: Vec<Vec<Vec<u32>>> = (0..3)
            .map(|s| (0..3).map(|d| vec![(s * 10 + d) as u32]).collect())
            .collect();
        let recv = e.alltoallv(send, AllToAllAlgo::Direct);
        for (dst, row) in recv.iter().enumerate() {
            for (src, buf) in row.iter().enumerate() {
                assert_eq!(buf, &vec![(src * 10 + dst) as u32]);
            }
        }
    }

    #[test]
    fn alltoallv_records_comm_matrix() {
        let mut e = engine(2).record_comm_matrix();
        let send = vec![vec![vec![], vec![1u64, 2, 3]], vec![vec![9u64], vec![]]];
        let _ = e.alltoallv(send, AllToAllAlgo::Direct);
        let m = e.comm_matrix().unwrap();
        assert_eq!(m.get(0, 1), 24); // 3 × u64
        assert_eq!(m.get(1, 0), 8);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn staged_beats_direct_for_many_small_messages() {
        // p=64, every rank sends 1 element to every other rank: Direct pays
        // 126 latencies per rank, Staged pays log2(64)=6.
        let p = 64;
        let make_send = || -> Vec<Vec<Vec<u64>>> {
            (0..p)
                .map(|_| (0..p).map(|_| vec![1u64]).collect())
                .collect()
        };
        let mut e1 = engine(p);
        let _ = e1.alltoallv(make_send(), AllToAllAlgo::Direct);
        let mut e2 = engine(p);
        let _ = e2.alltoallv(make_send(), AllToAllAlgo::Staged);
        assert!(e2.makespan() < e1.makespan());
    }

    #[test]
    fn direct_beats_staged_for_bulk_pairs() {
        // Two ranks exchanging big buffers: staging only adds volume.
        let p = 2;
        let make_send = || -> Vec<Vec<Vec<u64>>> {
            vec![
                vec![vec![], vec![0u64; 100_000]],
                vec![vec![0u64; 100_000], vec![]],
            ]
        };
        let mut e1 = engine(p);
        let _ = e1.alltoallv(make_send(), AllToAllAlgo::Direct);
        let mut e2 = engine(p);
        let _ = e2.alltoallv(make_send(), AllToAllAlgo::Staged);
        assert!(e1.makespan() < e2.makespan());
    }

    #[test]
    fn alltoallv_by_routes_elements() {
        let mut e = engine(4);
        // Every rank holds values 0..8; route value v to rank v % 4.
        let send: Vec<Vec<u32>> = (0..4).map(|_| (0..8).collect()).collect();
        let recv = e.alltoallv_by(send, |_src, &v| (v % 4) as usize, AllToAllAlgo::Direct);
        for (r, buf) in recv.iter().enumerate() {
            assert_eq!(buf.len(), 8);
            assert!(buf.iter().all(|&v| v % 4 == r as u32));
        }
    }

    #[test]
    fn collective_synchronises_clocks() {
        let mut e = engine(2);
        let mut d = DistVec::from_parts(vec![vec![0u8; 1], vec![0; 1_000_000]]);
        e.compute(&mut d, |_, b| b.len() as f64);
        let before = e.clocks().to_vec();
        assert!(before[0] < before[1]);
        let _ = e.allreduce_sum_u64(&[0, 0]);
        let after = e.clocks().to_vec();
        assert_eq!(after[0], after[1]);
        assert!(after[0] > before[1]);
    }

    #[test]
    fn barrier_costs_latency_only() {
        let mut e = engine(8);
        e.barrier();
        let expected = 3.0 * e.perf().machine.ts; // log2(8) = 3
        assert!((e.makespan() - expected).abs() < 1e-12);
        assert_eq!(e.stats().bytes_total, 0);
    }

    #[test]
    fn empty_alltoallv_is_cheap() {
        let mut e = engine(4);
        let send: Vec<Vec<Vec<u8>>> = (0..4).map(|_| (0..4).map(|_| vec![]).collect()).collect();
        let _ = e.alltoallv(send, AllToAllAlgo::Direct);
        assert_eq!(e.stats().bytes_total, 0);
        assert_eq!(e.makespan(), 0.0); // no messages, no latency
    }

    #[test]
    fn single_rank_engine_works() {
        let mut e = engine(1);
        assert_eq!(e.allreduce_sum_u64(&[42]), 42);
        let recv = e.alltoallv(vec![vec![vec![7u8]]], AllToAllAlgo::Direct);
        assert_eq!(recv[0][0], vec![7]);
    }

    /// Seeded per-rank payloads for conservation tests: rank `src` sends
    /// `(src + dst) % 5` tagged elements to each `dst`.
    fn tagged_send(p: usize) -> Vec<Vec<Vec<u64>>> {
        (0..p)
            .map(|src| {
                (0..p)
                    .map(|dst| {
                        (0..(src + dst) % 5)
                            .map(|i| (src * 1000 + dst * 10 + i) as u64)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn alltoallv_conserves_every_element() {
        // Conservation pinned at the element level, not just counts: the
        // multiset of values out equals the multiset in, for both schedules.
        for algo in [AllToAllAlgo::Direct, AllToAllAlgo::Staged] {
            let p = 7;
            let send = tagged_send(p);
            let mut sent: Vec<u64> = send.iter().flatten().flatten().copied().collect();
            let mut e = engine(p);
            let recv = e.alltoallv(send, algo);
            let mut got: Vec<u64> = recv.iter().flatten().flatten().copied().collect();
            sent.sort_unstable();
            got.sort_unstable();
            assert_eq!(sent, got, "{algo:?} lost or duplicated elements");
            assert_eq!(e.stats().audited_collectives, 1);
        }
    }

    #[test]
    fn staged_and_direct_deliver_identical_data() {
        // The schedule changes clocks and message counts — never payloads.
        let p = 9;
        let mut e1 = engine(p);
        let r1 = e1.alltoallv(tagged_send(p), AllToAllAlgo::Direct);
        let mut e2 = engine(p);
        let r2 = e2.alltoallv(tagged_send(p), AllToAllAlgo::Staged);
        assert_eq!(r1, r2);
        assert_eq!(e1.stats().bytes_total, e2.stats().bytes_total);
        assert_ne!(e1.stats().msgs_total, e2.stats().msgs_total);
    }

    #[test]
    fn sparse_alltoallv_conserves_and_sorts_by_source() {
        let p = 6;
        let send: Vec<Vec<(usize, Vec<u32>)>> = (0..p)
            .map(|src| {
                // Each rank sends to (src+1)%p and (src+3)%p, plus an empty
                // bucket that must not confuse the audit.
                vec![
                    ((src + 1) % p, vec![src as u32; 3]),
                    ((src + 3) % p, vec![src as u32 + 100]),
                    ((src + 2) % p, vec![]),
                ]
            })
            .collect();
        let mut e = engine(p);
        let recv = e.alltoallv_sparse(send, AllToAllAlgo::Staged);
        for (dst, row) in recv.iter().enumerate() {
            assert!(
                row.windows(2).all(|w| w[0].0 < w[1].0),
                "row {dst} unsorted"
            );
            let total: usize = row.iter().map(|(_, b)| b.len()).sum();
            assert_eq!(total, 4, "rank {dst} should receive 3 + 1 elements");
        }
        assert_eq!(e.stats().audited_collectives, 1);
    }

    #[test]
    fn empty_buckets_and_p1_edge_cases() {
        // Empty rows everywhere.
        let mut e = engine(3);
        let recv = e.alltoallv_sparse::<u8>(vec![vec![], vec![], vec![]], AllToAllAlgo::Direct);
        assert!(recv.iter().all(Vec::is_empty));
        assert_eq!(e.makespan(), 0.0);
        // p = 1: self-delivery only, zero network bytes.
        let mut e1 = engine(1);
        let recv = e1.alltoallv_sparse(vec![vec![(0, vec![1u8, 2, 3])]], AllToAllAlgo::Staged);
        assert_eq!(recv[0], vec![(0, vec![1u8, 2, 3])]);
        assert_eq!(e1.stats().bytes_total, 0);
    }

    #[test]
    fn link_jitter_desynchronises_but_preserves_data() {
        use crate::faults::FaultPlan;
        let p = 8;
        let mut clean = engine(p);
        let r_clean = clean.alltoallv(tagged_send(p), AllToAllAlgo::Direct);
        let mut faulty = Engine::new(
            p,
            PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
        )
        .with_faults(FaultPlan::new(99).with_tw_jitter(0.5));
        let r_faulty = faulty.alltoallv(tagged_send(p), AllToAllAlgo::Direct);
        assert_eq!(r_clean, r_faulty, "faults must never touch payload data");
        let clocks = faulty.clocks();
        let spread = clocks.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - clocks.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread > 0.0,
            "jittered links should desynchronise completion"
        );
    }

    #[test]
    fn transient_failures_cost_time_and_count_retries() {
        use crate::faults::FaultPlan;
        let p = 8;
        let run = |plan: Option<FaultPlan>| {
            let mut e = Engine::new(
                p,
                PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
            );
            if let Some(plan) = plan {
                e = e.with_faults(plan);
            }
            let r = e.alltoallv(tagged_send(p), AllToAllAlgo::Staged);
            (e.makespan(), e.stats().retries_total, r)
        };
        let (t_clean, retries_clean, data_clean) = run(None);
        let plan = FaultPlan::new(5)
            .with_transient_failures(0.6)
            .with_retry_policy(3, 1e-3);
        let (t_faulty, retries_faulty, data_faulty) = run(Some(plan));
        assert_eq!(retries_clean, 0);
        assert!(
            retries_faulty > 0,
            "p_fail 0.6 over 8 ranks must retry somewhere"
        );
        assert!(t_faulty > t_clean, "retries must cost virtual time");
        assert_eq!(data_clean, data_faulty);
    }
}
