//! Collective operations with LogGP-style cost accounting.
//!
//! Every collective is a BSP synchronisation point: ranks wait for the last
//! arrival, pay the operation's modeled cost, and leave together (or with
//! per-rank completion times for `alltoallv`, whose cost depends on each
//! rank's traffic). The cost formulas follow §3.1 of the paper: tree-based
//! collectives cost `log p · (ts + tw · bytes)`; the all-to-all exchange is
//! the `tw · N/p` term plus per-message latencies.
//!
//! The all-to-all family is sparse-by-default: callers describe only the
//! `(src, dst, payload)` traffic that exists, either as per-rank pair lists
//! ([`Engine::alltoallv_sparse`], [`Engine::alltoallv_by`]) or as flat
//! segments in a reusable [`AlltoallvArena`] ([`Engine::alltoallv_flat`]).
//! All staging state lives in a per-engine `CollectiveScratch` pool, so a
//! steady-state exchange allocates nothing proportional to `p`. The dense
//! `p × p` entry point (`Engine::alltoallv`) is retained behind
//! `#[cfg(any(test, feature = "reference"))]` as the differential reference,
//! with an independently implemented hypercube staging simulation.

use crate::engine::Engine;
use crate::faults::FaultPlan;

/// All-to-all scheduling algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllToAllAlgo {
    /// Direct pairwise exchange: one message per non-empty destination.
    /// Latency-bound for large `p` with small payloads.
    Direct,
    /// Staged/Bruck-style exchange (the paper's §3.1: "the all-to-all
    /// exchange is also performed in a staged manner similar to [4, 34],
    /// avoiding potential network congestion"): `log p` rounds, each payload
    /// forwarded through intermediate ranks — fewer messages, slightly more
    /// volume. Modeled with a flat volume-overhead factor.
    Staged,
    /// Hypercube-staged exchange (the HykSort lineage behind the paper's
    /// TreeSort): `ceil(log2 p)` stages, stage `k` pairing every rank `r`
    /// with `(r + 2^k) mod p`. A payload headed `off = (dst - src) mod p`
    /// ranks away moves exactly at the stages where bit `k` of `off` is
    /// set, so each rank holds O(active routes + log p) staging state and
    /// the charged volume is the *actual* per-stage forwarded traffic, not
    /// a modeled overhead factor. Ranks with no traffic at a stage pay
    /// nothing.
    Hypercube,
}

/// Bandwidth overhead of staged forwarding (payloads traverse ~1.25 hops on
/// average under radix-2 staging of typical AMR traffic). Applies to
/// [`AllToAllAlgo::Staged`] only — [`AllToAllAlgo::Hypercube`] charges the
/// exact forwarded volume instead.
const STAGED_VOLUME_OVERHEAD: f64 = 1.25;

/// Number of hypercube stages for `p` ranks: `ceil(log2 p)`, 0 when `p ≤ 1`
/// (a lone rank has nobody to exchange with).
#[inline]
fn hypercube_stages(p: usize) -> usize {
    if p <= 1 {
        0
    } else {
        (usize::BITS - (p - 1).leading_zeros()) as usize
    }
}

/// One route of an all-to-all: `bytes` of off-rank traffic `src → dst`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RouteVol {
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
}

/// Pooled per-engine staging for the collectives, mirroring the TreeSort
/// ping-pong scratch: dense per-rank accounting arrays plus the sparse
/// route list, reused across calls so a steady-state exchange performs no
/// per-rank allocation.
///
/// Invariant: every dense array is all-zero (and `routes`/`touched` empty)
/// between calls — each charge zeroes exactly the entries it wrote. A
/// `RankDeath` unwind mid-collective drops the taken scratch and leaves a
/// fresh `Default` behind, which trivially satisfies the invariant (only
/// capacity is lost).
#[derive(Default)]
pub(crate) struct CollectiveScratch {
    /// Non-empty off-rank `(src, dst, bytes)` links of the current exchange
    /// (filled only for [`AllToAllAlgo::Hypercube`]).
    routes: Vec<RouteVol>,
    send_bytes: Vec<u64>,
    recv_bytes: Vec<u64>,
    /// Of `send_bytes`/`recv_bytes`, the share whose peer lives on the same
    /// node — charged at the intra-node rate under a hierarchical machine.
    send_intra: Vec<u64>,
    recv_intra: Vec<u64>,
    out_msgs: Vec<u64>,
    in_msgs: Vec<u64>,
    /// Per-stage holder/partner volumes of the hypercube walk.
    stage_sent: Vec<u64>,
    stage_recv: Vec<u64>,
    /// Per-rank accumulated base cost of the exchange.
    cost: Vec<f64>,
    /// Ranks with a non-zero entry in the stage (or row) arrays, so resets
    /// touch O(active) entries instead of O(p).
    touched: Vec<u32>,
    /// `alltoallv_by` routing cache: destination of every element, flat.
    by_dests: Vec<u32>,
    /// `alltoallv_by` per-row element counts per destination.
    by_counts: Vec<u64>,
    /// `alltoallv_by` delivered-element totals per destination.
    out_totals: Vec<u64>,
}

impl CollectiveScratch {
    /// Grows every dense array to at least `p` entries (new entries zero)
    /// and clears the route list. Shrinks never happen: after a fail-stop
    /// shrink the trailing entries are simply unused zeroes.
    fn ensure(&mut self, p: usize) {
        if self.send_bytes.len() < p {
            self.send_bytes.resize(p, 0);
            self.recv_bytes.resize(p, 0);
            self.send_intra.resize(p, 0);
            self.recv_intra.resize(p, 0);
            self.out_msgs.resize(p, 0);
            self.in_msgs.resize(p, 0);
            self.stage_sent.resize(p, 0);
            self.stage_recv.resize(p, 0);
            self.cost.resize(p, 0.0);
            self.by_counts.resize(p, 0);
            self.out_totals.resize(p, 0);
        }
        self.routes.clear();
        self.touched.clear();
    }
}

/// One flat segment of an [`AlltoallvArena`]: `len` elements at `begin`
/// headed `src → dst`.
#[derive(Clone, Copy, Debug)]
struct Seg {
    src: u32,
    dst: u32,
    begin: u32,
    len: u32,
}

/// A reusable flat staging arena for [`Engine::alltoallv_flat`]: callers
/// append `(src, dst, payload)` segments into one flat send buffer; the
/// exchange delivers them into an equally flat receive buffer grouped by
/// destination, then source, then submission order. Self-addressed segments
/// are delivered too (at zero network cost). Reusing the arena across
/// exchanges performs no steady-state allocation — the send side is
/// consumed by the exchange and ready for refilling while [`recv`] iterates
/// the results.
///
/// [`recv`]: AlltoallvArena::recv
pub struct AlltoallvArena<T: Copy> {
    data: Vec<T>,
    segs: Vec<Seg>,
    out: Vec<T>,
    out_segs: Vec<Seg>,
}

impl<T: Copy> Default for AlltoallvArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> AlltoallvArena<T> {
    /// An empty arena. Capacity grows on first use and is retained.
    pub fn new() -> Self {
        AlltoallvArena {
            data: Vec::new(),
            segs: Vec::new(),
            out: Vec::new(),
            out_segs: Vec::new(),
        }
    }

    /// Appends one `src → dst` message. Empty payloads are dropped (they
    /// carry no traffic and would inflate message counts). Under
    /// [`AllToAllAlgo::Direct`] every segment is charged as one message, so
    /// callers batching per-neighbour traffic should push one segment per
    /// neighbour.
    pub fn send(&mut self, src: usize, dst: usize, items: impl IntoIterator<Item = T>) {
        let begin = self.data.len();
        self.data.extend(items);
        let len = self.data.len() - begin;
        if len == 0 {
            return;
        }
        assert!(
            self.data.len() <= u32::MAX as usize,
            "arena overflow: more than u32::MAX staged elements"
        );
        self.segs.push(Seg {
            src: src as u32,
            dst: dst as u32,
            begin: begin as u32,
            len: len as u32,
        });
    }

    /// Number of staged (unsent) segments.
    pub fn pending_segs(&self) -> usize {
        self.segs.len()
    }

    /// Delivered segments of the last exchange as `(src, dst, payload)`,
    /// grouped by destination, then source, then submission order.
    pub fn recv(&self) -> impl Iterator<Item = (usize, usize, &[T])> {
        self.out_segs.iter().map(move |seg| {
            (
                seg.src as usize,
                seg.dst as usize,
                &self.out[seg.begin as usize..(seg.begin + seg.len) as usize],
            )
        })
    }

    /// Drops both staged and delivered data, retaining capacity.
    pub fn clear(&mut self) {
        self.data.clear();
        self.segs.clear();
        self.out.clear();
        self.out_segs.clear();
    }
}

impl Engine {
    /// Messages charged to [`crate::RunStats::msgs_total`] for an exchange
    /// with `total_msgs` non-empty off-rank links. Hypercube contributes 0
    /// here: its count — distinct sending ranks per stage — is accumulated
    /// during the staging walk itself.
    fn alltoall_msg_count(&self, algo: AllToAllAlgo, total_msgs: u64) -> u64 {
        match algo {
            AllToAllAlgo::Direct => total_msgs,
            AllToAllAlgo::Staged => self.p as u64 * self.log_p() as u64,
            AllToAllAlgo::Hypercube => 0,
        }
    }

    /// Per-rank clock charges of an all-to-all exchange described by the
    /// filled accounting arrays of `s`: latency + volume cost under the
    /// chosen schedule (with the rank's effective `tw`), plus deterministic
    /// retry-with-backoff when the fault plan makes this exchange fail
    /// transiently on a rank. Leaves `s` zeroed again (the scratch-pool
    /// invariant).
    fn charge_alltoall(&mut self, algo: AllToAllAlgo, s: &mut CollectiveScratch) {
        let t0 = self.sync_start("alltoallv");
        let ts = self.perf.machine.ts;
        let seq = self.collective_seq;
        self.collective_seq += 1;
        let plan = self.faults.as_ref().map(|(plan, _)| plan.clone());
        match algo {
            AllToAllAlgo::Hypercube => self.stage_costs_hypercube(ts, s),
            _ => self.flat_costs(algo, ts, s),
        }
        self.finish_alltoall(t0, seq, &plan, s);
    }

    /// Reference twin of [`Engine::charge_alltoall`] used by the retained
    /// dense path: identical Direct/Staged costing, but Hypercube staging
    /// runs the independently implemented holder walk so the two paths form
    /// a genuine differential pair.
    #[cfg(any(test, feature = "reference"))]
    fn charge_alltoall_reference(&mut self, algo: AllToAllAlgo, s: &mut CollectiveScratch) {
        let t0 = self.sync_start("alltoallv");
        let ts = self.perf.machine.ts;
        let seq = self.collective_seq;
        self.collective_seq += 1;
        let plan = self.faults.as_ref().map(|(plan, _)| plan.clone());
        match algo {
            AllToAllAlgo::Hypercube => self.stage_costs_hypercube_reference(ts, s),
            _ => self.flat_costs(algo, ts, s),
        }
        self.finish_alltoall(t0, seq, &plan, s);
    }

    /// Direct/Staged per-rank base costs into `s.cost`.
    fn flat_costs(&mut self, algo: AllToAllAlgo, ts: f64, s: &mut CollectiveScratch) {
        let logp = self.log_p();
        for r in 0..self.p {
            let vol = s.send_bytes[r].max(s.recv_bytes[r]) as f64;
            s.cost[r] = match algo {
                AllToAllAlgo::Direct => {
                    ts * (s.out_msgs[r] + s.in_msgs[r]) as f64 + self.effective_tw(r) * vol
                }
                AllToAllAlgo::Staged => {
                    ts * logp + self.effective_tw(r) * vol * STAGED_VOLUME_OVERHEAD
                }
                AllToAllAlgo::Hypercube => unreachable!("hypercube costs are staged"),
            };
        }
    }

    /// Hypercube per-rank base costs into `s.cost` — the production path.
    ///
    /// The holder of route `(src, dst)` before stage `k` is the closed form
    /// `(src + (off & (2^k − 1))) mod p` with `off = (dst − src) mod p`:
    /// the partial sum of the hops already taken. The route moves at stage
    /// `k` iff bit `k` of `off` is set; after the last stage the holder is
    /// `src + off = dst`. Per stage, a touched rank pays one latency plus
    /// its effective `tw` times the larger of its forwarded send/recv
    /// volume; untouched ranks pay nothing. `msgs_total` counts distinct
    /// sending ranks per stage.
    fn stage_costs_hypercube(&mut self, ts: f64, s: &mut CollectiveScratch) {
        let p = self.p;
        for k in 0..hypercube_stages(p) {
            let hop = 1usize << k;
            let mut stage_msgs = 0u64;
            for route in &s.routes {
                let (src, dst) = (route.src as usize, route.dst as usize);
                let off = (dst + p - src) % p;
                if off & hop == 0 {
                    continue;
                }
                let holder = (src + (off & (hop - 1))) % p;
                // hop < p at every stage, so holder ≠ partner always.
                let partner = (holder + hop) % p;
                if s.stage_sent[holder] + s.stage_recv[holder] == 0 {
                    s.touched.push(holder as u32);
                }
                if s.stage_sent[holder] == 0 {
                    stage_msgs += 1;
                }
                s.stage_sent[holder] += route.bytes;
                if s.stage_sent[partner] + s.stage_recv[partner] == 0 {
                    s.touched.push(partner as u32);
                }
                s.stage_recv[partner] += route.bytes;
            }
            self.stats.msgs_total += stage_msgs;
            self.fold_stage(ts, s);
        }
        s.routes.clear();
    }

    /// Reference twin of [`Engine::stage_costs_hypercube`]: walks every
    /// route's holder forward hop by hop (`h ← (h + 2^k) mod p` at each
    /// stage whose bit is set in the offset) instead of using the closed
    /// form, so the optimised path has a genuinely separate implementation
    /// to differ against. Per-stage volumes are exact `u64` sums and the
    /// per-rank fold runs in the same ascending stage order, so agreeing
    /// implementations produce bit-identical charges.
    #[cfg(any(test, feature = "reference"))]
    fn stage_costs_hypercube_reference(&mut self, ts: f64, s: &mut CollectiveScratch) {
        let p = self.p;
        let mut holder: Vec<usize> = s.routes.iter().map(|r| r.src as usize).collect();
        for k in 0..hypercube_stages(p) {
            let hop = 1usize << k;
            let mut stage_msgs = 0u64;
            for (i, route) in s.routes.iter().enumerate() {
                let off = (route.dst as usize + p - route.src as usize) % p;
                if off & hop == 0 {
                    continue;
                }
                let h = holder[i];
                let partner = (h + hop) % p;
                if s.stage_sent[h] + s.stage_recv[h] == 0 {
                    s.touched.push(h as u32);
                }
                if s.stage_sent[h] == 0 {
                    stage_msgs += 1;
                }
                s.stage_sent[h] += route.bytes;
                if s.stage_sent[partner] + s.stage_recv[partner] == 0 {
                    s.touched.push(partner as u32);
                }
                s.stage_recv[partner] += route.bytes;
                holder[i] = partner;
            }
            self.stats.msgs_total += stage_msgs;
            self.fold_stage(ts, s);
        }
        debug_assert!(
            holder
                .iter()
                .zip(&s.routes)
                .all(|(&h, r)| h == r.dst as usize),
            "hypercube walk must end every route at its destination"
        );
        s.routes.clear();
    }

    /// Folds one hypercube stage into the per-rank base costs and re-zeroes
    /// the stage arrays (touched entries only).
    fn fold_stage(&mut self, ts: f64, s: &mut CollectiveScratch) {
        for &r in &s.touched {
            let r = r as usize;
            let vol = s.stage_sent[r].max(s.stage_recv[r]) as f64;
            s.cost[r] += ts + self.effective_tw(r) * vol;
            s.stage_sent[r] = 0;
            s.stage_recv[r] = 0;
        }
        s.touched.clear();
    }

    /// Retry-with-backoff epilogue and final clock charge, shared by every
    /// schedule: each rank that moved bytes may retry its whole base cost
    /// after exponentially growing backoffs, then all ranks are charged in
    /// ascending order. Zeroes the per-rank accounting arrays on the way
    /// out.
    fn finish_alltoall(
        &mut self,
        t0: f64,
        seq: u64,
        plan: &Option<FaultPlan>,
        s: &mut CollectiveScratch,
    ) {
        for r in 0..self.p {
            let base = s.cost[r];
            let mut cost = base;
            if let Some(plan) = plan {
                // Ranks that moved no bytes sent no messages that could
                // fail.
                if s.send_bytes[r] + s.recv_bytes[r] > 0 {
                    let retries = plan.retries_for(seq, self.tracks[r]);
                    for k in 0..retries {
                        cost += plan.backoff_s(k) + base;
                    }
                    self.stats.retries_total += retries as u64;
                    if retries > 0 {
                        // First failure surfaces after the base attempt.
                        self.tracer
                            .mark(self.tracks[r], t0 + base, "fault.retry", retries as f64);
                    }
                }
            }
            self.charge_comm(
                r,
                t0,
                cost,
                s.send_bytes[r] + s.recv_bytes[r],
                s.send_intra[r] + s.recv_intra[r],
            );
            s.cost[r] = 0.0;
            s.send_bytes[r] = 0;
            s.recv_bytes[r] = 0;
            s.send_intra[r] = 0;
            s.recv_intra[r] = 0;
            s.out_msgs[r] = 0;
            s.in_msgs[r] = 0;
        }
    }

    /// Synchronises all ranks to the maximum clock and returns that time,
    /// recording the sync point (and the blocking rank — the last arrival,
    /// lowest rank on ties) on the structured trace. Every sync point
    /// advances the global `sync_seq` and first fires any fail-stop kill
    /// scheduled at or before it ([`Engine::check_failstop`] unwinds with a
    /// `RankDeath` in that case — the collective never happens).
    pub(crate) fn sync_start(&mut self, name: &str) -> f64 {
        self.check_failstop();
        self.sync_seq += 1;
        let mut t = 0.0;
        let mut blocker = 0;
        for (r, &c) in self.clocks.iter().enumerate() {
            if c > t {
                t = c;
                blocker = r;
            }
        }
        self.clocks.iter_mut().for_each(|c| *c = t);
        self.tracer.begin_collective(name, t, self.tracks[blocker]);
        t
    }

    /// Barrier: `log p` latencies.
    pub fn barrier(&mut self) {
        let t0 = self.sync_start("barrier");
        let cost = self.log_p() * self.perf.machine.ts;
        self.stats.collectives += 1;
        self.stats.msgs_total += (self.p as u64) * self.log_p() as u64;
        for r in 0..self.p {
            self.charge_comm(r, t0, cost, 0, 0);
        }
    }

    /// Generic reduction plumbing: each rank contributes `bytes_per_rank`
    /// bytes, every rank pays `log p (ts + tw b)` — with `tw` the rank's
    /// *effective* wire slowness, so link jitter desynchronises completion
    /// times exactly as a perturbed network would.
    fn charge_tree_collective(&mut self, name: &str, bytes_per_rank: u64) {
        let t0 = self.sync_start(name);
        let ts = self.perf.machine.ts;
        let logp = self.log_p();
        self.stats.collectives += 1;
        let moved = bytes_per_rank * self.p as u64 * logp as u64;
        self.stats.msgs_total += self.p as u64 * logp as u64;
        self.stats.bytes_total += moved;
        // Tree collectives span the whole machine; their up/down sweeps are
        // modeled as inter-node traffic (no intra discount).
        for r in 0..self.p {
            let cost = logp * (ts + self.effective_tw(r) * bytes_per_rank as f64);
            self.charge_comm(r, t0, cost, bytes_per_rank * logp as u64, 0);
        }
    }

    /// `MPI_Allreduce(SUM)` over one `u64` per rank.
    pub fn allreduce_sum_u64(&mut self, contrib: &[u64]) -> u64 {
        assert_eq!(contrib.len(), self.p);
        self.charge_tree_collective("allreduce", 8);
        contrib.iter().sum()
    }

    /// `MPI_Allreduce(MAX)` over one `u64` per rank.
    pub fn allreduce_max_u64(&mut self, contrib: &[u64]) -> u64 {
        assert_eq!(contrib.len(), self.p);
        self.charge_tree_collective("allreduce", 8);
        contrib.iter().copied().max().unwrap_or(0)
    }

    /// `MPI_Allreduce(MAX)` over one `f64` per rank.
    pub fn allreduce_max_f64(&mut self, contrib: &[f64]) -> f64 {
        assert_eq!(contrib.len(), self.p);
        self.charge_tree_collective("allreduce", 8);
        contrib.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// `MPI_Allreduce(SUM)` over one `f64` per rank.
    pub fn allreduce_sum_f64(&mut self, contrib: &[f64]) -> f64 {
        assert_eq!(contrib.len(), self.p);
        self.charge_tree_collective("allreduce", 8);
        contrib.iter().sum()
    }

    /// Element-wise `MPI_Allreduce(SUM)` over a `u64` vector per rank —
    /// the reduction OptiPart uses to obtain global bucket counts
    /// (Algorithm 3 line 18). The vector length is the splitter/bucket
    /// count `k`, so the cost realises the `(ts + tw·k) log p` term of
    /// Eq. (2).
    pub fn allreduce_sum_vec_u64(&mut self, contribs: &[Vec<u64>]) -> Vec<u64> {
        assert_eq!(contribs.len(), self.p);
        let len = contribs[0].len();
        assert!(
            contribs.iter().all(|c| c.len() == len),
            "ragged contributions"
        );
        self.charge_tree_collective("allreduce", 8 * len as u64);
        let mut out = vec![0u64; len];
        for c in contribs {
            for (o, v) in out.iter_mut().zip(c) {
                *o += v;
            }
        }
        out
    }

    /// Element-wise `MPI_Allreduce(MAX)` over a `u64` vector per rank.
    pub fn allreduce_max_vec_u64(&mut self, contribs: &[Vec<u64>]) -> Vec<u64> {
        assert_eq!(contribs.len(), self.p);
        let len = contribs[0].len();
        assert!(
            contribs.iter().all(|c| c.len() == len),
            "ragged contributions"
        );
        self.charge_tree_collective("allreduce", 8 * len as u64);
        let mut out = vec![0u64; len];
        for c in contribs {
            for (o, v) in out.iter_mut().zip(c) {
                *o = (*o).max(*v);
            }
        }
        out
    }

    /// Exclusive prefix sum (`MPI_Exscan`): rank `r` receives
    /// `sum(contrib[0..r])`; rank 0 receives 0.
    pub fn exscan_sum_u64(&mut self, contrib: &[u64]) -> Vec<u64> {
        assert_eq!(contrib.len(), self.p);
        self.charge_tree_collective("exscan", 8);
        let mut out = Vec::with_capacity(self.p);
        let mut acc = 0u64;
        for &c in contrib {
            out.push(acc);
            acc += c;
        }
        out
    }

    /// Broadcast of `bytes` from one rank to all.
    pub fn bcast_cost(&mut self, bytes: u64) {
        self.charge_tree_collective("bcast", bytes);
    }

    /// `MPI_Allgather`: every rank contributes a small buffer; all ranks
    /// receive the concatenation (rank order). Recursive-doubling cost:
    /// `log p · ts + tw · total_bytes`.
    pub fn allgather<T: Clone>(&mut self, contribs: &[Vec<T>]) -> Vec<T> {
        assert_eq!(contribs.len(), self.p);
        let elem = std::mem::size_of::<T>() as u64;
        let total: u64 = contribs.iter().map(|c| c.len() as u64 * elem).sum();
        let t0 = self.sync_start("allgather");
        let ts = self.perf.machine.ts;
        let logp = self.log_p();
        self.stats.collectives += 1;
        self.stats.msgs_total += self.p as u64 * logp as u64;
        self.stats.bytes_total += total * logp as u64;
        for r in 0..self.p {
            let cost = logp * ts + self.effective_tw(r) * total as f64;
            self.charge_comm(r, t0, cost, total, 0);
        }
        let mut out = Vec::with_capacity((total / elem.max(1)) as usize);
        for c in contribs {
            out.extend_from_slice(c);
        }
        out
    }

    /// `MPI_Alltoallv`: `send[src][dst]` buffers are delivered as
    /// `recv[dst][src]`.
    ///
    /// Per-rank cost: latency per message (Direct), per stage (Staged /
    /// Hypercube), plus slowness × the rank's traffic volumes. Records the
    /// communication matrix when enabled.
    ///
    /// This dense `p × p` entry point is the *differential reference* for
    /// the sparse production paths and is compiled only for tests and under
    /// the `reference` feature — production code stages O(active routes),
    /// never O(p²).
    #[cfg(any(test, feature = "reference"))]
    pub fn alltoallv<T: Send>(
        &mut self,
        send: Vec<Vec<Vec<T>>>,
        algo: AllToAllAlgo,
    ) -> Vec<Vec<Vec<T>>> {
        let p = self.p;
        assert_eq!(send.len(), p, "send must have one row per rank");
        assert!(send.iter().all(|row| row.len() == p), "ragged send rows");
        let elem = std::mem::size_of::<T>() as u64;

        // Traffic accounting.
        let mut s = std::mem::take(&mut self.coll_scratch);
        s.ensure(p);
        for (src, row) in send.iter().enumerate() {
            for (dst, buf) in row.iter().enumerate() {
                if buf.is_empty() || src == dst {
                    continue;
                }
                let b = buf.len() as u64 * elem;
                s.send_bytes[src] += b;
                s.recv_bytes[dst] += b;
                if self.same_node(src, dst) {
                    s.send_intra[src] += b;
                    s.recv_intra[dst] += b;
                    self.stats.bytes_intra += b;
                }
                s.out_msgs[src] += 1;
                s.in_msgs[dst] += 1;
                if algo == AllToAllAlgo::Hypercube {
                    s.routes.push(RouteVol {
                        src: src as u32,
                        dst: dst as u32,
                        bytes: b,
                    });
                }
                if let Some(mat) = &mut self.comm_matrix {
                    mat.add(self.tracks[src], self.tracks[dst], b);
                }
            }
        }
        let total_bytes: u64 = s.send_bytes[..p].iter().sum();
        let total_msgs: u64 = s.out_msgs[..p].iter().sum();
        self.stats.collectives += 1;
        self.stats.bytes_total += total_bytes;
        self.stats.msgs_total += self.alltoall_msg_count(algo, total_msgs);

        // Clock charges (+ fault retries), via the reference staging.
        self.charge_alltoall_reference(algo, &mut s);
        self.coll_scratch = s;

        // Audit bookkeeping: element counts per (src, dst) before the move.
        let expected: Option<Vec<Vec<usize>>> = self.audit.then(|| {
            send.iter()
                .map(|row| row.iter().map(Vec::len).collect())
                .collect()
        });

        // Data movement: recv[dst][src] = send[src][dst]. Iterating rows in
        // ascending src order fills every recv row in src order directly —
        // no reversal pass, no intermediate shuffling.
        let mut recv: Vec<Vec<Vec<T>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
        for row in send {
            for (dst, buf) in row.into_iter().enumerate() {
                recv[dst].push(buf);
            }
        }

        if let Some(expected) = expected {
            self.audit_alltoallv(&expected, &recv, total_bytes, elem);
        }
        recv
    }

    /// Conservation audit for a dense all-to-all: every `(src, dst)` buffer
    /// arrived with exactly the element count it was sent with (nothing
    /// lost, nothing duplicated), and the byte total charged to [`RunStats`]
    /// equals the off-rank bytes actually moved.
    ///
    /// [`RunStats`]: crate::RunStats
    #[cfg(any(test, feature = "reference"))]
    fn audit_alltoallv<T>(
        &mut self,
        expected: &[Vec<usize>],
        recv: &[Vec<Vec<T>>],
        charged_bytes: u64,
        elem: u64,
    ) {
        let p = self.p;
        let mut moved = 0u64;
        for dst in 0..p {
            for src in 0..p {
                let sent = expected[src][dst];
                let got = recv[dst][src].len();
                assert!(
                    got == sent,
                    "audit: alltoallv #{} lost/duplicated data on link {src}->{dst}: \
                     sent {sent} elements, received {got}",
                    self.collective_seq - 1,
                );
                if src != dst {
                    moved += sent as u64 * elem;
                }
            }
        }
        assert!(
            moved == charged_bytes,
            "audit: alltoallv #{} byte accounting mismatch: charged {charged_bytes} B \
             to stats, buffers moved {moved} B",
            self.collective_seq - 1,
        );
        self.stats.audited_collectives += 1;
    }

    /// Sparse `MPI_Alltoallv`: each rank supplies only its non-empty
    /// `(destination, buffer)` pairs; each rank receives its `(source,
    /// buffer)` pairs sorted by source.
    ///
    /// Identical cost model and recording as the dense reference, without
    /// materialising `p²` buffers — essential for large virtual rank counts
    /// where each rank talks to a handful of neighbours (exactly the sparse
    /// communication matrix the paper is about).
    pub fn alltoallv_sparse<T: Send>(
        &mut self,
        send: Vec<Vec<(usize, Vec<T>)>>,
        algo: AllToAllAlgo,
    ) -> Vec<Vec<(usize, Vec<T>)>> {
        let p = self.p;
        assert_eq!(send.len(), p, "send must have one row per rank");
        let elem = std::mem::size_of::<T>() as u64;

        let mut s = std::mem::take(&mut self.coll_scratch);
        s.ensure(p);
        for (src, row) in send.iter().enumerate() {
            for (dst, buf) in row {
                debug_assert!(*dst < p, "destination {dst} out of range");
                if buf.is_empty() || src == *dst {
                    continue;
                }
                let b = buf.len() as u64 * elem;
                s.send_bytes[src] += b;
                s.recv_bytes[*dst] += b;
                if self.same_node(src, *dst) {
                    s.send_intra[src] += b;
                    s.recv_intra[*dst] += b;
                    self.stats.bytes_intra += b;
                }
                s.out_msgs[src] += 1;
                s.in_msgs[*dst] += 1;
                if algo == AllToAllAlgo::Hypercube {
                    s.routes.push(RouteVol {
                        src: src as u32,
                        dst: *dst as u32,
                        bytes: b,
                    });
                }
                if let Some(mat) = &mut self.comm_matrix {
                    mat.add(self.tracks[src], self.tracks[*dst], b);
                }
            }
        }
        let total_bytes: u64 = s.send_bytes[..p].iter().sum();
        let total_msgs: u64 = s.out_msgs[..p].iter().sum();
        self.stats.collectives += 1;
        self.stats.bytes_total += total_bytes;
        self.stats.msgs_total += self.alltoall_msg_count(algo, total_msgs);

        self.charge_alltoall(algo, &mut s);
        self.coll_scratch = s;

        // Audit bookkeeping: sent element count per (src, dst) pair.
        let expected: Option<std::collections::HashMap<(usize, usize), usize>> =
            self.audit.then(|| {
                let mut m = std::collections::HashMap::new();
                for (src, row) in send.iter().enumerate() {
                    for (dst, buf) in row {
                        *m.entry((src, *dst)).or_insert(0) += buf.len();
                    }
                }
                m
            });

        let mut recv: Vec<Vec<(usize, Vec<T>)>> = (0..p).map(|_| Vec::new()).collect();
        for (src, row) in send.into_iter().enumerate() {
            for (dst, buf) in row {
                recv[dst].push((src, buf));
            }
        }
        for row in &mut recv {
            row.sort_by_key(|(src, _)| *src);
        }

        if let Some(mut expected) = expected {
            for (dst, row) in recv.iter().enumerate() {
                for (src, buf) in row {
                    let e = expected.get_mut(&(*src, dst));
                    let sent = e.as_deref().copied().unwrap_or(0);
                    assert!(
                        sent >= buf.len(),
                        "audit: alltoallv_sparse #{} duplicated data on link {src}->{dst}: \
                         sent {sent} elements, received {}",
                        self.collective_seq - 1,
                        buf.len(),
                    );
                    *e.expect("audited above") -= buf.len();
                }
            }
            let lost: usize = expected.values().sum();
            assert!(
                lost == 0,
                "audit: alltoallv_sparse #{} lost {lost} elements \
                 (per-link leftovers: {:?})",
                self.collective_seq - 1,
                expected.iter().filter(|(_, &v)| v > 0).collect::<Vec<_>>(),
            );
            self.stats.audited_collectives += 1;
        }
        recv
    }

    /// Flat-arena `MPI_Alltoallv` over an [`AlltoallvArena`]: exchanges the
    /// arena's staged segments in place, leaving delivered segments grouped
    /// by destination (then source, then submission order) on the arena's
    /// receive side. The send side is consumed and ready for refilling.
    ///
    /// Cost model, fault retries, comm-matrix recording and stats match the
    /// other all-to-all entry points; in the steady state the exchange
    /// itself allocates nothing (all staging lives in the arena and the
    /// engine's pooled scratch).
    pub fn alltoallv_flat<T: Copy + Send>(
        &mut self,
        arena: &mut AlltoallvArena<T>,
        algo: AllToAllAlgo,
    ) {
        let p = self.p;
        let elem = std::mem::size_of::<T>() as u64;
        let mut s = std::mem::take(&mut self.coll_scratch);
        s.ensure(p);
        for seg in &arena.segs {
            let (src, dst) = (seg.src as usize, seg.dst as usize);
            assert!(src < p && dst < p, "segment {src}->{dst} out of range");
            if src == dst {
                continue;
            }
            let b = seg.len as u64 * elem;
            s.send_bytes[src] += b;
            s.recv_bytes[dst] += b;
            if self.same_node(src, dst) {
                s.send_intra[src] += b;
                s.recv_intra[dst] += b;
                self.stats.bytes_intra += b;
            }
            s.out_msgs[src] += 1;
            s.in_msgs[dst] += 1;
            if algo == AllToAllAlgo::Hypercube {
                s.routes.push(RouteVol {
                    src: seg.src,
                    dst: seg.dst,
                    bytes: b,
                });
            }
            if let Some(mat) = &mut self.comm_matrix {
                mat.add(self.tracks[src], self.tracks[dst], b);
            }
        }
        let total_bytes: u64 = s.send_bytes[..p].iter().sum();
        let total_msgs: u64 = s.out_msgs[..p].iter().sum();
        self.stats.collectives += 1;
        self.stats.bytes_total += total_bytes;
        self.stats.msgs_total += self.alltoall_msg_count(algo, total_msgs);

        self.charge_alltoall(algo, &mut s);
        self.coll_scratch = s;

        // Delivery: sort a copy of the segment table by (dst, src,
        // submission order) and gather payloads into the flat receive
        // buffer. `begin` values are unique across segments, so the
        // unstable sort is deterministic.
        arena.out_segs.clear();
        arena.out_segs.extend_from_slice(&arena.segs);
        arena
            .out_segs
            .sort_unstable_by_key(|g| (g.dst, g.src, g.begin));
        arena.out.clear();
        arena.out.reserve(arena.data.len());
        let mut moved = 0u64;
        for seg in &mut arena.out_segs {
            let b = seg.begin as usize;
            let l = seg.len as usize;
            seg.begin = arena.out.len() as u32;
            arena.out.extend_from_slice(&arena.data[b..b + l]);
            if seg.src != seg.dst {
                moved += l as u64 * elem;
            }
        }
        // Structural O(segs) audit: every staged element was delivered
        // exactly once and the charged byte total matches the off-rank
        // bytes moved.
        if self.audit {
            assert!(
                arena.out.len() == arena.data.len(),
                "audit: alltoallv_flat #{} lost elements: staged {}, delivered {}",
                self.collective_seq - 1,
                arena.data.len(),
                arena.out.len(),
            );
            assert!(
                moved == total_bytes,
                "audit: alltoallv_flat #{} byte accounting mismatch: charged \
                 {total_bytes} B, moved {moved} B",
                self.collective_seq - 1,
            );
            self.stats.audited_collectives += 1;
        }
        arena.data.clear();
        arena.segs.clear();
    }

    /// Convenience: all-to-all where rank `r` sends `send[r]` elements
    /// routed by a destination function. Returns one delivered buffer per
    /// rank: elements from source ranks in ascending order, each source's
    /// elements in their original order.
    pub fn alltoallv_by<T: Send, F: Fn(usize, &T) -> usize>(
        &mut self,
        send: Vec<Vec<T>>,
        dest: F,
        algo: AllToAllAlgo,
    ) -> Vec<Vec<T>> {
        let p = self.p;
        assert_eq!(send.len(), p, "send must have one row per rank");
        let elem = std::mem::size_of::<T>() as u64;
        let mut s = std::mem::take(&mut self.coll_scratch);
        s.ensure(p);
        s.by_dests.clear();
        s.by_dests.reserve(send.iter().map(Vec::len).sum());

        // Pass 1: route every element once, caching its destination and
        // flushing per-(src, dst) traffic row by row — the per-row scratch
        // is reset only at the destinations the row touched.
        for (src, local) in send.iter().enumerate() {
            for item in local {
                let d = dest(src, item);
                debug_assert!(d < p, "destination {d} out of range");
                if s.by_counts[d] == 0 {
                    s.touched.push(d as u32);
                }
                s.by_counts[d] += 1;
                s.by_dests.push(d as u32);
            }
            for &du in &s.touched {
                let d = du as usize;
                let cnt = s.by_counts[d];
                s.out_totals[d] += cnt;
                if d != src {
                    let b = cnt * elem;
                    s.send_bytes[src] += b;
                    s.recv_bytes[d] += b;
                    if self.same_node(src, d) {
                        s.send_intra[src] += b;
                        s.recv_intra[d] += b;
                        self.stats.bytes_intra += b;
                    }
                    s.out_msgs[src] += 1;
                    s.in_msgs[d] += 1;
                    if algo == AllToAllAlgo::Hypercube {
                        s.routes.push(RouteVol {
                            src: src as u32,
                            dst: d as u32,
                            bytes: b,
                        });
                    }
                    if let Some(mat) = &mut self.comm_matrix {
                        mat.add(self.tracks[src], self.tracks[d], b);
                    }
                }
                s.by_counts[d] = 0;
            }
            s.touched.clear();
        }
        let total_bytes: u64 = s.send_bytes[..p].iter().sum();
        let total_msgs: u64 = s.out_msgs[..p].iter().sum();
        self.stats.collectives += 1;
        self.stats.bytes_total += total_bytes;
        self.stats.msgs_total += self.alltoall_msg_count(algo, total_msgs);

        self.charge_alltoall(algo, &mut s);

        // Pass 2: scatter into exact-capacity delivery buffers using the
        // cached destinations — the only allocations are the p output rows.
        let mut out: Vec<Vec<T>> = (0..p)
            .map(|d| Vec::with_capacity(s.out_totals[d] as usize))
            .collect();
        let mut di = s.by_dests.iter();
        for local in send {
            for item in local {
                let d = *di.next().expect("pass 1 routed every element") as usize;
                out[d].push(item);
            }
        }
        // Structural audit: pass 2 delivered exactly the elements pass 1
        // counted, per destination.
        if self.audit {
            for (d, row) in out.iter().enumerate() {
                assert!(
                    row.len() as u64 == s.out_totals[d],
                    "audit: alltoallv_by #{} rank {d} received {} elements, \
                     routed {}",
                    self.collective_seq - 1,
                    row.len(),
                    s.out_totals[d],
                );
            }
            self.stats.audited_collectives += 1;
        }
        for d in 0..p {
            s.out_totals[d] = 0;
        }
        s.by_dests.clear();
        self.coll_scratch = s;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DistVec;
    use optipart_machine::{AppModel, MachineModel, PerfModel};

    const ALL_ALGOS: [AllToAllAlgo; 3] = [
        AllToAllAlgo::Direct,
        AllToAllAlgo::Staged,
        AllToAllAlgo::Hypercube,
    ];

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
        )
    }

    #[test]
    fn allreduce_sum_and_max() {
        let mut e = engine(4);
        assert_eq!(e.allreduce_sum_u64(&[1, 2, 3, 4]), 10);
        assert_eq!(e.allreduce_max_u64(&[1, 9, 3, 4]), 9);
        assert_eq!(e.allreduce_max_f64(&[0.5, -1.0, 2.5, 0.0]), 2.5);
        assert!(e.makespan() > 0.0);
        assert_eq!(e.stats().collectives, 3);
    }

    #[test]
    fn vector_allreduce_sums_elementwise() {
        let mut e = engine(3);
        let out = e.allreduce_sum_vec_u64(&[vec![1, 0], vec![2, 5], vec![3, 1]]);
        assert_eq!(out, vec![6, 6]);
    }

    #[test]
    fn exscan_is_exclusive() {
        let mut e = engine(4);
        assert_eq!(e.exscan_sum_u64(&[5, 1, 2, 7]), vec![0, 5, 6, 8]);
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let mut e = engine(3);
        let out = e.allgather(&[vec![1u32], vec![2, 3], vec![]]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn alltoallv_transposes_buffers() {
        let mut e = engine(3);
        // send[src][dst] = vec![src*10 + dst]
        let send: Vec<Vec<Vec<u32>>> = (0..3)
            .map(|s| (0..3).map(|d| vec![(s * 10 + d) as u32]).collect())
            .collect();
        let recv = e.alltoallv(send, AllToAllAlgo::Direct);
        for (dst, row) in recv.iter().enumerate() {
            for (src, buf) in row.iter().enumerate() {
                assert_eq!(buf, &vec![(src * 10 + dst) as u32]);
            }
        }
    }

    #[test]
    fn alltoallv_records_comm_matrix() {
        let mut e = engine(2).record_comm_matrix();
        let send = vec![vec![vec![], vec![1u64, 2, 3]], vec![vec![9u64], vec![]]];
        let _ = e.alltoallv(send, AllToAllAlgo::Direct);
        let m = e.comm_matrix().unwrap();
        assert_eq!(m.get(0, 1), 24); // 3 × u64
        assert_eq!(m.get(1, 0), 8);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn staged_beats_direct_for_many_small_messages() {
        // p=64, every rank sends 1 element to every other rank: Direct pays
        // 126 latencies per rank, Staged pays log2(64)=6.
        let p = 64;
        let make_send = || -> Vec<Vec<Vec<u64>>> {
            (0..p)
                .map(|_| (0..p).map(|_| vec![1u64]).collect())
                .collect()
        };
        let mut e1 = engine(p);
        let _ = e1.alltoallv(make_send(), AllToAllAlgo::Direct);
        let mut e2 = engine(p);
        let _ = e2.alltoallv(make_send(), AllToAllAlgo::Staged);
        assert!(e2.makespan() < e1.makespan());
    }

    #[test]
    fn hypercube_beats_direct_for_many_small_messages() {
        // Same latency argument as Staged: 6 stage latencies per rank
        // instead of 126 per-message latencies.
        let p = 64;
        let make_send = || -> Vec<Vec<Vec<u64>>> {
            (0..p)
                .map(|_| (0..p).map(|_| vec![1u64]).collect())
                .collect()
        };
        let mut e1 = engine(p);
        let _ = e1.alltoallv(make_send(), AllToAllAlgo::Direct);
        let mut e2 = engine(p);
        let _ = e2.alltoallv(make_send(), AllToAllAlgo::Hypercube);
        assert!(e2.makespan() < e1.makespan());
    }

    #[test]
    fn direct_beats_staged_for_bulk_pairs() {
        // Two ranks exchanging big buffers: staging only adds volume.
        let p = 2;
        let make_send = || -> Vec<Vec<Vec<u64>>> {
            vec![
                vec![vec![], vec![0u64; 100_000]],
                vec![vec![0u64; 100_000], vec![]],
            ]
        };
        let mut e1 = engine(p);
        let _ = e1.alltoallv(make_send(), AllToAllAlgo::Direct);
        let mut e2 = engine(p);
        let _ = e2.alltoallv(make_send(), AllToAllAlgo::Staged);
        assert!(e1.makespan() < e2.makespan());
    }

    #[test]
    fn alltoallv_by_routes_elements() {
        for algo in ALL_ALGOS {
            let mut e = engine(4);
            // Every rank holds values 0..8; route value v to rank v % 4.
            let send: Vec<Vec<u32>> = (0..4).map(|_| (0..8).collect()).collect();
            let recv = e.alltoallv_by(send, |_src, &v| (v % 4) as usize, algo);
            for (r, buf) in recv.iter().enumerate() {
                assert_eq!(buf.len(), 8);
                assert!(buf.iter().all(|&v| v % 4 == r as u32));
            }
        }
    }

    #[test]
    fn collective_synchronises_clocks() {
        let mut e = engine(2);
        let mut d = DistVec::from_parts(vec![vec![0u8; 1], vec![0; 1_000_000]]);
        e.compute(&mut d, |_, b| b.len() as f64);
        let before = e.clocks().to_vec();
        assert!(before[0] < before[1]);
        let _ = e.allreduce_sum_u64(&[0, 0]);
        let after = e.clocks().to_vec();
        assert_eq!(after[0], after[1]);
        assert!(after[0] > before[1]);
    }

    #[test]
    fn barrier_costs_latency_only() {
        let mut e = engine(8);
        e.barrier();
        let expected = 3.0 * e.perf().machine.ts; // log2(8) = 3
        assert!((e.makespan() - expected).abs() < 1e-12);
        assert_eq!(e.stats().bytes_total, 0);
    }

    #[test]
    fn empty_alltoallv_is_cheap() {
        for algo in ALL_ALGOS {
            let mut e = engine(4);
            let send: Vec<Vec<Vec<u8>>> =
                (0..4).map(|_| (0..4).map(|_| vec![]).collect()).collect();
            let _ = e.alltoallv(send, algo);
            assert_eq!(e.stats().bytes_total, 0);
            if algo != AllToAllAlgo::Staged {
                // No messages, no latency (Staged charges its stage
                // latencies even to idle ranks — modeled, not staged).
                assert_eq!(e.makespan(), 0.0, "{algo:?}");
            }
        }
    }

    #[test]
    fn single_rank_engine_works() {
        let mut e = engine(1);
        assert_eq!(e.allreduce_sum_u64(&[42]), 42);
        let before = e.stats().bytes_total;
        let recv = e.alltoallv(vec![vec![vec![7u8]]], AllToAllAlgo::Hypercube);
        assert_eq!(recv[0][0], vec![7]);
        assert_eq!(e.stats().bytes_total, before); // self-delivery is free
    }

    /// Seeded per-rank payloads for conservation tests: rank `src` sends
    /// `(src + dst) % 5` tagged elements to each `dst`.
    fn tagged_send(p: usize) -> Vec<Vec<Vec<u64>>> {
        (0..p)
            .map(|src| {
                (0..p)
                    .map(|dst| {
                        (0..(src + dst) % 5)
                            .map(|i| (src * 1000 + dst * 10 + i) as u64)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn alltoallv_conserves_every_element() {
        // Conservation pinned at the element level, not just counts: the
        // multiset of values out equals the multiset in, for all schedules.
        for algo in ALL_ALGOS {
            let p = 7;
            let send = tagged_send(p);
            let mut sent: Vec<u64> = send.iter().flatten().flatten().copied().collect();
            let mut e = engine(p);
            let recv = e.alltoallv(send, algo);
            let mut got: Vec<u64> = recv.iter().flatten().flatten().copied().collect();
            sent.sort_unstable();
            got.sort_unstable();
            assert_eq!(sent, got, "{algo:?} lost or duplicated elements");
            assert_eq!(e.stats().audited_collectives, 1);
        }
    }

    #[test]
    fn staged_and_direct_deliver_identical_data() {
        // The schedule changes clocks and message counts — never payloads.
        let p = 9;
        let mut e1 = engine(p);
        let r1 = e1.alltoallv(tagged_send(p), AllToAllAlgo::Direct);
        let mut e2 = engine(p);
        let r2 = e2.alltoallv(tagged_send(p), AllToAllAlgo::Staged);
        assert_eq!(r1, r2);
        assert_eq!(e1.stats().bytes_total, e2.stats().bytes_total);
        assert_ne!(e1.stats().msgs_total, e2.stats().msgs_total);
    }

    #[test]
    fn hypercube_stage_boundary_rank_counts() {
        // p = 2^k - 1, 2^k and 2^k + 1 exercise the wrap-around holders:
        // conservation and the sparse-vs-dense charge identity must hold at
        // every stage-count boundary.
        for p in [7usize, 8, 9, 15, 16, 17] {
            let send = tagged_send(p);
            let mut sent: Vec<u64> = send.iter().flatten().flatten().copied().collect();
            let mut dense = engine(p);
            let recv = dense.alltoallv(send, AllToAllAlgo::Hypercube);
            let mut got: Vec<u64> = recv.iter().flatten().flatten().copied().collect();
            sent.sort_unstable();
            got.sort_unstable();
            assert_eq!(sent, got, "p={p} lost or duplicated elements");

            // The sparse production path (closed-form holders) must charge
            // bit-identical clocks to the dense reference (walked holders).
            let sparse_send: Vec<Vec<(usize, Vec<u64>)>> = tagged_send(p)
                .into_iter()
                .enumerate()
                .map(|(src, row)| {
                    row.into_iter()
                        .enumerate()
                        .filter(|(dst, buf)| *dst != src && !buf.is_empty())
                        .collect()
                })
                .collect();
            let mut sparse = engine(p);
            let _ = sparse.alltoallv_sparse(sparse_send, AllToAllAlgo::Hypercube);
            assert_eq!(
                dense.clocks(),
                sparse.clocks(),
                "p={p} sparse/dense hypercube charges diverged"
            );
            assert_eq!(dense.stats().msgs_total, sparse.stats().msgs_total);
            assert_eq!(dense.stats().bytes_total, sparse.stats().bytes_total);
        }
    }

    #[test]
    fn hypercube_idle_ranks_pay_nothing() {
        // One neighbour pair in a big machine: only the ranks a stage
        // touches pay for it.
        let p = 32;
        let mut send: Vec<Vec<(usize, Vec<u64>)>> = (0..p).map(|_| Vec::new()).collect();
        send[3] = vec![(4, vec![7u64; 10])];
        let mut e = engine(p);
        let _ = e.alltoallv_sparse(send, AllToAllAlgo::Hypercube);
        let clocks = e.clocks();
        // offset 1: the route moves only at stage 0, touching ranks 3 and 4.
        assert!(clocks[3] > 0.0 && clocks[4] > 0.0);
        for (r, &c) in clocks.iter().enumerate() {
            if r != 3 && r != 4 {
                assert_eq!(c, 0.0, "idle rank {r} was charged");
            }
        }
    }

    #[test]
    fn sparse_alltoallv_conserves_and_sorts_by_source() {
        for algo in ALL_ALGOS {
            let p = 6;
            let send: Vec<Vec<(usize, Vec<u32>)>> = (0..p)
                .map(|src| {
                    // Each rank sends to (src+1)%p and (src+3)%p, plus an
                    // empty bucket that must not confuse the audit.
                    vec![
                        ((src + 1) % p, vec![src as u32; 3]),
                        ((src + 3) % p, vec![src as u32 + 100]),
                        ((src + 2) % p, vec![]),
                    ]
                })
                .collect();
            let mut e = engine(p);
            let recv = e.alltoallv_sparse(send, algo);
            for (dst, row) in recv.iter().enumerate() {
                assert!(
                    row.windows(2).all(|w| w[0].0 < w[1].0),
                    "row {dst} unsorted"
                );
                let total: usize = row.iter().map(|(_, b)| b.len()).sum();
                assert_eq!(total, 4, "rank {dst} should receive 3 + 1 elements");
            }
            assert_eq!(e.stats().audited_collectives, 1);
        }
    }

    #[test]
    fn empty_buckets_and_p1_edge_cases() {
        // Empty rows everywhere.
        let mut e = engine(3);
        let recv = e.alltoallv_sparse::<u8>(vec![vec![], vec![], vec![]], AllToAllAlgo::Hypercube);
        assert!(recv.iter().all(Vec::is_empty));
        assert_eq!(e.makespan(), 0.0);
        // p = 1: self-delivery only, zero network bytes, zero stages.
        for algo in ALL_ALGOS {
            let mut e1 = engine(1);
            let recv = e1.alltoallv_sparse(vec![vec![(0, vec![1u8, 2, 3])]], algo);
            assert_eq!(recv[0], vec![(0, vec![1u8, 2, 3])]);
            assert_eq!(e1.stats().bytes_total, 0);
        }
    }

    #[test]
    fn flat_arena_delivers_grouped_and_reuses_cleanly() {
        let p = 5;
        let mut e = engine(p);
        let mut arena = AlltoallvArena::new();
        // Two rounds through the same arena: contents must not leak across.
        for round in 0..2u64 {
            for src in 0..p {
                // Every rank messages its two ring neighbours and itself.
                arena.send(src, (src + 1) % p, [round * 100 + src as u64]);
                arena.send(src, (src + 4) % p, [round * 100 + src as u64 + 50, 7]);
                arena.send(src, src, [round * 1000 + src as u64]);
                arena.send(src, (src + 2) % p, std::iter::empty()); // dropped
            }
            e.alltoallv_flat(&mut arena, AllToAllAlgo::Hypercube);
            let delivered: Vec<(usize, usize, Vec<u64>)> = arena
                .recv()
                .map(|(s, d, buf)| (s, d, buf.to_vec()))
                .collect();
            assert_eq!(delivered.len(), 3 * p, "round {round}");
            // Grouped by destination then source.
            assert!(delivered
                .windows(2)
                .all(|w| (w[0].1, w[0].0) <= (w[1].1, w[1].0)));
            for (src, dst, buf) in &delivered {
                if *src == *dst {
                    assert_eq!(buf, &vec![round * 1000 + *src as u64]);
                } else if (*src + 1) % p == *dst {
                    assert_eq!(buf, &vec![round * 100 + *src as u64]);
                } else {
                    assert_eq!(buf, &vec![round * 100 + *src as u64 + 50, 7]);
                }
            }
        }
        assert_eq!(e.stats().audited_collectives, 2);
        assert_eq!(e.stats().collectives, 2);
    }

    #[test]
    fn flat_arena_matches_sparse_charges() {
        // The flat arena path and the pair-list path describe the same
        // traffic, so their clocks and stats must be bit-identical.
        for algo in ALL_ALGOS {
            let p = 9;
            let mut e1 = engine(p).record_comm_matrix();
            let mut arena = AlltoallvArena::new();
            for src in 0..p {
                arena.send(src, (src + 2) % p, (0..src as u64 + 1).collect::<Vec<_>>());
            }
            e1.alltoallv_flat(&mut arena, algo);

            let mut e2 = engine(p).record_comm_matrix();
            let send: Vec<Vec<(usize, Vec<u64>)>> = (0..p)
                .map(|src| vec![((src + 2) % p, (0..src as u64 + 1).collect())])
                .collect();
            let _ = e2.alltoallv_sparse(send, algo);

            assert_eq!(e1.clocks(), e2.clocks(), "{algo:?}");
            assert_eq!(e1.stats().bytes_total, e2.stats().bytes_total);
            assert_eq!(e1.stats().msgs_total, e2.stats().msgs_total);
            assert_eq!(
                e1.comm_matrix().unwrap().nnz(),
                e2.comm_matrix().unwrap().nnz()
            );
        }
    }

    #[test]
    fn link_jitter_desynchronises_but_preserves_data() {
        use crate::faults::FaultPlan;
        let p = 8;
        let mut clean = engine(p);
        let r_clean = clean.alltoallv(tagged_send(p), AllToAllAlgo::Direct);
        let mut faulty = Engine::new(
            p,
            PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
        )
        .with_faults(FaultPlan::new(99).with_tw_jitter(0.5));
        let r_faulty = faulty.alltoallv(tagged_send(p), AllToAllAlgo::Direct);
        assert_eq!(r_clean, r_faulty, "faults must never touch payload data");
        let clocks = faulty.clocks();
        let spread = clocks.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - clocks.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread > 0.0,
            "jittered links should desynchronise completion"
        );
    }

    #[test]
    fn transient_failures_cost_time_and_count_retries() {
        use crate::faults::FaultPlan;
        for algo in [AllToAllAlgo::Staged, AllToAllAlgo::Hypercube] {
            let p = 8;
            let run = |plan: Option<FaultPlan>| {
                let mut e = Engine::new(
                    p,
                    PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
                );
                if let Some(plan) = plan {
                    e = e.with_faults(plan);
                }
                let r = e.alltoallv(tagged_send(p), algo);
                (e.makespan(), e.stats().retries_total, r)
            };
            let (t_clean, retries_clean, data_clean) = run(None);
            let plan = FaultPlan::new(5)
                .with_transient_failures(0.6)
                .with_retry_policy(3, 1e-3);
            let (t_faulty, retries_faulty, data_faulty) = run(Some(plan));
            assert_eq!(retries_clean, 0);
            assert!(
                retries_faulty > 0,
                "p_fail 0.6 over 8 ranks must retry somewhere ({algo:?})"
            );
            assert!(t_faulty > t_clean, "retries must cost virtual time");
            assert_eq!(data_clean, data_faulty);
        }
    }

    #[test]
    fn scratch_pool_invariant_survives_mixed_calls() {
        // Interleave every entry point on one engine: the pooled scratch
        // must come back zeroed each time or later calls would see phantom
        // traffic.
        let p = 6;
        let mut e = engine(p);
        let m0 = {
            let _ = e.alltoallv_by(
                (0..p).map(|_| (0..12u32).collect()).collect(),
                |_s, &v| (v as usize) % 6,
                AllToAllAlgo::Hypercube,
            );
            e.makespan()
        };
        let bytes_after_first = e.stats().bytes_total;
        // An empty exchange right after must move nothing and cost nothing
        // extra.
        let recv = e.alltoallv_sparse::<u8>(vec![vec![]; p], AllToAllAlgo::Hypercube);
        assert!(recv.iter().all(Vec::is_empty));
        assert_eq!(e.stats().bytes_total, bytes_after_first);
        assert_eq!(e.makespan(), m0, "empty exchange charged phantom traffic");
        // And a repeat of the same exchange costs exactly the same again.
        let _ = e.alltoallv_by(
            (0..p).map(|_| (0..12u32).collect()).collect(),
            |_s, &v| (v as usize) % 6,
            AllToAllAlgo::Hypercube,
        );
        assert!((e.makespan() - 2.0 * m0).abs() < 1e-12);
    }
}
