//! Offline, dependency-free pseudo-randomness for the whole workspace.
//!
//! The tier-1 build must succeed with no network or registry access, so the
//! workspace carries its own PRNG instead of depending on crates.io `rand` /
//! `rand_distr`: a [SplitMix64] generator (Steele, Lea & Flood 2014) with
//! Box–Muller normal and log-normal sampling and a Fisher–Yates shuffle.
//! Every consumer — mesh generation, shuffled workloads, fault plans,
//! benches — seeds explicitly, so all runs are reproducible by construction.
//!
//! SplitMix64 is the right tool here: 64 bits of state, passes BigCrush,
//! trivially seedable, and `mix` doubles as a stateless hash for keyed
//! per-event draws (e.g. "did collective #n fail on rank r?") that must not
//! depend on how many draws other events consumed.

/// The SplitMix64 finalizer: a stateless bijective mixer. Used both as the
/// generator's output function and as a keyed hash for independent
/// per-event randomness.
#[inline]
pub fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a `u64` to a double in `[0, 1)` using the high 53 bits.
#[inline]
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded SplitMix64 stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
    /// Cached second Box–Muller variate.
    spare_normal: Option<f64>,
}

impl SplitMix64 {
    /// A stream seeded with `seed`. Equal seeds give equal streams, on every
    /// platform and thread count.
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero. Uses the
    /// widening-multiply method; the bias is < 2⁻⁶⁴·n — irrelevant for the
    /// workload sizes here.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "next_below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal variate via Box–Muller (the second variate of each
    /// pair is cached, so consecutive calls consume uniform draws in a
    /// fixed, reproducible pattern).
    pub fn next_standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0, 1] so the log is finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn next_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_standard_normal()
    }

    /// Log-normal variate: `exp(N(mu, sigma))` of the underlying normal.
    #[inline]
    pub fn next_log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.next_normal(mu, sigma).exp()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent child stream for `stream_id` without
    /// disturbing this stream's sequence — used to give each rank / fault
    /// class its own reproducible randomness.
    pub fn fork(&self, stream_id: u64) -> SplitMix64 {
        SplitMix64::new(mix(self.state ^ mix(stream_id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the published SplitMix64
        // algorithm (Vigna's C implementation).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn unit_doubles_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_bounded_and_covers() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SplitMix64::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_is_positive_with_right_median() {
        let mut r = SplitMix64::new(13);
        let n = 50_000;
        let mut samples: Vec<f64> = (0..n).map(|_| r.next_log_normal(-1.5, 0.6)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - (-1.5f64).exp()).abs() < 0.02, "median {median}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_dependent() {
        let base: Vec<u32> = (0..1000).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        SplitMix64::new(1).shuffle(&mut a);
        SplitMix64::new(2).shuffle(&mut b);
        let mut sa = a.clone();
        sa.sort_unstable();
        assert_eq!(sa, base);
        assert_ne!(a, base, "seed 1 should move something");
        assert_ne!(a, b, "different seeds should differ");
        let mut a2 = base.clone();
        SplitMix64::new(1).shuffle(&mut a2);
        assert_eq!(a, a2, "same seed, same permutation");
    }

    #[test]
    fn forked_streams_are_independent_and_reproducible() {
        let parent = SplitMix64::new(5);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
        let mut c1b = parent.fork(0);
        c1 = parent.fork(0);
        assert_eq!(c1.next_u64(), c1b.next_u64());
    }
}
