//! Deterministic fault injection for the BSP engine.
//!
//! Real machines are not the clean LogGP abstraction of §3.1: some cores run
//! slow (OS noise, thermal throttling, a failing DIMM), some links are
//! congested, and collectives occasionally hit transient failures that the
//! transport retries. A [`FaultPlan`] models all three **on the virtual
//! clocks only**:
//!
//! * **Compute stragglers** — a seeded fraction of ranks multiply every
//!   compute charge by a severity factor (`compute_factor ≥ 1`).
//! * **Link jitter** — every rank's effective `tw` is scaled by a log-normal
//!   factor (`tw_factor`, median 1), so communication costs become
//!   heterogeneous across ranks.
//! * **Transient collective failures** — each data-moving collective may
//!   fail on a rank and be retried with exponential backoff; every retry
//!   charges the rank's transfer cost again plus the backoff wait.
//! * **Fail-stop rank failures** — a seeded fraction of ranks (or explicitly
//!   scheduled ranks) *die* at a chosen synchronisation point: the dead rank
//!   never arrives, survivors detect the death after a timeout charge, and
//!   the engine surfaces a [`RankDeath`] that recovery drivers catch via
//!   [`catch_rank_death`] before shrinking to the survivor set.
//!
//! Faults never touch payload data: buffers move exactly as in a fault-free
//! run, so splitters, partitions and FEM results are bit-identical with
//! faults on or off — only clocks, energy and retry counters change (and,
//! for fail-stop events, the rank count after recovery). All draws are
//! keyed hashes of `(seed, event identity)` via [`rng::mix`], not stateful
//! streams, so the injected faults are independent of host thread count and
//! of how many unrelated events ran before: the same plan replays the same
//! faults, always.

use crate::rng::{self, SplitMix64};
use std::fmt;
use std::str::FromStr;

/// A seeded, reproducible description of what goes wrong during a run.
///
/// The default plan is entirely benign (no stragglers, no jitter, no
/// failures); build the failure modes you want:
///
/// ```
/// use optipart_mpisim::FaultPlan;
/// let plan = FaultPlan::new(42)
///     .with_stragglers(0.25, 3.0)     // a quarter of ranks run 3× slow
///     .with_tw_jitter(0.2)            // per-rank link speed spread
///     .with_transient_failures(0.05); // 5% of exchanges need a retry
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; equal seeds give identical fault sequences.
    pub seed: u64,
    /// Fraction of ranks that straggle, in `[0, 1]`.
    pub straggler_frac: f64,
    /// Multiplicative compute slowdown of a straggling rank (`≥ 1`).
    pub straggler_severity: f64,
    /// σ of the log-normal per-rank `tw` factor (0 disables jitter).
    pub tw_jitter_sigma: f64,
    /// Probability that one attempt of a data-moving collective fails on a
    /// given rank and must be retried.
    pub alltoall_fail_prob: f64,
    /// Retry budget per (collective, rank). The draw for the final attempt
    /// is ignored — transient faults always heal within the budget.
    pub max_retries: u32,
    /// Backoff before the first retry, seconds; doubles per further retry.
    pub backoff_base_s: f64,
    /// Fraction of ranks that fail-stop during the run, in `[0, 1]`
    /// (seeded choice of victims and death times).
    pub failstop_frac: f64,
    /// Seeded fail-stop death times are drawn uniformly from sync points
    /// `1..=failstop_horizon` (see [`FaultPlan::death_schedule`]).
    pub failstop_horizon: u64,
    /// Explicit fail-stop events: `(rank, sync_seq)` — the rank never
    /// arrives at the global synchronisation point with that 0-based
    /// sequence number.
    pub kills: Vec<(usize, u64)>,
    /// Seconds survivors wait at a collective before declaring a missing
    /// rank dead (the detection timeout charged to every survivor clock).
    pub detect_timeout_s: f64,
}

impl FaultPlan {
    /// A benign plan: seeded but injecting nothing until configured.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            straggler_frac: 0.0,
            straggler_severity: 1.0,
            tw_jitter_sigma: 0.0,
            alltoall_fail_prob: 0.0,
            max_retries: 3,
            backoff_base_s: 1e-4,
            failstop_frac: 0.0,
            failstop_horizon: 24,
            kills: Vec::new(),
            detect_timeout_s: 1e-3,
        }
    }

    /// Marks a `frac` of ranks (seeded choice) as `severity`× slower in
    /// compute.
    pub fn with_stragglers(mut self, frac: f64, severity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac),
            "straggler_frac {frac} outside [0,1]"
        );
        assert!(
            severity >= 1.0,
            "straggler_severity {severity} < 1 would be a speedup"
        );
        self.straggler_frac = frac;
        self.straggler_severity = severity;
        self
    }

    /// Log-normal per-rank `tw` perturbation with the given σ (median 1).
    pub fn with_tw_jitter(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "tw_jitter_sigma {sigma} negative");
        self.tw_jitter_sigma = sigma;
        self
    }

    /// Transient per-(collective, rank) failure probability for data-moving
    /// collectives. The closed interval `[0, 1]` is accepted: even at
    /// `prob = 1.0` the final budgeted attempt never fails
    /// ([`FaultPlan::attempt_fails`]), so every exchange costs exactly
    /// `max_retries` retries instead of livelocking.
    pub fn with_transient_failures(mut self, prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "fail prob {prob} outside [0,1]"
        );
        self.alltoall_fail_prob = prob;
        self
    }

    /// Marks a `frac` of ranks (seeded choice) as fail-stop victims: each
    /// dies at a seeded sync point within [`FaultPlan::failstop_horizon`].
    pub fn with_rank_failures(mut self, frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac),
            "failstop_frac {frac} outside [0,1]"
        );
        self.failstop_frac = frac;
        self
    }

    /// Horizon (in global sync points) within which seeded fail-stop deaths
    /// are drawn.
    pub fn with_failstop_horizon(mut self, horizon: u64) -> Self {
        assert!(horizon >= 1, "failstop_horizon must be at least 1");
        self.failstop_horizon = horizon;
        self
    }

    /// Schedules an explicit fail-stop: `rank` never arrives at the global
    /// synchronisation point with 0-based sequence number `at_collective_seq`
    /// (every collective — reductions, barriers, exchanges, checkpoints —
    /// advances the sequence by one).
    pub fn kill_rank(mut self, rank: usize, at_collective_seq: u64) -> Self {
        self.kills.push((rank, at_collective_seq));
        self
    }

    /// Detection timeout: how long survivors wait at a collective before
    /// declaring a missing rank dead.
    pub fn with_detect_timeout(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "detect timeout {secs} negative");
        self.detect_timeout_s = secs;
        self
    }

    /// Retry budget and initial backoff for transient failures.
    pub fn with_retry_policy(mut self, max_retries: u32, backoff_base_s: f64) -> Self {
        assert!(backoff_base_s >= 0.0);
        self.max_retries = max_retries;
        self.backoff_base_s = backoff_base_s;
        self
    }

    /// Materialises the per-rank factors for a machine of `p` ranks.
    pub fn materialize(&self, p: usize) -> RankFaults {
        let mut compute_factor = vec![1.0; p];
        if self.straggler_frac > 0.0 && self.straggler_severity > 1.0 {
            // Seeded choice of straggler ranks: shuffle indices, take the
            // first k — every rank equally likely, count exact.
            let k = (self.straggler_frac * p as f64).round() as usize;
            let mut idx: Vec<usize> = (0..p).collect();
            SplitMix64::new(self.seed)
                .fork(STREAM_STRAGGLERS)
                .shuffle(&mut idx);
            for &r in idx.iter().take(k.min(p)) {
                compute_factor[r] = self.straggler_severity;
            }
        }
        let tw_factor = if self.tw_jitter_sigma > 0.0 {
            let mut rng = SplitMix64::new(self.seed).fork(STREAM_TW_JITTER);
            (0..p)
                .map(|_| rng.next_log_normal(0.0, self.tw_jitter_sigma))
                .collect()
        } else {
            vec![1.0; p]
        };
        RankFaults {
            compute_factor,
            tw_factor,
        }
    }

    /// The fail-stop schedule for a machine of `p` ranks: `(sync_seq, rank)`
    /// death events, sorted by firing order. Explicit [`FaultPlan::kill_rank`]
    /// events are merged with the seeded draws of
    /// [`FaultPlan::with_rank_failures`] (victims chosen by seeded shuffle,
    /// death times uniform in `1..=failstop_horizon`); a rank scheduled to
    /// die twice dies at the earlier point.
    pub fn death_schedule(&self, p: usize) -> Vec<(u64, usize)> {
        let mut by_rank: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
        for &(r, seq) in &self.kills {
            assert!(r < p, "kill_rank({r}, ..) targets a rank outside 0..{p}");
            let e = by_rank.entry(r).or_insert(seq);
            *e = (*e).min(seq);
        }
        if self.failstop_frac > 0.0 {
            let k = ((self.failstop_frac * p as f64).round() as usize).min(p);
            let mut idx: Vec<usize> = (0..p).collect();
            let mut rng = SplitMix64::new(self.seed).fork(STREAM_FAILSTOP);
            rng.shuffle(&mut idx);
            for &r in idx.iter().take(k) {
                let seq = 1 + rng.next_below(self.failstop_horizon.max(1));
                let e = by_rank.entry(r).or_insert(seq);
                *e = (*e).min(seq);
            }
        }
        let mut out: Vec<(u64, usize)> = by_rank.into_iter().map(|(r, s)| (s, r)).collect();
        out.sort_unstable();
        out
    }

    /// Does attempt `attempt` of data-moving collective number `seq` fail on
    /// `rank`? A stateless keyed draw: independent of every other event and
    /// of host threading. The final budgeted attempt never fails.
    pub fn attempt_fails(&self, seq: u64, rank: usize, attempt: u32) -> bool {
        if self.alltoall_fail_prob <= 0.0 || attempt >= self.max_retries {
            return false;
        }
        let key = rng::mix(
            self.seed
                ^ rng::mix(seq)
                ^ rng::mix(((rank as u64) << 8) | attempt as u64 | STREAM_FAILURES),
        );
        rng::unit_f64(key) < self.alltoall_fail_prob
    }

    /// Number of retries collective `seq` costs `rank` under this plan.
    pub fn retries_for(&self, seq: u64, rank: usize) -> u32 {
        let mut n = 0;
        while self.attempt_fails(seq, rank, n) {
            n += 1;
        }
        n
    }

    /// Backoff wait charged before retry number `retry` (0-based), seconds.
    #[inline]
    pub fn backoff_s(&self, retry: u32) -> f64 {
        self.backoff_base_s * (1u64 << retry.min(62)) as f64
    }
}

// Distinct sub-stream tags so the fault classes draw independently.
const STREAM_STRAGGLERS: u64 = 0x5354_5241_4747;
const STREAM_TW_JITTER: u64 = 0x4a49_5454_4552;
const STREAM_FAILURES: u64 = 0x4641_494c << 32;
const STREAM_FAILSTOP: u64 = 0x4445_4144; // "DEAD"

/// A fail-stop event, raised by the engine (as a panic payload) when a
/// scheduled death fires at a synchronisation point. Catch it with
/// [`catch_rank_death`], then call `Engine::shrink_after_death` and restore
/// from a checkpoint to continue on the survivor set.
#[derive(Clone, Debug, PartialEq)]
pub struct RankDeath {
    /// The dead rank's *original* id (its trace track), stable across
    /// shrinks.
    pub rank: usize,
    /// 0-based global sync-point sequence number it failed to arrive at.
    pub at_seq: u64,
    /// The dead rank's frozen clock (capped at the detection sync time).
    pub t_last: f64,
    /// Virtual time at which survivors completed detection (sync time +
    /// detection timeout).
    pub t_detect: f64,
}

impl fmt::Display for RankDeath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} failed at sync point {} (detected at t = {:.6} s)",
            self.rank, self.at_seq, self.t_detect
        )
    }
}

/// Runs `f`, converting an engine-raised [`RankDeath`] unwind into
/// `Err(death)`. Any other panic is propagated unchanged. Installs (once) a
/// panic hook that keeps `RankDeath` unwinds silent — they are control flow,
/// not errors.
pub fn catch_rank_death<R>(f: impl FnOnce() -> R) -> Result<R, RankDeath> {
    install_death_hook();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<RankDeath>() {
            Ok(death) => Err(*death),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// Silences the default panic message for [`RankDeath`] payloads only;
/// every other panic keeps the previous hook's behaviour.
fn install_death_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<RankDeath>().is_none() {
                prev(info);
            }
        }));
    });
}

impl fmt::Display for FaultPlan {
    /// Canonical compact spec, e.g.
    /// `seed=7,straggler=0.25x3,jitter=0.2,fail=0.05,kill=3@12`. Only
    /// non-default fields are printed (after the always-present seed), and
    /// floats use Rust's shortest round-trip formatting, so
    /// `spec.parse::<FaultPlan>()` reproduces the plan exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = FaultPlan::new(self.seed);
        write!(f, "seed={}", self.seed)?;
        if self.straggler_frac > 0.0 && self.straggler_severity > 1.0 {
            write!(
                f,
                ",straggler={}x{}",
                self.straggler_frac, self.straggler_severity
            )?;
        }
        if self.tw_jitter_sigma > 0.0 {
            write!(f, ",jitter={}", self.tw_jitter_sigma)?;
        }
        if self.alltoall_fail_prob > 0.0 {
            write!(f, ",trans={}", self.alltoall_fail_prob)?;
        }
        if self.max_retries != d.max_retries || self.backoff_base_s != d.backoff_base_s {
            write!(f, ",retry={}@{}", self.max_retries, self.backoff_base_s)?;
        }
        if self.failstop_frac > 0.0 {
            write!(f, ",fail={}", self.failstop_frac)?;
            if self.failstop_horizon != d.failstop_horizon {
                write!(f, "@{}", self.failstop_horizon)?;
            }
        }
        for &(r, seq) in &self.kills {
            write!(f, ",kill={r}@{seq}")?;
        }
        if self.detect_timeout_s != d.detect_timeout_s {
            write!(f, ",detect={}", self.detect_timeout_s)?;
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    /// Parses the compact spec of the `Display` impl. Grammar (tokens comma
    /// separated, any order, `seed` defaulting to 0 when absent):
    ///
    /// ```text
    /// seed=<u64>            master seed
    /// straggler=<frac>x<sev>  straggling ranks
    /// jitter=<sigma>        log-normal tw jitter
    /// trans=<prob>          transient collective failure probability
    /// retry=<n>@<backoff>   retry budget @ initial backoff seconds
    /// fail=<frac>[@<horizon>]  seeded fail-stop fraction [@ sync horizon]
    /// kill=<rank>@<seq>     explicit fail-stop (repeatable)
    /// detect=<secs>         death detection timeout
    /// ```
    fn from_str(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s.is_empty() {
            return Err("empty fault spec".into());
        }
        let mut plan = FaultPlan::new(0);
        for tok in s.split(',') {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("token '{tok}' is not key=value"))?;
            let num = |v: &str| -> Result<f64, String> { v.parse().map_err(|_| bad(key, v)) };
            match key.trim() {
                "seed" => plan.seed = val.parse().map_err(|_| bad(key, val))?,
                "straggler" => {
                    let (frac, sev) = val
                        .split_once('x')
                        .ok_or_else(|| format!("straggler wants <frac>x<severity>, got '{val}'"))?;
                    plan = plan.with_stragglers(num(frac)?, num(sev)?);
                }
                "jitter" => plan = plan.with_tw_jitter(num(val)?),
                "trans" => plan = plan.with_transient_failures(num(val)?),
                "retry" => {
                    let (n, base) = val
                        .split_once('@')
                        .ok_or_else(|| format!("retry wants <n>@<backoff_s>, got '{val}'"))?;
                    plan = plan.with_retry_policy(n.parse().map_err(|_| bad(key, n))?, num(base)?);
                }
                "fail" => match val.split_once('@') {
                    Some((frac, horizon)) => {
                        plan = plan
                            .with_rank_failures(num(frac)?)
                            .with_failstop_horizon(horizon.parse().map_err(|_| bad(key, horizon))?);
                    }
                    None => plan = plan.with_rank_failures(num(val)?),
                },
                "kill" => {
                    let (r, seq) = val
                        .split_once('@')
                        .ok_or_else(|| format!("kill wants <rank>@<sync_seq>, got '{val}'"))?;
                    plan = plan.kill_rank(
                        r.parse().map_err(|_| bad(key, r))?,
                        seq.parse().map_err(|_| bad(key, seq))?,
                    );
                }
                "detect" => plan = plan.with_detect_timeout(num(val)?),
                other => return Err(format!("unknown fault spec key '{other}'")),
            }
        }
        Ok(plan)
    }
}

fn bad(key: &str, val: &str) -> String {
    format!("bad value '{val}' for fault spec key '{key}'")
}

/// Per-rank multiplicative factors materialised from a [`FaultPlan`].
#[derive(Clone, Debug, PartialEq)]
pub struct RankFaults {
    /// Compute-time multiplier per rank (`1.0` = healthy).
    pub compute_factor: Vec<f64>,
    /// Effective-`tw` multiplier per rank (`1.0` = nominal link).
    pub tw_factor: Vec<f64>,
}

impl RankFaults {
    /// Ranks whose compute factor exceeds 1 — the stragglers.
    pub fn straggler_ranks(&self) -> Vec<usize> {
        self.compute_factor
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 1.0)
            .map(|(r, _)| r)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_benign() {
        let rf = FaultPlan::new(1).materialize(16);
        assert!(rf.compute_factor.iter().all(|&f| f == 1.0));
        assert!(rf.tw_factor.iter().all(|&f| f == 1.0));
        assert!(rf.straggler_ranks().is_empty());
        assert!(!FaultPlan::new(1).attempt_fails(0, 0, 0));
    }

    #[test]
    fn straggler_count_is_exact_and_seeded() {
        let plan = FaultPlan::new(7).with_stragglers(0.25, 3.0);
        let rf = plan.materialize(64);
        assert_eq!(rf.straggler_ranks().len(), 16);
        assert!(rf
            .straggler_ranks()
            .iter()
            .all(|&r| rf.compute_factor[r] == 3.0));
        // Same seed, same stragglers; different seed, (almost surely) not.
        assert_eq!(rf, plan.materialize(64));
        let other = FaultPlan::new(8).with_stragglers(0.25, 3.0).materialize(64);
        assert_ne!(rf.straggler_ranks(), other.straggler_ranks());
    }

    #[test]
    fn tw_jitter_has_unit_median_and_spread() {
        let rf = FaultPlan::new(3).with_tw_jitter(0.3).materialize(10_000);
        assert!(rf.tw_factor.iter().all(|&f| f > 0.0));
        let mut sorted = rf.tw_factor.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[5_000];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert!(sorted[0] < 0.7 && sorted[9_999] > 1.4, "no spread");
    }

    #[test]
    fn failure_draws_are_stateless_and_bounded() {
        let plan = FaultPlan::new(11)
            .with_transient_failures(0.5)
            .with_retry_policy(4, 1e-3);
        for seq in 0..50u64 {
            for rank in 0..8 {
                let a = plan.retries_for(seq, rank);
                let b = plan.retries_for(seq, rank);
                assert_eq!(a, b, "draws must be reproducible");
                assert!(a <= 4, "retry budget exceeded");
            }
        }
        // With p_fail = 0.5 over 400 events, some retries must occur.
        let total: u32 = (0..50)
            .flat_map(|s| (0..8).map(move |r| (s, r)))
            .map(|(s, r)| plan.retries_for(s, r))
            .sum();
        assert!(total > 50, "expected plenty of retries, got {total}");
    }

    #[test]
    fn backoff_doubles() {
        let plan = FaultPlan::new(1).with_retry_policy(5, 0.5);
        assert_eq!(plan.backoff_s(0), 0.5);
        assert_eq!(plan.backoff_s(1), 1.0);
        assert_eq!(plan.backoff_s(3), 4.0);
    }

    #[test]
    fn transient_prob_one_is_accepted_and_bounded() {
        // The closed interval: prob = 1.0 costs exactly the retry budget on
        // every attempt (the final attempt never fails), no livelock.
        let plan = FaultPlan::new(9)
            .with_transient_failures(1.0)
            .with_retry_policy(4, 1e-4);
        for seq in 0..20u64 {
            for rank in 0..8 {
                assert_eq!(plan.retries_for(seq, rank), 4);
            }
        }
    }

    #[test]
    fn death_schedule_is_seeded_and_merges_kills() {
        let plan = FaultPlan::new(21).with_rank_failures(0.25);
        let a = plan.death_schedule(16);
        assert_eq!(a.len(), 4, "0.25 × 16 ranks must die: {a:?}");
        assert_eq!(a, plan.death_schedule(16), "schedule must replay");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "unsorted: {a:?}");
        assert!(a.iter().all(|&(s, r)| (1..=24).contains(&s) && r < 16));
        // An explicit kill earlier than the seeded draw wins; a fresh rank
        // is appended.
        let victim = a[0].1;
        let plan2 = plan.clone().kill_rank(victim, 0);
        let b = plan2.death_schedule(16);
        assert_eq!(b.len(), 4);
        assert_eq!(b[0], (0, victim));
        let other = FaultPlan::new(22)
            .with_rank_failures(0.25)
            .death_schedule(16);
        assert_ne!(a, other, "different seeds, different schedules");
    }

    #[test]
    fn spec_string_round_trips() {
        // Fixed cases, including the ISSUE's example shape.
        for spec in [
            "seed=7",
            "seed=7,straggler=0.25x3,jitter=0.2,fail=0.05,kill=3@12",
            "seed=1,trans=0.3,retry=5@0.001,fail=0.5@10,detect=0.01",
        ] {
            let plan: FaultPlan = spec.parse().expect("valid spec");
            let printed = plan.to_string();
            let again: FaultPlan = printed.parse().expect("printed spec parses");
            assert_eq!(plan, again, "round trip failed for '{spec}'");
        }
        // Seeded randomized round-trip property: Display ∘ FromStr is the
        // identity on arbitrary plans (shortest-float formatting is exact).
        let mut rng = SplitMix64::new(0xF00D);
        for _ in 0..200 {
            let mut plan = FaultPlan::new(rng.next_u64());
            if rng.next_f64() < 0.5 {
                plan = plan.with_stragglers(rng.next_f64(), 1.0 + 9.0 * rng.next_f64());
            }
            if rng.next_f64() < 0.5 {
                plan = plan.with_tw_jitter(rng.next_f64());
            }
            if rng.next_f64() < 0.5 {
                plan = plan.with_transient_failures(rng.next_f64());
            }
            if rng.next_f64() < 0.5 {
                plan = plan.with_retry_policy(rng.next_below(8) as u32, rng.next_f64() * 1e-2);
            }
            if rng.next_f64() < 0.5 {
                plan = plan
                    .with_rank_failures(rng.next_f64())
                    .with_failstop_horizon(1 + rng.next_below(100));
            }
            for _ in 0..rng.next_below(3) {
                plan = plan.kill_rank(rng.next_below(64) as usize, rng.next_below(40));
            }
            if rng.next_f64() < 0.5 {
                plan = plan.with_detect_timeout(rng.next_f64() * 1e-2);
            }
            let again: FaultPlan = plan.to_string().parse().expect("printed spec parses");
            assert_eq!(plan, again, "round trip failed for '{plan}'");
        }
    }

    #[test]
    fn spec_string_rejects_garbage() {
        assert!("".parse::<FaultPlan>().is_err());
        assert!("seed".parse::<FaultPlan>().is_err());
        assert!("bogus=1".parse::<FaultPlan>().is_err());
        assert!("straggler=0.5".parse::<FaultPlan>().is_err());
        assert!("kill=3".parse::<FaultPlan>().is_err());
        assert!("seed=notanumber".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn materialize_is_independent_of_p_prefix() {
        // The first ranks' tw factors agree across machine sizes (stream
        // draws are positional), which keeps small-p debugging sessions
        // representative of larger runs.
        let a = FaultPlan::new(5).with_tw_jitter(0.2).materialize(8);
        let b = FaultPlan::new(5).with_tw_jitter(0.2).materialize(16);
        assert_eq!(a.tw_factor[..8], b.tw_factor[..8]);
    }
}
