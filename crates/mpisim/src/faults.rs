//! Deterministic fault injection for the BSP engine.
//!
//! Real machines are not the clean LogGP abstraction of §3.1: some cores run
//! slow (OS noise, thermal throttling, a failing DIMM), some links are
//! congested, and collectives occasionally hit transient failures that the
//! transport retries. A [`FaultPlan`] models all three **on the virtual
//! clocks only**:
//!
//! * **Compute stragglers** — a seeded fraction of ranks multiply every
//!   compute charge by a severity factor (`compute_factor ≥ 1`).
//! * **Link jitter** — every rank's effective `tw` is scaled by a log-normal
//!   factor (`tw_factor`, median 1), so communication costs become
//!   heterogeneous across ranks.
//! * **Transient collective failures** — each data-moving collective may
//!   fail on a rank and be retried with exponential backoff; every retry
//!   charges the rank's transfer cost again plus the backoff wait.
//!
//! Faults never touch payload data: buffers move exactly as in a fault-free
//! run, so splitters, partitions and FEM results are bit-identical with
//! faults on or off — only clocks, energy and retry counters change. All
//! draws are keyed hashes of `(seed, event identity)` via [`rng::mix`], not
//! stateful streams, so the injected faults are independent of host thread
//! count and of how many unrelated events ran before: the same plan replays
//! the same faults, always.

use crate::rng::{self, SplitMix64};

/// A seeded, reproducible description of what goes wrong during a run.
///
/// The default plan is entirely benign (no stragglers, no jitter, no
/// failures); build the failure modes you want:
///
/// ```
/// use optipart_mpisim::FaultPlan;
/// let plan = FaultPlan::new(42)
///     .with_stragglers(0.25, 3.0)     // a quarter of ranks run 3× slow
///     .with_tw_jitter(0.2)            // per-rank link speed spread
///     .with_transient_failures(0.05); // 5% of exchanges need a retry
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; equal seeds give identical fault sequences.
    pub seed: u64,
    /// Fraction of ranks that straggle, in `[0, 1]`.
    pub straggler_frac: f64,
    /// Multiplicative compute slowdown of a straggling rank (`≥ 1`).
    pub straggler_severity: f64,
    /// σ of the log-normal per-rank `tw` factor (0 disables jitter).
    pub tw_jitter_sigma: f64,
    /// Probability that one attempt of a data-moving collective fails on a
    /// given rank and must be retried.
    pub alltoall_fail_prob: f64,
    /// Retry budget per (collective, rank). The draw for the final attempt
    /// is ignored — transient faults always heal within the budget.
    pub max_retries: u32,
    /// Backoff before the first retry, seconds; doubles per further retry.
    pub backoff_base_s: f64,
}

impl FaultPlan {
    /// A benign plan: seeded but injecting nothing until configured.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            straggler_frac: 0.0,
            straggler_severity: 1.0,
            tw_jitter_sigma: 0.0,
            alltoall_fail_prob: 0.0,
            max_retries: 3,
            backoff_base_s: 1e-4,
        }
    }

    /// Marks a `frac` of ranks (seeded choice) as `severity`× slower in
    /// compute.
    pub fn with_stragglers(mut self, frac: f64, severity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac),
            "straggler_frac {frac} outside [0,1]"
        );
        assert!(
            severity >= 1.0,
            "straggler_severity {severity} < 1 would be a speedup"
        );
        self.straggler_frac = frac;
        self.straggler_severity = severity;
        self
    }

    /// Log-normal per-rank `tw` perturbation with the given σ (median 1).
    pub fn with_tw_jitter(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "tw_jitter_sigma {sigma} negative");
        self.tw_jitter_sigma = sigma;
        self
    }

    /// Transient per-(collective, rank) failure probability for data-moving
    /// collectives.
    pub fn with_transient_failures(mut self, prob: f64) -> Self {
        assert!((0.0..1.0).contains(&prob), "fail prob {prob} outside [0,1)");
        self.alltoall_fail_prob = prob;
        self
    }

    /// Retry budget and initial backoff for transient failures.
    pub fn with_retry_policy(mut self, max_retries: u32, backoff_base_s: f64) -> Self {
        assert!(backoff_base_s >= 0.0);
        self.max_retries = max_retries;
        self.backoff_base_s = backoff_base_s;
        self
    }

    /// Materialises the per-rank factors for a machine of `p` ranks.
    pub fn materialize(&self, p: usize) -> RankFaults {
        let mut compute_factor = vec![1.0; p];
        if self.straggler_frac > 0.0 && self.straggler_severity > 1.0 {
            // Seeded choice of straggler ranks: shuffle indices, take the
            // first k — every rank equally likely, count exact.
            let k = (self.straggler_frac * p as f64).round() as usize;
            let mut idx: Vec<usize> = (0..p).collect();
            SplitMix64::new(self.seed)
                .fork(STREAM_STRAGGLERS)
                .shuffle(&mut idx);
            for &r in idx.iter().take(k.min(p)) {
                compute_factor[r] = self.straggler_severity;
            }
        }
        let tw_factor = if self.tw_jitter_sigma > 0.0 {
            let mut rng = SplitMix64::new(self.seed).fork(STREAM_TW_JITTER);
            (0..p)
                .map(|_| rng.next_log_normal(0.0, self.tw_jitter_sigma))
                .collect()
        } else {
            vec![1.0; p]
        };
        RankFaults {
            compute_factor,
            tw_factor,
        }
    }

    /// Does attempt `attempt` of data-moving collective number `seq` fail on
    /// `rank`? A stateless keyed draw: independent of every other event and
    /// of host threading. The final budgeted attempt never fails.
    pub fn attempt_fails(&self, seq: u64, rank: usize, attempt: u32) -> bool {
        if self.alltoall_fail_prob <= 0.0 || attempt >= self.max_retries {
            return false;
        }
        let key = rng::mix(
            self.seed
                ^ rng::mix(seq)
                ^ rng::mix(((rank as u64) << 8) | attempt as u64 | STREAM_FAILURES),
        );
        rng::unit_f64(key) < self.alltoall_fail_prob
    }

    /// Number of retries collective `seq` costs `rank` under this plan.
    pub fn retries_for(&self, seq: u64, rank: usize) -> u32 {
        let mut n = 0;
        while self.attempt_fails(seq, rank, n) {
            n += 1;
        }
        n
    }

    /// Backoff wait charged before retry number `retry` (0-based), seconds.
    #[inline]
    pub fn backoff_s(&self, retry: u32) -> f64 {
        self.backoff_base_s * (1u64 << retry.min(62)) as f64
    }
}

// Distinct sub-stream tags so the three fault classes draw independently.
const STREAM_STRAGGLERS: u64 = 0x5354_5241_4747;
const STREAM_TW_JITTER: u64 = 0x4a49_5454_4552;
const STREAM_FAILURES: u64 = 0x4641_494c << 32;

/// Per-rank multiplicative factors materialised from a [`FaultPlan`].
#[derive(Clone, Debug, PartialEq)]
pub struct RankFaults {
    /// Compute-time multiplier per rank (`1.0` = healthy).
    pub compute_factor: Vec<f64>,
    /// Effective-`tw` multiplier per rank (`1.0` = nominal link).
    pub tw_factor: Vec<f64>,
}

impl RankFaults {
    /// Ranks whose compute factor exceeds 1 — the stragglers.
    pub fn straggler_ranks(&self) -> Vec<usize> {
        self.compute_factor
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 1.0)
            .map(|(r, _)| r)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_benign() {
        let rf = FaultPlan::new(1).materialize(16);
        assert!(rf.compute_factor.iter().all(|&f| f == 1.0));
        assert!(rf.tw_factor.iter().all(|&f| f == 1.0));
        assert!(rf.straggler_ranks().is_empty());
        assert!(!FaultPlan::new(1).attempt_fails(0, 0, 0));
    }

    #[test]
    fn straggler_count_is_exact_and_seeded() {
        let plan = FaultPlan::new(7).with_stragglers(0.25, 3.0);
        let rf = plan.materialize(64);
        assert_eq!(rf.straggler_ranks().len(), 16);
        assert!(rf
            .straggler_ranks()
            .iter()
            .all(|&r| rf.compute_factor[r] == 3.0));
        // Same seed, same stragglers; different seed, (almost surely) not.
        assert_eq!(rf, plan.materialize(64));
        let other = FaultPlan::new(8).with_stragglers(0.25, 3.0).materialize(64);
        assert_ne!(rf.straggler_ranks(), other.straggler_ranks());
    }

    #[test]
    fn tw_jitter_has_unit_median_and_spread() {
        let rf = FaultPlan::new(3).with_tw_jitter(0.3).materialize(10_000);
        assert!(rf.tw_factor.iter().all(|&f| f > 0.0));
        let mut sorted = rf.tw_factor.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[5_000];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert!(sorted[0] < 0.7 && sorted[9_999] > 1.4, "no spread");
    }

    #[test]
    fn failure_draws_are_stateless_and_bounded() {
        let plan = FaultPlan::new(11)
            .with_transient_failures(0.5)
            .with_retry_policy(4, 1e-3);
        for seq in 0..50u64 {
            for rank in 0..8 {
                let a = plan.retries_for(seq, rank);
                let b = plan.retries_for(seq, rank);
                assert_eq!(a, b, "draws must be reproducible");
                assert!(a <= 4, "retry budget exceeded");
            }
        }
        // With p_fail = 0.5 over 400 events, some retries must occur.
        let total: u32 = (0..50)
            .flat_map(|s| (0..8).map(move |r| (s, r)))
            .map(|(s, r)| plan.retries_for(s, r))
            .sum();
        assert!(total > 50, "expected plenty of retries, got {total}");
    }

    #[test]
    fn backoff_doubles() {
        let plan = FaultPlan::new(1).with_retry_policy(5, 0.5);
        assert_eq!(plan.backoff_s(0), 0.5);
        assert_eq!(plan.backoff_s(1), 1.0);
        assert_eq!(plan.backoff_s(3), 4.0);
    }

    #[test]
    fn materialize_is_independent_of_p_prefix() {
        // The first ranks' tw factors agree across machine sizes (stream
        // draws are positional), which keeps small-p debugging sessions
        // representative of larger runs.
        let a = FaultPlan::new(5).with_tw_jitter(0.2).materialize(8);
        let b = FaultPlan::new(5).with_tw_jitter(0.2).materialize(16);
        assert_eq!(a.tw_factor[..8], b.tw_factor[..8]);
    }
}
