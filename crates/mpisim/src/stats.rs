//! Run statistics: traffic counters and the communication matrix.
//!
//! Per-phase virtual time and bytes live on the engine's
//! `optipart_trace::Tracer` (the always-on phase counters behind
//! `Engine::phase_time` / `Engine::phase_bytes`) — this module only keeps
//! the whole-run traffic aggregates and the §5.5 matrix.

use std::collections::HashMap;

/// The communication matrix `M` of §5.5: `m[i][j]` is the number of bytes
/// rank `i` sent to rank `j` (the paper counts elements; scale by element
/// size as needed).
///
/// Stored sparsely — the whole point of the paper's NNZ metric is that this
/// matrix is sparse and should get sparser as the tolerance grows.
#[derive(Clone, Debug, Default)]
pub struct CommMatrix {
    rows: Vec<HashMap<usize, u64>>,
}

impl CommMatrix {
    /// An empty `p × p` matrix.
    pub fn new(p: usize) -> Self {
        CommMatrix {
            rows: vec![HashMap::new(); p],
        }
    }

    /// Adds `bytes` to entry `(src, dst)`.
    #[inline]
    pub fn add(&mut self, src: usize, dst: usize, bytes: u64) {
        if bytes > 0 && src != dst {
            *self.rows[src].entry(dst).or_insert(0) += bytes;
        }
    }

    /// Entry lookup, zero when absent.
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.rows
            .get(src)
            .and_then(|r| r.get(&dst))
            .copied()
            .unwrap_or(0)
    }

    /// Number of non-zero entries — the paper's NNZ metric, "the total
    /// number of messages that are exchanged during the computation".
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(HashMap::len).sum()
    }

    /// Total bytes over all entries — the paper's "total data communicated".
    pub fn total_bytes(&self) -> u64 {
        self.rows.iter().flat_map(|r| r.values()).sum()
    }

    /// Per-rank communicated bytes (sent + received) — the `|C_r|` whose max
    /// is `Cmax` and whose max/min ratio is the *communication imbalance* of
    /// Fig. 11.
    pub fn per_rank_bytes(&self) -> Vec<u64> {
        let p = self.rows.len();
        let mut tot = vec![0u64; p];
        for (src, row) in self.rows.iter().enumerate() {
            for (&dst, &b) in row {
                tot[src] += b;
                if dst < p {
                    tot[dst] += b;
                }
            }
        }
        tot
    }

    /// `Cmax`: the maximum bytes any rank exchanges.
    pub fn cmax(&self) -> u64 {
        self.per_rank_bytes().into_iter().max().unwrap_or(0)
    }

    /// Communication imbalance `max/min` over ranks that communicate at all.
    pub fn comm_imbalance(&self) -> f64 {
        let per = self.per_rank_bytes();
        let max = per.iter().copied().max().unwrap_or(0);
        let min = per.iter().copied().filter(|&b| b > 0).min().unwrap_or(0);
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }

    /// Number of ranks (matrix dimension).
    pub fn dim(&self) -> usize {
        self.rows.len()
    }

    /// Iterates all non-zero `(src, dst, bytes)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(src, row)| row.iter().map(move |(&dst, &b)| (src, dst, b)))
    }

    /// Per-rank `(sent bytes, received bytes, message count in+out)`.
    pub fn per_rank_traffic(&self) -> Vec<(u64, u64, u64)> {
        let p = self.rows.len();
        let mut out = vec![(0u64, 0u64, 0u64); p];
        for (src, dst, b) in self.entries() {
            out[src].0 += b;
            out[src].2 += 1;
            if dst < p {
                out[dst].1 += b;
                out[dst].2 += 1;
            }
        }
        out
    }
}

/// Aggregate traffic and timing statistics of one engine run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Total bytes moved over the (virtual) network.
    pub bytes_total: u64,
    /// Of [`RunStats::bytes_total`], bytes whose source and destination rank
    /// live on the same node (always tracked; the hierarchical machine model
    /// charges them at the intra-node rate).
    pub bytes_intra: u64,
    /// Total point-to-point messages (collectives count their constituent
    /// messages under the chosen algorithm's schedule).
    pub msgs_total: u64,
    /// Number of collective operations executed.
    pub collectives: u64,
    /// Transient-failure retries charged by the fault plan (0 on a clean
    /// machine).
    pub retries_total: u64,
    /// Data-moving collectives whose conservation audit ran and passed.
    pub audited_collectives: u64,
    /// Fail-stop rank deaths detected during the run.
    pub deaths: u64,
    /// Checkpoint saves charged to the clocks.
    pub checkpoints: u64,
    /// Bytes mirrored to checkpoint partners across all saves.
    pub checkpoint_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nnz_counts_distinct_pairs() {
        let mut m = CommMatrix::new(4);
        m.add(0, 1, 10);
        m.add(0, 1, 5);
        m.add(1, 0, 7);
        m.add(2, 3, 1);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 15);
        assert_eq!(m.total_bytes(), 23);
    }

    #[test]
    fn self_sends_and_zero_ignored() {
        let mut m = CommMatrix::new(2);
        m.add(0, 0, 100);
        m.add(0, 1, 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn per_rank_counts_both_directions() {
        let mut m = CommMatrix::new(3);
        m.add(0, 1, 10);
        m.add(2, 1, 4);
        let per = m.per_rank_bytes();
        assert_eq!(per, vec![10, 14, 4]);
        assert_eq!(m.cmax(), 14);
    }

    #[test]
    fn comm_imbalance_ignores_silent_ranks() {
        let mut m = CommMatrix::new(4);
        m.add(0, 1, 8);
        m.add(2, 1, 8);
        // rank 3 never communicates; imbalance over communicating ranks.
        let imb = m.comm_imbalance();
        assert!((imb - 2.0).abs() < 1e-12, "imb {imb}");
    }

    #[test]
    fn empty_matrix_is_balanced() {
        let m = CommMatrix::new(4);
        assert_eq!(m.comm_imbalance(), 1.0);
        assert_eq!(m.cmax(), 0);
    }
}
