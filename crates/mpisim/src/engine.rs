//! The virtual-process BSP engine.

use crate::dist::DistVec;
use crate::faults::{FaultPlan, RankDeath, RankFaults};
use crate::par;
use crate::stats::{CommMatrix, RunStats};
use optipart_machine::energy::{ActivityKind, Interval, COMM_CORE_FRACTION};
use optipart_machine::{EnergyReport, PerfModel, PowerTrace};
use optipart_trace::{
    chrome_trace_json, critical_path, model_attribution, profile, CriticalPath, ModelAttribution,
    ModelParams, Profile, Tracer,
};

/// How rank-local compute phases are charged to the virtual clocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TimeMode {
    /// Modeled: `reported bytes × tc` — deterministic, the default, and
    /// what every figure uses.
    #[default]
    Modeled,
    /// Measured: the wall-clock the closure actually took on the host.
    /// Non-deterministic; useful as a cross-check that the modeled curves
    /// are not artefacts of the model (the *relative* phase weights match).
    Measured,
}

/// A virtual distributed machine running `p` SPMD ranks.
///
/// See the crate docs for the programming and clock model. An engine is
/// configured once with a [`PerfModel`] (machine + application) and then
/// driven through compute phases and collectives; afterwards it reports
/// virtual time ([`Engine::makespan`]), traffic ([`Engine::stats`],
/// [`Engine::comm_matrix`]) and energy ([`Engine::energy_report`]).
///
/// ```
/// use optipart_machine::{AppModel, MachineModel, PerfModel};
/// use optipart_mpisim::{DistVec, Engine};
///
/// let perf = PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec());
/// let mut engine = Engine::new(4, perf);
/// let mut data = DistVec::from_global(&(0u64..100).collect::<Vec<_>>(), 4);
/// // A local compute phase: each rank reports its memory traffic.
/// engine.compute(&mut data, |_rank, buf| buf.len() as f64 * 8.0);
/// // A collective: sums per-rank contributions and advances all clocks.
/// let total = engine.allreduce_sum_u64(&[1, 2, 3, 4]);
/// assert_eq!(total, 10);
/// assert!(engine.makespan() > 0.0);
/// ```
pub struct Engine {
    pub(crate) p: usize,
    pub(crate) perf: PerfModel,
    pub(crate) time_mode: TimeMode,
    pub(crate) clocks: Vec<f64>,
    pub(crate) stats: RunStats,
    pub(crate) comm_matrix: Option<CommMatrix>,
    pub(crate) trace: Option<PowerTrace>,
    /// Incremental exact-energy accounting: dynamic Joules per node
    /// (idle × makespan is added at report time).
    pub(crate) node_dynamic_j: Vec<f64>,
    pub(crate) comm_j: f64,
    /// Injected faults: the plan plus its materialised per-rank factors.
    /// `None` means a clean machine (all factors 1, no failures).
    pub(crate) faults: Option<(FaultPlan, RankFaults)>,
    /// Conservation/monotonicity auditing (crate docs, "Fault injection and
    /// auditing"). On by default; the checks are cheap relative to the data
    /// movement they guard.
    pub(crate) audit: bool,
    /// Sequence number of the next data-moving collective — the event
    /// identity transient-failure draws are keyed on.
    pub(crate) collective_seq: u64,
    /// Sequence number of the next *global sync point* (every collective,
    /// barrier and checkpoint) — the timeline fail-stop kills are scheduled
    /// on.
    pub(crate) sync_seq: u64,
    /// Slot → original rank id. Starts as the identity; a fail-stop shrink
    /// removes the dead slot, so slot indices stay dense while trace
    /// tracks, fault factors and node assignment keep the original ids.
    pub(crate) tracks: Vec<usize>,
    /// Dead ranks: `(original id, frozen clock)`. Frozen clocks are capped
    /// at the detection sync time, so the makespan stays the alive maximum.
    pub(crate) retired: Vec<(usize, f64)>,
    /// Pending fail-stop kill events `(sync_seq, original rank)`, sorted.
    pub(crate) kills: Vec<(u64, usize)>,
    /// Death raised but not yet resolved by `Engine::shrink_after_death`.
    pub(crate) pending_death: Option<RankDeath>,
    /// Structured virtual-time recorder (`optipart-trace`). Phase counters
    /// are always live; span/sync/mark recording is opt-in via
    /// [`Engine::with_tracing`].
    pub(crate) tracer: Tracer,
    /// Pooled staging for the all-to-all family (see
    /// `collectives::CollectiveScratch`): dense accounting arrays and the
    /// sparse route list, reused across collectives so steady-state
    /// exchanges allocate nothing. All-zero between calls by invariant;
    /// survives [`Engine::reset`] untouched (zeroed is zeroed).
    pub(crate) coll_scratch: crate::collectives::CollectiveScratch,
}

impl Engine {
    /// A fresh machine with `p` virtual ranks.
    pub fn new(p: usize, perf: PerfModel) -> Self {
        assert!(p >= 1, "need at least one rank");
        let nodes = perf.machine.nodes_for(p);
        Engine {
            p,
            perf,
            time_mode: TimeMode::default(),
            clocks: vec![0.0; p],
            stats: RunStats::default(),
            comm_matrix: None,
            trace: None,
            node_dynamic_j: vec![0.0; nodes],
            comm_j: 0.0,
            faults: None,
            audit: true,
            collective_seq: 0,
            sync_seq: 0,
            tracks: (0..p).collect(),
            retired: Vec::new(),
            kills: Vec::new(),
            pending_death: None,
            tracer: Tracer::new(p),
            coll_scratch: Default::default(),
        }
    }

    /// Injects the given fault plan (materialised for this machine's `p`).
    /// Clock faults perturb clocks, energy and retry counters only — never
    /// data; fail-stop events additionally arm the kill schedule
    /// ([`FaultPlan::death_schedule`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        let ranks = plan.materialize(self.p);
        self.kills = plan.death_schedule(self.p);
        self.faults = Some((plan, ranks));
        self.annotate_faults();
        self
    }

    /// Enables structured span tracing: every compute segment, collective
    /// charge and synchronisation point is recorded on the virtual
    /// timeline, ready for [`Engine::trace_json`], [`Engine::critical_path`]
    /// and [`Engine::model_attribution`]. Near-zero overhead remains when
    /// not enabled (each record call is one branch).
    pub fn with_tracing(mut self) -> Self {
        self.tracer.enable_spans();
        self.annotate_faults();
        self
    }

    /// Additionally stamps spans with host wall-clock seconds. Wall time is
    /// determinism-exempt: enabling it makes the export differ between
    /// runs. Implies nothing about the virtual clocks, which stay exact.
    pub fn with_wall_time(mut self) -> Self {
        self.tracer.enable_wall_time();
        self
    }

    /// Drops t=0 marks onto straggling/jittered ranks so fault injection is
    /// visible in the exported timeline. Idempotent: marks carry fixed
    /// names, and this runs only when both faults and tracing are present
    /// and no fault marks exist yet.
    fn annotate_faults(&mut self) {
        if !self.tracer.spans_enabled() || !self.tracer.marks().is_empty() {
            return;
        }
        let Some((_, ranks)) = &self.faults else {
            return;
        };
        let stragglers: Vec<(usize, f64)> = ranks
            .straggler_ranks()
            .into_iter()
            .map(|r| (r, ranks.compute_factor[r]))
            .collect();
        let jittered: Vec<(usize, f64)> = ranks
            .tw_factor
            .iter()
            .enumerate()
            .filter(|(_, &f)| (f - 1.0).abs() > 1e-12)
            .map(|(r, &f)| (r, f))
            .collect();
        for (r, f) in stragglers {
            self.tracer.mark(r, 0.0, "fault.straggler", f);
        }
        for (r, f) in jittered {
            self.tracer.mark(r, 0.0, "fault.link_jitter", f);
        }
        for (seq, r) in self.kills.clone() {
            self.tracer.mark(r, 0.0, "fault.failstop", seq as f64);
        }
    }

    /// Enables or disables invariant auditing (on by default).
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// The active fault plan, if any.
    #[inline]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|(plan, _)| plan)
    }

    /// The materialised per-rank fault factors, if any.
    #[inline]
    pub fn rank_faults(&self) -> Option<&RankFaults> {
        self.faults.as_ref().map(|(_, ranks)| ranks)
    }

    /// `rank`'s effective wire slowness: nominal `tw` × the rank's fault
    /// factor (`rank` is a live slot; factors are keyed on original ids).
    #[inline]
    pub(crate) fn effective_tw(&self, rank: usize) -> f64 {
        let tw = self.perf.machine.tw;
        match &self.faults {
            Some((_, ranks)) => tw * ranks.tw_factor[self.tracks[rank]],
            None => tw,
        }
    }

    /// Whether live slots `src` and `dst` are placed on the same node
    /// (placement is keyed on original rank ids through `tracks`).
    #[inline]
    pub(crate) fn same_node(&self, src: usize, dst: usize) -> bool {
        let m = &self.perf.machine;
        m.node_of(self.tracks[src]) == m.node_of(self.tracks[dst])
    }

    /// Enables rank×rank communication-matrix recording (§5.5 metrics).
    pub fn record_comm_matrix(mut self) -> Self {
        self.comm_matrix = Some(CommMatrix::new(self.p));
        self
    }

    /// Selects how compute phases are charged (see [`TimeMode`]).
    pub fn with_time_mode(mut self, mode: TimeMode) -> Self {
        self.time_mode = mode;
        self
    }

    /// Enables full activity-trace recording for IPMI-style sampling.
    /// Memory grows with the number of phases × p; use for demonstration
    /// runs, not large sweeps (the exact accumulator is always on).
    pub fn record_trace(mut self) -> Self {
        self.trace = Some(PowerTrace::default());
        self
    }

    /// Number of virtual ranks.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// The performance model driving all cost accounting.
    #[inline]
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// Per-rank virtual clocks, seconds (live slots only after a shrink).
    #[inline]
    pub fn clocks(&self) -> &[f64] {
        &self.clocks
    }

    /// Original rank ids of the ranks still alive, in slot order. The
    /// identity permutation until a fail-stop shrink removes a slot.
    #[inline]
    pub fn alive_ranks(&self) -> &[usize] {
        &self.tracks
    }

    /// The rank count the engine was built with (fail-stop shrinks reduce
    /// [`Engine::p`] but trace tracks keep the original width).
    #[inline]
    pub fn initial_p(&self) -> usize {
        self.tracer.p()
    }

    /// Synchronisation points passed so far — every collective, barrier,
    /// checkpoint and restore counts one. This is the timeline
    /// [`FaultPlan::kill_rank`](crate::FaultPlan::kill_rank) schedules
    /// fail-stop deaths on, so callers can probe a clean run to aim a kill
    /// at a specific point of a later one.
    #[inline]
    pub fn sync_points(&self) -> u64 {
        self.sync_seq
    }

    /// Per-original-rank clocks over the full initial width: live slots map
    /// through `tracks`, retired ranks report their frozen clocks.
    pub(crate) fn track_clocks(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.tracer.p()];
        for &(r, t) in &self.retired {
            v[r] = t;
        }
        for (slot, &r) in self.tracks.iter().enumerate() {
            v[r] = self.clocks[slot];
        }
        v
    }

    /// Virtual wall-clock of the run so far: the slowest rank's clock.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Traffic statistics.
    #[inline]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The recorded communication matrix, if enabled.
    #[inline]
    pub fn comm_matrix(&self) -> Option<&CommMatrix> {
        self.comm_matrix.as_ref()
    }

    /// The recorded activity trace, if enabled.
    #[inline]
    pub fn trace(&self) -> Option<&PowerTrace> {
        self.trace.as_ref()
    }

    /// The structured virtual-time recorder (always present; span recording
    /// is gated on [`Engine::with_tracing`]).
    #[inline]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Virtual seconds attributed to the named [`Engine::phase`], 0 if the
    /// phase never ran. Always available — phase counters do not require
    /// [`Engine::with_tracing`].
    #[inline]
    pub fn phase_time(&self, name: &str) -> f64 {
        self.tracer.phase_time(name)
    }

    /// Network bytes attributed to the named [`Engine::phase`].
    #[inline]
    pub fn phase_bytes(&self, name: &str) -> u64 {
        self.tracer.phase_bytes(name)
    }

    /// Records a decision instant on the global trace track at the current
    /// makespan (no-op unless tracing is enabled).
    pub fn trace_decision(&mut self, name: &str, args: &[(&str, f64)]) {
        let t = self.makespan();
        self.tracer.decision(t, name, args);
    }

    /// Serialises the recorded trace as Chrome `trace_event` JSON
    /// (`chrome://tracing` / Perfetto).
    pub fn trace_json(&self) -> String {
        chrome_trace_json(&self.tracer)
    }

    /// Extracts the critical path bounding this run's makespan (requires
    /// [`Engine::with_tracing`] from the start of the run).
    pub fn critical_path(&self) -> CriticalPath {
        critical_path(&self.tracer, &self.track_clocks())
    }

    /// Builds the Eq. (3) model-attribution report for this run (requires
    /// [`Engine::with_tracing`]).
    pub fn model_attribution(&self) -> ModelAttribution {
        model_attribution(&self.tracer, ModelParams::from_perf(&self.perf, self.p))
    }

    /// Builds the aggregate per-phase/per-rank profile for this run.
    pub fn profile(&self) -> Profile {
        profile(&self.tracer, &self.track_clocks())
    }

    /// Resets clocks, stats, energy and matrices, keeping the configuration
    /// (including any fault plan — the collective and sync sequences restart
    /// at 0, so a reset engine replays the same fault schedule, including
    /// any fail-stop kills whose victims are still alive). A shrink is *not*
    /// undone: retired ranks stay retired, with their frozen clocks zeroed.
    pub fn reset(&mut self) {
        self.clocks.iter_mut().for_each(|c| *c = 0.0);
        self.collective_seq = 0;
        self.sync_seq = 0;
        self.pending_death = None;
        self.retired.iter_mut().for_each(|(_, t)| *t = 0.0);
        self.kills = match &self.faults {
            Some((plan, _)) => plan
                .death_schedule(self.tracer.p())
                .into_iter()
                .filter(|(_, r)| self.tracks.contains(r))
                .collect(),
            None => Vec::new(),
        };
        self.stats = RunStats::default();
        if let Some(m) = &mut self.comm_matrix {
            *m = CommMatrix::new(self.tracer.p());
        }
        if let Some(t) = &mut self.trace {
            *t = PowerTrace::default();
        }
        self.node_dynamic_j.iter_mut().for_each(|j| *j = 0.0);
        self.comm_j = 0.0;
        self.tracer.reset();
        self.annotate_faults();
    }

    /// Fires any due fail-stop kill at a sync point: caps the victim's
    /// clock at the survivors' sync time, charges every survivor the
    /// detection timeout, records `fault.death` / `fault.detect` on the
    /// trace, and unwinds with a [`RankDeath`] payload. Catch the unwind
    /// with [`crate::catch_rank_death`], then call
    /// [`Engine::shrink_after_death`] before touching the engine again.
    pub(crate) fn check_failstop(&mut self) {
        assert!(
            self.pending_death.is_none(),
            "rank death pending — call Engine::shrink_after_death before continuing"
        );
        if self.kills.is_empty() || self.kills[0].0 > self.sync_seq {
            return;
        }
        let (seq, rank) = self.kills.remove(0);
        assert!(self.p > 1, "fail-stop would kill the last surviving rank");
        let slot = self
            .tracks
            .iter()
            .position(|&r| r == rank)
            .expect("kill schedule names a live rank");
        let t_sync = self
            .clocks
            .iter()
            .enumerate()
            .filter(|&(s, _)| s != slot)
            .map(|(_, &c)| c)
            .fold(0.0, f64::max);
        // The victim stops at the sync it never reaches; capping at the
        // survivors' arrival time keeps the makespan the alive maximum even
        // when a straggling victim's clock ran ahead.
        let frozen = self.clocks[slot].min(t_sync);
        self.clocks[slot] = frozen;
        let timeout = self
            .faults
            .as_ref()
            .map_or(1e-3, |(plan, _)| plan.detect_timeout_s);
        self.tracer.mark(rank, frozen, "fault.death", seq as f64);
        self.tracer.begin_collective("fault.detect", t_sync, rank);
        self.stats.collectives += 1;
        self.stats.deaths += 1;
        for s in 0..self.p {
            if s != slot {
                self.charge_comm(s, t_sync, timeout, 0, 0);
            }
        }
        let death = RankDeath {
            rank,
            at_seq: seq,
            t_last: frozen,
            t_detect: t_sync + timeout,
        };
        self.pending_death = Some(death.clone());
        std::panic::panic_any(death);
    }

    /// Resolves a raised [`RankDeath`]: retires the dead rank's slot and
    /// continues as a `p − 1`-rank machine (clocks, fault factors, node
    /// placement and trace tracks all keep their original-rank identity).
    /// Returns the death record. Panics if no death is pending.
    pub fn shrink_after_death(&mut self) -> RankDeath {
        let death = self
            .pending_death
            .take()
            .expect("no rank death pending — nothing to shrink");
        let slot = self
            .tracks
            .iter()
            .position(|&r| r == death.rank)
            .expect("dead rank already removed");
        self.retired.push((death.rank, death.t_last));
        self.tracks.remove(slot);
        self.clocks.remove(slot);
        self.p -= 1;
        self.kills.retain(|&(_, r)| r != death.rank);
        // The unwind skipped `phase_end` for any phase open at the death;
        // drop them so recovery phases attribute cleanly.
        self.tracer.abort_open_phases();
        death
    }

    /// Runs a rank-local compute phase in parallel over all ranks.
    ///
    /// The closure receives `(rank, local_buffer)` and returns the number of
    /// bytes of memory traffic the phase performed on that rank; the rank's
    /// clock advances by `bytes × tc` (the `tc·N/p` terms of Eqs. 1–3).
    pub fn compute<T, F>(&mut self, dist: &mut DistVec<T>, f: F)
    where
        T: Send,
        F: Fn(usize, &mut Vec<T>) -> f64 + Sync,
    {
        let _ = self.compute_map(dist, |r, buf| (f(r, buf), ()));
    }

    /// Like [`Engine::compute`], additionally collecting a per-rank result.
    pub fn compute_map<T, R, F>(&mut self, dist: &mut DistVec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut Vec<T>) -> (f64, R) + Sync,
    {
        assert!(
            self.pending_death.is_none(),
            "rank death pending — call Engine::shrink_after_death before continuing"
        );
        let measured = self.time_mode == TimeMode::Measured;
        let results: Vec<(f64, R)> = par::par_map_mut(dist.parts_mut(), |r, buf| {
            if measured {
                let t0 = std::time::Instant::now();
                let (_, res) = f(r, buf);
                (t0.elapsed().as_secs_f64(), res)
            } else {
                f(r, buf)
            }
        });
        let tc = self.perf.machine.tc;
        let mut out = Vec::with_capacity(self.p);
        for (r, (cost, res)) in results.into_iter().enumerate() {
            debug_assert!(cost >= 0.0, "negative compute cost reported");
            let (secs, bytes) = if measured {
                (cost, 0.0)
            } else {
                (cost * tc, cost)
            };
            self.charge_compute(r, secs, bytes);
            out.push(res);
        }
        out
    }

    /// A compute phase over two zipped distributed vectors (e.g. mesh +
    /// unknown vector in the FEM matvec).
    pub fn compute_zip<A, B, R, F>(
        &mut self,
        a: &mut DistVec<A>,
        b: &mut DistVec<B>,
        f: F,
    ) -> Vec<R>
    where
        A: Send,
        B: Send,
        R: Send,
        F: Fn(usize, &mut Vec<A>, &mut Vec<B>) -> (f64, R) + Sync,
    {
        assert!(
            self.pending_death.is_none(),
            "rank death pending — call Engine::shrink_after_death before continuing"
        );
        assert_eq!(a.p(), self.p);
        assert_eq!(b.p(), self.p);
        let results: Vec<(f64, R)> =
            par::par_map_zip_mut(a.parts_mut(), b.parts_mut(), |r, ab, bb| f(r, ab, bb));
        let tc = self.perf.machine.tc;
        let mut out = Vec::with_capacity(self.p);
        for (r, (bytes, res)) in results.into_iter().enumerate() {
            self.charge_compute(r, bytes * tc, bytes);
            out.push(res);
        }
        out
    }

    /// Charges `secs` of pure computation to `rank` (clock + energy +
    /// optional traces; `bytes` is the reported memory traffic, recorded on
    /// the structured trace). A straggling rank's charge is scaled by its
    /// fault factor.
    pub(crate) fn charge_compute(&mut self, rank: usize, secs: f64, bytes: f64) {
        if secs <= 0.0 {
            return;
        }
        let track = self.tracks[rank];
        let secs = match &self.faults {
            Some((_, ranks)) => secs * ranks.compute_factor[track],
            None => secs,
        };
        if self.audit {
            assert!(
                secs.is_finite() && secs > 0.0,
                "audit: rank {rank} charged non-finite/negative compute time {secs}"
            );
        }
        let t0 = self.clocks[rank];
        let t1 = t0 + secs;
        self.clocks[rank] = t1;
        let machine = &self.perf.machine;
        let node = machine.node_of(track);
        self.node_dynamic_j[node] +=
            machine.power.dynamic_per_rank_w(machine.ranks_per_node) * secs;
        if let Some(trace) = &mut self.trace {
            trace.push(Interval {
                rank: track,
                t0,
                t1,
                kind: ActivityKind::Compute,
                bytes: 0,
                bytes_intra: 0,
            });
        }
        self.tracer.record_compute(track, t0, t1, bytes as u64);
    }

    /// Charges a communication interval `(t0, t0+secs)` carrying `bytes` to
    /// `rank`, of which `bytes_intra ≤ bytes` never left the rank's node
    /// (charged at the intra-node NIC rate when the machine is hierarchical).
    pub(crate) fn charge_comm(
        &mut self,
        rank: usize,
        t0: f64,
        secs: f64,
        bytes: u64,
        bytes_intra: u64,
    ) {
        debug_assert!(bytes_intra <= bytes, "intra bytes exceed total");
        let t1 = t0 + secs;
        if self.audit {
            assert!(
                secs.is_finite() && secs >= 0.0,
                "audit: rank {rank} charged non-finite/negative comm time {secs}"
            );
            assert!(
                t1 + 1e-15 >= self.clocks[rank],
                "audit: rank {rank} clock would run backwards ({} -> {t1})",
                self.clocks[rank]
            );
        }
        self.clocks[rank] = t1;
        let track = self.tracks[rank];
        let machine = &self.perf.machine;
        let node = machine.node_of(track);
        let dyn_w = machine.power.dynamic_per_rank_w(machine.ranks_per_node);
        let j = COMM_CORE_FRACTION * dyn_w * secs + machine.nic_j(bytes, bytes_intra);
        self.node_dynamic_j[node] += j;
        self.comm_j += j;
        if let Some(trace) = &mut self.trace {
            trace.push(Interval {
                rank: track,
                t0,
                t1,
                kind: ActivityKind::Communication,
                bytes,
                bytes_intra,
            });
        }
        self.tracer.record_comm(track, t0, t1, bytes, bytes_intra);
    }

    /// `ceil(log2 p)` with the convention `log2 1 = 1` (a lone rank still
    /// pays one latency to "synchronise").
    #[inline]
    pub(crate) fn log_p(&self) -> f64 {
        (self.p.max(2) as f64).log2().ceil()
    }

    /// Runs `f` attributing the makespan and traffic it generates to the
    /// named phase (the partition / all2all / splitter breakdowns of
    /// Figs. 5–6).
    pub fn phase<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        let t0 = self.makespan();
        let b0 = self.stats.bytes_total;
        self.tracer.phase_begin(name);
        let out = f(self);
        let t1 = self.makespan();
        self.tracer.phase_end(t0, t1, self.stats.bytes_total - b0);
        out
    }

    /// Exact per-node energy of the run so far (idle power × makespan plus
    /// accumulated dynamic and communication energy).
    pub fn energy_report(&self) -> EnergyReport {
        let machine = &self.perf.machine;
        let makespan = self.makespan();
        let per_node: Vec<f64> = self
            .node_dynamic_j
            .iter()
            .map(|dj| machine.power.idle_w * makespan + dj)
            .collect();
        let total = per_node.iter().sum();
        EnergyReport {
            per_node_j: per_node,
            total_j: total,
            comm_j: self.comm_j,
            makespan_s: makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_machine::{AppModel, MachineModel};

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
        )
    }

    #[test]
    fn compute_advances_clocks_independently() {
        let mut e = engine(4);
        let mut d = DistVec::from_parts(vec![vec![0u8; 10], vec![0; 20], vec![0; 30], vec![0; 40]]);
        e.compute(&mut d, |_r, buf| buf.len() as f64 * 1e6);
        let c = e.clocks().to_vec();
        assert!(c[0] < c[1] && c[1] < c[2] && c[2] < c[3]);
        assert_eq!(e.makespan(), c[3]);
    }

    #[test]
    fn compute_map_collects_per_rank_results() {
        let mut e = engine(3);
        let mut d = DistVec::from_parts(vec![vec![1u32, 2], vec![3], vec![]]);
        let sums = e.compute_map(&mut d, |_r, buf| (0.0, buf.iter().sum::<u32>()));
        assert_eq!(sums, vec![3, 3, 0]);
    }

    #[test]
    fn phase_attributes_makespan() {
        let mut e = engine(2);
        let mut d = DistVec::from_parts(vec![vec![0u8; 100], vec![0; 100]]);
        e.phase("work", |e| e.compute(&mut d, |_, b| b.len() as f64 * 1e6));
        assert!(e.phase_time("work") > 0.0);
        assert_eq!(e.phase_time("nothing"), 0.0);
    }

    #[test]
    fn energy_report_counts_all_nodes() {
        let mut e = engine(32); // titan: 16 ranks/node -> 2 nodes
        let mut d = DistVec::from_parts(vec![vec![0u8; 1000]; 32]);
        e.compute(&mut d, |_, b| b.len() as f64 * 1e9);
        let rep = e.energy_report();
        assert_eq!(rep.per_node_j.len(), 2);
        assert!(rep.total_j > 0.0);
        assert_eq!(rep.comm_j, 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut e = engine(2);
        let mut d = DistVec::from_parts(vec![vec![0u8; 10], vec![0; 10]]);
        e.compute(&mut d, |_, b| b.len() as f64 * 1e6);
        assert!(e.makespan() > 0.0);
        e.reset();
        assert_eq!(e.makespan(), 0.0);
        assert_eq!(e.stats().bytes_total, 0);
        assert_eq!(e.energy_report().total_j, 0.0);
    }

    #[test]
    fn compute_zip_pairs_rank_buffers() {
        let mut e = engine(3);
        let mut a = DistVec::from_parts(vec![vec![1u32, 2], vec![3], vec![4, 5, 6]]);
        let mut b = DistVec::from_parts(vec![vec![10u32, 20], vec![30], vec![40, 50, 60]]);
        let sums = e.compute_zip(&mut a, &mut b, |_r, av, bv| {
            let s: u32 = av.iter().zip(bv.iter()).map(|(x, y)| x + y).sum();
            (16.0, s)
        });
        assert_eq!(sums, vec![33, 33, 165]);
        assert!(e.makespan() > 0.0);
    }

    #[test]
    fn measured_mode_charges_wall_clock() {
        let mut e = engine(2).with_time_mode(TimeMode::Measured);
        let mut d = DistVec::from_parts(vec![vec![0u8; 10], vec![0u8; 10]]);
        e.compute(&mut d, |_r, buf| {
            // Busy-work so the measured time is non-trivial.
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            buf[0] = acc as u8;
            0.0 // reported bytes are ignored in Measured mode
        });
        assert!(e.makespan() > 0.0, "measured time must be positive");
    }

    #[test]
    fn trace_matches_incremental_energy() {
        let mut e = engine(4).record_trace();
        let mut d = DistVec::from_parts(vec![vec![0u8; 10], vec![0; 20], vec![0; 5], vec![0; 40]]);
        e.compute(&mut d, |_, b| b.len() as f64 * 1e7);
        let m = e.perf().machine.clone();
        let from_trace =
            e.trace()
                .unwrap()
                .exact_energy(&m.power, m.ranks_per_node, m.nodes_for(4));
        let incremental = e.energy_report();
        assert!((from_trace.total_j - incremental.total_j).abs() < 1e-9);
    }
}
