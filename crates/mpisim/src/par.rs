//! Deterministic fork–join parallelism over rank buffers.
//!
//! A registry-free replacement for the rayon idioms the engine used: maps
//! over slices are split into contiguous chunks, fanned out over workers,
//! and results are stitched back **in index order** — so the output (and
//! everything downstream: splitters, clocks, stats) is bit-identical for
//! every thread count. The thread budget honours `RAYON_NUM_THREADS` (the
//! conventional knob, kept for compatibility with existing scripts) and
//! falls back to the host's available parallelism.
//!
//! [`par_map_mut_n`] — the TreeSort hot path — dispatches through a
//! lazily-spawned **persistent worker pool** instead of spawning scoped OS
//! threads per call: workers park on a per-slot condvar between jobs, chunk
//! descriptors live on the caller's stack, and the result vector is the
//! only heap allocation (none at all when `R` is zero-sized). Chunk
//! boundaries are a pure function of `(len, threads)`, so the pool changes
//! *where* work runs, never what it produces.

use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Number of worker threads to use for a parallel phase.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `len` items into at most `k` contiguous chunk ranges covering
/// `0..len` in order.
fn chunk_ranges(len: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let k = k.clamp(1, len.max(1));
    (0..k)
        .map(|i| (i * len / k)..((i + 1) * len / k))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Upper bound on pooled workers, and on the chunk fan-out of one call.
const MAX_POOL: usize = 64;

/// Completion latch one dispatch waits on: counts outstanding chunks;
/// `panicked` latches any chunk panic for re-raising on the caller.
struct Latch {
    remaining: Mutex<usize>,
    cv: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            cv: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn done(&self) {
        let mut g = self.remaining.lock().unwrap();
        *g -= 1;
        if *g == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = self.remaining.lock().unwrap();
        while *g > 0 {
            g = self.cv.wait(g).unwrap();
        }
    }
}

/// A type-erased chunk of work: `run(data)` executes it. The pointee (a
/// chunk descriptor on the dispatcher's stack) outlives the job because
/// the dispatcher blocks on the latch before its frame unwinds.
struct Job {
    run: unsafe fn(*mut ()),
    data: *mut (),
    latch: *const Latch,
}

// SAFETY: the raw pointers reference dispatcher stack data that stays
// alive (and is not otherwise touched) until the latch opens.
unsafe impl Send for Job {}

/// One pooled worker's mailbox.
struct Slot {
    /// Claimed by a dispatcher (CAS false→true); released by the worker
    /// after the job's latch has been counted down.
    busy: AtomicBool,
    job: Mutex<Option<Job>>,
    cv: Condvar,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            busy: AtomicBool::new(false),
            job: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

static SLOTS: [Slot; MAX_POOL] = [const { Slot::new() }; MAX_POOL];
static SPAWNED: AtomicUsize = AtomicUsize::new(0);
static SPAWN_LOCK: Mutex<()> = Mutex::new(());

/// Ensures at least `want` pooled workers exist (capped at [`MAX_POOL`]).
/// Workers are spawned once per process, park on their slot's condvar
/// between jobs and never exit — the steady-state fan-out allocates
/// nothing.
fn ensure_spawned(want: usize) -> usize {
    let want = want.min(MAX_POOL);
    if SPAWNED.load(Ordering::Acquire) >= want {
        return want;
    }
    let _g = SPAWN_LOCK.lock().unwrap();
    let have = SPAWNED.load(Ordering::Acquire);
    for (i, slot) in SLOTS.iter().enumerate().take(want).skip(have) {
        std::thread::Builder::new()
            .name(format!("optipart-par-{i}"))
            .spawn(move || worker(slot))
            .expect("spawn pooled worker");
    }
    if want > have {
        SPAWNED.store(want, Ordering::Release);
    }
    want
}

fn worker(slot: &'static Slot) {
    loop {
        let job = {
            let mut g = slot.job.lock().unwrap();
            loop {
                if let Some(j) = g.take() {
                    break j;
                }
                g = slot.cv.wait(g).unwrap();
            }
        };
        // SAFETY: the dispatcher keeps the pointees alive until it has
        // observed this latch count-down.
        let latch = unsafe { &*job.latch };
        if catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.data) })).is_err() {
            latch.panicked.store(true, Ordering::SeqCst);
        }
        latch.done();
        slot.busy.store(false, Ordering::Release);
    }
}

/// Hands `job` to an idle pooled worker, or returns it when every worker
/// is busy (e.g. a nested fan-out) — the caller then runs the chunk inline
/// instead of risking a deadlock.
fn try_dispatch(job: Job, spawned: usize) -> Option<Job> {
    for slot in SLOTS[..spawned].iter() {
        if slot
            .busy
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            *slot.job.lock().unwrap() = Some(job);
            slot.cv.notify_one();
            return None;
        }
    }
    Some(job)
}

/// Parallel indexed map over a mutable slice; returns the per-item results
/// in index order regardless of the thread count.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    par_map_mut_n(num_threads(), items, f)
}

/// One chunk of a [`par_map_mut_n`] dispatch: `len` items starting at
/// global index `start`, with the results written straight into the shared
/// output buffer (disjoint per chunk, so no synchronisation is needed).
struct MapTask<T, R, F> {
    start: usize,
    items: *mut T,
    len: usize,
    out: *mut MaybeUninit<R>,
    f: *const F,
}

/// Executes one [`MapTask`].
///
/// # Safety
/// `data` must point to a live `MapTask<T, R, F>` whose items/out ranges
/// are not aliased by any other running chunk.
unsafe fn run_map_chunk<T, R, F>(data: *mut ())
where
    F: Fn(usize, &mut T) -> R,
{
    let t = unsafe { &*(data as *const MapTask<T, R, F>) };
    let items = unsafe { std::slice::from_raw_parts_mut(t.items, t.len) };
    let f = unsafe { &*t.f };
    for (i, item) in items.iter_mut().enumerate() {
        unsafe { t.out.add(i).write(MaybeUninit::new(f(t.start + i, item))) };
    }
}

/// [`par_map_mut`] with an explicit thread budget instead of the
/// `RAYON_NUM_THREADS` default — lets callers (and thread-invariance tests)
/// pin the fan-out without mutating process-global environment.
///
/// Runs on the persistent worker pool: chunk descriptors live on this
/// stack frame, chunk 0 (and any chunk no idle worker picks up) runs on
/// the caller, and the only heap allocation is the result vector — zero
/// allocations when `R` is zero-sized, which is what makes the parallel
/// TreeSort fan-out allocation-free in steady state.
pub fn par_map_mut_n<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let len = items.len();
    let k = threads.clamp(1, MAX_POOL).min(len.max(1));
    if k <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(len);
    // SAFETY: `MaybeUninit` needs no initialisation; every slot is written
    // exactly once by the chunk owning it before the latch opens.
    unsafe { out.set_len(len) };

    let spawned = ensure_spawned(k - 1); // chunk 0 runs on the caller
    let latch = Latch::new(k - 1);
    let mut tasks: [MaybeUninit<MapTask<T, R, F>>; MAX_POOL] =
        [const { MaybeUninit::uninit() }; MAX_POOL];
    // All descriptor writes go through one raw base pointer so handing a
    // descriptor to a worker is never invalidated by a later write.
    let tasks_base = tasks.as_mut_ptr() as *mut MapTask<T, R, F>;
    let base_items = items.as_mut_ptr();
    let base_out = out.as_mut_ptr();
    // Same chunk boundaries as `chunk_ranges(len, k)`: chunk `ci` covers
    // `ci·len/k .. (ci+1)·len/k` (all non-empty since k ≤ len).
    let bound = |ci: usize| ci * len / k;
    for ci in 1..k {
        let (start, end) = (bound(ci), bound(ci + 1));
        // SAFETY: in-bounds offsets; chunk ranges (and descriptors) are
        // disjoint per `ci`.
        let task = unsafe {
            tasks_base.add(ci).write(MapTask {
                start,
                items: base_items.add(start),
                len: end - start,
                out: base_out.add(start),
                f: &f,
            });
            tasks_base.add(ci)
        };
        let job = Job {
            run: run_map_chunk::<T, R, F>,
            data: task as *mut (),
            latch: &latch,
        };
        if let Some(job) = try_dispatch(job, spawned) {
            // Every worker busy: run inline, with the same panic fencing.
            if catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.data) })).is_err() {
                latch.panicked.store(true, Ordering::SeqCst);
            }
            latch.done();
        }
    }
    {
        let task = MapTask::<T, R, F> {
            start: 0,
            items: base_items,
            len: bound(1),
            out: base_out,
            f: &f,
        };
        let data = &task as *const MapTask<T, R, F> as *mut ();
        if catch_unwind(AssertUnwindSafe(|| unsafe {
            run_map_chunk::<T, R, F>(data)
        }))
        .is_err()
        {
            latch.panicked.store(true, Ordering::SeqCst);
        }
    }
    latch.wait();
    if latch.panicked.load(Ordering::SeqCst) {
        // Initialised results are leaked, not dropped — acceptable on the
        // (fatal in practice) panic path.
        std::mem::forget(out);
        panic!("par worker panicked");
    }
    // SAFETY: all `len` slots were initialised; `MaybeUninit<R>` and `R`
    // share layout.
    let mut out = std::mem::ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut R, len, out.capacity()) }
}

/// Parallel indexed map over two zipped mutable slices (equal length).
pub fn par_map_zip_mut<A, B, R, F>(a: &mut [A], b: &mut [B], f: F) -> Vec<R>
where
    A: Send,
    B: Send,
    R: Send,
    F: Fn(usize, &mut A, &mut B) -> R + Sync,
{
    assert_eq!(a.len(), b.len(), "zipped slices must match");
    let len = a.len();
    let ranges = chunk_ranges(len, num_threads());
    if ranges.len() <= 1 {
        return a
            .iter_mut()
            .zip(b.iter_mut())
            .enumerate()
            .map(|(i, (x, y))| f(i, x, y))
            .collect();
    }
    let mut chunks: Vec<(usize, &mut [A], &mut [B])> = Vec::with_capacity(ranges.len());
    let (mut rest_a, mut rest_b) = (a, b);
    let mut offset = 0usize;
    for r in &ranges {
        let (ha, ta) = rest_a.split_at_mut(r.end - offset);
        let (hb, tb) = rest_b.split_at_mut(r.end - offset);
        chunks.push((r.start, ha, hb));
        rest_a = ta;
        rest_b = tb;
        offset = r.end;
    }
    let f = &f;
    let mut parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(start, ca, cb)| {
                scope.spawn(move || {
                    ca.iter_mut()
                        .zip(cb.iter_mut())
                        .enumerate()
                        .map(|(i, (x, y))| f(start + i, x, y))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for part in parts.iter_mut() {
        out.append(part);
    }
    out
}

/// Parallel map over the index range `0..n` — the `into_par_iter()` pattern
/// for building one value per rank from shared read-only state.
pub fn par_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let ranges = chunk_ranges(n, num_threads());
    if ranges.len() <= 1 {
        return (0..n).map(&f).collect();
    }
    let f = &f;
    let mut parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || r.map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for part in parts.iter_mut() {
        out.append(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_mut_preserves_order_and_mutates() {
        let mut v: Vec<u64> = (0..1000).collect();
        let out = par_map_mut(&mut v, |i, x| {
            *x += 1;
            (i as u64) * 2
        });
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<u64>>());
        assert_eq!(v[0], 1);
        assert_eq!(v[999], 1000);
    }

    #[test]
    fn zip_map_pairs_elements() {
        let mut a: Vec<u32> = (0..97).collect();
        let mut b: Vec<u32> = (0..97).map(|x| x * 10).collect();
        let out = par_map_zip_mut(&mut a, &mut b, |i, x, y| *x + *y + i as u32);
        assert_eq!(out, (0..97).map(|i| i + i * 10 + i).collect::<Vec<u32>>());
    }

    #[test]
    fn map_indices_matches_sequential() {
        let out = par_map_indices(123, |i| i * i);
        assert_eq!(out, (0..123).map(|i| i * i).collect::<Vec<usize>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let mut v: Vec<u8> = vec![];
        assert!(par_map_mut(&mut v, |_, _| 0u8).is_empty());
        let mut one = vec![7u8];
        assert_eq!(par_map_mut(&mut one, |i, x| (i, *x)), vec![(0, 7)]);
        assert!(par_map_indices(0, |i| i).is_empty());
    }

    #[test]
    fn explicit_thread_budget_is_invariant() {
        let base: Vec<u64> = (0..513).collect();
        let mut expect = base.clone();
        let seq = par_map_mut_n(1, &mut expect, |i, x| {
            *x = x.wrapping_mul(31).wrapping_add(i as u64);
            *x ^ 0x9E37
        });
        for threads in [2usize, 3, 4, 16] {
            let mut v = base.clone();
            let out = par_map_mut_n(threads, &mut v, |i, x| {
                *x = x.wrapping_mul(31).wrapping_add(i as u64);
                *x ^ 0x9E37
            });
            assert_eq!(out, seq, "{threads} threads: results diverge");
            assert_eq!(v, expect, "{threads} threads: mutations diverge");
        }
    }

    #[test]
    fn chunking_covers_range_exactly() {
        for len in [0usize, 1, 2, 7, 100] {
            for k in [1usize, 2, 3, 8, 200] {
                let rs = chunk_ranges(len, k);
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for r in &rs {
                    assert_eq!(r.start, prev_end);
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }
}
