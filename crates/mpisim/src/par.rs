//! Deterministic fork–join parallelism over rank buffers.
//!
//! A registry-free replacement for the rayon idioms the engine used: maps
//! over slices are split into contiguous chunks, one scoped OS thread per
//! chunk, and results are stitched back **in index order** — so the output
//! (and everything downstream: splitters, clocks, stats) is bit-identical
//! for every thread count. The thread budget honours `RAYON_NUM_THREADS`
//! (the conventional knob, kept for compatibility with existing scripts)
//! and falls back to the host's available parallelism.

/// Number of worker threads to use for a parallel phase.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `len` items into at most `k` contiguous chunk ranges covering
/// `0..len` in order.
fn chunk_ranges(len: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let k = k.clamp(1, len.max(1));
    (0..k)
        .map(|i| (i * len / k)..((i + 1) * len / k))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Parallel indexed map over a mutable slice; returns the per-item results
/// in index order regardless of the thread count.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    par_map_mut_n(num_threads(), items, f)
}

/// [`par_map_mut`] with an explicit thread budget instead of the
/// `RAYON_NUM_THREADS` default — lets callers (and thread-invariance tests)
/// pin the fan-out without mutating process-global environment.
pub fn par_map_mut_n<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let len = items.len();
    let ranges = chunk_ranges(len, threads.max(1));
    if ranges.len() <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Carve the slice into disjoint chunks to move into scoped threads.
    let mut chunks: Vec<(usize, &mut [T])> = Vec::with_capacity(ranges.len());
    let mut rest = items;
    let mut offset = 0usize;
    for r in &ranges {
        let (head, tail) = rest.split_at_mut(r.end - offset);
        chunks.push((r.start, head));
        rest = tail;
        offset = r.end;
    }
    let f = &f;
    let mut parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(start, chunk)| {
                scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(i, t)| f(start + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for part in parts.iter_mut() {
        out.append(part);
    }
    out
}

/// Parallel indexed map over two zipped mutable slices (equal length).
pub fn par_map_zip_mut<A, B, R, F>(a: &mut [A], b: &mut [B], f: F) -> Vec<R>
where
    A: Send,
    B: Send,
    R: Send,
    F: Fn(usize, &mut A, &mut B) -> R + Sync,
{
    assert_eq!(a.len(), b.len(), "zipped slices must match");
    let len = a.len();
    let ranges = chunk_ranges(len, num_threads());
    if ranges.len() <= 1 {
        return a
            .iter_mut()
            .zip(b.iter_mut())
            .enumerate()
            .map(|(i, (x, y))| f(i, x, y))
            .collect();
    }
    let mut chunks: Vec<(usize, &mut [A], &mut [B])> = Vec::with_capacity(ranges.len());
    let (mut rest_a, mut rest_b) = (a, b);
    let mut offset = 0usize;
    for r in &ranges {
        let (ha, ta) = rest_a.split_at_mut(r.end - offset);
        let (hb, tb) = rest_b.split_at_mut(r.end - offset);
        chunks.push((r.start, ha, hb));
        rest_a = ta;
        rest_b = tb;
        offset = r.end;
    }
    let f = &f;
    let mut parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(start, ca, cb)| {
                scope.spawn(move || {
                    ca.iter_mut()
                        .zip(cb.iter_mut())
                        .enumerate()
                        .map(|(i, (x, y))| f(start + i, x, y))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for part in parts.iter_mut() {
        out.append(part);
    }
    out
}

/// Parallel map over the index range `0..n` — the `into_par_iter()` pattern
/// for building one value per rank from shared read-only state.
pub fn par_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let ranges = chunk_ranges(n, num_threads());
    if ranges.len() <= 1 {
        return (0..n).map(&f).collect();
    }
    let f = &f;
    let mut parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || r.map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for part in parts.iter_mut() {
        out.append(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_mut_preserves_order_and_mutates() {
        let mut v: Vec<u64> = (0..1000).collect();
        let out = par_map_mut(&mut v, |i, x| {
            *x += 1;
            (i as u64) * 2
        });
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<u64>>());
        assert_eq!(v[0], 1);
        assert_eq!(v[999], 1000);
    }

    #[test]
    fn zip_map_pairs_elements() {
        let mut a: Vec<u32> = (0..97).collect();
        let mut b: Vec<u32> = (0..97).map(|x| x * 10).collect();
        let out = par_map_zip_mut(&mut a, &mut b, |i, x, y| *x + *y + i as u32);
        assert_eq!(out, (0..97).map(|i| i + i * 10 + i).collect::<Vec<u32>>());
    }

    #[test]
    fn map_indices_matches_sequential() {
        let out = par_map_indices(123, |i| i * i);
        assert_eq!(out, (0..123).map(|i| i * i).collect::<Vec<usize>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let mut v: Vec<u8> = vec![];
        assert!(par_map_mut(&mut v, |_, _| 0u8).is_empty());
        let mut one = vec![7u8];
        assert_eq!(par_map_mut(&mut one, |i, x| (i, *x)), vec![(0, 7)]);
        assert!(par_map_indices(0, |i| i).is_empty());
    }

    #[test]
    fn explicit_thread_budget_is_invariant() {
        let base: Vec<u64> = (0..513).collect();
        let mut expect = base.clone();
        let seq = par_map_mut_n(1, &mut expect, |i, x| {
            *x = x.wrapping_mul(31).wrapping_add(i as u64);
            *x ^ 0x9E37
        });
        for threads in [2usize, 3, 4, 16] {
            let mut v = base.clone();
            let out = par_map_mut_n(threads, &mut v, |i, x| {
                *x = x.wrapping_mul(31).wrapping_add(i as u64);
                *x ^ 0x9E37
            });
            assert_eq!(out, seq, "{threads} threads: results diverge");
            assert_eq!(v, expect, "{threads} threads: mutations diverge");
        }
    }

    #[test]
    fn chunking_covers_range_exactly() {
        for len in [0usize, 1, 2, 7, 100] {
            for k in [1usize, 2, 3, 8, 200] {
                let rs = chunk_ranges(len, k);
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for r in &rs {
                    assert_eq!(r.start, prev_end);
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }
}
