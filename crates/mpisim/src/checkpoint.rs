//! In-memory partner checkpointing on the virtual clock.
//!
//! Diskless buddy checkpointing (Plank-style): at a save, every rank
//! serialises its local state and mirrors it to its ring successor while
//! receiving its predecessor's copy, so any *single* rank's state survives
//! that rank's death on its partner. The engine charges the save as one
//! synchronisation point — `tc` to serialise plus `ts + tw × bytes` to
//! mirror — and a restore as re-fetching the dead ranks' lost parts from
//! their partners, spread over the survivors.
//!
//! [`CheckpointStore`] owns the latest snapshot and the interval policy
//! ([`CheckpointPolicy`]): save every AMR step (the default), every N-th
//! step, or at the Young/Daly optimum `sqrt(2 · C · MTBF)` computed from the
//! measured checkpoint cost. State is anything implementing [`Checkpoint`] —
//! [`DistVec`] payloads compose via tuples, so "octant buffer + solver
//! vector" snapshots need no custom impl.

use crate::dist::DistVec;
use crate::engine::Engine;

/// Application state that can be snapshotted for fail-stop recovery.
///
/// Implementations report the per-rank byte footprint (what partner
/// mirroring moves over the wire) and produce a deep copy. Tuples of
/// checkpointable states are checkpointable, with footprints summed
/// element-wise.
pub trait Checkpoint {
    /// Bytes of state held by each live rank slot (length = the engine's
    /// current `p`).
    fn bytes_per_rank(&self) -> Vec<u64>;

    /// Deep copy of the state, stored on the partner.
    fn snapshot(&self) -> Self;
}

/// Rank-replicated state: every live rank holds an identical copy (e.g. a
/// partitioner's warm-start cache), so a save mirrors the declared byte
/// footprint from *each* rank and any survivor can reseed the value after a
/// shrink. The footprint is captured at construction; refresh it by
/// rebuilding the wrapper when the value's size changes materially.
#[derive(Clone, Debug)]
pub struct Replicated<T: Clone> {
    /// The replicated value.
    pub value: T,
    footprint: Vec<u64>,
}

impl<T: Clone> Replicated<T> {
    /// Wraps `value`, declaring `bytes` of state on each of `p` ranks.
    pub fn new(value: T, bytes: u64, p: usize) -> Self {
        Replicated {
            value,
            footprint: vec![bytes; p],
        }
    }
}

impl<T: Clone> Checkpoint for Replicated<T> {
    fn bytes_per_rank(&self) -> Vec<u64> {
        self.footprint.clone()
    }

    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl<T: Clone> Checkpoint for DistVec<T> {
    fn bytes_per_rank(&self) -> Vec<u64> {
        let elem = std::mem::size_of::<T>() as u64;
        self.counts().iter().map(|&n| n as u64 * elem).collect()
    }

    fn snapshot(&self) -> Self {
        self.clone()
    }
}

impl<A: Checkpoint, B: Checkpoint> Checkpoint for (A, B) {
    fn bytes_per_rank(&self) -> Vec<u64> {
        let a = self.0.bytes_per_rank();
        let b = self.1.bytes_per_rank();
        assert_eq!(a.len(), b.len(), "tuple parts span different rank counts");
        a.iter().zip(&b).map(|(x, y)| x + y).collect()
    }

    fn snapshot(&self) -> Self {
        (self.0.snapshot(), self.1.snapshot())
    }
}

impl<A: Checkpoint, B: Checkpoint, C: Checkpoint> Checkpoint for (A, B, C) {
    fn bytes_per_rank(&self) -> Vec<u64> {
        let a = self.0.bytes_per_rank();
        let b = self.1.bytes_per_rank();
        let c = self.2.bytes_per_rank();
        assert!(
            a.len() == b.len() && b.len() == c.len(),
            "tuple parts span different rank counts"
        );
        a.iter()
            .zip(&b)
            .zip(&c)
            .map(|((x, y), z)| x + y + z)
            .collect()
    }

    fn snapshot(&self) -> Self {
        (self.0.snapshot(), self.1.snapshot(), self.2.snapshot())
    }
}

/// When [`CheckpointStore::due`] says yes.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum CheckpointPolicy {
    /// Save at every opportunity (every AMR step) — the default.
    #[default]
    EveryStep,
    /// Save at every `n`-th opportunity (the first one included).
    EveryN(u64),
    /// Save when the virtual time since the last save reaches the
    /// Young/Daly optimum `sqrt(2 · C · mtbf_s)`, with `C` the measured
    /// cost of the previous save (always due until a first save exists).
    YoungDaly {
        /// Mean time between failures assumed for the interval, virtual
        /// seconds.
        mtbf_s: f64,
    },
    /// Never save. A fail-stop death without a snapshot is unrecoverable.
    Never,
}

/// One saved snapshot: the state plus where it lived.
#[derive(Clone, Debug)]
pub struct Snapshot<S> {
    /// Application-defined progress label (e.g. global iteration index) —
    /// recovery resumes from here.
    pub label: u64,
    /// The deep-copied application state.
    pub state: S,
    /// Per-rank byte footprint at save time, aligned with `tracks`.
    pub bytes: Vec<u64>,
    /// Original rank ids alive at save time, in slot order.
    pub tracks: Vec<usize>,
}

/// Aggregate checkpoint/restore accounting of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CheckpointStats {
    /// Snapshots saved.
    pub saves: u64,
    /// Restores performed.
    pub restores: u64,
    /// Virtual seconds of makespan added by saves.
    pub checkpoint_s: f64,
    /// Virtual seconds of makespan added by restores.
    pub restore_s: f64,
}

/// Owns the latest partner snapshot and decides when the next one is due.
#[derive(Clone, Debug)]
pub struct CheckpointStore<S> {
    policy: CheckpointPolicy,
    latest: Option<Snapshot<S>>,
    stats: CheckpointStats,
    /// Opportunities seen so far (the `EveryN` counter).
    ticks: u64,
    /// Measured cost of the most recent save, seconds.
    last_cost_s: f64,
    /// Virtual time of the most recent save (or restore).
    last_save_t: f64,
}

impl<S: Checkpoint> CheckpointStore<S> {
    /// A store with the given interval policy and no snapshot yet.
    pub fn new(policy: CheckpointPolicy) -> Self {
        if let CheckpointPolicy::EveryN(n) = policy {
            assert!(n >= 1, "EveryN(0) would never checkpoint; use Never");
        }
        CheckpointStore {
            policy,
            latest: None,
            stats: CheckpointStats::default(),
            ticks: 0,
            last_cost_s: 0.0,
            last_save_t: 0.0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy
    }

    /// Accumulated accounting.
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }

    /// The latest snapshot, if any.
    pub fn latest(&self) -> Option<&Snapshot<S>> {
        self.latest.as_ref()
    }

    /// Should a save happen at this opportunity? Advances the policy's
    /// internal counter — call exactly once per opportunity (per AMR step).
    pub fn due(&mut self, e: &Engine) -> bool {
        let tick = self.ticks;
        self.ticks += 1;
        match self.policy {
            CheckpointPolicy::Never => false,
            CheckpointPolicy::EveryStep => true,
            CheckpointPolicy::EveryN(n) => tick.is_multiple_of(n),
            CheckpointPolicy::YoungDaly { mtbf_s } => {
                if self.latest.is_none() {
                    return true;
                }
                let interval = (2.0 * self.last_cost_s.max(f64::MIN_POSITIVE) * mtbf_s).sqrt();
                e.makespan() - self.last_save_t >= interval
            }
        }
    }

    /// Saves a snapshot of `state` under `label`, charging the partner
    /// mirror to the clocks *before* storing — a rank that dies at the
    /// checkpoint sync point leaves the previous snapshot intact.
    pub fn save(&mut self, e: &mut Engine, label: u64, state: &S) {
        let bytes = state.bytes_per_rank();
        let cost = e.charge_checkpoint(&bytes);
        self.stats.saves += 1;
        self.stats.checkpoint_s += cost;
        self.last_cost_s = cost;
        self.last_save_t = e.makespan();
        self.latest = Some(Snapshot {
            label,
            state: state.snapshot(),
            bytes,
            tracks: e.alive_ranks().to_vec(),
        });
    }

    /// Restores the latest snapshot after a shrink, charging survivors the
    /// re-fetch of the dead ranks' lost parts. Returns the snapshot;
    /// panics when no snapshot exists (policy [`CheckpointPolicy::Never`]
    /// or a death before the first save).
    pub fn restore(&mut self, e: &mut Engine) -> &Snapshot<S> {
        let snap = self
            .latest
            .as_ref()
            .expect("no checkpoint to restore — a rank died before the first save");
        let alive = e.alive_ranks();
        let mut local = vec![0u64; e.p()];
        let mut lost = 0u64;
        for (i, &r) in snap.tracks.iter().enumerate() {
            match alive.iter().position(|&a| a == r) {
                Some(slot) => local[slot] = snap.bytes[i],
                None => lost += snap.bytes[i],
            }
        }
        let cost = e.charge_restore(&local, lost);
        self.stats.restores += 1;
        self.stats.restore_s += cost;
        self.last_save_t = e.makespan();
        self.latest.as_ref().expect("stored above")
    }
}

impl Engine {
    /// Charges one partner-checkpoint save as a synchronisation point:
    /// every rank serialises its `bytes[r]` of state (`tc`), then mirrors
    /// them to its ring successor while receiving its predecessor's copy
    /// (`ts + tw_eff × (sent + received)`). Returns the makespan delta.
    pub fn charge_checkpoint(&mut self, bytes: &[u64]) -> f64 {
        assert_eq!(bytes.len(), self.p, "one byte count per live rank");
        let t0 = self.sync_start("checkpoint");
        let ts = self.perf.machine.ts;
        let tc = self.perf.machine.tc;
        let total: u64 = bytes.iter().sum();
        self.stats.collectives += 1;
        self.stats.checkpoints += 1;
        self.stats.checkpoint_bytes += total;
        self.stats.bytes_total += total;
        self.stats.msgs_total += self.p as u64;
        for r in 0..self.p {
            let succ = (r + 1) % self.p;
            let pred = (r + self.p - 1) % self.p;
            let sent = bytes[r];
            let recv = bytes[pred];
            let mut intra = 0;
            if self.same_node(r, succ) {
                intra += sent;
                self.stats.bytes_intra += sent;
            }
            if self.same_node(r, pred) {
                intra += recv;
            }
            let cost = tc * sent as f64 + ts + self.effective_tw(r) * (sent + recv) as f64;
            self.charge_comm(r, t0, cost, sent + recv, intra);
        }
        self.makespan() - t0
    }

    /// Charges restoring from partner copies after a shrink: each survivor
    /// reloads its own saved part (`tc`) and the dead ranks' `lost_bytes`
    /// are re-fetched from their partners, spread evenly over survivors
    /// (`ts + tw_eff × share`). Returns the makespan delta.
    pub fn charge_restore(&mut self, local_bytes: &[u64], lost_bytes: u64) -> f64 {
        assert_eq!(local_bytes.len(), self.p, "one byte count per live rank");
        let t0 = self.sync_start("restore");
        let ts = self.perf.machine.ts;
        let tc = self.perf.machine.tc;
        self.stats.collectives += 1;
        self.stats.bytes_total += lost_bytes;
        self.stats.msgs_total += self.p as u64;
        let share = lost_bytes as f64 / self.p as f64;
        for (r, &local) in local_bytes.iter().enumerate() {
            // Re-fetched shares come from arbitrary partners; model as
            // inter-node traffic.
            let cost = tc * local as f64 + ts + self.effective_tw(r) * share;
            self.charge_comm(r, t0, cost, share as u64, 0);
        }
        self.makespan() - t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_machine::{AppModel, MachineModel, PerfModel};

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
        )
    }

    #[test]
    fn distvec_footprint_and_tuple_compose() {
        let a = DistVec::from_parts(vec![vec![0u64; 3], vec![0u64; 5]]);
        let b = DistVec::from_parts(vec![vec![0u8; 10], vec![0u8; 2]]);
        assert_eq!(a.bytes_per_rank(), vec![24, 40]);
        let pair = (a, b);
        assert_eq!(pair.bytes_per_rank(), vec![34, 42]);
        let snap = pair.snapshot();
        assert_eq!(snap.0, pair.0);
        assert_eq!(snap.1, pair.1);
    }

    #[test]
    fn replicated_footprint_composes_in_tuples() {
        let a = DistVec::from_parts(vec![vec![0u64; 3], vec![0u64; 5]]);
        let b = DistVec::from_parts(vec![vec![0u8; 10], vec![0u8; 2]]);
        let r = Replicated::new(vec![1u32, 2, 3], 100, 2);
        assert_eq!(r.bytes_per_rank(), vec![100, 100]);
        let triple = (a, b, r);
        assert_eq!(triple.bytes_per_rank(), vec![134, 142]);
        let snap = triple.snapshot();
        assert_eq!(snap.2.value, vec![1, 2, 3]);
    }

    #[test]
    fn save_charges_clock_and_stores() {
        let mut e = engine(4);
        let data = DistVec::from_parts(vec![vec![1.0f64; 100]; 4]);
        let mut store = CheckpointStore::new(CheckpointPolicy::EveryStep);
        assert!(store.due(&e));
        store.save(&mut e, 7, &data);
        assert!(e.makespan() > 0.0, "checkpoint must cost virtual time");
        assert_eq!(e.stats().checkpoints, 1);
        assert_eq!(e.stats().checkpoint_bytes, 4 * 100 * 8);
        let snap = store.latest().unwrap();
        assert_eq!(snap.label, 7);
        assert_eq!(snap.tracks, vec![0, 1, 2, 3]);
        assert_eq!(snap.state.concat(), data.concat());
        assert!(store.stats().checkpoint_s > 0.0);
    }

    #[test]
    fn every_n_policy_counts_opportunities() {
        let e = engine(2);
        let mut store = CheckpointStore::<DistVec<u8>>::new(CheckpointPolicy::EveryN(3));
        let pattern: Vec<bool> = (0..7).map(|_| store.due(&e)).collect();
        assert_eq!(pattern, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn never_policy_is_never_due() {
        let e = engine(2);
        let mut store = CheckpointStore::<DistVec<u8>>::new(CheckpointPolicy::Never);
        assert!((0..10).all(|_| !store.due(&e)));
    }

    #[test]
    fn young_daly_waits_out_the_interval() {
        let mut e = engine(2);
        let data = DistVec::from_parts(vec![vec![0u64; 1000]; 2]);
        let mut store = CheckpointStore::new(CheckpointPolicy::YoungDaly { mtbf_s: 1e6 });
        // Bootstrap: no snapshot yet, always due.
        assert!(store.due(&e));
        store.save(&mut e, 0, &data);
        // Immediately after a save the Young/Daly interval has not elapsed.
        assert!(!store.due(&e));
        // Advance virtual time far past the interval via compute charges.
        let mut burn = DistVec::from_parts(vec![vec![0u8; 8]; 2]);
        for _ in 0..4 {
            e.compute(&mut burn, |_, _| 1e15);
        }
        assert!(store.due(&e), "long quiet period must trigger a save");
    }

    #[test]
    fn restore_charges_lost_share() {
        let mut e = engine(4).with_faults(crate::FaultPlan::new(1).kill_rank(2, 1));
        let data = DistVec::from_parts(vec![vec![9.0f64; 50]; 4]);
        let mut store = CheckpointStore::new(CheckpointPolicy::EveryStep);
        store.save(&mut e, 3, &data);
        // The kill fires at the next sync point (the barrier).
        let death = crate::catch_rank_death(|| e.barrier()).unwrap_err();
        assert_eq!(death.rank, 2);
        e.shrink_after_death();
        let t_before = e.makespan();
        let snap_label = store.restore(&mut e).label;
        assert_eq!(snap_label, 3);
        assert!(e.makespan() > t_before, "restore must cost virtual time");
        assert_eq!(store.stats().restores, 1);
        assert!(store.stats().restore_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "no checkpoint to restore")]
    fn restore_without_snapshot_panics() {
        let mut e = engine(2);
        let mut store = CheckpointStore::<DistVec<u8>>::new(CheckpointPolicy::Never);
        let _ = store.restore(&mut e);
    }
}
