//! Property-based tests for the BSP engine's collectives.
//!
//! Strategies and engine builders come from `optipart-testkit`; all types
//! are the testkit re-exports (`optipart_testkit::mpisim::…`), never
//! `crate::…` paths — the unit-test target is a separate compilation of
//! this crate, so mixing the two would break type identity.

use optipart_testkit::gen::engine_titan as engine;
use optipart_testkit::mpisim::dist::DistVec;
use optipart_testkit::strategies::alltoall as algo;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// alltoallv is an exact transpose: recv[dst][src] == send[src][dst].
    #[test]
    fn alltoallv_is_transpose(
        p in 1usize..10,
        seed in 0u64..1000,
        a in algo(),
    ) {
        let mut e = engine(p);
        // Deterministic pseudo-random payloads.
        let send: Vec<Vec<Vec<u64>>> = (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| {
                        let len = ((seed + (s * p + d) as u64 * 7) % 5) as usize;
                        (0..len).map(|i| (s * 1000 + d * 10 + i) as u64).collect()
                    })
                    .collect()
            })
            .collect();
        let expect = send.clone();
        let recv = e.alltoallv(send, a);
        for dst in 0..p {
            for src in 0..p {
                prop_assert_eq!(&recv[dst][src], &expect[src][dst]);
            }
        }
    }

    /// Sparse and dense alltoallv move identical data and account identical
    /// bytes.
    #[test]
    fn sparse_matches_dense(p in 1usize..10, seed in 0u64..1000, a in algo()) {
        let payload = |s: usize, d: usize| -> Vec<u64> {
            let len = ((seed + (s * p + d) as u64 * 13) % 4) as usize;
            (0..len).map(|i| (s * 100 + d * 10 + i) as u64).collect()
        };
        let mut e1 = engine(p);
        let dense: Vec<Vec<Vec<u64>>> =
            (0..p).map(|s| (0..p).map(|d| payload(s, d)).collect()).collect();
        let r1 = e1.alltoallv(dense, a);

        let mut e2 = engine(p);
        let sparse: Vec<Vec<(usize, Vec<u64>)>> = (0..p)
            .map(|s| {
                (0..p)
                    .map(|d| (d, payload(s, d)))
                    .filter(|(_, v)| !v.is_empty())
                    .collect()
            })
            .collect();
        let r2 = e2.alltoallv_sparse(sparse, a);

        prop_assert_eq!(e1.stats().bytes_total, e2.stats().bytes_total);
        prop_assert!((e1.makespan() - e2.makespan()).abs() < 1e-15);
        for dst in 0..p {
            let flat_dense: Vec<u64> = r1[dst].iter().flatten().copied().collect();
            let flat_sparse: Vec<u64> =
                r2[dst].iter().flat_map(|(_, v)| v.iter().copied()).collect();
            prop_assert_eq!(flat_dense, flat_sparse);
        }
    }

    /// Reductions compute what they claim and leave all clocks equal.
    #[test]
    fn reductions_correct_and_synchronising(p in 1usize..12, seed in 0u64..1000) {
        let vals: Vec<u64> = (0..p).map(|r| (seed + r as u64 * 31) % 1000).collect();
        let mut e = engine(p);
        // Desynchronise clocks first.
        let mut d = DistVec::from_parts(
            (0..p).map(|r| vec![0u8; (r + 1) * 10]).collect(),
        );
        e.compute(&mut d, |_r, buf| buf.len() as f64 * 1e6);
        let sum = e.allreduce_sum_u64(&vals);
        prop_assert_eq!(sum, vals.iter().sum::<u64>());
        let c0 = e.clocks()[0];
        prop_assert!(e.clocks().iter().all(|&c| (c - c0).abs() < 1e-18));
        let scan = e.exscan_sum_u64(&vals);
        for r in 0..p {
            prop_assert_eq!(scan[r], vals[..r].iter().sum::<u64>());
        }
    }

    /// Virtual time is non-decreasing through any operation sequence, and
    /// total energy grows with makespan.
    #[test]
    fn time_monotone(p in 2usize..8, steps in 1usize..6, seed in 0u64..100) {
        let mut e = engine(p);
        let mut last = 0.0f64;
        let mut d = DistVec::from_parts((0..p).map(|_| vec![0u8; 64]).collect());
        for s in 0..steps {
            match (seed + s as u64) % 3 {
                0 => e.compute(&mut d, |r, buf| (buf.len() * (r + 1)) as f64 * 1e3),
                1 => {
                    let _ = e.allreduce_max_u64(&vec![s as u64; p]);
                }
                _ => e.barrier(),
            }
            let now = e.makespan();
            prop_assert!(now >= last);
            last = now;
        }
        prop_assert!(e.energy_report().total_j >= 0.0);
    }

    /// allgather concatenates in rank order with arbitrary raggedness.
    #[test]
    fn allgather_order(p in 1usize..10, seed in 0u64..100) {
        let contribs: Vec<Vec<u32>> = (0..p)
            .map(|r| {
                let len = ((seed + r as u64) % 4) as usize;
                (0..len).map(|i| (r * 10 + i) as u32).collect()
            })
            .collect();
        let mut e = engine(p);
        let out = e.allgather(&contribs);
        let expected: Vec<u32> = contribs.into_iter().flatten().collect();
        prop_assert_eq!(out, expected);
    }
}
