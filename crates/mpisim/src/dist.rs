//! Distributed vectors: one local buffer per virtual rank.

/// A value of type `Vec<T>` on every virtual rank.
///
/// The global-view analogue of an MPI program's rank-local array. Algorithms
/// mutate rank buffers through [`crate::Engine::compute`]; direct access is
/// for setup and verification.
#[derive(Clone, Debug, PartialEq)]
pub struct DistVec<T> {
    ranks: Vec<Vec<T>>,
}

impl<T> DistVec<T> {
    /// Empty local buffers on `p` ranks.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "need at least one rank");
        DistVec {
            ranks: (0..p).map(|_| Vec::new()).collect(),
        }
    }

    /// Wraps existing per-rank buffers.
    pub fn from_parts(ranks: Vec<Vec<T>>) -> Self {
        assert!(!ranks.is_empty(), "need at least one rank");
        DistVec { ranks }
    }

    /// Number of ranks.
    #[inline]
    pub fn p(&self) -> usize {
        self.ranks.len()
    }

    /// Local buffer of rank `r`.
    #[inline]
    pub fn rank(&self, r: usize) -> &Vec<T> {
        &self.ranks[r]
    }

    /// Mutable local buffer of rank `r`.
    #[inline]
    pub fn rank_mut(&mut self, r: usize) -> &mut Vec<T> {
        &mut self.ranks[r]
    }

    /// All local buffers.
    #[inline]
    pub fn parts(&self) -> &[Vec<T>] {
        &self.ranks
    }

    /// All local buffers, mutably (used by the engine's parallel phases).
    #[inline]
    pub fn parts_mut(&mut self) -> &mut [Vec<T>] {
        &mut self.ranks
    }

    /// Consumes into the per-rank buffers.
    pub fn into_parts(self) -> Vec<Vec<T>> {
        self.ranks
    }

    /// Global element count.
    pub fn total_len(&self) -> usize {
        self.ranks.iter().map(Vec::len).sum()
    }

    /// Local element counts per rank — the work distribution `|Wr|`.
    pub fn counts(&self) -> Vec<usize> {
        self.ranks.iter().map(Vec::len).collect()
    }

    /// Load imbalance `λ = max|Wr| / min|Wr|` (Table 1 / §3.2).
    ///
    /// Returns `f64::INFINITY` when some rank is empty but others are not;
    /// 1.0 for a perfectly balanced (or entirely empty) distribution.
    pub fn load_imbalance(&self) -> f64 {
        let max = self.ranks.iter().map(Vec::len).max().unwrap_or(0);
        let min = self.ranks.iter().map(Vec::len).min().unwrap_or(0);
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }

    /// Maximum local count — the `Wmax` of the performance model.
    pub fn wmax(&self) -> usize {
        self.ranks.iter().map(Vec::len).max().unwrap_or(0)
    }
}

impl<T: Clone> DistVec<T> {
    /// Block-distributes a global slice: rank `r` gets the contiguous chunk
    /// `[r·N/p, (r+1)·N/p)` (the ideal `N/p ± 1` split).
    pub fn from_global(global: &[T], p: usize) -> Self {
        assert!(p >= 1);
        let n = global.len();
        let ranks = (0..p)
            .map(|r| {
                let lo = r * n / p;
                let hi = (r + 1) * n / p;
                global[lo..hi].to_vec()
            })
            .collect();
        DistVec { ranks }
    }

    /// Concatenates all rank buffers in rank order (an `MPI_Gather` onto a
    /// test harness — free of cost accounting, for verification only).
    pub fn concat(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.total_len());
        for r in &self.ranks {
            out.extend_from_slice(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_distribution_is_even() {
        let data: Vec<u32> = (0..103).collect();
        let d = DistVec::from_global(&data, 8);
        assert_eq!(d.total_len(), 103);
        let counts = d.counts();
        let (mx, mn) = (counts.iter().max().unwrap(), counts.iter().min().unwrap());
        assert!(mx - mn <= 1, "counts {counts:?}");
        assert_eq!(d.concat(), data);
    }

    #[test]
    fn load_imbalance_cases() {
        let d = DistVec::from_parts(vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(d.load_imbalance(), 1.0);
        let d = DistVec::from_parts(vec![vec![1, 2, 3], vec![4]]);
        assert_eq!(d.load_imbalance(), 3.0);
        let d = DistVec::from_parts(vec![vec![1], vec![]]);
        assert!(d.load_imbalance().is_infinite());
        let d: DistVec<u8> = DistVec::new(4);
        assert_eq!(d.load_imbalance(), 1.0);
    }

    #[test]
    fn wmax_matches_counts() {
        let d = DistVec::from_parts(vec![vec![0; 5], vec![0; 9], vec![0; 2]]);
        assert_eq!(d.wmax(), 9);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        let _: DistVec<u8> = DistVec::new(0);
    }
}
