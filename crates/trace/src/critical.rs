//! Critical-path extraction over the BSP dependency graph.
//!
//! In the BSP model every collective is a full synchronisation: no rank
//! proceeds past it before the last arrival. The run's dependency graph is
//! therefore a chain of supersteps, and the unique critical path walks
//! *backwards* from the rank that finishes last, through each sync point to
//! the rank that arrived there last (the "blocker" the sync recorded),
//! down to time zero. Gaps between a rank's spans are wait states — time
//! the rank spent blocked on someone else inside a collective.
//!
//! Because spans store the exact clock values the engine computed, segment
//! boundaries match syncs exactly (float equality, no epsilon), and the
//! path tiles `[0, makespan]` with no holes: its length *is* the makespan.

use crate::tracer::{SpanKind, Tracer};

/// Classification of a critical-path item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathKind {
    /// Rank-local compute bound the makespan here.
    Compute,
    /// A collective's charge bound the makespan here.
    Comm,
    /// The rank was idle, waiting inside a collective (or had nothing
    /// recorded) — time bound by an earlier segment of another rank.
    Wait,
}

/// One segment of the critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathItem {
    /// Rank the segment ran on.
    pub rank: usize,
    /// Segment start, virtual seconds.
    pub t0: f64,
    /// Segment end, virtual seconds.
    pub t1: f64,
    /// Compute, comm or wait.
    pub kind: PathKind,
    /// Operation name ("compute", "alltoallv", "wait", …).
    pub name: String,
    /// Enclosing phase name ("" for top level).
    pub phase: String,
}

impl PathItem {
    /// Segment duration, seconds.
    pub fn dur(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// The extracted critical path: contiguous segments from `t = 0` to the
/// makespan.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Segments in chronological order, tiling `[0, makespan]`.
    pub items: Vec<PathItem>,
    /// The engine's makespan (the path's nominal length).
    pub makespan_s: f64,
    /// The rank whose clock ended the run.
    pub end_rank: usize,
}

impl CriticalPath {
    /// Sum of segment durations — equals [`CriticalPath::makespan_s`] up to
    /// float summation of exactly-tiled intervals.
    pub fn covered_s(&self) -> f64 {
        self.items.iter().map(PathItem::dur).sum()
    }

    /// `(compute, comm, wait)` seconds along the path.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let mut acc = (0.0, 0.0, 0.0);
        for i in &self.items {
            match i.kind {
                PathKind::Compute => acc.0 += i.dur(),
                PathKind::Comm => acc.1 += i.dur(),
                PathKind::Wait => acc.2 += i.dur(),
            }
        }
        acc
    }

    /// Path seconds per phase, in first-appearance order.
    pub fn by_phase(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = Vec::new();
        for i in &self.items {
            match out.iter_mut().find(|(n, _)| *n == i.phase) {
                Some((_, s)) => *s += i.dur(),
                None => out.push((i.phase.clone(), i.dur())),
            }
        }
        out
    }

    /// Path seconds per rank, sorted by rank.
    pub fn by_rank(&self) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = Vec::new();
        for i in &self.items {
            match out.iter_mut().find(|(r, _)| *r == i.rank) {
                Some((_, s)) => *s += i.dur(),
                None => out.push((i.rank, i.dur())),
            }
        }
        out.sort_by_key(|&(r, _)| r);
        out
    }

    /// A human-readable summary: totals, kind breakdown, and the phases and
    /// ranks that carry the path.
    pub fn render(&self) -> String {
        let (comp, comm, wait) = self.breakdown();
        let mut s = format!(
            "critical path: {:.6} s over {} segments (ends on rank {})\n  \
             compute {:.6} s | comm {:.6} s | wait {:.6} s\n",
            self.makespan_s,
            self.items.len(),
            self.end_rank,
            comp,
            comm,
            wait,
        );
        for (phase, secs) in self.by_phase() {
            let label = if phase.is_empty() { "(top)" } else { &phase };
            s.push_str(&format!(
                "  phase {label:<14} {secs:.6} s ({:.1}%)\n",
                100.0 * secs / self.makespan_s.max(f64::MIN_POSITIVE)
            ));
        }
        for (rank, secs) in self.by_rank() {
            s.push_str(&format!(
                "  rank {rank:<3} on path {secs:.6} s ({:.1}%)\n",
                100.0 * secs / self.makespan_s.max(f64::MIN_POSITIVE)
            ));
        }
        s
    }
}

/// Extracts the critical path from a recorded trace and the engine's final
/// per-rank clocks.
///
/// Requires span recording to have been enabled for the whole run;
/// with spans disabled the result is a single wait segment covering the
/// makespan.
pub fn critical_path(t: &Tracer, clocks: &[f64]) -> CriticalPath {
    let makespan = clocks.iter().copied().fold(0.0, f64::max);
    let mut end_rank = 0;
    for (r, &c) in clocks.iter().enumerate() {
        if c > clocks[end_rank] {
            end_rank = r;
        }
    }
    let mut rev: Vec<PathItem> = Vec::new();
    let mut rank = end_rank;
    let mut cur_t = makespan;

    // Walk sync points newest-first; between consecutive syncs the path
    // stays on one rank and is tiled by that rank's spans (+ waits).
    for sync in t.syncs().iter().rev() {
        if sync.t >= cur_t {
            // Sync at exactly cur_t: the segment above it is empty; just
            // hop to the blocker.
            if sync.t == cur_t {
                rank = sync.blocker;
            }
            continue;
        }
        segment_rev(t, rank, sync.t, cur_t, &mut rev);
        rank = sync.blocker;
        cur_t = sync.t;
    }
    segment_rev(t, rank, 0.0, cur_t, &mut rev);
    rev.reverse();
    CriticalPath {
        items: rev,
        makespan_s: makespan,
        end_rank,
    }
}

/// Pushes (in reverse chronological order) the path items covering
/// `(lo, hi]` on `rank`: the rank's spans in that window, with wait items
/// filling any gaps.
fn segment_rev(t: &Tracer, rank: usize, lo: f64, hi: f64, rev: &mut Vec<PathItem>) {
    if hi <= lo {
        return;
    }
    let spans = &t.spans()[rank];
    // Spans are time-ordered; find the last span ending at or before `hi`.
    let mut i = spans.partition_point(|s| s.t1 <= hi);
    let mut upper = hi;
    let wait = |t0: f64, t1: f64, phase: String| PathItem {
        rank,
        t0,
        t1,
        kind: PathKind::Wait,
        name: "wait".to_string(),
        phase,
    };
    while i > 0 {
        let s = spans[i - 1];
        if s.t1 <= lo {
            break;
        }
        let phase = t.name(s.phase).to_string();
        if s.t1 < upper {
            rev.push(wait(s.t1, upper, phase.clone()));
        }
        rev.push(PathItem {
            rank,
            t0: s.t0.max(lo),
            t1: s.t1,
            kind: match s.kind {
                SpanKind::Compute => PathKind::Compute,
                SpanKind::Comm => PathKind::Comm,
            },
            name: t.name(s.name).to_string(),
            phase,
        });
        upper = s.t0.max(lo);
        i -= 1;
    }
    if upper > lo {
        let phase = rev.last().map_or(String::new(), |it| it.phase.clone());
        rev.push(wait(lo, upper, phase));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    /// Asserts the path tiles [0, makespan] contiguously and exactly.
    fn assert_tiles(cp: &CriticalPath) {
        assert!(!cp.items.is_empty());
        assert_eq!(cp.items[0].t0, 0.0);
        assert_eq!(cp.items.last().unwrap().t1, cp.makespan_s);
        for w in cp.items.windows(2) {
            assert_eq!(w[0].t1, w[1].t0, "gap in path: {w:?}");
        }
        assert!((cp.covered_s() - cp.makespan_s).abs() <= 1e-12 * cp.makespan_s.max(1.0));
    }

    #[test]
    fn two_rank_path_hops_at_sync() {
        // rank0 computes [0,1], rank1 computes [0,3]; sync at 3 (blocker 1);
        // both comm [3,4]; rank0 computes [4,6], rank1 idle.
        let mut t = Tracer::new(2);
        t.enable_spans();
        t.record_compute(0, 0.0, 1.0, 0);
        t.record_compute(1, 0.0, 3.0, 0);
        t.begin_collective("allreduce", 3.0, 1);
        t.record_comm(0, 3.0, 4.0, 8, 0);
        t.record_comm(1, 3.0, 4.0, 8, 0);
        t.record_compute(0, 4.0, 6.0, 0);
        let cp = critical_path(&t, &[6.0, 4.0]);
        assert_tiles(&cp);
        assert_eq!(cp.end_rank, 0);
        // After the sync the path is on rank 0; before it, on rank 1.
        assert!(cp.items.iter().filter(|i| i.t1 <= 3.0).all(|i| i.rank == 1));
        assert!(cp.items.iter().filter(|i| i.t0 >= 3.0).all(|i| i.rank == 0));
        let (comp, comm, wait) = cp.breakdown();
        assert_eq!(comp, 5.0); // rank1 [0,3] + rank0 [4,6]
        assert_eq!(comm, 1.0);
        assert_eq!(wait, 0.0);
    }

    #[test]
    fn waits_fill_gaps() {
        // Single rank with a hole in its record.
        let mut t = Tracer::new(1);
        t.enable_spans();
        t.record_compute(0, 0.0, 1.0, 0);
        t.record_compute(0, 2.0, 3.0, 0);
        let cp = critical_path(&t, &[3.0]);
        assert_tiles(&cp);
        assert_eq!(cp.items.len(), 3);
        assert_eq!(cp.items[1].kind, PathKind::Wait);
    }

    #[test]
    fn disabled_trace_yields_single_wait() {
        let t = Tracer::new(2);
        let cp = critical_path(&t, &[0.0, 5.0]);
        assert_tiles(&cp);
        assert_eq!(cp.items.len(), 1);
        assert_eq!(cp.items[0].kind, PathKind::Wait);
    }
}
