//! Deterministic structured tracing over the virtual BSP clock.
//!
//! The engine in `optipart-mpisim` simulates a distributed machine whose
//! only notion of time is the per-rank virtual clock. This crate records
//! what that machine *did* — every compute segment, every collective, every
//! synchronisation point — stamped in virtual seconds, and turns the record
//! into three artefacts:
//!
//! - a Chrome `trace_event` JSON export ([`chrome_trace_json`]) openable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev);
//! - a critical path over the BSP dependency graph ([`critical_path`]):
//!   the chain of compute segments and collective edges, hopping between
//!   ranks at each synchronisation point, whose length is exactly the
//!   engine's makespan;
//! - a model-attribution report ([`model_attribution`]) splitting each
//!   phase's measured cost against the Eq. (3) terms `α·tc·Wmax` and
//!   `tw·Cmax` (plus the `ts·Mmax` latency extension) and suggesting
//!   recalibrated `tc`/`tw` from the residuals.
//!
//! # Determinism rules
//!
//! Everything recorded here derives from the virtual clock, which is itself
//! bit-reproducible (see `optipart-mpisim`): the same program on the same
//! seeded engine produces a byte-identical export at any worker thread
//! count. Two rules keep it that way:
//!
//! 1. all mutation happens on the engine thread (the engine charges clocks
//!    serially after its fork–join compute sections);
//! 2. host wall-clock time never enters the trace unless explicitly enabled
//!    with [`Tracer::enable_wall_time`], which is documented as
//!    determinism-exempt and off by default.
//!
//! # Overhead
//!
//! Phase counters (per-phase virtual time and bytes — the successors of the
//! old `RunStats` phase timers) are always on and cost two `Vec` index
//! bumps per phase. Span buffers, sync points, marks and decision events
//! are only recorded after [`Tracer::enable_spans`]; when disabled every
//! record call is a single branch on a `bool`.

mod attrib;
mod critical;
mod export;
mod profile;
mod tracer;

pub use attrib::{model_attribution, ModelAttribution, ModelParams, PhaseAttribution};
pub use critical::{critical_path, CriticalPath, PathItem, PathKind};
pub use export::{chrome_trace_digest, chrome_trace_json, fnv1a, json_escape};
pub use profile::{profile, PhaseProfile, Profile};
pub use tracer::{Decision, Mark, PhaseSpan, Span, SpanKind, SyncPoint, Tracer, ROOT_PHASE};
