//! Model attribution: splitting measured per-phase cost against Eq. (3).
//!
//! The paper's performance model predicts a phase's runtime as
//! `Tp = α·tc·Wmax + tw·Cmax` (§3.3, Eq. 3), optionally extended with a
//! latency term `ts·Mmax`. The trace records, per phase and rank, how many
//! seconds of compute/communication the engine actually charged and how
//! many bytes moved — so we can recompute each Eq. (3) term from the
//! *observed* `Wmax`/`Cmax` and compare against the *measured* phase time.
//!
//! On a clean machine the engine charges exactly `tc` per compute byte, so
//! the residual is pure latency + load imbalance. Under a fault plan the
//! stragglers inflate measured compute beyond `α·tc·Wmax`; the suggested
//! `tc'` (= measured compute on the slowest rank / its bytes) is the value
//! a measurement-driven recalibration of [`optipart_machine::PerfModel`]
//! would adopt — exactly the drift this report exists to expose.

use crate::tracer::{Tracer, ROOT_PHASE};
use optipart_machine::PerfModel;

/// The Eq. (3) coefficients attribution evaluates against.
///
/// Observed byte counters already embody the application model: a compute
/// closure reports `α·elem_bytes` of traffic per element, so the observed
/// `Wmax` in bytes equals `α·Wmax[elements]·elem_bytes` and the Eq. (3)
/// first term is simply `tc × Wmax[bytes]`.
#[derive(Clone, Copy, Debug)]
pub struct ModelParams {
    /// Application arithmetic intensity `α` (informational; folded into the
    /// observed byte counters, see the struct docs).
    pub alpha: f64,
    /// Modeled seconds per compute byte.
    pub tc: f64,
    /// Modeled seconds per wire byte.
    pub tw: f64,
    /// Modeled per-message latency, seconds.
    pub ts: f64,
    /// Modeled seconds per *intra-node* wire byte — `Some` only when the
    /// machine carries a two-level hierarchy; `None` degenerates every
    /// hierarchical term to the flat model.
    pub tw_intra: Option<f64>,
    /// `ceil(log2 p)` with `log2 1 = 1` — the engine's latency multiplier
    /// per tree collective.
    pub log_p: f64,
}

impl ModelParams {
    /// Extracts the coefficients from a performance model for a machine of
    /// `p` ranks.
    pub fn from_perf(perf: &PerfModel, p: usize) -> Self {
        ModelParams {
            alpha: perf.app.alpha,
            tc: perf.machine.tc,
            tw: perf.machine.tw,
            ts: perf.machine.ts,
            tw_intra: perf.machine.hierarchy.as_ref().map(|h| h.tw_intra),
            log_p: (p.max(2) as f64).log2().ceil(),
        }
    }
}

/// Eq. (3) attribution of one phase.
#[derive(Clone, Debug)]
pub struct PhaseAttribution {
    /// Phase name ("(top)" for code outside any phase block).
    pub phase: String,
    /// Measured phase makespan, virtual seconds (always-on phase counter;
    /// for the top level, the residual rank activity outside phases).
    pub measured_s: f64,
    /// Max per-rank compute seconds actually charged.
    pub compute_s: f64,
    /// Max per-rank communication seconds actually charged.
    pub comm_s: f64,
    /// Observed `Wmax`, bytes (max per-rank compute traffic, `α` and
    /// element size already folded in).
    pub wmax_bytes: u64,
    /// Observed `Cmax`, bytes (max per-rank wire traffic).
    pub cmax_bytes: u64,
    /// Of the `Cmax` rank's wire traffic, the bytes that stayed on-node
    /// (ties broken toward the lowest rank, matching the quality metric).
    pub cmax_intra_bytes: u64,
    /// Total wire bytes charged across all ranks in the phase.
    pub comm_bytes_total: u64,
    /// Of [`PhaseAttribution::comm_bytes_total`], the bytes whose peer was
    /// on the same node. `comm_intra_bytes + comm_inter_bytes()` always
    /// equals the total — the split is exact, not modeled.
    pub comm_intra_bytes: u64,
    /// Collectives (sync points) inside the phase.
    pub collectives: u64,
    /// Predicted `tc·Wmax` — Eq. (3)'s `α·tc·Wmax` with `α·elem_bytes`
    /// already folded into the observed byte counter.
    pub predicted_compute_s: f64,
    /// Predicted `tw·Cmax`.
    pub predicted_comm_s: f64,
    /// Predicted `ts·Mmax` latency extension (`ts · log p` per collective).
    pub predicted_latency_s: f64,
    /// `measured − (predicted compute + comm + latency)`.
    pub residual_s: f64,
    /// `tc` that would make `tc'·Wmax` match the measured compute —
    /// `None` when the phase moved no compute bytes. Equals the machine's
    /// `tc` exactly on a clean run; inflated by stragglers.
    pub tc_suggested: Option<f64>,
    /// `tw` that would make `tw'·Cmax + latency` match the measured comm —
    /// `None` when the phase moved no wire bytes.
    pub tw_suggested: Option<f64>,
}

impl PhaseAttribution {
    /// Total predicted phase time under Eq. (3) + latency extension.
    pub fn predicted_s(&self) -> f64 {
        self.predicted_compute_s + self.predicted_comm_s + self.predicted_latency_s
    }

    /// Wire bytes that crossed node boundaries:
    /// `comm_bytes_total − comm_intra_bytes`.
    pub fn comm_inter_bytes(&self) -> u64 {
        self.comm_bytes_total - self.comm_intra_bytes
    }
}

/// The full model-attribution report.
#[derive(Clone, Debug, Default)]
pub struct ModelAttribution {
    /// Per-phase attributions in first-use order.
    pub phases: Vec<PhaseAttribution>,
}

impl ModelAttribution {
    /// Looks a phase up by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseAttribution> {
        self.phases.iter().find(|a| a.phase == name)
    }

    /// A human-readable predicted-vs-measured table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "model attribution (Eq. 3): phase | measured | predicted \
             [tc·Wmax + tw·Cmax + ts·Mmax] | residual | tc' | tw'\n",
        );
        for a in &self.phases {
            let fmt_opt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.3e}"),
                None => "-".to_string(),
            };
            s.push_str(&format!(
                "  {:<14} {:>12.6} s {:>12.6} s [{:.6} + {:.6} + {:.6}] \
                 {:>+12.6} s  tc'={} tw'={}\n",
                a.phase,
                a.measured_s,
                a.predicted_s(),
                a.predicted_compute_s,
                a.predicted_comm_s,
                a.predicted_latency_s,
                a.residual_s,
                fmt_opt(a.tc_suggested),
                fmt_opt(a.tw_suggested),
            ));
        }
        s
    }
}

/// Builds the Eq. (3) attribution report from a recorded trace.
///
/// Requires span recording (the per-(phase, rank) accumulators are gated on
/// it); with spans disabled the report is empty.
pub fn model_attribution(t: &Tracer, params: ModelParams) -> ModelAttribution {
    // Gather the phase ids present in the per-(phase, rank) stats, keeping
    // first-use (interner) order.
    let stats = t.per_phase_rank();
    let mut phase_ids: Vec<u32> = Vec::new();
    for &((ph, _), _) in &stats {
        if !phase_ids.contains(&ph) {
            phase_ids.push(ph);
        }
    }
    phase_ids.sort_unstable();

    let mut phases = Vec::with_capacity(phase_ids.len());
    for ph in phase_ids {
        let mut compute_s = 0.0f64;
        let mut comm_s = 0.0f64;
        let mut wmax = 0u64;
        let mut cmax = 0u64;
        let mut cmax_intra = 0u64;
        let mut comm_total = 0u64;
        let mut comm_intra = 0u64;
        for &((p_id, _), s) in &stats {
            if p_id != ph {
                continue;
            }
            compute_s = compute_s.max(s.compute_s);
            comm_s = comm_s.max(s.comm_s);
            wmax = wmax.max(s.compute_bytes);
            // Strict > keeps the lowest rank on ties (stats are sorted by
            // (phase, rank)), matching the quality metric's convention.
            if s.comm_bytes > cmax {
                cmax = s.comm_bytes;
                cmax_intra = s.comm_intra_bytes;
            }
            comm_total += s.comm_bytes;
            comm_intra += s.comm_intra_bytes;
        }
        let collectives = t.syncs().iter().filter(|s| s.phase == ph).count() as u64;
        let name = t.name(ph);
        let measured_s = if ph == ROOT_PHASE {
            // No counter covers top-level code; the charged activity is the
            // best available stand-in.
            compute_s + comm_s
        } else {
            t.phase_time(name)
        };
        let predicted_compute_s = params.tc * wmax as f64;
        // Hierarchy-aware Eq. (3) comm term in the shared additive-discount
        // form: a flat machine (tw_intra None) predicts exactly tw·Cmax.
        let flat_comm = params.tw * cmax as f64;
        let predicted_comm_s = match params.tw_intra {
            Some(twi) => flat_comm + (twi - params.tw) * cmax_intra as f64,
            None => flat_comm,
        };
        let predicted_latency_s = params.ts * params.log_p * collectives as f64;
        let residual_s = measured_s - predicted_compute_s - predicted_comm_s - predicted_latency_s;
        let tc_suggested = (wmax > 0).then(|| compute_s / wmax as f64);
        let tw_suggested =
            (cmax > 0).then(|| ((comm_s - predicted_latency_s) / cmax as f64).max(0.0));
        phases.push(PhaseAttribution {
            phase: if ph == ROOT_PHASE {
                "(top)".to_string()
            } else {
                name.to_string()
            },
            measured_s,
            compute_s,
            comm_s,
            wmax_bytes: wmax,
            cmax_bytes: cmax,
            cmax_intra_bytes: cmax_intra,
            comm_bytes_total: comm_total,
            comm_intra_bytes: comm_intra,
            collectives,
            predicted_compute_s,
            predicted_comm_s,
            predicted_latency_s,
            residual_s,
            tc_suggested,
            tw_suggested,
        });
    }
    ModelAttribution { phases }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn params() -> ModelParams {
        ModelParams {
            alpha: 2.0,
            tc: 1e-9,
            tw: 1e-8,
            ts: 1e-6,
            tw_intra: None,
            log_p: 1.0,
        }
    }

    #[test]
    fn clean_compute_phase_recovers_tc_exactly() {
        let mut t = Tracer::new(2);
        t.enable_spans();
        t.phase_begin("work");
        // Engine semantics: seconds = reported bytes × tc.
        let p = params();
        let bytes = 1_000_000u64;
        let secs = p.tc * bytes as f64;
        t.record_compute(0, 0.0, secs, bytes);
        t.record_compute(1, 0.0, secs / 2.0, bytes / 2);
        t.phase_end(0.0, secs, 0);
        let rep = model_attribution(&t, p);
        let a = rep.phase("work").expect("phase present");
        assert_eq!(a.wmax_bytes, bytes);
        let tc = a.tc_suggested.unwrap();
        assert!((tc - p.tc).abs() < 1e-18, "tc' {tc} vs {}", p.tc);
        assert!(a.residual_s.abs() < 1e-15);
    }

    #[test]
    fn straggler_inflates_suggested_tc() {
        let mut t = Tracer::new(2);
        t.enable_spans();
        t.phase_begin("work");
        let p = params();
        let bytes = 1_000u64;
        let clean = p.tc * bytes as f64;
        t.record_compute(0, 0.0, clean * 4.0, bytes); // 4× straggler
        t.record_compute(1, 0.0, clean, bytes);
        t.phase_end(0.0, clean * 4.0, 0);
        let rep = model_attribution(&t, p);
        let a = rep.phase("work").unwrap();
        let tc = a.tc_suggested.unwrap();
        assert!((tc - 4.0 * p.tc).abs() < 1e-18);
        assert!(a.residual_s > 0.0, "straggler must show as + residual");
    }

    #[test]
    fn empty_trace_empty_report() {
        let t = Tracer::new(4);
        assert!(model_attribution(&t, params()).phases.is_empty());
    }
}
