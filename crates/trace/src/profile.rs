//! Compact aggregate profile: per-phase totals and per-rank imbalance
//! histograms — the one-screen summary next to the full Chrome export.

use crate::tracer::{Tracer, ROOT_PHASE};

/// Aggregate view of one phase.
#[derive(Clone, Debug)]
pub struct PhaseProfile {
    /// Phase name ("(top)" for code outside any phase block).
    pub name: String,
    /// Phase makespan from the always-on counter, virtual seconds.
    pub time_s: f64,
    /// Network bytes moved during the phase.
    pub bytes: u64,
    /// Per-rank busy seconds (compute + comm charged inside the phase).
    pub busy_s: Vec<f64>,
    /// `max busy / mean busy` — 1.0 is perfectly balanced.
    pub imbalance: f64,
    /// 10-bin histogram of `busy / max busy` over ranks: a left-heavy
    /// histogram means most ranks idle while a few do the work.
    pub histogram: [u32; 10],
}

/// The whole run's aggregate profile.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Phases in first-use order.
    pub phases: Vec<PhaseProfile>,
    /// Engine makespan, seconds.
    pub makespan_s: f64,
}

impl Profile {
    /// A human-readable table with sparkline-style histograms.
    pub fn render(&self) -> String {
        let mut s = format!("profile: makespan {:.6} s\n", self.makespan_s);
        for ph in &self.phases {
            let bars: String = ph
                .histogram
                .iter()
                .map(|&c| match c {
                    0 => '.',
                    1..=2 => ':',
                    3..=9 => '|',
                    _ => '#',
                })
                .collect();
            s.push_str(&format!(
                "  {:<14} {:>12.6} s  {:>12} B  imbalance {:>7.3}  [{bars}]\n",
                ph.name, ph.time_s, ph.bytes, ph.imbalance,
            ));
        }
        s
    }
}

/// Builds the aggregate profile from a recorded trace and the engine's
/// final clocks. Imbalance histograms need span recording; with spans
/// disabled only the always-on phase counters appear.
pub fn profile(t: &Tracer, clocks: &[f64]) -> Profile {
    let makespan = clocks.iter().copied().fold(0.0, f64::max);
    let stats = t.per_phase_rank();
    let mut phase_ids: Vec<u32> = stats.iter().map(|&((ph, _), _)| ph).collect();
    phase_ids.dedup();
    phase_ids.sort_unstable();
    phase_ids.dedup();

    let mut phases = Vec::new();
    for ph in phase_ids {
        let mut busy = vec![0.0f64; t.p()];
        for &((p_id, r), s) in &stats {
            if p_id == ph {
                busy[r] = s.compute_s + s.comm_s;
            }
        }
        let max = busy.iter().copied().fold(0.0, f64::max);
        let mean = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
        let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
        let mut histogram = [0u32; 10];
        if max > 0.0 {
            for &b in &busy {
                let bin = ((b / max) * 10.0).floor().min(9.0) as usize;
                histogram[bin] += 1;
            }
        }
        let name = t.name(ph);
        let (time_s, bytes) = if ph == ROOT_PHASE {
            (max, 0)
        } else {
            (t.phase_time(name), t.phase_bytes(name))
        };
        phases.push(PhaseProfile {
            name: if ph == ROOT_PHASE {
                "(top)".to_string()
            } else {
                name.to_string()
            },
            time_s,
            bytes,
            busy_s: busy,
            imbalance,
            histogram,
        });
    }
    // Phases whose counters ran without any span recording (spans off).
    for (name, time_s, bytes) in t.phase_totals() {
        if phases.iter().any(|p| p.name == name) {
            continue;
        }
        phases.push(PhaseProfile {
            name: name.to_string(),
            time_s,
            bytes,
            busy_s: vec![0.0; t.p()],
            imbalance: 1.0,
            histogram: [0; 10],
        });
    }
    Profile {
        phases,
        makespan_s: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn imbalance_and_histogram() {
        let mut t = Tracer::new(4);
        t.enable_spans();
        t.phase_begin("work");
        t.record_compute(0, 0.0, 4.0, 4);
        t.record_compute(1, 0.0, 1.0, 1);
        t.record_compute(2, 0.0, 1.0, 1);
        t.record_compute(3, 0.0, 2.0, 2);
        t.phase_end(0.0, 4.0, 0);
        let p = profile(&t, &[4.0, 1.0, 1.0, 2.0]);
        let ph = &p.phases[0];
        assert_eq!(ph.name, "work");
        assert!((ph.imbalance - 2.0).abs() < 1e-12);
        assert_eq!(ph.histogram.iter().sum::<u32>(), 4);
        assert_eq!(ph.histogram[9], 1, "one rank at max");
        assert_eq!(ph.histogram[2], 2, "two ranks at 25%");
    }

    #[test]
    fn counters_surface_without_spans() {
        let mut t = Tracer::new(2);
        t.phase_begin("quiet");
        t.phase_end(0.0, 1.5, 99);
        let p = profile(&t, &[1.5, 1.5]);
        assert_eq!(p.phases.len(), 1);
        assert_eq!(p.phases[0].name, "quiet");
        assert_eq!(p.phases[0].bytes, 99);
    }
}
