//! The recorder: per-rank append-only span buffers, sync points, phase
//! counters and instant marks, all stamped in virtual time.

use std::collections::HashMap;

/// Name id of the implicit top-level phase (code running outside any
/// `Engine::phase` block).
pub const ROOT_PHASE: u32 = 0;

/// What a rank was doing during a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Rank-local computation charged at `bytes × tc`.
    Compute,
    /// Participation in a collective (latency + volume charge).
    Comm,
}

/// One interval of activity on one rank's virtual timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    /// Start, virtual seconds.
    pub t0: f64,
    /// End, virtual seconds (`t1 >= t0`).
    pub t1: f64,
    /// Compute or communication.
    pub kind: SpanKind,
    /// Interned operation name ("compute", "allreduce", "alltoallv", …).
    pub name: u32,
    /// Interned phase name active when the span was recorded.
    pub phase: u32,
    /// Bytes of memory traffic (compute) or wire traffic (comm).
    pub bytes: u64,
    /// Host wall-clock at record time, seconds since tracing was enabled.
    /// Always `0.0` unless wall time was explicitly enabled — wall time is
    /// determinism-exempt and excluded from exports by default.
    pub wall_s: f64,
}

/// An instant annotation on one rank's track (fault marks, retries).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mark {
    /// Rank the mark belongs to.
    pub rank: usize,
    /// Virtual time of the instant.
    pub t: f64,
    /// Interned mark name.
    pub name: u32,
    /// Free-form numeric payload (retry count, straggler factor, …).
    pub value: f64,
}

/// A BSP synchronisation point: the moment all ranks aligned to the
/// maximum clock at the start of a collective.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyncPoint {
    /// The aligned time — the maximum clock over all ranks.
    pub t: f64,
    /// The rank whose clock was the maximum (lowest rank on ties): the rank
    /// every other rank waited for. Critical-path extraction hops here.
    pub blocker: usize,
    /// Interned collective name.
    pub name: u32,
    /// Interned enclosing phase name.
    pub phase: u32,
}

/// A completed `Engine::phase` block on the global track.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseSpan {
    /// Interned phase name.
    pub name: u32,
    /// Makespan when the phase was entered.
    pub t0: f64,
    /// Makespan when the phase ended.
    pub t1: f64,
    /// Bytes moved over the network during the phase.
    pub bytes: u64,
}

/// A decision instant on the global track (e.g. OptiPart's tolerance-search
/// accept/reject events), carrying named numeric arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// Interned event name.
    pub name: u32,
    /// Virtual time (the makespan when the decision was taken).
    pub t: f64,
    /// `(interned key, value)` argument pairs in insertion order.
    pub args: Vec<(u32, f64)>,
}

/// Per-(phase, rank) activity totals — the raw material of model
/// attribution and imbalance profiles. Only accumulated when spans are
/// enabled.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseRankStats {
    /// Seconds of compute charged to the rank inside the phase.
    pub compute_s: f64,
    /// Seconds of communication charged to the rank inside the phase.
    pub comm_s: f64,
    /// Compute bytes (memory traffic) — the rank's share of `W`.
    pub compute_bytes: u64,
    /// Communication bytes — the rank's share of `C`.
    pub comm_bytes: u64,
    /// Of `comm_bytes`, the share whose peer lives on the same node
    /// (the hierarchical machine model's intra-node traffic).
    pub comm_intra_bytes: u64,
}

/// The recorder. Owned by the engine; all mutation happens on the engine
/// thread, so the record order — and therefore the export — is
/// deterministic.
#[derive(Clone, Debug)]
pub struct Tracer {
    p: usize,
    events_on: bool,
    wall_on: bool,
    epoch: Option<std::time::Instant>,
    /// Interned names; id = index. Id 0 is the root phase "".
    names: Vec<String>,
    ids: HashMap<String, u32>,
    /// Stack of currently open phase name ids (root phase at the bottom,
    /// implicitly).
    phase_stack: Vec<u32>,
    /// Always-on per-phase totals, indexed by name id: (seconds, bytes).
    totals: Vec<(f64, u64)>,
    /// Per-rank span buffers, append-only in virtual-time order.
    spans: Vec<Vec<Span>>,
    syncs: Vec<SyncPoint>,
    marks: Vec<Mark>,
    phase_spans: Vec<PhaseSpan>,
    decisions: Vec<Decision>,
    /// Name id of the collective currently charging comm spans.
    cur_collective: u32,
    per_phase_rank: HashMap<(u32, usize), PhaseRankStats>,
}

impl Tracer {
    /// A recorder for a machine of `p` ranks. Spans are disabled; phase
    /// counters are live immediately.
    pub fn new(p: usize) -> Self {
        let mut t = Tracer {
            p,
            events_on: false,
            wall_on: false,
            epoch: None,
            names: Vec::new(),
            ids: HashMap::new(),
            phase_stack: Vec::new(),
            totals: Vec::new(),
            spans: vec![Vec::new(); p],
            syncs: Vec::new(),
            marks: Vec::new(),
            phase_spans: Vec::new(),
            decisions: Vec::new(),
            cur_collective: 0,
            per_phase_rank: HashMap::new(),
        };
        let root = t.intern("");
        debug_assert_eq!(root, ROOT_PHASE);
        t.cur_collective = t.intern("comm");
        t
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Turns on span/sync/mark/decision recording.
    pub fn enable_spans(&mut self) {
        self.events_on = true;
    }

    /// Whether span recording is on.
    pub fn spans_enabled(&self) -> bool {
        self.events_on
    }

    /// Additionally stamp each span with host wall-clock seconds. This is
    /// the one determinism-exempt field; exports include it only when
    /// enabled here.
    pub fn enable_wall_time(&mut self) {
        self.wall_on = true;
        self.epoch = Some(std::time::Instant::now());
    }

    /// Whether wall-time stamping is on.
    pub fn wall_time_enabled(&self) -> bool {
        self.wall_on
    }

    /// Clears all recorded events and counters, keeping the configuration
    /// (enabled flags and interner) — mirrors `Engine::reset`.
    pub fn reset(&mut self) {
        self.phase_stack.clear();
        self.totals.iter_mut().for_each(|t| *t = (0.0, 0));
        self.spans.iter_mut().for_each(Vec::clear);
        self.syncs.clear();
        self.marks.clear();
        self.phase_spans.clear();
        self.decisions.clear();
        self.per_phase_rank.clear();
    }

    /// Interns `s`, returning a stable id for this tracer's lifetime.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(s.to_string());
        self.ids.insert(s.to_string(), id);
        self.totals.push((0.0, 0));
        id
    }

    /// The string behind an interned id.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    fn wall_now(&self) -> f64 {
        match (self.wall_on, &self.epoch) {
            (true, Some(e)) => e.elapsed().as_secs_f64(),
            _ => 0.0,
        }
    }

    // ---- phases ---------------------------------------------------------

    /// Opens a named phase (nestable). Counters attribute to the innermost
    /// open phase.
    pub fn phase_begin(&mut self, name: &str) {
        let id = self.intern(name);
        self.phase_stack.push(id);
    }

    /// Closes the innermost phase, attributing `t1 - t0` seconds and
    /// `bytes` network bytes to it. The engine supplies the makespans so
    /// counter semantics exactly match the old `RunStats` phase timers.
    pub fn phase_end(&mut self, t0: f64, t1: f64, bytes: u64) {
        let id = self.phase_stack.pop().expect("phase_end without begin");
        let tot = &mut self.totals[id as usize];
        tot.0 += t1 - t0;
        tot.1 += bytes;
        if self.events_on {
            self.phase_spans.push(PhaseSpan {
                name: id,
                t0,
                t1,
                bytes,
            });
        }
    }

    /// The innermost open phase (the root phase when none is open).
    pub fn current_phase(&self) -> u32 {
        self.phase_stack.last().copied().unwrap_or(ROOT_PHASE)
    }

    /// Discards all open phases without attributing time to them — for
    /// recovery drivers whose `RankDeath` unwound through open
    /// `Engine::phase` blocks, leaving their `phase_end` calls unreached.
    pub fn abort_open_phases(&mut self) {
        self.phase_stack.clear();
    }

    /// Virtual seconds attributed to `phase`, 0 if never entered.
    pub fn phase_time(&self, phase: &str) -> f64 {
        self.ids
            .get(phase)
            .map_or(0.0, |&id| self.totals[id as usize].0)
    }

    /// Network bytes attributed to `phase`.
    pub fn phase_bytes(&self, phase: &str) -> u64 {
        self.ids
            .get(phase)
            .map_or(0, |&id| self.totals[id as usize].1)
    }

    /// All phases that accumulated time or bytes, in first-use order:
    /// `(name, seconds, bytes)`.
    pub fn phase_totals(&self) -> Vec<(&str, f64, u64)> {
        self.names
            .iter()
            .zip(&self.totals)
            .filter(|(n, &(t, b))| !n.is_empty() && (t > 0.0 || b > 0))
            .map(|(n, &(t, b))| (n.as_str(), t, b))
            .collect()
    }

    // ---- spans and events -----------------------------------------------

    /// Records a compute span on `rank`. No-op unless spans are enabled.
    pub fn record_compute(&mut self, rank: usize, t0: f64, t1: f64, bytes: u64) {
        if !self.events_on {
            return;
        }
        let phase = self.current_phase();
        let name = self.intern("compute");
        let wall_s = self.wall_now();
        self.spans[rank].push(Span {
            t0,
            t1,
            kind: SpanKind::Compute,
            name,
            phase,
            bytes,
            wall_s,
        });
        let s = self.per_phase_rank.entry((phase, rank)).or_default();
        s.compute_s += t1 - t0;
        s.compute_bytes += bytes;
    }

    /// Records a communication span on `rank`, named after the collective
    /// opened by the last [`Tracer::begin_collective`]. `bytes_intra ≤
    /// bytes` is the share that never left the rank's node.
    pub fn record_comm(&mut self, rank: usize, t0: f64, t1: f64, bytes: u64, bytes_intra: u64) {
        if !self.events_on {
            return;
        }
        let phase = self.current_phase();
        let name = self.cur_collective;
        let wall_s = self.wall_now();
        self.spans[rank].push(Span {
            t0,
            t1,
            kind: SpanKind::Comm,
            name,
            phase,
            bytes,
            wall_s,
        });
        let s = self.per_phase_rank.entry((phase, rank)).or_default();
        s.comm_s += t1 - t0;
        s.comm_bytes += bytes;
        s.comm_intra_bytes += bytes_intra;
    }

    /// Records the synchronisation point opening a collective: all ranks
    /// aligned to time `t`, having waited for `blocker`.
    pub fn begin_collective(&mut self, name: &str, t: f64, blocker: usize) {
        if !self.events_on {
            return;
        }
        let name = self.intern(name);
        self.cur_collective = name;
        let phase = self.current_phase();
        self.syncs.push(SyncPoint {
            t,
            blocker,
            name,
            phase,
        });
    }

    /// Records an instant annotation on `rank`'s track.
    pub fn mark(&mut self, rank: usize, t: f64, name: &str, value: f64) {
        if !self.events_on {
            return;
        }
        let name = self.intern(name);
        self.marks.push(Mark {
            rank,
            t,
            name,
            value,
        });
    }

    /// Records a decision instant on the global track with named numeric
    /// arguments (e.g. predicted vs accepted `Tp` of a tolerance probe).
    pub fn decision(&mut self, t: f64, name: &str, args: &[(&str, f64)]) {
        if !self.events_on {
            return;
        }
        let name = self.intern(name);
        let args = args.iter().map(|(k, v)| (self.intern(k), *v)).collect();
        self.decisions.push(Decision { name, t, args });
    }

    // ---- read access ----------------------------------------------------

    /// Per-rank span buffers, virtual-time ordered.
    pub fn spans(&self) -> &[Vec<Span>] {
        &self.spans
    }

    /// Synchronisation points in execution order.
    pub fn syncs(&self) -> &[SyncPoint] {
        &self.syncs
    }

    /// Instant marks in record order.
    pub fn marks(&self) -> &[Mark] {
        &self.marks
    }

    /// The marks whose interned name equals `name`, in record order —
    /// convenient for filtering fault annotations (`"fault.death"`,
    /// `"fault.retry"`, …) out of a recorded run.
    pub fn marks_named(&self, name: &str) -> Vec<Mark> {
        match self.ids.get(name) {
            Some(&id) => self
                .marks
                .iter()
                .filter(|m| m.name == id)
                .copied()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Completed phase blocks in completion order.
    pub fn phase_spans(&self) -> &[PhaseSpan] {
        &self.phase_spans
    }

    /// Decision instants in record order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Per-(phase, rank) activity totals, sorted by (phase id, rank) for
    /// deterministic iteration.
    pub fn per_phase_rank(&self) -> Vec<((u32, usize), PhaseRankStats)> {
        let mut v: Vec<_> = self.per_phase_rank.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_counters_always_on() {
        let mut t = Tracer::new(2);
        t.phase_begin("work");
        t.phase_end(0.0, 2.5, 100);
        t.phase_begin("work");
        t.phase_end(2.5, 3.0, 10);
        assert_eq!(t.phase_time("work"), 3.0);
        assert_eq!(t.phase_bytes("work"), 110);
        assert_eq!(t.phase_time("nothing"), 0.0);
        assert!(t.phase_spans().is_empty(), "spans gated off by default");
    }

    #[test]
    fn spans_gated_on_enable() {
        let mut t = Tracer::new(2);
        t.record_compute(0, 0.0, 1.0, 8);
        assert!(t.spans()[0].is_empty());
        t.enable_spans();
        t.record_compute(0, 0.0, 1.0, 8);
        t.begin_collective("allreduce", 1.0, 0);
        t.record_comm(1, 1.0, 1.5, 16, 0);
        assert_eq!(t.spans()[0].len(), 1);
        assert_eq!(t.name(t.spans()[1][0].name), "allreduce");
        assert_eq!(t.syncs().len(), 1);
        assert_eq!(t.syncs()[0].blocker, 0);
    }

    #[test]
    fn nested_phases_attribute_innermost() {
        let mut t = Tracer::new(1);
        t.phase_begin("outer");
        t.phase_begin("inner");
        assert_eq!(t.name(t.current_phase()), "inner");
        t.phase_end(0.0, 1.0, 5);
        assert_eq!(t.name(t.current_phase()), "outer");
        t.phase_end(0.0, 3.0, 20);
        assert_eq!(t.phase_time("inner"), 1.0);
        assert_eq!(t.phase_time("outer"), 3.0);
    }

    #[test]
    fn reset_clears_events_keeps_flags() {
        let mut t = Tracer::new(1);
        t.enable_spans();
        t.record_compute(0, 0.0, 1.0, 8);
        t.phase_begin("x");
        t.phase_end(0.0, 1.0, 1);
        t.reset();
        assert!(t.spans()[0].is_empty());
        assert_eq!(t.phase_time("x"), 0.0);
        assert!(t.spans_enabled());
    }

    #[test]
    fn per_phase_rank_is_sorted() {
        let mut t = Tracer::new(3);
        t.enable_spans();
        t.phase_begin("a");
        t.record_compute(2, 0.0, 1.0, 8);
        t.record_compute(0, 0.0, 2.0, 16);
        t.phase_end(0.0, 2.0, 0);
        let v = t.per_phase_rank();
        assert_eq!(v.len(), 2);
        assert!(v[0].0 < v[1].0);
    }
}
