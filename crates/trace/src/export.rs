//! Chrome `trace_event` JSON export.
//!
//! The format is the Trace Event Format consumed by `chrome://tracing` and
//! Perfetto: a `traceEvents` array of objects with `ph` (phase letter),
//! `ts`/`dur` in microseconds, `pid`/`tid` tracks and free-form `args`.
//! We map the virtual machine onto one process (pid 0) with one thread per
//! rank (tid = rank) plus a global track (tid = p) carrying phase blocks,
//! sync points and decision instants.
//!
//! The export is a pure function of the recorded events: float formatting
//! uses Rust's shortest-round-trip `Display`, so identical traces always
//! serialise to identical bytes.

use crate::tracer::{SpanKind, Tracer};

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Virtual seconds → Chrome microseconds, rendered deterministically.
fn us(t: f64) -> String {
    format!("{}", t * 1e6)
}

/// Serialises the full trace as Chrome `trace_event` JSON.
///
/// Open the result in `chrome://tracing` or drag it into
/// <https://ui.perfetto.dev>. Rank timelines are threads of process 0;
/// phase blocks, sync instants and decision events live on the extra
/// "phases" track.
pub fn chrome_trace_json(t: &Tracer) -> String {
    let p = t.p();
    let mut ev: Vec<String> = Vec::new();
    ev.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
         \"args\":{\"name\":\"optipart virtual BSP machine\"}}"
            .to_string(),
    );
    for r in 0..p {
        ev.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{r},\
             \"args\":{{\"name\":\"rank {r}\"}}}}"
        ));
    }
    ev.push(format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\
         \"args\":{{\"name\":\"phases\"}}}}"
    ));

    for ps in t.phase_spans() {
        ev.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{},\
             \"dur\":{},\"pid\":0,\"tid\":{p},\"args\":{{\"bytes\":{}}}}}",
            json_escape(t.name(ps.name)),
            us(ps.t0),
            us(ps.t1 - ps.t0),
            ps.bytes,
        ));
    }
    for d in t.decisions() {
        let args: Vec<String> = d
            .args
            .iter()
            .map(|&(k, v)| format!("\"{}\":{}", json_escape(t.name(k)), v))
            .collect();
        ev.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"p\",\
             \"ts\":{},\"pid\":0,\"tid\":{p},\"args\":{{{}}}}}",
            json_escape(t.name(d.name)),
            us(d.t),
            args.join(","),
        ));
    }
    for s in t.syncs() {
        ev.push(format!(
            "{{\"name\":\"sync:{}\",\"cat\":\"sync\",\"ph\":\"i\",\"s\":\"p\",\
             \"ts\":{},\"pid\":0,\"tid\":{p},\"args\":{{\"blocker\":{}}}}}",
            json_escape(t.name(s.name)),
            us(s.t),
            s.blocker,
        ));
    }
    let wall = t.wall_time_enabled();
    for (r, spans) in t.spans().iter().enumerate() {
        for s in spans {
            let cat = match s.kind {
                SpanKind::Compute => "compute",
                SpanKind::Comm => "comm",
            };
            let wall_arg = if wall {
                format!(",\"wall_s\":{}", s.wall_s)
            } else {
                String::new()
            };
            ev.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\
                 \"dur\":{},\"pid\":0,\"tid\":{r},\"args\":{{\"bytes\":{},\
                 \"phase\":\"{}\"{wall_arg}}}}}",
                json_escape(t.name(s.name)),
                us(s.t0),
                us(s.t1 - s.t0),
                s.bytes,
                json_escape(t.name(s.phase)),
            ));
        }
    }
    for m in t.marks() {
        ev.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"value\":{}}}}}",
            json_escape(t.name(m.name)),
            us(m.t),
            m.rank,
            m.value,
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&ev.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// FNV-1a over a byte string — the digest primitive behind
/// [`chrome_trace_digest`], exposed so harnesses can fingerprint other
/// deterministic artefacts (reports, solution vectors) the same way.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A 64-bit fingerprint of the full Chrome export. Byte-identity of traces
/// is the repo's determinism contract (same seed ⇒ same trace at any host
/// thread count); the digest lets cross-run and cross-thread-count checks
/// compare traces without holding two multi-megabyte strings.
pub fn chrome_trace_digest(t: &Tracer) -> u64 {
    fnv1a(chrome_trace_json(t).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn export_is_valid_shape_and_deterministic() {
        let build = || {
            let mut t = Tracer::new(2);
            t.enable_spans();
            t.phase_begin("work");
            t.record_compute(0, 0.0, 1.5, 100);
            t.begin_collective("allreduce", 1.5, 0);
            t.record_comm(0, 1.5, 1.75, 8, 0);
            t.record_comm(1, 1.5, 1.75, 8, 0);
            t.phase_end(0.0, 1.75, 16);
            t.mark(1, 0.0, "fault.straggler", 4.0);
            t.decision(1.75, "probe", &[("tp", 0.5)]);
            t
        };
        let a = chrome_trace_json(&build());
        let b = chrome_trace_json(&build());
        assert_eq!(a, b, "export must be byte-identical");
        assert!(a.starts_with('{') && a.trim_end().ends_with('}'));
        assert!(a.contains("\"allreduce\""));
        assert!(a.contains("\"fault.straggler\""));
        assert!(a.contains("\"probe\""));
        assert!(!a.contains("wall_s"), "wall time excluded by default");
        // Balanced braces (cheap well-formedness check without a parser).
        let open = a.matches('{').count();
        let close = a.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn wall_time_only_when_enabled() {
        let mut t = Tracer::new(1);
        t.enable_spans();
        t.enable_wall_time();
        t.record_compute(0, 0.0, 1.0, 8);
        let j = chrome_trace_json(&t);
        assert!(j.contains("wall_s"));
    }
}
