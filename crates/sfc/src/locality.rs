//! Curve-quality diagnostics: clustering and continuity metrics.
//!
//! These back the paper's background claims (§1–2): Hilbert preserves more
//! locality than Morton, which is why the evaluation shows Hilbert producing
//! lower-NNZ communication matrices (Fig. 12). The metrics here quantify that
//! on small grids for tests and documentation.

use crate::cell::{Cell, MAX_DEPTH};
use crate::key::{Curve, KeyedCell};

/// Enumerates all `2^(D·level)` cells of a uniform grid at `level`, sorted in
/// curve order.
pub fn curve_traversal<const D: usize>(level: u8, curve: Curve) -> Vec<KeyedCell<D>> {
    assert!(
        level as u32 * D as u32 <= 24,
        "traversal grids are test-sized"
    );
    let mut cells = vec![Cell::<D>::root()];
    for _ in 0..level {
        cells = cells.iter().flat_map(|c| c.children()).collect();
    }
    let mut keyed = KeyedCell::key_all(&cells, curve);
    keyed.sort_unstable();
    keyed
}

/// Fraction of consecutive cell pairs along the curve that are face-adjacent.
///
/// 1.0 for Hilbert (continuous curve); strictly lower for Morton, whose jumps
/// between quadrant blocks break adjacency.
pub fn adjacency_fraction<const D: usize>(level: u8, curve: Curve) -> f64 {
    let cells = curve_traversal::<D>(level, curve);
    if cells.len() < 2 {
        return 1.0;
    }
    let adjacent = cells
        .windows(2)
        .filter(|w| w[0].cell.shares_face_with(&w[1].cell))
        .count();
    adjacent as f64 / (cells.len() - 1) as f64
}

/// Surface area (in finest-level face units) of the boundary of a contiguous
/// curve segment `cells[lo..hi]` against everything outside it, domain
/// boundary excluded.
///
/// This is the quantity the partition boundary metric `s` of Fig. 2 measures
/// for one partition.
pub fn segment_boundary_area<const D: usize>(cells: &[KeyedCell<D>], lo: usize, hi: usize) -> u64 {
    use std::collections::HashSet;
    let inside: HashSet<Cell<D>> = cells[lo..hi].iter().map(|kc| kc.cell).collect();
    let mut area = 0u64;
    for kc in &cells[lo..hi] {
        for axis in 0..D {
            for dir in [-1i8, 1] {
                if let Some(n) = kc.cell.face_neighbor(axis, dir) {
                    if !inside.contains(&n) {
                        // Same-level neighbour assumed (uniform-grid usage).
                        area += kc.cell.side() as u64;
                    }
                }
            }
        }
    }
    // For D=3 each face has side^2 area; for D=2 side^1. The loop above
    // counted side^1 per face, correct for 2D; scale for 3D.
    if D == 3 {
        // Recompute properly: each exposed face has area side^(D-1).
        // (The loop added side once per face; multiply by side^(D-2).)
        // Cheaper than branching inside the hot loop for test-sized grids.
        let side = cells.get(lo).map(|kc| kc.cell.side() as u64).unwrap_or(1);
        return area * side.pow((D as u32).saturating_sub(2));
    }
    area
}

/// Mean number of contiguous curve runs ("clusters") covering an axis-aligned
/// query box, averaged over a grid of query boxes — the clustering metric of
/// Moon et al. (2001). Lower is better.
pub fn mean_clusters_per_box<const D: usize>(level: u8, curve: Curve, box_cells: u32) -> f64 {
    let cells = curve_traversal::<D>(level, curve);
    let side = 1u32 << level; // cells per axis
    assert!(box_cells <= side);
    let mut rank = std::collections::HashMap::new();
    for (i, kc) in cells.iter().enumerate() {
        let a = kc.cell.anchor();
        let mut idx = [0u32; D];
        for d in 0..D {
            idx[d] = a[d] >> (MAX_DEPTH - level);
        }
        rank.insert(idx, i);
    }
    let positions = side - box_cells + 1;
    let mut total_clusters = 0usize;
    let mut boxes = 0usize;
    // Slide the box over every position (test-sized grids only).
    let mut origin = [0u32; D];
    loop {
        // Gather ranks of all cells in the box.
        let mut ranks = vec![];
        let mut ofs = [0u32; D];
        loop {
            let mut idx = [0u32; D];
            for d in 0..D {
                idx[d] = origin[d] + ofs[d];
            }
            ranks.push(rank[&idx]);
            // increment ofs
            let mut d = 0;
            loop {
                ofs[d] += 1;
                if ofs[d] < box_cells {
                    break;
                }
                ofs[d] = 0;
                d += 1;
                if d == D {
                    break;
                }
            }
            if d == D {
                break;
            }
        }
        ranks.sort_unstable();
        let clusters = 1 + ranks.windows(2).filter(|w| w[1] != w[0] + 1).count();
        total_clusters += clusters;
        boxes += 1;
        // increment origin
        let mut d = 0;
        loop {
            origin[d] += 1;
            if origin[d] < positions {
                break;
            }
            origin[d] = 0;
            d += 1;
            if d == D {
                break;
            }
        }
        if d == D {
            break;
        }
    }
    total_clusters as f64 / boxes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_is_continuous_morton_is_not_2d() {
        assert_eq!(adjacency_fraction::<2>(4, Curve::Hilbert), 1.0);
        assert!(adjacency_fraction::<2>(4, Curve::Morton) < 1.0);
    }

    #[test]
    fn hilbert_is_continuous_morton_is_not_3d() {
        assert_eq!(adjacency_fraction::<3>(3, Curve::Hilbert), 1.0);
        assert!(adjacency_fraction::<3>(3, Curve::Morton) < 1.0);
    }

    #[test]
    fn hilbert_clusters_better_than_morton() {
        // Moon et al.: Hilbert needs no more clusters per query box.
        let h = mean_clusters_per_box::<2>(4, Curve::Hilbert, 4);
        let m = mean_clusters_per_box::<2>(4, Curve::Morton, 4);
        assert!(
            h <= m,
            "hilbert {h} should cluster no worse than morton {m}"
        );
    }

    #[test]
    fn traversal_is_bijective() {
        for curve in Curve::ALL {
            let t = curve_traversal::<2>(3, curve);
            assert_eq!(t.len(), 64);
            let set: std::collections::HashSet<_> = t.iter().map(|kc| kc.cell).collect();
            assert_eq!(set.len(), 64);
        }
    }

    #[test]
    fn segment_boundary_smaller_for_hilbert() {
        // A half-curve segment should expose less boundary under Hilbert.
        for level in [3u8, 4] {
            let h = curve_traversal::<2>(level, Curve::Hilbert);
            let m = curve_traversal::<2>(level, Curve::Morton);
            let n = h.len();
            let bh = segment_boundary_area(&h, 0, n / 2);
            let bm = segment_boundary_area(&m, 0, n / 2);
            assert!(bh <= bm, "level {level}: hilbert {bh} vs morton {bm}");
        }
    }
}
