//! # optipart-sfc — space-filling-curve substrate
//!
//! This crate provides the geometric foundation of the OptiPart partitioner
//! (Fernando, Duplyakin & Sundar, *Machine and Application Aware Partitioning
//! for Adaptive Mesh Refinement Applications*, HPDC 2017):
//!
//! * [`Cell`] — a quadtree/octree cell ("octant" in 3D) addressed by its
//!   anchor corner and refinement level, discretised to
//!   [`MAX_DEPTH`] = 30 bits per coordinate exactly as in the paper (§3.1:
//!   "we considered trees of depth 30 (so that the coordinates can be
//!   represented using unsigned int)").
//! * [`Curve`] — the two space-filling curves evaluated in the paper,
//!   [`Curve::Morton`] and [`Curve::Hilbert`].
//! * [`SfcKey`] — the materialised position of a cell on a curve: a sequence
//!   of `MAX_DEPTH` base-2^D digits (one per tree level, most significant
//!   first) plus the cell level, with *ancestor-before-descendant* ordering.
//!
//! ## Keys vs. comparison functions
//!
//! The paper's `TreeSort` (Algorithm 1) buckets elements per level by
//! `child_num(a)` and then permutes the buckets by the curve ordering
//! `Rh(counts)`. Extracting digit `k` of an [`SfcKey`] yields exactly the
//! `Rh`-permuted child number: the digit *is* the rank of the child cell in
//! curve order at that level. Precomputing keys therefore turns TreeSort into
//! a textbook MSD radix sort over digits while preserving the algorithm's
//! semantics; this is the same trick p4est and Dendro use for Morton, extended
//! here to Hilbert via Skilling's transform.

pub mod cell;
pub mod hilbert;
pub mod key;
pub mod locality;
pub mod morton;

pub use cell::{Cell, Cell2, Cell3, Point, MAX_DEPTH};
pub use key::{Curve, KeyedCell, SfcKey};

// Property-test suites need the external `proptest` crate, which the
// offline tier-1 build cannot fetch; enable with `--features proptest`
// once a vendored copy is available.
#[cfg(all(test, feature = "proptest"))]
mod proptests;
