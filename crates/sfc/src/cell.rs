//! Quadtree/octree cells addressed by anchor corner + refinement level.
//!
//! A cell of level `l` occupies the half-open cube
//! `[anchor, anchor + 2^(MAX_DEPTH - l))^D` in the discrete coordinate space
//! `[0, 2^MAX_DEPTH)^D`. Level 0 is the root (the whole domain); level
//! `MAX_DEPTH` is the finest representable cell (a single lattice point).

/// Maximum refinement depth of the tree.
///
/// The paper evaluates trees of depth 30 so that coordinates fit in an
/// `unsigned int`; we mirror that: every coordinate uses bits
/// `[0, MAX_DEPTH)` of a `u32`.
pub const MAX_DEPTH: u8 = 30;

/// One coordinate of the discrete domain, `0 <= c < 2^MAX_DEPTH`.
pub type Coord = u32;

/// A point in the discrete domain (finest-level lattice coordinates).
pub type Point<const D: usize> = [Coord; D];

/// A quadtree (`D = 2`) or octree (`D = 3`) cell: anchor corner + level.
///
/// The anchor is the corner with the smallest coordinate along every
/// dimension. Invariant: all anchor bits below the cell's level are zero
/// (the anchor is aligned to the level-`l` lattice); constructors uphold it.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell<const D: usize> {
    anchor: [Coord; D],
    level: u8,
}

/// A quadtree cell.
pub type Cell2 = Cell<2>;
/// An octree cell (an *octant* in the paper's terminology).
pub type Cell3 = Cell<3>;

impl<const D: usize> Cell<D> {
    /// Number of children of an internal cell (`2^D`; 8 for octrees).
    pub const NUM_CHILDREN: usize = 1 << D;

    /// The root cell covering the whole domain.
    #[inline]
    pub const fn root() -> Self {
        Cell {
            anchor: [0; D],
            level: 0,
        }
    }

    /// Builds a cell from an anchor and level, aligning the anchor to the
    /// level's lattice (clears coordinate bits below the level).
    ///
    /// # Panics
    /// Panics if `level > MAX_DEPTH` or any coordinate is out of domain.
    #[inline]
    pub fn new(anchor: [Coord; D], level: u8) -> Self {
        assert!(
            level <= MAX_DEPTH,
            "level {level} exceeds MAX_DEPTH {MAX_DEPTH}"
        );
        let mask = !(side_len(level) - 1);
        let mut a = anchor;
        for c in &mut a {
            assert!(*c < (1 << MAX_DEPTH), "coordinate {c} out of domain");
            *c &= mask;
        }
        Cell { anchor: a, level }
    }

    /// The finest-level cell containing the given lattice point.
    #[inline]
    pub fn from_point(p: Point<D>) -> Self {
        Self::new(p, MAX_DEPTH)
    }

    /// Anchor corner (smallest coordinates).
    #[inline]
    pub fn anchor(&self) -> [Coord; D] {
        self.anchor
    }

    /// Refinement level, `0 ..= MAX_DEPTH`.
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Edge length of the cell in lattice units: `2^(MAX_DEPTH - level)`.
    #[inline]
    pub fn side(&self) -> Coord {
        side_len(self.level)
    }

    /// Number of finest-level lattice cells covered, as a weight measure.
    ///
    /// Saturates at `u64::MAX` for very coarse 3D cells (level < 9 needs more
    /// than 64 bits at D = 3; the saturation is irrelevant for balancing,
    /// which only compares weights of near-leaf cells).
    #[inline]
    pub fn volume(&self) -> u64 {
        let bits = (MAX_DEPTH - self.level) as u32 * D as u32;
        if bits >= 64 {
            u64::MAX
        } else {
            1u64 << bits
        }
    }

    /// The parent cell, or `None` for the root.
    #[inline]
    pub fn parent(&self) -> Option<Self> {
        if self.level == 0 {
            return None;
        }
        Some(Self::new(self.anchor, self.level - 1))
    }

    /// The ancestor of this cell at `level` (≤ the cell's own level).
    ///
    /// # Panics
    /// Panics if `level > self.level()`.
    #[inline]
    pub fn ancestor_at(&self, level: u8) -> Self {
        assert!(level <= self.level, "ancestor level must be coarser");
        Self::new(self.anchor, level)
    }

    /// Child number of this cell within its parent, in *coordinate* (Morton
    /// Z) order: bit `d` of the result is bit `MAX_DEPTH - level` of
    /// coordinate `d`.
    ///
    /// This is the `child_num(a)` of Algorithm 1 *before* the `Rh`
    /// permutation. Returns 0 for the root.
    #[inline]
    pub fn child_number(&self) -> usize {
        if self.level == 0 {
            return 0;
        }
        self.coordinate_digit(self.level - 1)
    }

    /// The coordinate-order (Morton) digit of this cell's anchor at split
    /// level `k` (i.e. which child of the level-`k` ancestor contains it).
    ///
    /// `k` must be `< MAX_DEPTH`; digits at or below the cell's own level are
    /// zero because the anchor is aligned.
    #[inline]
    pub fn coordinate_digit(&self, k: u8) -> usize {
        debug_assert!(k < MAX_DEPTH);
        let bit = MAX_DEPTH - 1 - k;
        let mut d = 0usize;
        for (i, &c) in self.anchor.iter().enumerate() {
            d |= (((c >> bit) & 1) as usize) << i;
        }
        d
    }

    /// The `i`-th child in coordinate (Morton Z) order.
    ///
    /// # Panics
    /// Panics if the cell is at `MAX_DEPTH` or `i >= 2^D`.
    #[inline]
    pub fn child(&self, i: usize) -> Self {
        assert!(self.level < MAX_DEPTH, "cannot refine a finest-level cell");
        assert!(i < Self::NUM_CHILDREN);
        let half = side_len(self.level + 1);
        let mut a = self.anchor;
        for (d, c) in a.iter_mut().enumerate() {
            if (i >> d) & 1 == 1 {
                *c += half;
            }
        }
        Cell {
            anchor: a,
            level: self.level + 1,
        }
    }

    /// All `2^D` children in coordinate order.
    pub fn children(&self) -> Vec<Self> {
        (0..Self::NUM_CHILDREN).map(|i| self.child(i)).collect()
    }

    /// Whether `self` is an ancestor of `other` (proper: not equal).
    #[inline]
    pub fn is_ancestor_of(&self, other: &Self) -> bool {
        if self.level >= other.level {
            return false;
        }
        let mask = !(side_len(self.level) - 1);
        (0..D).all(|d| (other.anchor[d] & mask) == self.anchor[d])
    }

    /// Whether `self` contains `other` (ancestor-or-equal).
    #[inline]
    pub fn contains(&self, other: &Self) -> bool {
        self == other || self.is_ancestor_of(other)
    }

    /// Whether the lattice point `p` lies inside this cell.
    #[inline]
    pub fn contains_point(&self, p: Point<D>) -> bool {
        let s = self.side();
        (0..D).all(|d| p[d] >= self.anchor[d] && p[d] - self.anchor[d] < s)
    }

    /// Whether two cells overlap (one contains the other, or equal).
    #[inline]
    pub fn overlaps(&self, other: &Self) -> bool {
        self.contains(other) || other.is_ancestor_of(self)
    }

    /// The face neighbour of the same size in direction `dir` along
    /// dimension `axis` (`dir = -1` or `+1`), or `None` at the domain
    /// boundary.
    #[inline]
    pub fn face_neighbor(&self, axis: usize, dir: i8) -> Option<Self> {
        debug_assert!(axis < D);
        let s = self.side();
        let mut a = self.anchor;
        match dir {
            1 => {
                let max = (1u32 << MAX_DEPTH) - s;
                if a[axis] >= max {
                    return None;
                }
                a[axis] += s;
            }
            -1 => {
                if a[axis] < s {
                    return None;
                }
                a[axis] -= s;
            }
            _ => panic!("dir must be -1 or +1"),
        }
        Some(Cell {
            anchor: a,
            level: self.level,
        })
    }

    /// All existing same-size face neighbours (up to `2 D` of them).
    pub fn face_neighbors(&self) -> Vec<Self> {
        let mut out = Vec::with_capacity(2 * D);
        for axis in 0..D {
            for dir in [-1i8, 1] {
                if let Some(n) = self.face_neighbor(axis, dir) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Whether two cells of *any* levels share a face (touch across a
    /// `(D-1)`-dimensional face with positive measure and do not overlap).
    pub fn shares_face_with(&self, other: &Self) -> bool {
        if self.overlaps(other) {
            return false;
        }
        let (sa, sb) = (self.side() as u64, other.side() as u64);
        let mut touching_axis = None;
        for d in 0..D {
            let (a0, a1) = (self.anchor[d] as u64, self.anchor[d] as u64 + sa);
            let (b0, b1) = (other.anchor[d] as u64, other.anchor[d] as u64 + sb);
            if a1 == b0 || b1 == a0 {
                // Abutting along this axis.
                if touching_axis.is_some() {
                    return false; // touches along 2 axes => edge/corner only
                }
                touching_axis = Some(d);
            } else if a1 <= b0 || b1 <= a0 {
                return false; // disjoint with a gap
            }
            // else: overlapping extent along this axis — fine.
        }
        touching_axis.is_some()
    }

    /// Surface area shared between two face-adjacent cells, in units of
    /// finest-level faces; 0 if they don't share a face.
    pub fn shared_face_area(&self, other: &Self) -> u64 {
        if !self.shares_face_with(other) {
            return 0;
        }
        let (sa, sb) = (self.side() as u64, other.side() as u64);
        let mut area = 1u64;
        for d in 0..D {
            let (a0, a1) = (self.anchor[d] as u64, self.anchor[d] as u64 + sa);
            let (b0, b1) = (other.anchor[d] as u64, other.anchor[d] as u64 + sb);
            if a1 == b0 || b1 == a0 {
                continue; // the touching axis contributes no extent
            }
            area *= a1.min(b1) - a0.max(b0);
        }
        area
    }

    /// Total surface area of the cell in units of finest-level faces.
    pub fn surface_area(&self) -> u64 {
        let s = self.side() as u64;
        2 * D as u64 * s.pow(D as u32 - 1)
    }

    /// Centre of the cell in unit-cube coordinates, for diagnostics.
    pub fn center_unit(&self) -> [f64; D] {
        let scale = 1.0 / (1u64 << MAX_DEPTH) as f64;
        let half = self.side() as f64 * 0.5;
        let mut c = [0.0; D];
        for (ci, &a) in c.iter_mut().zip(self.anchor.iter()) {
            *ci = (a as f64 + half) * scale;
        }
        c
    }
}

/// Edge length of a cell at `level`, in lattice units.
#[inline]
pub const fn side_len(level: u8) -> Coord {
    1 << (MAX_DEPTH - level)
}

impl<const D: usize> std::fmt::Debug for Cell<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cell(l={}, a={:?})", self.level, self.anchor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_covers_domain() {
        let r = Cell3::root();
        assert_eq!(r.level(), 0);
        assert_eq!(r.side(), 1 << MAX_DEPTH);
        assert!(r.contains_point([0, 0, 0]));
        assert!(r.contains_point([(1 << MAX_DEPTH) - 1; 3]));
    }

    #[test]
    fn child_parent_roundtrip() {
        let c = Cell3::new([1 << 29, 0, 1 << 28], 3);
        for i in 0..8 {
            let ch = c.child(i);
            assert_eq!(ch.parent().unwrap(), c);
            assert_eq!(ch.child_number(), i);
            assert!(c.is_ancestor_of(&ch));
            assert!(c.contains(&ch));
            assert!(!ch.is_ancestor_of(&c));
        }
    }

    #[test]
    fn children_partition_parent() {
        let c = Cell2::new([0, 0], 1);
        let kids = c.children();
        assert_eq!(kids.len(), 4);
        let vol: u64 = kids.iter().map(|k| k.volume()).sum();
        assert_eq!(vol, c.volume());
        for (i, a) in kids.iter().enumerate() {
            for (j, b) in kids.iter().enumerate() {
                if i != j {
                    assert!(!a.overlaps(b));
                }
            }
        }
    }

    #[test]
    fn anchor_aligned_on_construction() {
        let c = Cell3::new([7, 9, 13], 28);
        let s = c.side();
        for d in 0..3 {
            assert_eq!(c.anchor()[d] % s, 0);
        }
    }

    #[test]
    fn face_neighbor_at_boundary_is_none() {
        let c = Cell3::new([0, 0, 0], 1);
        assert!(c.face_neighbor(0, -1).is_none());
        assert!(c.face_neighbor(0, 1).is_some());
        let top = Cell3::new([1 << 29, 1 << 29, 1 << 29], 1);
        assert!(top.face_neighbor(2, 1).is_none());
    }

    #[test]
    fn face_sharing_same_level() {
        let a = Cell3::new([0, 0, 0], 2);
        let b = a.face_neighbor(1, 1).unwrap();
        assert!(a.shares_face_with(&b));
        assert!(b.shares_face_with(&a));
        assert_eq!(a.shared_face_area(&b), (a.side() as u64).pow(2));
        // Diagonal neighbour: shares an edge, not a face.
        let diag = Cell3::new([a.side(), a.side(), 0], 2);
        assert!(!a.shares_face_with(&diag));
    }

    #[test]
    fn face_sharing_cross_level() {
        let coarse = Cell3::new([0, 0, 0], 2);
        // A fine cell abutting coarse's +x face.
        let fine = Cell3::new([coarse.side(), 0, 0], 4);
        assert!(coarse.shares_face_with(&fine));
        assert_eq!(coarse.shared_face_area(&fine), (fine.side() as u64).pow(2));
        // A fine cell inside coarse does not "share a face".
        let inside = Cell3::new([0, 0, 0], 4);
        assert!(!coarse.shares_face_with(&inside));
    }

    #[test]
    fn surface_area_formula() {
        let c = Cell3::new([0, 0, 0], MAX_DEPTH);
        assert_eq!(c.surface_area(), 6);
        let q = Cell2::new([0, 0], MAX_DEPTH);
        assert_eq!(q.surface_area(), 4);
    }

    #[test]
    #[should_panic]
    fn refining_finest_cell_panics() {
        let c = Cell3::new([0, 0, 0], MAX_DEPTH);
        let _ = c.child(0);
    }

    #[test]
    fn volume_saturates_for_coarse_3d() {
        assert_eq!(Cell3::root().volume(), u64::MAX);
        let fine = Cell3::new([0, 0, 0], MAX_DEPTH);
        assert_eq!(fine.volume(), 1);
    }

    #[test]
    fn ancestor_at_levels() {
        let c = Cell3::new([12345 << 10, 777 << 10, 31 << 20], 20);
        let a = c.ancestor_at(5);
        assert!(a.contains(&c));
        assert_eq!(a.level(), 5);
        assert_eq!(c.ancestor_at(20), c);
    }
}
