//! Property-based tests for the SFC substrate invariants.
//!
//! Strategies come from `optipart_testkit::strategies` — the shared home
//! of the generators every crate's property suite draws from. Because a
//! crate's unit-test target is a *separate compilation* of the crate, the
//! types in scope here must be the testkit re-exports
//! (`optipart_testkit::sfc::…`), never `crate::…` paths: mixing the two
//! produces "expected `Cell3`, found `Cell3`" type-identity errors.

use optipart_testkit::sfc::cell::{Cell3, MAX_DEPTH};
use optipart_testkit::sfc::key::{Curve, SfcKey};
use optipart_testkit::sfc::{hilbert, morton};
use optipart_testkit::strategies::{cell2, cell3, coord};
use proptest::prelude::*;

proptest! {
    #[test]
    fn morton_roundtrip_3d(x in coord(), y in coord(), z in coord()) {
        let p = [x, y, z];
        prop_assert_eq!(morton::deinterleave::<3>(morton::interleave::<3>(p)), p);
    }

    #[test]
    fn hilbert_roundtrip_3d(x in coord(), y in coord(), z in coord()) {
        let p = [x, y, z];
        prop_assert_eq!(hilbert::hilbert_point::<3>(hilbert::hilbert_path::<3>(p)), p);
    }

    #[test]
    fn hilbert_roundtrip_2d(x in coord(), y in coord()) {
        let p = [x, y];
        prop_assert_eq!(hilbert::hilbert_point::<2>(hilbert::hilbert_path::<2>(p)), p);
    }

    /// The defining Hilbert property: consecutive curve positions are
    /// face-adjacent lattice points (differ by 1 in exactly one coordinate).
    #[test]
    fn hilbert_consecutive_points_adjacent_3d(h in 0u128..((1u128 << 90) - 1)) {
        let a = hilbert::hilbert_point::<3>(h);
        let b = hilbert::hilbert_point::<3>(h + 1);
        let dist: u64 = (0..3)
            .map(|d| (a[d] as i64 - b[d] as i64).unsigned_abs())
            .sum();
        prop_assert_eq!(dist, 1, "points {:?} and {:?} at h={} not adjacent", a, b, h);
    }

    #[test]
    fn hilbert_consecutive_points_adjacent_2d(h in 0u128..((1u128 << 60) - 1)) {
        let a = hilbert::hilbert_point::<2>(h);
        let b = hilbert::hilbert_point::<2>(h + 1);
        let dist: u64 = (0..2)
            .map(|d| (a[d] as i64 - b[d] as i64).unsigned_abs())
            .sum();
        prop_assert_eq!(dist, 1);
    }

    /// Keys preserve the containment partial order as a prefix relation.
    #[test]
    fn ancestor_key_is_prefix(c in cell3(), lvl in 0u8..=MAX_DEPTH) {
        let lvl = lvl.min(c.level());
        let anc = c.ancestor_at(lvl);
        for curve in Curve::ALL {
            let kc = SfcKey::of(&c, curve);
            let ka = SfcKey::of(&anc, curve);
            prop_assert_eq!(kc.prefix::<3>(lvl), ka);
            prop_assert!(ka <= kc);
        }
    }

    /// Key ordering of disjoint cells agrees with the ordering of any points
    /// they contain (the curve order of regions is the curve order of their
    /// interiors).
    #[test]
    fn disjoint_cells_order_like_their_points(a in cell3(), b in cell3()) {
        prop_assume!(!a.overlaps(&b));
        for curve in Curve::ALL {
            let ka = SfcKey::of(&a, curve);
            let kb = SfcKey::of(&b, curve);
            prop_assert_ne!(ka.cmp(&kb), std::cmp::Ordering::Equal);
            // The anchors' full-resolution keys must order the same way the
            // cell keys do.
            let pa = SfcKey::of(&Cell3::from_point(a.anchor()), curve);
            let pb = SfcKey::of(&Cell3::from_point(b.anchor()), curve);
            prop_assert_eq!(ka < kb, pa < pb);
        }
    }

    #[test]
    fn key_cell_roundtrip_3d(c in cell3()) {
        for curve in Curve::ALL {
            prop_assert_eq!(SfcKey::of(&c, curve).to_cell::<3>(curve), c);
        }
    }

    #[test]
    fn key_cell_roundtrip_2d(c in cell2()) {
        for curve in Curve::ALL {
            prop_assert_eq!(SfcKey::of(&c, curve).to_cell::<2>(curve), c);
        }
    }

    /// child_number/coordinate_digit consistency along the ancestor chain.
    #[test]
    fn digits_trace_ancestry(c in cell3()) {
        for k in 0..c.level() {
            let child = c.ancestor_at(k + 1);
            prop_assert_eq!(c.coordinate_digit(k), child.child_number());
        }
    }

    /// Face sharing is symmetric and disjoint from overlap.
    #[test]
    fn face_sharing_symmetric(a in cell3(), b in cell3()) {
        prop_assert_eq!(a.shares_face_with(&b), b.shares_face_with(&a));
        if a.overlaps(&b) {
            prop_assert!(!a.shares_face_with(&b));
        }
        prop_assert_eq!(a.shared_face_area(&b), b.shared_face_area(&a));
    }

    /// Shared face area is bounded by the smaller cell's face.
    #[test]
    fn shared_area_bounded(a in cell3(), b in cell3()) {
        let area = a.shared_face_area(&b);
        let min_side = a.side().min(b.side()) as u64;
        prop_assert!(area <= min_side * min_side);
        if a.shares_face_with(&b) {
            prop_assert!(area > 0);
        } else {
            prop_assert_eq!(area, 0);
        }
    }
}
