//! Hilbert curve via Skilling's transpose transform.
//!
//! J. Skilling, "Programming the Hilbert curve", AIP Conf. Proc. 707 (2004).
//! The transform converts between axis coordinates and the *transpose* of the
//! Hilbert index in place with O(D · MAX_DEPTH) bit operations — no lookup
//! tables, any dimension. The paper notes (§2.1) that level-dependent child
//! orderings like Hilbert's "can be applied at this level with an O(1) cost";
//! Skilling's per-level loop body is exactly that O(1) state update.
//!
//! The defining property (verified by the crate's property tests):
//! consecutive Hilbert indices map to lattice points
//! that differ by exactly 1 in exactly one coordinate, i.e. the curve is a
//! Hamiltonian path of face-adjacent cells.

use crate::cell::{Coord, MAX_DEPTH};

/// Converts axis coordinates (each `MAX_DEPTH` bits) into the transposed
/// Hilbert index, in place.
///
/// After the call, bit `b` of `x[i]` holds Hilbert-index bit
/// `b * D + (D - 1 - i)`: interleaving the transformed words MSB-first with
/// `x[0]` first yields the Hilbert index.
pub fn axes_to_transpose<const D: usize>(x: &mut [Coord; D]) {
    let m: Coord = 1 << (MAX_DEPTH - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..D {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..D {
        x[i] ^= x[i - 1];
    }
    let mut t: Coord = 0;
    let mut q = m;
    while q > 1 {
        if x[D - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Inverse of [`axes_to_transpose`]: converts a transposed Hilbert index back
/// into axis coordinates, in place.
pub fn transpose_to_axes<const D: usize>(x: &mut [Coord; D]) {
    let n: u64 = 2u64 << (MAX_DEPTH - 1);
    // Gray decode by H ^ (H/2).
    let mut t = x[D - 1] >> 1;
    for i in (1..D).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q: u64 = 2;
    while q != n {
        let p = (q - 1) as Coord;
        for i in (0..D).rev() {
            if x[i] & q as Coord != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Packs a transposed index into a single path integer: digit `k`
/// (split level `k`) occupies bits `[(MAX_DEPTH-1-k)*D, (MAX_DEPTH-k)*D)`,
/// with `x[0]`'s bit as the most significant bit of each digit.
pub fn transpose_to_path<const D: usize>(x: &[Coord; D]) -> u128 {
    let mut path: u128 = 0;
    for k in 0..MAX_DEPTH {
        let bit = MAX_DEPTH - 1 - k;
        let mut digit: u128 = 0;
        for (i, &xi) in x.iter().enumerate() {
            digit |= (((xi >> bit) & 1) as u128) << (D - 1 - i);
        }
        path |= digit << ((MAX_DEPTH - 1 - k) as u32 * D as u32);
    }
    path
}

/// Inverse of [`transpose_to_path`].
pub fn path_to_transpose<const D: usize>(path: u128) -> [Coord; D] {
    let mut x = [0 as Coord; D];
    for k in 0..MAX_DEPTH {
        let digit = (path >> ((MAX_DEPTH - 1 - k) as u32 * D as u32)) & ((1 << D) - 1);
        let bit = MAX_DEPTH - 1 - k;
        for (i, xi) in x.iter_mut().enumerate() {
            *xi |= (((digit >> (D - 1 - i)) & 1) as Coord) << bit;
        }
    }
    x
}

/// Hilbert path of a lattice point: [`axes_to_transpose`] + packing.
pub fn hilbert_path<const D: usize>(coords: [Coord; D]) -> u128 {
    let mut x = coords;
    axes_to_transpose(&mut x);
    transpose_to_path(&x)
}

/// Inverse of [`hilbert_path`]: lattice point visited at the given path.
pub fn hilbert_point<const D: usize>(path: u128) -> [Coord; D] {
    let mut x = path_to_transpose::<D>(path);
    transpose_to_axes(&mut x);
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_3d() {
        for p in [
            [0u32, 0, 0],
            [123456, 654321, 42],
            [(1 << MAX_DEPTH) - 1; 3],
        ] {
            assert_eq!(hilbert_point::<3>(hilbert_path::<3>(p)), p);
        }
    }

    #[test]
    fn roundtrip_2d() {
        for p in [[0u32, 0], [99999, 1], [(1 << MAX_DEPTH) - 1, 12345]] {
            assert_eq!(hilbert_point::<2>(hilbert_path::<2>(p)), p);
        }
    }

    #[test]
    fn curve_is_bijection_on_coarse_grid_2d() {
        // Enumerate the curve over the 4x4 top-level grid (digits at levels
        // 0 and 1); every cell must be visited exactly once, consecutively
        // adjacent.
        let step = 1u128 << ((MAX_DEPTH - 2) as u32 * 2); // one level-2 cell
        let mut seen = std::collections::HashSet::new();
        let mut prev: Option<[Coord; 2]> = None;
        for i in 0..16u128 {
            let p = hilbert_point::<2>(i * step);
            let cell = [p[0] >> (MAX_DEPTH - 2), p[1] >> (MAX_DEPTH - 2)];
            assert!(seen.insert(cell), "cell {cell:?} visited twice");
            if let Some(q) = prev {
                let d = (cell[0] as i64 - q[0] as i64).abs() + (cell[1] as i64 - q[1] as i64).abs();
                assert_eq!(d, 1, "consecutive level-2 cells must be face-adjacent");
            }
            prev = Some(cell);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn curve_is_bijection_on_coarse_grid_3d() {
        let step = 1u128 << ((MAX_DEPTH - 2) as u32 * 3);
        let mut seen = std::collections::HashSet::new();
        let mut prev: Option<[Coord; 3]> = None;
        for i in 0..64u128 {
            let p = hilbert_point::<3>(i * step);
            let cell = [
                p[0] >> (MAX_DEPTH - 2),
                p[1] >> (MAX_DEPTH - 2),
                p[2] >> (MAX_DEPTH - 2),
            ];
            assert!(seen.insert(cell), "cell {cell:?} visited twice");
            if let Some(q) = prev {
                let d: i64 = (0..3).map(|k| (cell[k] as i64 - q[k] as i64).abs()).sum();
                assert_eq!(d, 1, "consecutive level-2 octants must be face-adjacent");
            }
            prev = Some(cell);
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn origin_is_curve_start() {
        assert_eq!(hilbert_path::<3>([0, 0, 0]), 0);
        assert_eq!(hilbert_path::<2>([0, 0]), 0);
    }
}
