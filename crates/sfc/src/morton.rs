//! Morton (Z-order) curve: bit interleaving of coordinates.
//!
//! The Morton digit of a point at split level `k` is simply the concatenation
//! of bit `MAX_DEPTH-1-k` of each coordinate — the curve ordering of children
//! is fixed and independent of level (§2.1: "In case of the Morton Curve, the
//! ordering is fixed, independent of the level").

use crate::cell::{Coord, MAX_DEPTH};

/// Interleaves `D` coordinates of `MAX_DEPTH` bits each into a Morton path.
///
/// Digit `k` (level-`k+1` child rank) occupies bits
/// `[(MAX_DEPTH-1-k)*D, (MAX_DEPTH-k)*D)` of the result, so the whole path
/// compares MSB-first as an integer. Within a digit, coordinate `d`
/// contributes bit `d` (x is the least significant), matching
/// [`crate::Cell::child_number`].
pub fn interleave<const D: usize>(coords: [Coord; D]) -> u128 {
    let mut path: u128 = 0;
    for k in 0..MAX_DEPTH {
        let bit = MAX_DEPTH - 1 - k;
        let mut digit: u128 = 0;
        for (d, &c) in coords.iter().enumerate() {
            digit |= (((c >> bit) & 1) as u128) << d;
        }
        path |= digit << ((MAX_DEPTH - 1 - k) as u32 * D as u32);
    }
    path
}

/// Inverse of [`interleave`]: recovers the coordinates from a Morton path.
pub fn deinterleave<const D: usize>(path: u128) -> [Coord; D] {
    let mut coords = [0 as Coord; D];
    for k in 0..MAX_DEPTH {
        let digit = (path >> ((MAX_DEPTH - 1 - k) as u32 * D as u32)) & ((1 << D) - 1);
        let bit = MAX_DEPTH - 1 - k;
        for (d, c) in coords.iter_mut().enumerate() {
            *c |= (((digit >> d) & 1) as Coord) << bit;
        }
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_roundtrip_3d() {
        let pts: [[Coord; 3]; 4] = [
            [0, 0, 0],
            [(1 << MAX_DEPTH) - 1, 0, 123456],
            [0x2AAA_AAAA & ((1 << MAX_DEPTH) - 1), 0x1555_5555, 42],
            [1, 2, 4],
        ];
        for p in pts {
            assert_eq!(deinterleave::<3>(interleave::<3>(p)), p);
        }
    }

    #[test]
    fn interleave_roundtrip_2d() {
        for p in [[0, 0], [7, 3], [(1 << MAX_DEPTH) - 1, (1 << MAX_DEPTH) - 1]] {
            assert_eq!(deinterleave::<2>(interleave::<2>(p)), p);
        }
    }

    #[test]
    fn morton_orders_quadrants_in_z() {
        // The four level-1 quadrants in Z order: (0,0), (1,0), (0,1), (1,1).
        let h = 1 << (MAX_DEPTH - 1);
        let z00 = interleave::<2>([0, 0]);
        let z10 = interleave::<2>([h, 0]);
        let z01 = interleave::<2>([0, h]);
        let z11 = interleave::<2>([h, h]);
        assert!(z00 < z10 && z10 < z01 && z01 < z11);
    }

    #[test]
    fn top_digit_is_child_number() {
        let h = 1 << (MAX_DEPTH - 1);
        for (i, p) in [
            [0, 0, 0],
            [h, 0, 0],
            [0, h, 0],
            [h, h, 0],
            [0, 0, h],
            [h, 0, h],
            [0, h, h],
            [h, h, h],
        ]
        .iter()
        .enumerate()
        {
            let path = interleave::<3>(*p);
            let top = (path >> ((MAX_DEPTH - 1) as u32 * 3)) & 7;
            assert_eq!(top as usize, i);
        }
    }
}
