//! Materialised SFC keys with ancestor-first ordering of cells.

use crate::cell::{Cell, MAX_DEPTH};
use crate::{hilbert, morton};

/// The space-filling curve used for ordering, the two evaluated in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Curve {
    /// Z-order / Lebesgue curve: fixed child ordering, cheap, discontinuous.
    Morton,
    /// Hilbert curve: level-dependent child ordering, face-continuous,
    /// better clustering (Moon et al. 2001).
    Hilbert,
}

impl Curve {
    /// Both curves, handy for sweeps.
    pub const ALL: [Curve; 2] = [Curve::Morton, Curve::Hilbert];

    /// Short lowercase name for table output.
    pub fn name(self) -> &'static str {
        match self {
            Curve::Morton => "morton",
            Curve::Hilbert => "hilbert",
        }
    }
}

impl std::fmt::Display for Curve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Position of a cell on a space-filling curve.
///
/// `path` stores `MAX_DEPTH` digits of `D` bits each, most significant digit
/// (coarsest split) first; digits at or below the cell's `level` are zero.
/// The derived lexicographic order `(path, level)` realises the standard
/// *ancestor-before-descendant* ordering of linear octrees: an ancestor's
/// zero-padded path is `<=` every descendant path, and the `level` tie-break
/// puts the ancestor first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SfcKey {
    path: u128,
    level: u8,
}

impl SfcKey {
    /// Key of `cell` on `curve`.
    ///
    /// For Hilbert, the digits of the anchor's Skilling path above the cell's
    /// level are exactly the curve-order child ranks of the cell's ancestor
    /// chain (the anchor lies inside the cell, and all points inside a cell
    /// share the path prefix leading to it); digits below the level are
    /// masked off.
    ///
    /// ```
    /// use optipart_sfc::{Cell3, Curve, SfcKey};
    /// let parent = Cell3::new([0, 0, 0], 3);
    /// let child = parent.child(5);
    /// for curve in Curve::ALL {
    ///     let kp = SfcKey::of(&parent, curve);
    ///     let kc = SfcKey::of(&child, curve);
    ///     assert!(kp < kc, "ancestors order before descendants");
    ///     assert_eq!(kc.prefix::<3>(3).path(), kp.path());
    /// }
    /// ```
    pub fn of<const D: usize>(cell: &Cell<D>, curve: Curve) -> SfcKey {
        let full = match curve {
            Curve::Morton => morton::interleave(cell.anchor()),
            Curve::Hilbert => hilbert::hilbert_path(cell.anchor()),
        };
        SfcKey {
            path: mask_below_level::<D>(full, cell.level()),
            level: cell.level(),
        }
    }

    /// The smallest possible key (root's position).
    pub const MIN: SfcKey = SfcKey { path: 0, level: 0 };

    /// A key strictly greater than every cell key (used as a sentinel
    /// splitter for the last partition).
    pub const MAX: SfcKey = SfcKey {
        path: u128::MAX,
        level: u8::MAX,
    };

    /// The raw digit path.
    #[inline]
    pub fn path(&self) -> u128 {
        self.path
    }

    /// The cell level this key was built from.
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Digit (curve-order child rank) at split level `k`, i.e. which child of
    /// the level-`k` ancestor the cell lies in, ranked along the curve.
    ///
    /// This equals Algorithm 1's `Rh(child_num(a))` at that level.
    #[inline]
    pub fn digit<const D: usize>(&self, k: u8) -> usize {
        debug_assert!(k < MAX_DEPTH);
        ((self.path >> ((MAX_DEPTH - 1 - k) as u32 * D as u32)) & ((1 << D) - 1)) as usize
    }

    /// The key truncated to the first `level` digits (its ancestor's key on
    /// the same curve).
    #[inline]
    pub fn prefix<const D: usize>(&self, level: u8) -> SfcKey {
        let l = level.min(self.level);
        SfcKey {
            path: mask_below_level::<D>(self.path, l),
            level: l,
        }
    }

    /// Reconstructs the cell this key addresses.
    ///
    /// The zero-padded digits below `level` address the curve's first visit
    /// inside the cell — a point inside the cell — so taking that point's
    /// ancestor at `level` recovers the cell for either curve.
    pub fn to_cell<const D: usize>(&self, curve: Curve) -> Cell<D> {
        let point = match curve {
            Curve::Morton => morton::deinterleave::<D>(self.path),
            Curve::Hilbert => hilbert::hilbert_point::<D>(self.path),
        };
        Cell::new(point, MAX_DEPTH).ancestor_at(self.level)
    }

    /// Builds a key directly from raw parts (for splitters).
    #[inline]
    pub fn from_parts(path: u128, level: u8) -> SfcKey {
        SfcKey { path, level }
    }
}

#[inline]
fn mask_below_level<const D: usize>(path: u128, level: u8) -> u128 {
    if level >= MAX_DEPTH {
        return path;
    }
    let low_bits = (MAX_DEPTH - level) as u32 * D as u32;
    path & !((1u128 << low_bits) - 1)
}

impl std::fmt::Debug for SfcKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SfcKey(l={}, path={:#x})", self.level, self.path)
    }
}

/// A cell bundled with its key on a chosen curve — the element type flowing
/// through TreeSort and the partitioners.
///
/// Ordering is by key alone, so sorting `KeyedCell`s realises the SFC order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KeyedCell<const D: usize> {
    /// Curve position; the sort key.
    pub key: SfcKey,
    /// The underlying cell.
    pub cell: Cell<D>,
}

impl<const D: usize> KeyedCell<D> {
    /// Keys a cell on the given curve.
    #[inline]
    pub fn new(cell: Cell<D>, curve: Curve) -> Self {
        KeyedCell {
            key: SfcKey::of(&cell, curve),
            cell,
        }
    }

    /// Keys every cell of a slice (convenience for building inputs).
    pub fn key_all(cells: &[Cell<D>], curve: Curve) -> Vec<Self> {
        cells.iter().map(|c| Self::new(*c, curve)).collect()
    }
}

impl<const D: usize> PartialOrd for KeyedCell<D> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<const D: usize> Ord for KeyedCell<D> {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell3;

    #[test]
    fn ancestor_orders_before_descendants() {
        for curve in Curve::ALL {
            let parent = Cell3::new([1 << 29, 0, 1 << 28], 4);
            let kp = SfcKey::of(&parent, curve);
            for i in 0..8 {
                let kc = SfcKey::of(&parent.child(i), curve);
                assert!(kp < kc, "{curve}: parent key must precede child {i}");
                assert_eq!(kc.prefix::<3>(4).path(), kp.path());
            }
        }
    }

    #[test]
    fn digits_match_morton_child_number() {
        let c = Cell3::new([123 << 20, 45 << 20, 67 << 20], 10);
        let k = SfcKey::of(&c, Curve::Morton);
        for lvl in 0..10 {
            let anc_child = c.ancestor_at(lvl + 1);
            assert_eq!(k.digit::<3>(lvl), anc_child.child_number());
        }
    }

    #[test]
    fn hilbert_digits_are_curve_ranks() {
        // The 8 children of the root, sorted by Hilbert key, must each have a
        // distinct top digit 0..8 in that order.
        let root = Cell3::root();
        let mut keyed: Vec<_> = root
            .children()
            .into_iter()
            .map(|c| KeyedCell::new(c, Curve::Hilbert))
            .collect();
        keyed.sort();
        for (rank, kc) in keyed.iter().enumerate() {
            assert_eq!(kc.key.digit::<3>(0), rank);
        }
    }

    #[test]
    fn key_to_cell_roundtrip() {
        for curve in Curve::ALL {
            for (a, l) in [
                ([0u32, 0, 0], 0u8),
                ([5 << 24, 3 << 24, 1 << 24], 6),
                ([1, 2, 3], MAX_DEPTH),
            ] {
                let cell = Cell3::new(a, l);
                let key = SfcKey::of(&cell, curve);
                assert_eq!(key.to_cell::<3>(curve), cell, "{curve} roundtrip failed");
            }
        }
    }

    #[test]
    fn sorted_keys_realise_depth_first_preorder() {
        // Build a small complete tree (root split twice, one child split
        // again); sorted keys must give a valid pre-order: every ancestor
        // before its descendants, siblings grouped.
        for curve in Curve::ALL {
            let mut cells = vec![];
            for c1 in Cell3::root().children() {
                for c2 in c1.children() {
                    cells.push(c2);
                }
            }
            let mut keyed = KeyedCell::key_all(&cells, curve);
            keyed.sort();
            // All 64 level-2 cells present, and consecutive runs of 8 share a
            // level-1 parent.
            assert_eq!(keyed.len(), 64);
            for chunk in keyed.chunks(8) {
                let p = chunk[0].cell.parent().unwrap();
                assert!(chunk.iter().all(|kc| kc.cell.parent().unwrap() == p));
            }
        }
    }

    #[test]
    fn min_max_sentinels() {
        let c = Cell3::new([(1 << MAX_DEPTH) - 1; 3], MAX_DEPTH);
        for curve in Curve::ALL {
            let k = SfcKey::of(&c, curve);
            assert!(SfcKey::MIN <= k);
            assert!(k < SfcKey::MAX);
        }
    }
}
