//! Shared plumbing for the figure harness.

use optipart_core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart_fem::DistMesh;
use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::Engine;
use optipart_octree::{LinearTree, MeshParams};
use optipart_sfc::Curve;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

/// A captured table: name, headers, string rows.
type EmittedTable = (String, Vec<String>, Vec<Vec<String>>);

/// Every table emitted during this process, captured for
/// [`write_summary`]'s machine-readable `BENCH_summary.json`.
static EMITTED: Mutex<Vec<EmittedTable>> = Mutex::new(Vec::new());

/// Global configuration of a harness run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Multiplier on the paper's problem sizes (1.0 = paper scale where
    /// memory allows; defaults are figure-specific fractions).
    pub scale: f64,
    /// Directory for CSV output (`None` = stdout only).
    pub out_dir: Option<PathBuf>,
    /// Mesh seed, fixed for reproducibility.
    pub seed: u64,
    /// Top virtual rank count of the `scaling` strong-scaling sweep
    /// (default = the paper's full Titan count).
    pub max_p: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            scale: 1.0,
            out_dir: None,
            seed: 0x0511_2017,
            max_p: 262_144,
        }
    }
}

impl RunConfig {
    /// Scales a default element count, keeping at least `min`.
    pub fn n(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(min)
    }
}

/// A text/CSV results table.
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints aligned to stdout and writes CSV when configured.
    pub fn emit(&self, cfg: &RunConfig) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        println!("\n== {} ==", self.name);
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.headers));
        for row in &self.rows {
            println!("{}", line(row));
        }
        if let Some(dir) = &cfg.out_dir {
            fs::create_dir_all(dir).expect("create out dir");
            let path = dir.join(format!("{}.csv", self.name));
            let mut f = fs::File::create(&path).expect("create csv");
            writeln!(f, "{}", self.headers.join(",")).unwrap();
            for row in &self.rows {
                writeln!(f, "{}", row.join(",")).unwrap();
            }
            eprintln!("wrote {}", path.display());
        }
        EMITTED
            .lock()
            .unwrap()
            .push((self.name.clone(), self.headers.clone(), self.rows.clone()));
    }
}

/// Writes `BENCH_summary.json` — a machine-readable digest of the run: one
/// entry per figure with its host wall time, plus every emitted table
/// (virtual timings, NNZ, imbalance, …) as headers + string rows. Lands in
/// `--out DIR` when given, the working directory otherwise.
pub fn write_summary(cfg: &RunConfig, figures: &[(String, f64)]) {
    use optipart_trace::json_escape;
    let mut s = String::from("{\n  \"figures\": [\n");
    for (i, (id, wall)) in figures.iter().enumerate() {
        let sep = if i + 1 == figures.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"wall_s\": {:.6}}}{}\n",
            json_escape(id),
            wall,
            sep
        ));
    }
    s.push_str("  ],\n  \"tables\": [\n");
    let tables = EMITTED.lock().unwrap();
    for (i, (name, headers, rows)) in tables.iter().enumerate() {
        let quote = |cells: &[String]| {
            cells
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"headers\": [{}], \"rows\": [",
            json_escape(name),
            quote(headers)
        ));
        for (j, row) in rows.iter().enumerate() {
            let sep = if j + 1 == rows.len() { "" } else { ", " };
            s.push_str(&format!("[{}]{}", quote(row), sep));
        }
        let sep = if i + 1 == tables.len() { "" } else { "," };
        s.push_str(&format!("]}}{}\n", sep));
    }
    s.push_str("  ]\n}\n");
    let dir = cfg.out_dir.clone().unwrap_or_else(|| PathBuf::from("."));
    fs::create_dir_all(&dir).expect("create out dir");
    let path = dir.join("BENCH_summary.json");
    fs::write(&path, s).expect("write summary");
    eprintln!("wrote {}", path.display());
}

/// Formats a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// Builds a normal-distribution mesh with roughly `n` elements.
pub fn mesh(n: usize, seed: u64, curve: Curve) -> LinearTree<3> {
    MeshParams {
        num_points: n,
        seed,
        ..Default::default()
    }
    .build(curve)
}

/// Engine for a machine preset with the Laplacian application model.
pub fn engine(machine: MachineModel, p: usize) -> Engine {
    Engine::new(p, PerfModel::new(machine, AppModel::laplacian_matvec()))
}

/// Partitions a tree with the given tolerance and builds the FEM mesh.
pub fn partitioned_mesh(e: &mut Engine, tree: &LinearTree<3>, tol: f64) -> DistMesh<3> {
    let p = e.p();
    let out = treesort_partition(
        e,
        distribute_tree(tree, p),
        PartitionOptions::with_tolerance(tol),
    );
    DistMesh::build(e, out.dist, tree.curve())
}

/// The tolerance sweep grid of Figs. 7–12.
pub fn tolerance_grid(max: f64, step: f64) -> Vec<f64> {
    let mut v = Vec::new();
    let mut t = 0.0;
    while t <= max + 1e-9 {
        v.push((t * 100.0).round() / 100.0);
        t += step;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_grid_matches_paper_axes() {
        let g = tolerance_grid(0.5, 0.05);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], 0.0);
        assert_eq!(*g.last().unwrap(), 0.5);
    }

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("test", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("optipart-table-test");
        let cfg = RunConfig {
            out_dir: Some(dir.clone()),
            ..Default::default()
        };
        t.emit(&cfg);
        let written = std::fs::read_to_string(dir.join("test.csv")).unwrap();
        assert!(written.contains("a,b"));
        assert!(written.contains("1,2"));
    }

    #[test]
    fn scale_floors_at_min() {
        let cfg = RunConfig {
            scale: 0.0001,
            ..Default::default()
        };
        assert_eq!(cfg.n(1_000_000, 500), 500);
    }
}
