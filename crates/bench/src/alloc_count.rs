//! A counting global allocator for the `bench` binary.
//!
//! Wraps [`std::alloc::System`] and counts every allocation (and realloc)
//! with relaxed atomics — cheap enough to leave on for the whole process.
//! Allocation *counts* are deterministic for a fixed workload and thread
//! budget, unlike wall-clock, which is what makes them comparable across
//! machines in `bench compare`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Install with `#[global_allocator]` in a binary to enable counting.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Running totals since process start: `(allocations, bytes requested)`.
/// Always zero unless a binary installed [`CountingAllocator`].
pub fn counters() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}
