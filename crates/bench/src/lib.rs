//! # optipart-bench — figure harness and benchmarks
//!
//! The [`figs`] module regenerates every measured figure of the paper's §5
//! (Figs. 4–12) as text tables (and CSV when `--out` is given); the
//! `figures` binary dispatches to them. Criterion micro-benchmarks live in
//! `benches/`.
//!
//! Each figure function takes a [`common::RunConfig`] whose `scale` shrinks
//! the paper's problem sizes to laptop scale (see DESIGN.md §6 for the
//! mapping and EXPERIMENTS.md for recorded outputs).
//!
//! The `bench` binary drives the [`kernels`] registry and records
//! [`report`]-schema `BENCH_<host>.json` files at the repo root, with
//! allocation counts from [`alloc_count`] — see DESIGN.md §13.

pub mod alloc_count;
pub mod common;
pub mod figs;
pub mod kernels;
pub mod report;
