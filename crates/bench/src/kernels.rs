//! The hot-path kernel registry the `bench` binary (and `bench_smoke`
//! tier-1 test) iterate over.
//!
//! Each kernel is a named, seeded workload factory: `build(n)` does all
//! setup (mesh generation, engine construction inputs, scratch buffers)
//! and returns a closure that executes one iteration and folds the output
//! into a `u64` checksum. Checksums serve two purposes: they defeat
//! dead-code elimination, and — because every kernel is deterministic for a
//! fixed `n` and thread budget — they let `bench compare` detect
//! bit-identity drift between commits.
//!
//! The registry covers the five criterion bench families (`sfc_keys`,
//! `treesort`, `partition`, `matvec`, `collectives`) plus the engine /
//! OptiPart-ladder kernels this PR optimises.

use optipart_core::optipart::{optipart, OptiPartOptions, PartitionState};
use optipart_core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart_core::quality::partition_quality;
use optipart_core::samplesort::{samplesort_partition, SampleSortOptions};
use optipart_core::treesort::{
    treesort, treesort_reference, treesort_threaded_with_scratch, LevelOffsets,
};
use optipart_fem::amr::{step_mesh, AmrConfig};
use optipart_fem::{laplacian_matvec, repartition_sequence, DistMesh};
use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::rng::SplitMix64;
use optipart_mpisim::{par, AllToAllAlgo, AlltoallvArena, DistVec, Engine};
use optipart_octree::{sample_points, tree_from_points, Distribution, MeshParams};
use optipart_serve::soak::mixed_stream;
use optipart_serve::{ServeConfig, Server};
use optipart_sfc::{Cell3, Curve, KeyedCell, SfcKey};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A kernel instantiated at a concrete problem size, ready to run.
pub struct Prepared {
    /// Elements processed per iteration (throughput denominator).
    pub elements: u64,
    /// Executes one iteration, returning the output checksum.
    pub run: Box<dyn FnMut() -> u64>,
}

/// A registry entry.
pub struct Kernel {
    /// Unique name, stable across commits (`bench compare` joins on it).
    pub name: &'static str,
    /// The criterion bench family this kernel descends from.
    pub group: &'static str,
    /// Problem size for recorded `bench run` (full mode).
    pub full_n: usize,
    /// Problem size for CI / smoke-test runs (`--tiny`).
    pub tiny_n: usize,
    /// Workload factory.
    pub build: fn(usize) -> Prepared,
}

/// All benchmark kernels, in reporting order.
pub fn registry() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "sfc_keys_morton",
            group: "sfc_keys",
            full_n: 100_000,
            tiny_n: 2_000,
            build: |n| keygen(n, Curve::Morton),
        },
        Kernel {
            name: "sfc_keys_hilbert",
            group: "sfc_keys",
            full_n: 100_000,
            tiny_n: 2_000,
            build: |n| keygen(n, Curve::Hilbert),
        },
        Kernel {
            name: "treesort_seq",
            group: "treesort",
            full_n: 100_000,
            tiny_n: 3_000,
            build: |n| {
                let input = shuffled(n, Curve::Hilbert);
                let elements = input.len() as u64;
                let mut a = input.clone();
                let mut scratch: Vec<KeyedCell<3>> = Vec::new();
                Prepared {
                    elements,
                    run: Box::new(move || {
                        a.copy_from_slice(&input);
                        treesort_threaded_with_scratch(&mut a, &mut scratch, 1);
                        checksum_cells(&a)
                    }),
                }
            },
        },
        Kernel {
            name: "treesort_par",
            group: "treesort",
            full_n: 100_000,
            tiny_n: 3_000,
            build: |n| {
                let input = shuffled(n, Curve::Hilbert);
                let elements = input.len() as u64;
                let mut a = input.clone();
                // Persistent scratch: the warmup iteration grows it once,
                // after which the parallel sort is allocation-free (the
                // worker pool is persistent and fans out on stack arrays).
                let mut scratch: Vec<KeyedCell<3>> = Vec::new();
                let threads = par::num_threads();
                Prepared {
                    elements,
                    run: Box::new(move || {
                        a.copy_from_slice(&input);
                        treesort_threaded_with_scratch(&mut a, &mut scratch, threads);
                        checksum_cells(&a)
                    }),
                }
            },
        },
        Kernel {
            name: "treesort_reference",
            group: "treesort",
            full_n: 100_000,
            tiny_n: 3_000,
            build: |n| {
                let input = shuffled(n, Curve::Hilbert);
                let elements = input.len() as u64;
                let mut a = input.clone();
                Prepared {
                    elements,
                    run: Box::new(move || {
                        a.copy_from_slice(&input);
                        treesort_reference(&mut a);
                        checksum_cells(&a)
                    }),
                }
            },
        },
        Kernel {
            name: "sort_unstable",
            group: "treesort",
            full_n: 100_000,
            tiny_n: 3_000,
            build: |n| {
                let input = shuffled(n, Curve::Hilbert);
                let elements = input.len() as u64;
                let mut a = input.clone();
                Prepared {
                    elements,
                    run: Box::new(move || {
                        a.copy_from_slice(&input);
                        a.sort_unstable();
                        checksum_cells(&a)
                    }),
                }
            },
        },
        Kernel {
            name: "level_offsets",
            group: "treesort",
            full_n: 100_000,
            tiny_n: 3_000,
            build: |n| {
                let mut sorted = shuffled(n, Curve::Hilbert);
                treesort(&mut sorted);
                let elements = sorted.len() as u64;
                Prepared {
                    elements,
                    run: Box::new(move || {
                        let table = LevelOffsets::build(&sorted, 8);
                        let mut acc = 0u64;
                        for level in 0..=8u8 {
                            let t = table.at(level);
                            acc = mix(acc, t.len() as u64);
                            acc = mix(acc, t.last().copied().unwrap_or(0) as u64);
                        }
                        acc
                    }),
                }
            },
        },
        Kernel {
            name: "partition_treesort_exact",
            group: "partition",
            full_n: 100_000,
            tiny_n: 2_000,
            build: |n| partition_kernel(n, PartitionKind::Exact),
        },
        Kernel {
            name: "partition_treesort_tol03",
            group: "partition",
            full_n: 100_000,
            tiny_n: 2_000,
            build: |n| partition_kernel(n, PartitionKind::Tolerant),
        },
        Kernel {
            name: "optipart_ladder",
            group: "partition",
            full_n: 100_000,
            tiny_n: 2_000,
            build: |n| partition_kernel(n, PartitionKind::OptiPart),
        },
        Kernel {
            name: "optipart_amr_loop_warm",
            group: "partition",
            full_n: 100_000,
            tiny_n: 2_000,
            build: amr_warm_kernel,
        },
        Kernel {
            name: "samplesort",
            group: "partition",
            full_n: 100_000,
            tiny_n: 2_000,
            build: |n| partition_kernel(n, PartitionKind::SampleSort),
        },
        Kernel {
            name: "partition_quality_flat",
            group: "partition",
            full_n: 100_000,
            tiny_n: 2_000,
            build: |n| quality_kernel(n, false),
        },
        Kernel {
            name: "partition_quality_hier",
            group: "partition",
            full_n: 100_000,
            tiny_n: 2_000,
            build: |n| quality_kernel(n, true),
        },
        Kernel {
            name: "alltoallv_dense_6nbr",
            group: "collectives",
            full_n: 512,
            tiny_n: 16,
            build: |p| {
                let elements = (p * 6 * 64) as u64;
                Prepared {
                    elements,
                    run: Box::new(move || {
                        let mut e = engine(p);
                        let send: Vec<Vec<Vec<u64>>> = (0..p)
                            .map(|r| {
                                (0..p)
                                    .map(|d| {
                                        if (1..=6).any(|k| (r + k * 7) % p == d) {
                                            vec![r as u64; 64]
                                        } else {
                                            vec![]
                                        }
                                    })
                                    .collect()
                            })
                            .collect();
                        let recv = e.alltoallv(send, AllToAllAlgo::Direct);
                        let mut acc = 0u64;
                        for row in &recv {
                            for buf in row {
                                acc = mix(acc, buf.len() as u64);
                                acc = mix(acc, buf.first().copied().unwrap_or(0));
                            }
                        }
                        acc
                    }),
                }
            },
        },
        Kernel {
            name: "alltoallv_sparse_6nbr",
            group: "collectives",
            full_n: 512,
            tiny_n: 16,
            build: |p| {
                let elements = (p * 6 * 64) as u64;
                Prepared {
                    elements,
                    run: Box::new(move || {
                        let mut e = engine(p);
                        let send: Vec<Vec<(usize, Vec<u64>)>> = (0..p)
                            .map(|r| {
                                (1..=6)
                                    .map(|k| ((r + k * 7) % p, vec![r as u64; 64]))
                                    .collect()
                            })
                            .collect();
                        let recv = e.alltoallv_sparse(send, AllToAllAlgo::Direct);
                        let mut acc = 0u64;
                        for row in &recv {
                            for (src, buf) in row {
                                acc = mix(acc, *src as u64);
                                acc = mix(acc, buf.len() as u64);
                            }
                        }
                        acc
                    }),
                }
            },
        },
        Kernel {
            name: "alltoallv_by_hash",
            group: "collectives",
            full_n: 512,
            tiny_n: 16,
            build: |p| {
                // Each rank routes 256 items by a hash through the
                // flat-arena hypercube path. The engine (with its pooled
                // collective scratch) and the arena persist across
                // iterations, so the steady state stages, exchanges and
                // delivers with (essentially) no allocation — the ≥100×
                // gap the `alltoallv_by_hash_dense_reference` kernel and
                // the `bench compare` alloc-ratio gate measure.
                let send_base: Vec<Vec<u64>> = (0..p)
                    .map(|r| (0..256).map(|i| (r * 1000 + i) as u64).collect())
                    .collect();
                let elements = (p * 256) as u64;
                let mut e = engine(p);
                let mut arena: AlltoallvArena<u64> = AlltoallvArena::new();
                Prepared {
                    elements,
                    run: Box::new(move || {
                        for (src, items) in send_base.iter().enumerate() {
                            for &item in items {
                                arena.send(src, hash_dest(src, item, p), [item]);
                            }
                        }
                        e.alltoallv_flat(&mut arena, AllToAllAlgo::Hypercube);
                        let mut acc = 0u64;
                        for (src, dst, items) in arena.recv() {
                            for &x in items {
                                acc = mix(acc, ((src as u64) << 32) | dst as u64);
                                acc = mix(acc, x);
                            }
                        }
                        acc
                    }),
                }
            },
        },
        Kernel {
            name: "alltoallv_by_hash_dense_reference",
            group: "collectives",
            full_n: 512,
            tiny_n: 16,
            build: |p| {
                // The same hash-routed workload through the dense p × p
                // reference path (`reference` feature): a fresh engine and
                // a p² grid of buffers every iteration — the O(p²)-staging
                // baseline the arena kernel is gated against. Folds the
                // identical per-item checksum as `alltoallv_by_hash`
                // (delivery order is destination, then source, then
                // submission order in both).
                let send_base: Vec<Vec<u64>> = (0..p)
                    .map(|r| (0..256).map(|i| (r * 1000 + i) as u64).collect())
                    .collect();
                let elements = (p * 256) as u64;
                Prepared {
                    elements,
                    run: Box::new(move || {
                        let mut e = engine(p);
                        let mut send: Vec<Vec<Vec<u64>>> =
                            (0..p).map(|_| vec![Vec::new(); p]).collect();
                        for (src, items) in send_base.iter().enumerate() {
                            for &item in items {
                                send[src][hash_dest(src, item, p)].push(item);
                            }
                        }
                        let recv = e.alltoallv(send, AllToAllAlgo::Hypercube);
                        let mut acc = 0u64;
                        for (dst, row) in recv.iter().enumerate() {
                            for (src, buf) in row.iter().enumerate() {
                                for &x in buf {
                                    acc = mix(acc, ((src as u64) << 32) | dst as u64);
                                    acc = mix(acc, x);
                                }
                            }
                        }
                        acc
                    }),
                }
            },
        },
        Kernel {
            name: "allreduce_vec",
            group: "collectives",
            full_n: 512,
            tiny_n: 16,
            build: |p| {
                let contribs: Vec<Vec<u64>> = (0..p).map(|r| vec![r as u64; 512]).collect();
                let elements = (p * 512) as u64;
                Prepared {
                    elements,
                    run: Box::new(move || {
                        let mut e = engine(p);
                        let out = e.allreduce_sum_vec_u64(&contribs);
                        out.iter().fold(0u64, |a, &x| mix(a, x))
                    }),
                }
            },
        },
        Kernel {
            name: "serve_requests_per_sec",
            group: "serve",
            full_n: 1000,
            tiny_n: 120,
            build: |n| serve_kernel(n, 4),
        },
        Kernel {
            name: "serve_p99_latency",
            group: "serve",
            full_n: 400,
            tiny_n: 80,
            build: |n| serve_kernel(n, 1),
        },
        Kernel {
            name: "matvec_laplacian",
            group: "matvec",
            full_n: 50_000,
            tiny_n: 2_000,
            build: |n| {
                let p = if n >= 10_000 { 16 } else { 4 };
                let tree = MeshParams::normal(n, 3).build::<3>(Curve::Hilbert);
                let mut e = engine(p);
                let out = treesort_partition(
                    &mut e,
                    distribute_tree(&tree, p),
                    PartitionOptions::exact(),
                );
                let mesh = DistMesh::build(&mut e, out.dist, Curve::Hilbert);
                let elements = mesh.total_cells() as u64;
                let mut x = DistVec::from_parts(
                    mesh.cells
                        .counts()
                        .iter()
                        .map(|&c| vec![1.0f64; c])
                        .collect(),
                );
                Prepared {
                    elements,
                    run: Box::new(move || {
                        let (y, _) = laplacian_matvec(&mut e, &mesh, &mut x);
                        let mut acc = 0u64;
                        for r in 0..p {
                            for v in y.rank(r) {
                                acc = mix(acc, v.to_bits());
                            }
                        }
                        acc
                    }),
                }
            },
        },
    ]
}

/// Looks a kernel up by name.
pub fn find(name: &str) -> Option<Kernel> {
    registry().into_iter().find(|k| k.name == name)
}

/// Order-sensitive checksum fold.
#[inline]
pub fn mix(acc: u64, x: u64) -> u64 {
    (acc.rotate_left(7) ^ x).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Checksum of a keyed-cell array (order-sensitive: detects any permutation
/// difference between two sort implementations).
pub fn checksum_cells<const D: usize>(a: &[KeyedCell<D>]) -> u64 {
    let mut acc = a.len() as u64;
    for kc in a {
        acc = mix(acc, kc.key.path() as u64);
        acc = mix(acc, (kc.key.path() >> 64) as u64);
        acc = mix(acc, kc.key.level() as u64);
    }
    acc
}

/// The shuffled-mesh input every treesort kernel sorts (same construction
/// as `benches/treesort.rs`).
pub fn shuffled(n: usize, curve: Curve) -> Vec<KeyedCell<3>> {
    let pts = sample_points::<3>(Distribution::Normal, n, 7);
    let tree = tree_from_points(&pts, 1, 18, curve);
    let mut cells = tree.into_leaves();
    SplitMix64::new(99).shuffle(&mut cells);
    cells
}

/// Key-generation kernel (same construction as `benches/sfc_keys.rs`).
fn keygen(n: usize, curve: Curve) -> Prepared {
    let points = sample_points::<3>(Distribution::Normal, n, 42);
    let cells: Vec<Cell3> = points.iter().map(|&p| Cell3::new(p, 20)).collect();
    Prepared {
        elements: n as u64,
        run: Box::new(move || {
            let mut acc = 0u64;
            for cell in &cells {
                let path = SfcKey::of(cell, curve).path();
                acc = mix(acc, path as u64);
                acc = mix(acc, (path >> 64) as u64);
            }
            acc
        }),
    }
}

fn engine(p: usize) -> Engine {
    Engine::new(
        p,
        PerfModel::new(
            MachineModel::cloudlab_wisconsin(),
            AppModel::laplacian_matvec(),
        ),
    )
}

/// The hash route shared by `alltoallv_by_hash` and its dense reference —
/// both kernels must scatter identically for their checksums to agree.
#[inline]
fn hash_dest(src: usize, item: u64, p: usize) -> usize {
    ((item ^ src as u64).wrapping_mul(0x9E3779B97F4A7C15) % p as u64) as usize
}

/// The amortized warm-start kernel: a 10-step moving-front AMR loop,
/// repartitioned with OptiPart while a persistent [`PartitionState`] carries
/// across *both* steps and iterations. The warmup iteration seeds the cache
/// cold; every timed iteration then replays the same 10 meshes as exact
/// fingerprint hits, so the measured cost is the warm path the tentpole
/// optimises — compare `ns/elem` against `optipart_ladder` (the cold rung
/// search on one mesh) for the amortized speedup.
fn amr_warm_kernel(n: usize) -> Prepared {
    const STEPS: usize = 10;
    let p = if n >= 10_000 { 64 } else { 8 };
    let cfg = AmrConfig {
        steps: STEPS,
        max_level: if n >= 10_000 { 6 } else { 4 },
        ..Default::default()
    };
    let trees: Vec<_> = (0..STEPS).map(|t| step_mesh(t, &cfg)).collect();
    let elements: u64 = trees.iter().map(|t| t.len() as u64).sum();
    let opts = OptiPartOptions::for_curve(cfg.curve);
    let mut state = PartitionState::new();
    Prepared {
        elements,
        run: Box::new(move || {
            let mut e = engine(p);
            let outs = repartition_sequence(&mut e, &trees, opts, Some(&mut state));
            let mut acc = 0u64;
            for out in &outs {
                acc = mix(acc, out.dist.total_len() as u64);
                for s in &out.splitters {
                    acc = mix(acc, s.path() as u64);
                    acc = mix(acc, (s.path() >> 64) as u64);
                }
            }
            acc
        }),
    }
}

/// Latency/warm-rate side channel of the serve kernels: `wall_us` and the
/// server's warm-request rate are real-time figures the deterministic
/// checksum cannot carry, so the kernels publish them here and `bench run`
/// copies them into the report's `derived` block.
pub static SERVE_STATS: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());

/// SplitMix64 finalizer for the order-independent serve checksum.
fn finalize(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The partition-as-a-service kernel: a persistent `optipart-serve` server
/// (workers, warm states and engine caches live across iterations) serving
/// a deterministic paused-burst stream of `n` requests over `n/10` distinct
/// scenarios. The warmup iteration seeds the caches cold; every measured
/// iteration then rides the warm exact-hit path, so `ns/elem` is
/// ns-per-request at steady state. The checksum folds each response's
/// payload signature commutatively (arrival order is scheduling-dependent;
/// the payloads are not). Per-request wall latency (p99) and the cumulative
/// warm-request rate go to [`SERVE_STATS`].
fn serve_kernel(n: usize, workers: usize) -> Prepared {
    let distinct = (n / 10).clamp(1, 48);
    let reqs = mixed_stream(0x5E11 + workers as u64, n, distinct, 0, 0);
    // queue_cap = n: a paused burst may land entirely on one worker's
    // bounded queue, and a bench iteration must never shed.
    let server = Server::start(ServeConfig {
        workers,
        queue_cap: n.max(1),
        state_cap: 64,
        engine_cache: 8,
        batching: true,
        admission: Default::default(),
    });
    let stat_key = if workers == 1 {
        "serve_p99_latency_us"
    } else {
        "serve_burst_p99_latency_us"
    };
    Prepared {
        elements: n as u64,
        run: Box::new(move || {
            server.pause();
            for r in &reqs {
                server.submit(r.clone());
            }
            server.release();
            let resps = server.drain(reqs.len());
            let mut acc = 0u64;
            let mut lat: Vec<u64> = Vec::with_capacity(resps.len());
            for r in &resps {
                let p = r.payload.as_ref().expect("bench stream never sheds");
                acc = acc.wrapping_add(finalize(r.id ^ p.sig.rotate_left(17)));
                lat.push(r.wall_us);
            }
            lat.sort_unstable();
            let p99 = lat[(lat.len() * 99)
                .div_ceil(100)
                .saturating_sub(1)
                .min(lat.len() - 1)];
            let warm = server.stats().warm_request_rate();
            let mut g = SERVE_STATS.lock().unwrap();
            let e = g.entry(stat_key.to_string()).or_insert(f64::INFINITY);
            *e = e.min(p99 as f64);
            let w = g
                .entry("serve_warm_request_rate".to_string())
                .or_insert(f64::INFINITY);
            *w = w.min(warm);
            acc
        }),
    }
}

enum PartitionKind {
    Exact,
    Tolerant,
    OptiPart,
    SampleSort,
}

/// Algorithm 2 evaluation under a flat vs a two-level machine. The two
/// kernels are byte-for-byte identical except for the [`MachineModel`],
/// so comparing their `allocs_per_iter` (the `hier alloc parity` gate in
/// `report::compare_reports`) proves the hierarchical cost path — intra
/// counting, weighted `Cmax` selection, the `predict_hier` discount —
/// allocates nothing beyond the flat path.
fn quality_kernel(n: usize, hier: bool) -> Prepared {
    let p = if n >= 10_000 { 64 } else { 8 };
    let tree = MeshParams::normal(n, 5).build::<3>(Curve::Hilbert);
    let elements = tree.len() as u64;
    let splitters = {
        let mut e = engine(p);
        treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact()).splitters
    };
    let machine = {
        let w = MachineModel::cloudlab_wisconsin();
        let m = MachineModel::custom("bench-hier", w.tc, w.ts, w.tw, (p / 2).max(1));
        if hier {
            m.hierarchical_smp()
        } else {
            m
        }
    };
    Prepared {
        elements,
        run: Box::new(move || {
            let mut e = Engine::new(
                p,
                PerfModel::new(machine.clone(), AppModel::laplacian_matvec()),
            );
            let mut dist = distribute_tree(&tree, p);
            let q = partition_quality(&mut e, &mut dist, &splitters, Curve::Hilbert);
            let mut acc = mix(q.wmax, q.cmax);
            acc = mix(acc, q.cmax_intra);
            acc = mix(acc, q.c_total);
            acc = mix(acc, q.c_intra_total);
            mix(acc, q.tp.to_bits())
        }),
    }
}

fn partition_kernel(n: usize, kind: PartitionKind) -> Prepared {
    let p = if n >= 10_000 { 64 } else { 8 };
    let tree = MeshParams::normal(n, 5).build::<3>(Curve::Hilbert);
    let elements = tree.len() as u64;
    Prepared {
        elements,
        run: Box::new(move || {
            let mut e = engine(p);
            let (splitters, total): (Vec<SfcKey>, usize) = match kind {
                PartitionKind::Exact => {
                    let out = treesort_partition(
                        &mut e,
                        distribute_tree(&tree, p),
                        PartitionOptions::exact(),
                    );
                    (out.splitters, out.dist.total_len())
                }
                PartitionKind::Tolerant => {
                    let out = treesort_partition(
                        &mut e,
                        distribute_tree(&tree, p),
                        PartitionOptions::with_tolerance(0.3),
                    );
                    (out.splitters, out.dist.total_len())
                }
                PartitionKind::OptiPart => {
                    let out = optipart(
                        &mut e,
                        distribute_tree(&tree, p),
                        OptiPartOptions::default(),
                    );
                    (out.splitters, out.dist.total_len())
                }
                PartitionKind::SampleSort => {
                    let out = samplesort_partition(
                        &mut e,
                        distribute_tree(&tree, p),
                        SampleSortOptions::default(),
                    );
                    (out.splitters, out.dist.total_len())
                }
            };
            let mut acc = total as u64;
            for s in &splitters {
                acc = mix(acc, s.path() as u64);
                acc = mix(acc, (s.path() >> 64) as u64);
            }
            acc
        }),
    }
}
