//! Fig. 9 — per-node energy, ideal load balance vs tolerance 0.3.
//!
//! Paper: 95M mesh nodes, 256 MPI tasks on the 8-node Wisconsin CloudLab
//! cluster; bars of per-node Joules for default (tol 0) and tol = 0.3, for
//! Hilbert and Morton. Despite node-to-node variability, every node's
//! energy drops under the flexible partition.

use crate::common::{engine, fmt, mesh, partitioned_mesh, RunConfig, Table};
use optipart_fem::run_matvec_experiment;
use optipart_machine::MachineModel;
use optipart_sfc::Curve;

/// Runs the per-node comparison. Default mesh ~256k elements.
pub fn run(cfg: &RunConfig) {
    let p = 256;
    let n = cfg.n(600_000, 5_000);
    let iters = 100;
    let mut table = Table::new(
        "fig9_per_node_energy",
        &["curve", "node", "default_J", "tol03_J", "savings_pct"],
    );
    eprintln!("fig9: per-node energy, wisconsin-8 model, p = {p}, {n} generator points");

    for curve in Curve::ALL {
        let tree = mesh(n, cfg.seed, curve);
        let run_at = |tol: f64| -> Vec<f64> {
            let mut e = engine(MachineModel::cloudlab_wisconsin(), p);
            let fem_mesh = partitioned_mesh(&mut e, &tree, tol);
            run_matvec_experiment(&mut e, &fem_mesh, iters)
                .energy
                .per_node_j
        };
        let default = run_at(0.0);
        let flexible = run_at(0.3);
        for (node, (d, f)) in default.iter().zip(&flexible).enumerate() {
            table.row(vec![
                curve.name().into(),
                node.to_string(),
                fmt(*d),
                fmt(*f),
                fmt(100.0 * (d - f) / d),
            ]);
        }
    }
    table.emit(cfg);
}
