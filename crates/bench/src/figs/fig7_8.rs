//! Figs. 7 & 8 — energy and runtime of 100 matvecs vs tolerance.
//!
//! Fig. 7: Clemson-32 CloudLab cluster, 1792 MPI tasks, grain 10⁵,
//! tolerance 0…0.7; Fig. 8: Wisconsin-8, 256 tasks, 95M mesh,
//! tolerance 0…0.5. Both Hilbert and Morton. The paper's headline result:
//! both time and energy dip for tolerances > 0 (up to 22% savings), energy
//! and runtime strongly correlated, Hilbert below Morton.

use crate::common::{engine, fmt, mesh, partitioned_mesh, tolerance_grid, RunConfig, Table};
use optipart_fem::run_matvec_experiment;
use optipart_machine::MachineModel;
use optipart_sfc::Curve;

/// Shared sweep: `iters` matvecs per (curve, tolerance) point.
pub fn sweep(
    cfg: &RunConfig,
    name: &str,
    machine: MachineModel,
    p: usize,
    n: usize,
    max_tol: f64,
    iters: usize,
) {
    let mut table = Table::new(
        name,
        &[
            "curve",
            "tolerance",
            "runtime_min",
            "energy_J",
            "comm_J",
            "ghost_elems",
        ],
    );
    eprintln!(
        "{name}: {} model, p = {p}, {n} generator points (~3.4x leaves), {iters} matvecs",
        machine.name
    );

    for curve in Curve::ALL {
        let tree = mesh(n, cfg.seed, curve);
        for tol in tolerance_grid(max_tol, 0.05) {
            let mut e = engine(machine.clone(), p);
            let fem_mesh = partitioned_mesh(&mut e, &tree, tol);
            let rep = run_matvec_experiment(&mut e, &fem_mesh, iters);
            table.row(vec![
                curve.name().into(),
                fmt(tol),
                fmt(rep.seconds / 60.0),
                fmt(rep.energy.total_j),
                fmt(rep.energy.comm_j),
                rep.ghost_elements.to_string(),
            ]);
        }
    }
    table.emit(cfg);
}

/// Fig. 7: Clemson CloudLab model. The paper runs 1792 tasks at grain 10⁵;
/// we default to 224 tasks (4 Clemson nodes) at grain ≈ 9k leaves/rank so
/// that the partition surface stays well below its volume (the regime the
/// paper operates in) while a single host can execute the sweep. `--scale`
/// raises the element count.
pub fn run_fig7(cfg: &RunConfig) {
    let p = 224;
    let n = cfg.n(600_000, 5_000);
    sweep(
        cfg,
        "fig7_clemson_energy_time",
        MachineModel::cloudlab_clemson(),
        p,
        n,
        0.7,
        100,
    );
}

/// Fig. 8: Wisconsin-8, 256 tasks as in the paper. Default mesh ≈ 2M leaves
/// (600k generator points; paper: 95M mesh nodes).
pub fn run_fig8(cfg: &RunConfig) {
    let p = 256;
    let n = cfg.n(600_000, 5_000);
    sweep(
        cfg,
        "fig8_wisconsin_energy_time",
        MachineModel::cloudlab_wisconsin(),
        p,
        n,
        0.5,
        100,
    );
}
