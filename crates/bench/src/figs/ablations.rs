//! Ablation studies for the design choices DESIGN.md §7 calls out.
//!
//! Not figures from the paper, but experiments that probe its design
//! decisions:
//!
//! * **Staged splitter selection** (Eq. 2): sweep the per-round splitter cap
//!   `k` and measure splitter-phase time and rounds. The paper's argument:
//!   `k ≤ p` trades more rounds for cheaper reductions, `(ts + tw·k)·log p`.
//! * **Staged vs direct all-to-all** (§3.1): the same exchange under both
//!   schedules across `p`, showing where the staged variant's latency
//!   advantage overtakes its bandwidth overhead.
//! * **Curve choice at fixed tolerance**: Hilbert vs Morton partition
//!   quality (Cmax, NNZ) at the OptiPart-chosen operating point.

use crate::common::{engine, fmt, mesh, RunConfig, Table};
use optipart_core::metrics::{assignment, communication_matrix};
use optipart_core::partition::{
    distribute_shuffled, treesort_partition, PartitionOptions, PHASE_SPLITTER,
};
use optipart_machine::MachineModel;
use optipart_mpisim::AllToAllAlgo;
use optipart_sfc::Curve;

/// Staged splitter-cap sweep (Eq. 2's `k`).
pub fn run_staging(cfg: &RunConfig) {
    let p = 512;
    let n = cfg.n(200_000, 5_000);
    let tree = mesh(n, cfg.seed, Curve::Hilbert);
    let mut table = Table::new(
        "ablation_splitter_staging",
        &["k_cap", "rounds", "splitter_s", "total_s"],
    );
    eprintln!("ablation: splitter staging, p = {p}, {n} generator points");
    for k in [64usize, 256, 1024, usize::MAX] {
        let mut e = engine(MachineModel::titan(), p);
        let out = treesort_partition(
            &mut e,
            distribute_shuffled(&tree, p, cfg.seed),
            PartitionOptions {
                max_split_per_round: if k == usize::MAX { None } else { Some(k) },
                ..PartitionOptions::exact()
            },
        );
        table.row(vec![
            if k == usize::MAX {
                "unlimited".into()
            } else {
                k.to_string()
            },
            out.report.rounds.to_string(),
            fmt(e.phase_time(PHASE_SPLITTER)),
            fmt(e.makespan()),
        ]);
    }
    table.emit(cfg);
}

/// Staged vs direct all-to-all across p.
pub fn run_alltoall(cfg: &RunConfig) {
    let grain = cfg.n(1_000, 100);
    let mut table = Table::new("ablation_alltoall_schedule", &["p", "algo", "all2all_s"]);
    eprintln!("ablation: all-to-all schedule, grain = {grain}");
    for p in [16usize, 128, 1024] {
        let tree = mesh(grain * p, cfg.seed, Curve::Hilbert);
        for algo in [
            AllToAllAlgo::Direct,
            AllToAllAlgo::Staged,
            AllToAllAlgo::Hypercube,
        ] {
            let mut e = engine(MachineModel::titan(), p);
            let _ = treesort_partition(
                &mut e,
                distribute_shuffled(&tree, p, cfg.seed),
                PartitionOptions {
                    alltoall: algo,
                    ..PartitionOptions::exact()
                },
            );
            table.row(vec![
                p.to_string(),
                format!("{algo:?}").to_lowercase(),
                fmt(e.phase_time(optipart_core::partition::PHASE_ALL2ALL)),
            ]);
        }
    }
    table.emit(cfg);
}

/// Hilbert vs Morton partition quality at fixed tolerances.
pub fn run_curves(cfg: &RunConfig) {
    let p = 64;
    let n = cfg.n(200_000, 5_000);
    let mut table = Table::new(
        "ablation_curve_quality",
        &["curve", "tolerance", "lambda", "nnz", "ghost_elements"],
    );
    eprintln!("ablation: curve quality, p = {p}, {n} generator points");
    for curve in Curve::ALL {
        let tree = mesh(n, cfg.seed, curve);
        for tol in [0.0, 0.3] {
            let mut e = engine(MachineModel::cloudlab_wisconsin(), p);
            let out = treesort_partition(
                &mut e,
                distribute_shuffled(&tree, p, cfg.seed),
                PartitionOptions::with_tolerance(tol),
            );
            let assign = assignment(&tree, &out.splitters);
            let m = communication_matrix(&tree, &assign, p);
            table.row(vec![
                curve.name().into(),
                fmt(tol),
                fmt(out.report.lambda),
                m.nnz().to_string(),
                m.total_bytes().to_string(),
            ]);
        }
    }
    table.emit(cfg);
}

/// All ablations.
pub fn run(cfg: &RunConfig) {
    run_staging(cfg);
    run_alltoall(cfg);
    run_curves(cfg);
}
