//! Figure reproductions — one module per measured figure of §5.
//!
//! Every `run` function regenerates the corresponding figure's data as a
//! text table (and CSV with `--out`). Paper sizes are scaled by
//! `RunConfig::scale`; see DESIGN.md §6 for the mapping and EXPERIMENTS.md
//! for recorded shape checks.

pub mod ablations;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7_8;
pub mod fig9;
pub mod hier;
pub mod recovery;
pub mod scaling;

use crate::common::RunConfig;

/// All figure ids, in paper order.
pub const ALL: &[&str] = &[
    "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
];

/// Dispatches one figure by id.
pub fn run(id: &str, cfg: &RunConfig) -> Result<(), String> {
    match id {
        "fig4" => fig4::run(cfg),
        "fig5" => fig5::run(cfg),
        "fig6" => fig6::run(cfg),
        "fig7" => fig7_8::run_fig7(cfg),
        "fig8" => fig7_8::run_fig8(cfg),
        "fig9" => fig9::run(cfg),
        "fig10" => fig10::run(cfg),
        "fig11" => fig11::run(cfg),
        "fig12" => fig12::run(cfg),
        "ablations" => ablations::run(cfg),
        "hier" => hier::run(cfg),
        "recovery" => recovery::run(cfg),
        "scaling" => scaling::run(cfg),
        other => return Err(format!("unknown figure id '{other}'; known: {ALL:?}")),
    }
    Ok(())
}
