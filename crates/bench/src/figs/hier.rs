//! Hierarchy demo — OptiPart on a two-level machine vs the flat model.
//!
//! The flat Eq. (3) charges every boundary byte the inter-node `tw`, so the
//! ladder minimises the *total* bottleneck surface. A two-level machine
//! discounts on-node bytes to `tw_intra`, so the same ladder — unchanged
//! code, different [`PerfModel`] — descends a different cost surface and
//! settles on partitions whose heavy surfaces stay inside a node. This
//! module measures the inter-node ghost traffic (the §5.5 communication
//! matrix restricted to node-crossing entries) of the partition each model
//! selects on the same skewed mesh, and reports the reduction the
//! hierarchy buys. The pinned [`demo`] configuration feeds the
//! `hier_inter_bytes_reduction` derived entry of `BENCH_*.json`.

use crate::common::{fmt, RunConfig, Table};
use optipart_core::metrics::{assignment, communication_matrix};
use optipart_core::optipart::{optipart, OptiPartOptions};
use optipart_core::partition::distribute_tree;
use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::{CommMatrix, Engine};
use optipart_octree::generate::{sample_points_skewed, tree_from_points};
use optipart_octree::{Distribution, MeshParams};
use optipart_sfc::Curve;

/// One flat-vs-hierarchical comparison on a fixed mesh.
#[derive(Clone, Copy, Debug)]
pub struct HierPoint {
    /// Mesh seed.
    pub seed: u64,
    /// Inter-node ghost bytes of the flat model's chosen partition.
    pub inter_flat: u64,
    /// Inter-node ghost bytes of the two-level model's chosen partition.
    pub inter_hier: u64,
    /// Total ghost bytes of the flat choice.
    pub total_flat: u64,
    /// Total ghost bytes of the hierarchical choice.
    pub total_hier: u64,
    /// `1 − inter_hier / inter_flat`.
    pub reduction: f64,
}

/// Ghost-exchange bytes crossing a node boundary under the block rank →
/// node placement (`node = rank / ranks_per_node` — the engine's own map).
fn inter_node_bytes(m: &CommMatrix, ranks_per_node: usize) -> u64 {
    m.entries()
        .filter(|(src, dst, _)| src / ranks_per_node != dst / ranks_per_node)
        .map(|(_, _, b)| b)
        .sum()
}

/// The demo machine: CloudLab-Wisconsin interconnect figures (the
/// highest-`tw/tc` machine of §4, where the tolerance optimum is most
/// pronounced) with a configurable node width.
fn demo_machine(ranks_per_node: usize) -> MachineModel {
    let w = MachineModel::cloudlab_wisconsin();
    MachineModel::custom("hier-demo", w.tc, w.ts, w.tw, ranks_per_node)
}

/// Runs OptiPart under `machine` and returns the §5.5 ghost matrix of the
/// partition it selects.
fn matrix_for(
    machine: MachineModel,
    tree: &optipart_octree::LinearTree<3>,
    p: usize,
    opts: OptiPartOptions,
) -> CommMatrix {
    let mut e = Engine::new(p, PerfModel::new(machine, AppModel::laplacian_matvec()));
    let out = optipart(&mut e, distribute_tree(tree, p), opts);
    let assign = assignment(tree, &out.splitters);
    communication_matrix(tree, &assign, p)
}

/// One measured point: the same skewed mesh partitioned under the flat
/// demo machine and under its SMP hierarchy (`tw_intra = tw / 64`).
pub fn measure(n: usize, p: usize, ranks_per_node: usize, seed: u64) -> HierPoint {
    measure_with(n, p, ranks_per_node, seed, OptiPartOptions::default())
}

/// [`measure`] with explicit ladder options — both models descend the
/// ladder under the same options, only the machine differs.
pub fn measure_with(
    n: usize,
    p: usize,
    ranks_per_node: usize,
    seed: u64,
    opts: OptiPartOptions,
) -> HierPoint {
    measure_cfg_opts(
        n,
        p,
        ranks_per_node,
        seed,
        Curve::Hilbert,
        Distribution::LogNormal,
        opts,
    )
}

/// [`measure`] with explicit curve and point distribution.
pub fn measure_cfg(
    n: usize,
    p: usize,
    ranks_per_node: usize,
    seed: u64,
    curve: Curve,
    distribution: Distribution,
) -> HierPoint {
    measure_cfg_opts(
        n,
        p,
        ranks_per_node,
        seed,
        curve,
        distribution,
        OptiPartOptions::default(),
    )
}

/// [`measure`] on the adversarially skewed corner-cloud mesh
/// ([`sample_points_skewed`] with the given `shift`): three quarters of the
/// points crammed into a `2^-shift` corner box over uniform background.
/// The density contrast is what gives the tolerance ladder room — a loose
/// rung can park the node-boundary splitter at the cluster edge, exact
/// balance has to cut through the dense core.
pub fn measure_skewed(
    n: usize,
    p: usize,
    ranks_per_node: usize,
    seed: u64,
    shift: u32,
) -> HierPoint {
    let pts = sample_points_skewed::<3>(n, seed, shift);
    let tree = tree_from_points(&pts, 1, 12, Curve::Hilbert);
    measure_tree(&tree, p, ranks_per_node, seed, OptiPartOptions::default())
}

fn measure_cfg_opts(
    n: usize,
    p: usize,
    ranks_per_node: usize,
    seed: u64,
    curve: Curve,
    distribution: Distribution,
    opts: OptiPartOptions,
) -> HierPoint {
    let tree = MeshParams {
        distribution,
        num_points: n,
        seed,
        ..Default::default()
    }
    .build::<3>(curve);
    measure_tree(&tree, p, ranks_per_node, seed, opts)
}

fn measure_tree(
    tree: &optipart_octree::LinearTree<3>,
    p: usize,
    ranks_per_node: usize,
    seed: u64,
    opts: OptiPartOptions,
) -> HierPoint {
    let flat = matrix_for(demo_machine(ranks_per_node), tree, p, opts);
    let hier = matrix_for(
        demo_machine(ranks_per_node).hierarchical_smp(),
        tree,
        p,
        opts,
    );
    let (inter_flat, inter_hier) = (
        inter_node_bytes(&flat, ranks_per_node),
        inter_node_bytes(&hier, ranks_per_node),
    );
    HierPoint {
        seed,
        inter_flat,
        inter_hier,
        total_flat: flat.total_bytes(),
        total_hier: hier.total_bytes(),
        reduction: 1.0 - inter_hier as f64 / inter_flat.max(1) as f64,
    }
}

/// The pinned configuration recorded in `BENCH_*.json` as
/// `hier_inter_bytes_reduction`: a log-normal (corner-skewed) mesh on a
/// 16-rank, 8-per-node Wisconsin-class machine. The flat model descends
/// the ladder to near-exact balance; the two-level model keeps the coarse
/// rung whose node-boundary splitter sits on a coarse subtree boundary,
/// cutting node-crossing ghost bytes by over a fifth.
pub fn demo() -> HierPoint {
    measure(5_000, 16, 8, 37)
}

/// The `figures hier` sweep: several seeds of the demo configuration.
pub fn run(cfg: &RunConfig) {
    let p = 16;
    let rpn = 8;
    let n = cfg.n(5_000, 1_000);
    eprintln!("hier: OptiPart flat vs two-level, p = {p}, {rpn} ranks/node, {n} points");
    let mut table = Table::new(
        "hier_inter_bytes",
        &[
            "seed",
            "inter_flat",
            "inter_hier",
            "total_flat",
            "total_hier",
            "reduction",
        ],
    );
    for s in 0..6u64 {
        let pt = measure(n, p, rpn, cfg.seed + s);
        table.row(vec![
            format!("{}", pt.seed),
            format!("{}", pt.inter_flat),
            format!("{}", pt.inter_hier),
            format!("{}", pt.total_flat),
            format!("{}", pt.total_hier),
            fmt(pt.reduction),
        ]);
    }
    table.emit(cfg);
}
