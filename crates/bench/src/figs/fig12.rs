//! Fig. 12 — communication-matrix NNZ vs tolerance (left/centre) and total
//! data communicated over 100 matvecs (right).
//!
//! Paper: NNZ for Hilbert and Morton at 1B elements / 4096 tasks (note the
//! different y-scales — Hilbert's locality gives far fewer non-zeros);
//! total octants moved for 25.6M elements / 256 cores on Wisconsin-8. NNZ
//! strictly decreases with tolerance; Morton shows a kink from its
//! discontinuous partitions.

use crate::common::{engine, fmt, mesh, partitioned_mesh, tolerance_grid, RunConfig, Table};
use optipart_core::metrics::{assignment, communication_matrix};
use optipart_core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart_fem::run_matvec_experiment;
use optipart_machine::MachineModel;
use optipart_sfc::Curve;

/// Runs both panels. Defaults: NNZ at p = 4096 with ~1M elements
/// (paper: 1B); data volume at p = 256 with ~256k (paper: 25.6M).
pub fn run(cfg: &RunConfig) {
    // --- Left/centre: NNZ vs tolerance, both curves, p = 4096. ---
    let p_nnz = 4096;
    let n_nnz = cfg.n(1_000_000, 10_000);
    let mut nnz_table = Table::new(
        "fig12_nnz",
        &["curve", "tolerance", "nnz", "ghost_elements_total"],
    );
    eprintln!("fig12 (left/centre): NNZ sweep, p = {p_nnz}, {n_nnz} generator points");
    for curve in Curve::ALL {
        let tree = mesh(n_nnz, cfg.seed, curve);
        for tol in tolerance_grid(0.5, 0.1) {
            let mut e = engine(MachineModel::titan(), p_nnz);
            let out = treesort_partition(
                &mut e,
                distribute_tree(&tree, p_nnz),
                PartitionOptions::with_tolerance(tol),
            );
            let assign = assignment(&tree, &out.splitters);
            let m = communication_matrix(&tree, &assign, p_nnz);
            nnz_table.row(vec![
                curve.name().into(),
                fmt(tol),
                m.nnz().to_string(),
                m.total_bytes().to_string(), // element units (see metrics docs)
            ]);
        }
    }
    nnz_table.emit(cfg);

    // --- Right: total data for 100 matvecs vs tolerance, p = 256. ---
    let p_data = 256;
    let n_data = cfg.n(150_000, 5_000);
    let iters = 100;
    let mut vol_table = Table::new(
        "fig12_total_data",
        &["curve", "tolerance", "octants_communicated"],
    );
    eprintln!(
        "fig12 (right): data volume, wisconsin-8 model, p = {p_data}, {n_data} generator points"
    );
    for curve in Curve::ALL {
        let tree = mesh(n_data, cfg.seed, curve);
        for tol in tolerance_grid(0.5, 0.1) {
            let mut e = engine(MachineModel::cloudlab_wisconsin(), p_data);
            let fem_mesh = partitioned_mesh(&mut e, &tree, tol);
            let rep = run_matvec_experiment(&mut e, &fem_mesh, iters);
            vol_table.row(vec![
                curve.name().into(),
                fmt(tol),
                rep.ghost_elements.to_string(),
            ]);
        }
    }
    vol_table.emit(cfg);
}
