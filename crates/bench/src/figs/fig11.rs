//! Fig. 11 — load imbalance and communication imbalance vs tolerance.
//!
//! Paper: Hilbert partitioning, grain 10⁵, depth-30 octree, 1792 MPI tasks
//! on Clemson CloudLab; `work max/min` and `bdy max/min` both grow with the
//! tolerance — the price paid for the smaller communication volume.

use crate::common::{engine, fmt, mesh, tolerance_grid, RunConfig, Table};
use optipart_core::metrics::{
    assignment, boundary_counts, comm_imbalance, load_imbalance, partition_counts,
};
use optipart_core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart_machine::MachineModel;
use optipart_sfc::Curve;

/// Runs the imbalance sweep. Default grain 250 elements/rank (paper 10⁵).
pub fn run(cfg: &RunConfig) {
    let p = 1792;
    let n = cfg.n(450_000, 5_000);
    let curve = Curve::Hilbert;
    let tree = mesh(n, cfg.seed, curve);
    let mut table = Table::new(
        "fig11_imbalance",
        &["tolerance", "load_imbalance", "comm_imbalance"],
    );
    eprintln!("fig11: imbalance sweep, clemson-32 model, p = {p}, {n} generator points");

    for tol in tolerance_grid(0.5, 0.05) {
        let mut e = engine(MachineModel::cloudlab_clemson(), p);
        let out = treesort_partition(
            &mut e,
            distribute_tree(&tree, p),
            PartitionOptions::with_tolerance(tol),
        );
        let assign = assignment(&tree, &out.splitters);
        let counts = partition_counts(&assign, p);
        let bdy = boundary_counts(&tree, &assign, p);
        table.row(vec![
            fmt(tol),
            fmt(load_imbalance(&counts)),
            fmt(comm_imbalance(&bdy)),
        ]);
    }
    table.emit(cfg);
}
