//! `figures scaling` — Fig. 4-style strong-scaling sweep of the sparse
//! hypercube collectives stack, executed on one box at the paper's full
//! Titan rank counts (4,096 → 262,144 virtual ranks, doubling).
//!
//! The total exchanged volume is held fixed across the sweep (strong
//! scaling): as p doubles, per-link payloads halve while the hypercube
//! adds one stage, so the virtual makespan curve exposes the
//! O(active neighbours + log p) staging cost directly. Each point also
//! records the *real* allocation count of one steady-state exchange —
//! flat on a warm arena, and the quantity the `bench compare` alloc-ratio
//! gate locks down against the dense reference.

use crate::alloc_count::counters;
use crate::common::{fmt, RunConfig, Table};
use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::{AllToAllAlgo, AlltoallvArena, Engine};

/// One measured point of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Virtual rank count.
    pub p: usize,
    /// Hypercube stage count, ceil(log2 p).
    pub stages: u32,
    /// Payload elements per neighbour link (fixed-volume split).
    pub per_link: usize,
    /// Virtual makespan of one warm exchange round, seconds.
    pub makespan_s: f64,
    /// Real allocator calls during one steady-state round (staging +
    /// exchange + delivery on warm pools) — ~0 by design.
    pub steady_allocs: u64,
    /// Modelled bytes moved per round.
    pub bytes_per_round: u64,
    /// Modelled point-to-point messages per round.
    pub msgs_per_round: u64,
}

/// Total exchanged u64 volume per round, fixed across the sweep: 12
/// elements per rank at the paper's top count (2 per link at p = 262,144).
const TOTAL_VOLUME: usize = 12 * 262_144;

/// 3D face-neighbour pattern of a balanced octree partition (§5.5).
const NEIGHBOURS: [isize; 6] = [-3, -2, -1, 1, 2, 3];

fn engine(p: usize) -> Engine {
    Engine::new(
        p,
        PerfModel::new(
            MachineModel::cloudlab_wisconsin(),
            AppModel::laplacian_matvec(),
        ),
    )
}

fn stage_round(arena: &mut AlltoallvArena<u64>, p: usize, per_link: usize, round: u64) {
    for src in 0..p {
        for d in NEIGHBOURS {
            let dst = (src as isize + d).rem_euclid(p as isize) as usize;
            let tag = round ^ ((src as u64) << 24) ^ ((dst as u64) << 4);
            arena.send(src, dst, (0..per_link as u64).map(move |i| tag ^ i));
        }
    }
}

/// Runs the sweep up to `max_p` ranks and returns one point per doubling.
///
/// Allocation counts are only meaningful when the calling binary installs
/// [`crate::alloc_count::CountingAllocator`] (both `bench` and `figures`
/// do); otherwise they read 0.
pub fn sweep(max_p: usize) -> Vec<ScalePoint> {
    let max_p = max_p.max(2);
    let mut points = Vec::new();
    let mut p = 4_096.min(max_p);
    loop {
        let per_link = (TOTAL_VOLUME / (6 * p)).max(1);
        let mut e = engine(p);
        let mut arena: AlltoallvArena<u64> = AlltoallvArena::new();

        // Warm round grows every pool once; its makespan is the per-round
        // virtual cost (warm rounds charge identically).
        stage_round(&mut arena, p, per_link, 0);
        e.alltoallv_flat(&mut arena, AllToAllAlgo::Hypercube);
        let m0 = e.makespan();
        let bytes0 = e.stats().bytes_total;
        let msgs0 = e.stats().msgs_total;

        let (a0, _) = counters();
        stage_round(&mut arena, p, per_link, 1);
        e.alltoallv_flat(&mut arena, AllToAllAlgo::Hypercube);
        let (a1, _) = counters();
        assert_eq!(
            e.makespan(),
            2.0 * m0,
            "p = {p}: warm rounds must charge identically"
        );

        points.push(ScalePoint {
            p,
            stages: if p <= 1 {
                0
            } else {
                usize::BITS - (p - 1).leading_zeros()
            },
            per_link,
            makespan_s: m0,
            steady_allocs: a1 - a0,
            bytes_per_round: bytes0,
            msgs_per_round: msgs0,
        });
        if p >= max_p {
            break;
        }
        p = (p * 2).min(max_p);
    }
    points
}

/// Emits the sweep as a table (CSV with `--out`).
pub fn run(cfg: &RunConfig) {
    let mut t = Table::new(
        "scaling",
        &[
            "p",
            "stages",
            "elems_per_link",
            "makespan_ms",
            "steady_allocs",
            "msgs_per_round",
            "bytes_per_round",
        ],
    );
    for pt in sweep(cfg.max_p) {
        t.row(vec![
            pt.p.to_string(),
            pt.stages.to_string(),
            pt.per_link.to_string(),
            fmt(pt.makespan_s * 1e3),
            pt.steady_allocs.to_string(),
            pt.msgs_per_round.to_string(),
            pt.bytes_per_round.to_string(),
        ]);
    }
    t.emit(cfg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_double_up_to_max_p() {
        let pts = sweep(16_384);
        let ps: Vec<usize> = pts.iter().map(|pt| pt.p).collect();
        assert_eq!(ps, vec![4_096, 8_192, 16_384]);
        assert_eq!(pts[0].stages, 12);
        assert_eq!(pts[2].stages, 14);
        // Fixed total volume: per-link halves as p doubles.
        assert_eq!(pts[0].per_link, 2 * pts[1].per_link);
        for pt in &pts {
            assert!(pt.makespan_s > 0.0 && pt.makespan_s.is_finite());
            assert!(pt.msgs_per_round >= 6 * pt.p as u64);
        }
    }

    #[test]
    fn small_max_p_clamps_to_a_single_point() {
        let pts = sweep(64);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].p, 64);
        assert_eq!(pts[0].stages, 6);
    }
}
