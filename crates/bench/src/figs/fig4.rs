//! Fig. 4 — strong scaling of Morton/Hilbert partitioning on Titan.
//!
//! Paper: 16×10⁶ elements, 16–1024 cores, execution time bars with parallel
//! efficiency annotated (43% at 64× scale-up; 16M elements partitioned in
//! ~25 ms across 1024 cores).

use crate::common::{engine, fmt, mesh, RunConfig, Table};
use optipart_core::partition::{distribute_shuffled, treesort_partition, PartitionOptions};
use optipart_machine::MachineModel;
use optipart_sfc::Curve;

/// Runs the strong-scaling sweep. Default element count is 10% of the
/// paper's 16M (scale with `--scale`).
pub fn run(cfg: &RunConfig) {
    let n = cfg.n(470_000, 10_000); // generator points; leaves ≈ 3.4x
    let ps = [16usize, 32, 64, 128, 256, 512, 1024];
    let mut table = Table::new(
        "fig4_strong_scaling",
        &["curve", "p", "time_s", "efficiency_pct"],
    );
    eprintln!("fig4: strong scaling, {n} generator points (~1.6M leaves), titan model");

    for curve in Curve::ALL {
        let tree = mesh(n, cfg.seed, curve);
        let mut base: Option<f64> = None;
        for &p in &ps {
            let mut e = engine(MachineModel::titan(), p);
            let _ = treesort_partition(
                &mut e,
                distribute_shuffled(&tree, p, cfg.seed),
                PartitionOptions::exact(),
            );
            let t = e.makespan();
            let eff = match base {
                None => {
                    base = Some(t * ps[0] as f64);
                    100.0
                }
                Some(b) => 100.0 * b / (t * p as f64),
            };
            table.row(vec![curve.name().into(), p.to_string(), fmt(t), fmt(eff)]);
        }
    }
    table.emit(cfg);
}
