//! Fig. 10 — measured vs model-predicted runtime, and OptiPart's chosen
//! tolerance.
//!
//! Paper: 100 matvecs, 256 cores, Wisconsin CloudLab, Hilbert; the measured
//! tolerance curve against the `Tp = α·tc·Wmax + tw·Cmax` prediction, with
//! the tolerance OptiPart itself selects highlighted. OptiPart approaches the
//! optimum from the right (coarse → fine) and stops where predicted time
//! turns upward.

use crate::common::{engine, fmt, mesh, partitioned_mesh, tolerance_grid, RunConfig, Table};
use optipart_core::metrics::{assignment, exact_predicted_time};
use optipart_core::optipart::{optipart, OptiPartOptions};
use optipart_core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart_core::quality::partition_quality;
use optipart_fem::run_matvec_experiment;
use optipart_machine::MachineModel;
use optipart_sfc::Curve;

/// Runs the sweep plus the OptiPart stop-point. Default mesh ~256k elements.
pub fn run(cfg: &RunConfig) {
    let p = 256;
    let n = cfg.n(600_000, 5_000);
    let iters = 100;
    let curve = Curve::Hilbert;
    let tree = mesh(n, cfg.seed, curve);
    let mut table = Table::new(
        "fig10_measured_vs_predicted",
        &[
            "tolerance",
            "measured_min",
            "predicted_eq3_min",
            "predicted_exact_min",
            "wmax",
            "cmax",
        ],
    );
    eprintln!("fig10: measured vs predicted, wisconsin-8 model, p = {p}, {n} generator points");

    let mut best = (f64::INFINITY, 0.0f64);
    for tol in tolerance_grid(0.5, 0.05) {
        // Measured: simulate the matvecs on the tol-partition.
        let mut e = engine(MachineModel::cloudlab_wisconsin(), p);
        let fem_mesh = partitioned_mesh(&mut e, &tree, tol);
        let rep = run_matvec_experiment(&mut e, &fem_mesh, iters);
        // Predicted: Eq. (3) per matvec × iterations, from Algorithm 2 on
        // the same splitters.
        let mut e2 = engine(MachineModel::cloudlab_wisconsin(), p);
        let out = treesort_partition(
            &mut e2,
            distribute_tree(&tree, p),
            PartitionOptions::with_tolerance(tol),
        );
        let mut d = distribute_tree(&tree, p);
        let q = partition_quality(&mut e2, &mut d, &out.splitters, curve);
        let predicted = q.tp * iters as f64;
        // Exact per-iteration model from the true communication structure
        // (volumes + message latencies), for comparison with Algorithm 2's
        // cheap estimate.
        let assign = assignment(&tree, &out.splitters);
        let exact = exact_predicted_time(&tree, &assign, p, e2.perf()) * iters as f64;
        if rep.seconds < best.0 {
            best = (rep.seconds, tol);
        }
        table.row(vec![
            fmt(tol),
            fmt(rep.seconds / 60.0),
            fmt(predicted / 60.0),
            fmt(exact / 60.0),
            q.wmax.to_string(),
            q.cmax.to_string(),
        ]);
    }
    table.emit(cfg);

    // OptiPart's own stopping point, under both model variants.
    let mut summary = Table::new(
        "fig10_optipart_choice",
        &[
            "model",
            "optipart_tolerance",
            "bruteforce_best_tolerance",
            "predicted_tp_min",
        ],
    );
    for latency_aware in [false, true] {
        let mut e = engine(MachineModel::cloudlab_wisconsin(), p);
        let out = optipart(
            &mut e,
            distribute_tree(&tree, p),
            OptiPartOptions {
                latency_aware,
                ..OptiPartOptions::for_curve(curve)
            },
        );
        summary.row(vec![
            if latency_aware {
                "eq3+latency".into()
            } else {
                "eq3".into()
            },
            fmt(out.report.achieved_tolerance),
            fmt(best.1),
            fmt(out.report.predicted_tp * iters as f64 / 60.0),
        ]);
    }
    summary.emit(cfg);
}
