//! Fig. 5 — weak scaling to 262,144 cores on Titan, partition vs all2all.
//!
//! Paper: grain 10⁶ elements/process, 16 → 262,144 processes (16M → 262B
//! elements), total time split into splitter computation ("partition") and
//! the data exchange ("all2all"); the exchange dominates at scale.
//!
//! We execute the virtual-process runs up to a laptop-feasible `p` and
//! extend the curve with the Eq. (2) model to the paper's full 262,144 —
//! the same formula the executed points are charged with, so the two
//! segments are consistent by construction.

use crate::common::{engine, fmt, mesh, RunConfig, Table};
use optipart_core::partition::{
    distribute_shuffled, treesort_partition, PartitionOptions, PHASE_ALL2ALL, PHASE_LOCAL_SORT,
    PHASE_SPLITTER,
};
use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_sfc::Curve;

/// Runs the weak-scaling sweep. Default grain is 2,000 elements/rank.
pub fn run(cfg: &RunConfig) {
    let grain = cfg.n(2_000, 200);
    let ps = [16usize, 64, 256, 1024];
    let mut table = Table::new(
        "fig5_weak_scaling",
        &["curve", "p", "grain", "partition_s", "all2all_s", "total_s"],
    );
    eprintln!("fig5: weak scaling, grain = {grain}, titan model");

    for curve in Curve::ALL {
        for &p in &ps {
            let tree = mesh(grain * p, cfg.seed, curve);
            let mut e = engine(MachineModel::titan(), p);
            let _ = treesort_partition(
                &mut e,
                distribute_shuffled(&tree, p, cfg.seed),
                PartitionOptions::exact(),
            );
            let split = e.phase_time(PHASE_SPLITTER) + e.phase_time(PHASE_LOCAL_SORT);
            let a2a = e.phase_time(PHASE_ALL2ALL);
            table.row(vec![
                curve.name().into(),
                p.to_string(),
                grain.to_string(),
                fmt(split),
                fmt(a2a),
                fmt(e.makespan()),
            ]);
        }
    }
    table.emit(cfg);

    // Model extension to the paper's 262,144 cores (Eq. 2, k = 4096).
    let perf = PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec());
    let mut ext = Table::new("fig5_model_extension", &["p", "grain", "modeled_total_s"]);
    for p in [1024usize, 8192, 65_536, 262_144] {
        let k = p.min(4096);
        ext.row(vec![
            p.to_string(),
            grain.to_string(),
            fmt(perf.treesort_time_staged(grain as u64, p, k)),
        ]);
    }
    ext.emit(cfg);
}
