//! Recovery ablation: checkpoint overhead and recovery cost vs. interval.
//!
//! Not a figure from the paper — an experiment over the fail-stop layer
//! this reproduction adds. For each checkpoint policy, run the same matvec
//! workload twice on a `p = 8` machine:
//!
//! * **clean** — no faults, measuring the pure checkpoint overhead over the
//!   checkpoint-free baseline;
//! * **faulted** — one rank killed halfway through the run's sync-point
//!   timeline, measuring restore + survivor-repartition + re-execution.
//!
//! The interval trade-off the Young/Daly formula formalises shows up
//! directly: frequent checkpoints cost steady overhead but lose few
//! iterations at a death; sparse checkpoints are cheap until the rollback.

use crate::common::{engine, fmt, mesh, partitioned_mesh, RunConfig, Table};
use optipart_fem::run_matvec_ft;
use optipart_machine::MachineModel;
use optipart_mpisim::{CheckpointPolicy, FaultPlan};
use optipart_sfc::Curve;

fn policy_name(p: CheckpointPolicy) -> String {
    match p {
        CheckpointPolicy::Never => "never".into(),
        CheckpointPolicy::EveryStep => "every-step".into(),
        CheckpointPolicy::EveryN(n) => format!("every-{n}"),
        CheckpointPolicy::YoungDaly { mtbf_s } => format!("young-daly@{mtbf_s:.0e}"),
    }
}

/// Recovery-overhead ablation table.
pub fn run(cfg: &RunConfig) {
    let p = 8;
    let iters = 30;
    let n = cfg.n(50_000, 2_000);
    let tree = mesh(n, cfg.seed, Curve::Hilbert);
    let mut table = Table::new(
        "ablation_recovery_overhead",
        &[
            "policy",
            "saves",
            "checkpoint_s",
            "ckpt_overhead_pct",
            "restores",
            "lost_iters",
            "recovery_s",
            "faulted_total_s",
        ],
    );
    eprintln!("ablation: recovery overhead, p = {p}, {n} generator points, {iters} matvecs");

    // Checkpoint-free baseline.
    let mut base = engine(MachineModel::cloudlab_wisconsin(), p);
    let base_mesh = partitioned_mesh(&mut base, &tree, 0.0);
    let baseline = run_matvec_ft(&mut base, &base_mesh, iters, CheckpointPolicy::Never);

    for policy in [
        CheckpointPolicy::EveryStep,
        CheckpointPolicy::EveryN(2),
        CheckpointPolicy::EveryN(5),
        CheckpointPolicy::EveryN(10),
        CheckpointPolicy::YoungDaly { mtbf_s: 1e-3 },
    ] {
        // Clean run: checkpoint overhead, and a probe of the sync-point
        // timeline so the faulted run's kill lands mid-solve.
        let mut clean = engine(MachineModel::cloudlab_wisconsin(), p);
        let clean_mesh = partitioned_mesh(&mut clean, &tree, 0.0);
        let clean_rep = run_matvec_ft(&mut clean, &clean_mesh, iters, policy);
        let mid = clean.sync_points() / 2;
        let overhead_pct = (clean_rep.seconds / baseline.seconds - 1.0) * 100.0;

        let mut e = engine(MachineModel::cloudlab_wisconsin(), p);
        let faulted_mesh = partitioned_mesh(&mut e, &tree, 0.0);
        let mut e = e.with_faults(FaultPlan::new(cfg.seed).kill_rank(3, mid));
        let rep = run_matvec_ft(&mut e, &faulted_mesh, iters, policy);
        assert_eq!(rep.deaths.len(), 1, "the scheduled kill must fire");

        table.row(vec![
            policy_name(policy),
            rep.checkpoint.saves.to_string(),
            fmt(rep.checkpoint.checkpoint_s),
            format!("{overhead_pct:.2}"),
            rep.checkpoint.restores.to_string(),
            rep.lost_iterations.to_string(),
            fmt(rep.deaths.iter().map(|d| d.recovery_s).sum::<f64>()),
            fmt(rep.seconds),
        ]);
    }
    table.emit(cfg);
}
