//! Fig. 6 — OptiPart vs SampleSort (Dendro) weak-scaling breakdown on
//! Stampede and Titan.
//!
//! Paper: grain 10⁶ octants on Stampede (p ≤ 4096) and 5×10⁶ on Titan
//! (p ≤ 32768); bars split into local sort / all2all / splitter. OptiPart's
//! count-based splitter selection scales better than SampleSort's
//! `O(p²)`-sample gather, and the overall times are comparable — the
//! "incorporating the machine model costs nothing" takeaway.

use crate::common::{engine, fmt, mesh, RunConfig, Table};
use optipart_core::optipart::{optipart, OptiPartOptions};
use optipart_core::partition::{
    distribute_shuffled, PHASE_ALL2ALL, PHASE_LOCAL_SORT, PHASE_SPLITTER,
};
use optipart_core::samplesort::{samplesort_partition, SampleSortOptions};
use optipart_machine::MachineModel;
use optipart_sfc::Curve;

/// Runs the comparison on both machines. Default grain 2,000 elements/rank.
pub fn run(cfg: &RunConfig) {
    let grain = cfg.n(2_000, 200);
    let ps = [16usize, 64, 256, 1024];
    let mut table = Table::new(
        "fig6_optipart_vs_samplesort",
        &[
            "machine",
            "algo",
            "p",
            "local_s",
            "all2all_s",
            "splitter_s",
            "total_s",
        ],
    );
    eprintln!("fig6: weak scaling breakdown, grain = {grain}");

    for machine in [MachineModel::stampede(), MachineModel::titan()] {
        for &p in &ps {
            let tree = mesh(grain * p, cfg.seed, Curve::Morton);
            // OptiPart (Morton, like Dendro, for apples-to-apples).
            {
                let mut e = engine(machine.clone(), p);
                let _ = optipart(
                    &mut e,
                    distribute_shuffled(&tree, p, cfg.seed),
                    OptiPartOptions::for_curve(Curve::Morton),
                );
                table.row(vec![
                    machine.name.clone(),
                    "optipart".into(),
                    p.to_string(),
                    fmt(e.phase_time(PHASE_LOCAL_SORT)),
                    fmt(e.phase_time(PHASE_ALL2ALL)),
                    fmt(e.phase_time(PHASE_SPLITTER)),
                    fmt(e.makespan()),
                ]);
            }
            // Dendro-style Morton + SampleSort.
            {
                let mut e = engine(machine.clone(), p);
                let _ = samplesort_partition(
                    &mut e,
                    distribute_shuffled(&tree, p, cfg.seed),
                    SampleSortOptions::default(),
                );
                table.row(vec![
                    machine.name.clone(),
                    "samplesort".into(),
                    p.to_string(),
                    fmt(e.phase_time(PHASE_LOCAL_SORT)),
                    fmt(e.phase_time(PHASE_ALL2ALL)),
                    fmt(e.phase_time(PHASE_SPLITTER)),
                    fmt(e.makespan()),
                ]);
            }
        }
    }
    table.emit(cfg);
}
