//! `BENCH_*.json` reports: the schema, a dependency-free JSON writer and
//! parser (the offline policy rules out serde), and the regression
//! comparison `bench compare` gates on.
//!
//! Schema (`optipart-bench/1`):
//!
//! ```json
//! {
//!   "schema": "optipart-bench/1",
//!   "host": "mybox", "mode": "full", "samples": 10, "threads": 8,
//!   "cores": 8,
//!   "kernels": [
//!     { "name": "treesort_seq", "group": "treesort", "n": 100000,
//!       "elements": 99873, "min_iter_ns": 1234567,
//!       "ns_per_elem": 12.36, "melem_per_s": 80.9,
//!       "allocs_per_iter": 0, "alloc_bytes_per_iter": 0,
//!       "checksum": "0x1a2b3c4d5e6f7788" }
//!   ],
//!   "derived": { "treesort_speedup_vs_reference": 1.62 }
//! }
//! ```
//!
//! Comparison policy (DESIGN.md §13): allocation counts and checksums are
//! deterministic, so they gate unconditionally; per-element times gate at
//! the threshold only when the runs come from the same host class
//! (`--allocs-only` disables the time gate for cross-machine compares).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One measured kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelResult {
    /// Registry name, e.g. `treesort_seq`.
    pub name: String,
    /// Which of the criterion bench families it descends from.
    pub group: String,
    /// Problem-size parameter the kernel was built at.
    pub n: u64,
    /// Elements processed per iteration (throughput denominator).
    pub elements: u64,
    /// Fastest observed iteration, nanoseconds.
    pub min_iter_ns: u64,
    /// `min_iter_ns / elements`.
    pub ns_per_elem: f64,
    /// `elements / min_iter_ns * 1e3` (million elements per second).
    pub melem_per_s: f64,
    /// Heap allocations in one steady-state iteration.
    pub allocs_per_iter: u64,
    /// Bytes requested in one steady-state iteration.
    pub alloc_bytes_per_iter: u64,
    /// Output checksum as `0x…` hex (u64 doesn't round-trip JSON numbers).
    pub checksum: String,
}

/// A full `BENCH_*.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Schema tag, [`Report::SCHEMA`].
    pub schema: String,
    /// Sanitised hostname the run was recorded on.
    pub host: String,
    /// `"full"` or `"tiny"`.
    pub mode: String,
    /// Timing samples per kernel (min is reported).
    pub samples: u64,
    /// Worker-thread budget of parallel kernels.
    pub threads: u64,
    /// Host capability stanza: CPU cores visible to the run (0 when the
    /// report predates this field). Parallel-speedup figures recorded on
    /// hosts with different core counts are not comparable — `bench
    /// compare` warns on a mismatch rather than gating.
    pub cores: u64,
    /// Per-kernel results, registry order.
    pub kernels: Vec<KernelResult>,
    /// Derived cross-kernel figures (e.g. speedup ratios).
    pub derived: BTreeMap<String, f64>,
}

impl Report {
    /// Current schema tag.
    pub const SCHEMA: &'static str = "optipart-bench/1";

    /// Serialises to pretty-printed JSON (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", quote(&self.schema));
        let _ = writeln!(s, "  \"host\": {},", quote(&self.host));
        let _ = writeln!(s, "  \"mode\": {},", quote(&self.mode));
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"cores\": {},", self.cores);
        s.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let _ = write!(
                s,
                "    {{ \"name\": {}, \"group\": {}, \"n\": {}, \"elements\": {},\n      \
                 \"min_iter_ns\": {}, \"ns_per_elem\": {}, \"melem_per_s\": {},\n      \
                 \"allocs_per_iter\": {}, \"alloc_bytes_per_iter\": {}, \"checksum\": {} }}",
                quote(&k.name),
                quote(&k.group),
                k.n,
                k.elements,
                k.min_iter_ns,
                fmt_f64(k.ns_per_elem),
                fmt_f64(k.melem_per_s),
                k.allocs_per_iter,
                k.alloc_bytes_per_iter,
                quote(&k.checksum),
            );
            s.push_str(if i + 1 < self.kernels.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"derived\": {");
        for (i, (k, v)) in self.derived.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    {}: {}", quote(k), fmt_f64(*v));
        }
        if !self.derived.is_empty() {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Parses a document produced by [`Report::to_json`] (or hand-edited —
    /// any whitespace / key order / trailing precision is accepted).
    pub fn from_json(text: &str) -> Result<Report, String> {
        let v = Json::parse(text)?;
        let obj = v.as_obj("report")?;
        let schema = obj.str_field("schema")?;
        if schema != Report::SCHEMA {
            return Err(format!("unsupported schema {schema:?}"));
        }
        let mut kernels = Vec::new();
        for (i, kv) in obj.arr_field("kernels")?.iter().enumerate() {
            let k = kv.as_obj(&format!("kernels[{i}]"))?;
            kernels.push(KernelResult {
                name: k.str_field("name")?,
                group: k.str_field("group")?,
                n: k.num_field("n")? as u64,
                elements: k.num_field("elements")? as u64,
                min_iter_ns: k.num_field("min_iter_ns")? as u64,
                ns_per_elem: k.num_field("ns_per_elem")?,
                melem_per_s: k.num_field("melem_per_s")?,
                allocs_per_iter: k.num_field("allocs_per_iter")? as u64,
                alloc_bytes_per_iter: k.num_field("alloc_bytes_per_iter")? as u64,
                checksum: k.str_field("checksum")?,
            });
        }
        let mut derived = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = obj.get("derived") {
            for (k, v) in pairs {
                derived.insert(k.clone(), v.as_num(k)?);
            }
        }
        Ok(Report {
            schema,
            host: obj.str_field("host")?,
            mode: obj.str_field("mode")?,
            samples: obj.num_field("samples")? as u64,
            threads: obj.num_field("threads")? as u64,
            // Tolerant: reports written before the host-capability stanza
            // existed parse as cores = 0 ("unknown").
            cores: obj
                .get("cores")
                .and_then(|v| v.as_num("cores").ok())
                .unwrap_or(0.0) as u64,
            kernels,
            derived,
        })
    }
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "0.0".into()
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for parsing `BENCH_*.json` under the offline policy.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn as_obj(&self, what: &str) -> Result<&Vec<(String, Json)>, String> {
        match self {
            Json::Obj(pairs) => Ok(pairs),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn as_num(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(x) => Ok(*x),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }
}

/// Field accessors over the `Vec<(String, Json)>` object representation.
trait ObjExt {
    fn get(&self, key: &str) -> Option<&Json>;
    fn str_field(&self, key: &str) -> Result<String, String>;
    fn num_field(&self, key: &str) -> Result<f64, String>;
    fn arr_field(&self, key: &str) -> Result<&Vec<Json>, String>;
}

impl ObjExt for Vec<(String, Json)> {
    fn get(&self, key: &str) -> Option<&Json> {
        self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str_field(&self, key: &str) -> Result<String, String> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s.clone()),
            other => Err(format!("field {key:?}: expected string, got {other:?}")),
        }
    }

    fn num_field(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(Json::Num(x)) => Ok(*x),
            other => Err(format!("field {key:?}: expected number, got {other:?}")),
        }
    }

    fn arr_field(&self, key: &str) -> Result<&Vec<Json>, String> {
        match self.get(key) {
            Some(Json::Arr(items)) => Ok(items),
            other => Err(format!("field {key:?}: expected array, got {other:?}")),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {s:?} at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            c => {
                // Re-assemble multi-byte UTF-8 sequences byte-by-byte.
                let start = *pos - 1;
                let len = utf8_len(c);
                let chunk = b.get(start..start + len).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos = start + len;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// One regression found by [`compare_reports`].
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Kernel the regression was found in.
    pub kernel: String,
    /// Human-readable description with both values.
    pub what: String,
}

/// Compares `current` against `baseline`.
///
/// * Checksum drift and allocation-count regressions always gate (both are
///   deterministic for a fixed `n`/thread budget).
/// * Per-element time regressions beyond `max_regression_pct` gate unless
///   `allocs_only` (cross-machine compares have no meaningful time base).
///
/// Kernels missing from either side are skipped (the registry may grow),
/// as are kernels whose `n` differs (tiny vs full runs are incomparable).
pub fn compare_reports(
    baseline: &Report,
    current: &Report,
    max_regression_pct: f64,
    allocs_only: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let factor = 1.0 + max_regression_pct / 100.0;
    for cur in &current.kernels {
        let Some(base) = baseline
            .kernels
            .iter()
            .find(|b| b.name == cur.name && b.n == cur.n)
        else {
            continue;
        };
        if base.checksum != cur.checksum {
            out.push(Violation {
                kernel: cur.name.clone(),
                what: format!(
                    "checksum drift: baseline {} vs current {} (bit-identity broken)",
                    base.checksum, cur.checksum
                ),
            });
        }
        // Small absolute slack: one-off setup allocations (e.g. a lazily
        // grown scratch) must not flag as a regression.
        if cur.allocs_per_iter as f64 > base.allocs_per_iter as f64 * factor + 4.0 {
            out.push(Violation {
                kernel: cur.name.clone(),
                what: format!(
                    "allocation regression: {} allocs/iter vs baseline {}",
                    cur.allocs_per_iter, base.allocs_per_iter
                ),
            });
        }
        if !allocs_only && cur.ns_per_elem > base.ns_per_elem * factor {
            out.push(Violation {
                kernel: cur.name.clone(),
                what: format!(
                    "time regression: {:.3} ns/elem vs baseline {:.3} (> {:.0}% slower)",
                    cur.ns_per_elem, base.ns_per_elem, max_regression_pct
                ),
            });
        }
    }
    out.extend(arena_ratio_gate(current));
    out.extend(hier_alloc_parity_gate(current));
    out
}

/// Evaluating Algorithm 2 under a two-level machine must allocate exactly
/// as much as under the flat model — the hierarchical terms (intra
/// counting, weighted `Cmax` selection, the `predict_hier` discount) are
/// pure arithmetic over counters the flat path already reduces. Checked on
/// `current` alone with zero slack, like [`arena_ratio_gate`].
fn hier_alloc_parity_gate(current: &Report) -> Vec<Violation> {
    let mut out = Vec::new();
    for cur in &current.kernels {
        if cur.name != "partition_quality_hier" {
            continue;
        }
        let Some(flat) = current
            .kernels
            .iter()
            .find(|k| k.name == "partition_quality_flat" && k.n == cur.n)
        else {
            continue;
        };
        if cur.allocs_per_iter > flat.allocs_per_iter {
            out.push(Violation {
                kernel: cur.name.clone(),
                what: format!(
                    "hier alloc parity broken: two-level quality evaluation makes {} \
                     allocs/iter vs the flat path's {} at n = {}",
                    cur.allocs_per_iter, flat.allocs_per_iter, cur.n
                ),
            });
        }
    }
    out
}

/// The flat-arena all-to-all must stay ≥ 100× leaner in allocations than
/// the dense p × p reference at the same `n`. Checked on `current` alone
/// (not a baseline join): tiny CI runs and full local runs use different
/// `n`, and the invariant must hold at whichever scale actually ran.
fn arena_ratio_gate(current: &Report) -> Vec<Violation> {
    let mut out = Vec::new();
    for cur in &current.kernels {
        if cur.name != "alltoallv_by_hash" {
            continue;
        }
        let Some(dense) = current
            .kernels
            .iter()
            .find(|k| k.name == "alltoallv_by_hash_dense_reference" && k.n == cur.n)
        else {
            continue;
        };
        let arena_allocs = cur.allocs_per_iter.max(1);
        if dense.allocs_per_iter < 100 * arena_allocs {
            out.push(Violation {
                kernel: cur.name.clone(),
                what: format!(
                    "arena alloc ratio collapsed: dense reference {} allocs/iter is \
                     < 100× the arena path's {} at n = {}",
                    dense.allocs_per_iter, cur.allocs_per_iter, cur.n
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            schema: Report::SCHEMA.into(),
            host: "unit-host".into(),
            mode: "tiny".into(),
            samples: 3,
            threads: 4,
            cores: 4,
            kernels: vec![
                KernelResult {
                    name: "treesort_seq".into(),
                    group: "treesort".into(),
                    n: 3000,
                    elements: 2990,
                    min_iter_ns: 120_000,
                    ns_per_elem: 40.13,
                    melem_per_s: 24.9,
                    allocs_per_iter: 0,
                    alloc_bytes_per_iter: 0,
                    checksum: "0xdeadbeef12345678".into(),
                },
                KernelResult {
                    name: "allreduce_vec".into(),
                    group: "collectives".into(),
                    n: 64,
                    elements: 512,
                    min_iter_ns: 64_000,
                    ns_per_elem: 125.0,
                    melem_per_s: 8.0,
                    allocs_per_iter: 130,
                    alloc_bytes_per_iter: 4096,
                    checksum: "0x1".into(),
                },
            ],
            derived: BTreeMap::from([("treesort_speedup_vs_reference".into(), 1.5)]),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample_report();
        let parsed = Report::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed.host, r.host);
        assert_eq!(parsed.cores, 4);
        assert_eq!(parsed.kernels.len(), 2);
        assert_eq!(parsed.kernels[0], r.kernels[0]);
        assert_eq!(parsed.derived, r.derived);
    }

    #[test]
    fn reports_without_a_cores_stanza_still_parse() {
        let r = sample_report();
        let legacy = r.to_json().replace("  \"cores\": 4,\n", "");
        let parsed = Report::from_json(&legacy).expect("legacy report parses");
        assert_eq!(parsed.cores, 0, "missing stanza must read as unknown");
        assert_eq!(parsed.kernels.len(), 2);
    }

    #[test]
    fn identical_reports_pass() {
        let r = sample_report();
        assert!(compare_reports(&r, &r, 10.0, false).is_empty());
    }

    #[test]
    fn injected_ten_percent_slowdown_fails() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.kernels[0].ns_per_elem *= 1.11; // just past the 10% gate
        let v = compare_reports(&base, &cur, 10.0, false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].what.contains("time regression"), "{v:?}");
        // The same slowdown passes a cross-machine (allocs-only) compare.
        assert!(compare_reports(&base, &cur, 10.0, true).is_empty());
    }

    #[test]
    fn allocation_and_checksum_regressions_always_gate() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.kernels[1].allocs_per_iter = 500;
        cur.kernels[0].checksum = "0x0".into();
        let v = compare_reports(&base, &cur, 10.0, true);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.what.contains("allocation regression")));
        assert!(v.iter().any(|x| x.what.contains("checksum drift")));
    }

    #[test]
    fn mismatched_n_and_unknown_kernels_are_skipped() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.kernels[0].n = 100_000; // full vs tiny: incomparable
        cur.kernels[0].ns_per_elem *= 10.0;
        cur.kernels[1].name = "brand_new_kernel".into();
        assert!(compare_reports(&base, &cur, 10.0, false).is_empty());
    }

    /// Appends the by-hash arena/dense kernel pair to a report.
    fn with_hash_pair(mut r: Report, arena_allocs: u64, dense_allocs: u64, n: u64) -> Report {
        for (name, allocs) in [
            ("alltoallv_by_hash", arena_allocs),
            ("alltoallv_by_hash_dense_reference", dense_allocs),
        ] {
            r.kernels.push(KernelResult {
                name: name.into(),
                group: "collectives".into(),
                n,
                elements: n * 256,
                min_iter_ns: 1_000_000,
                ns_per_elem: 10.0,
                melem_per_s: 100.0,
                allocs_per_iter: allocs,
                alloc_bytes_per_iter: allocs * 64,
                checksum: "0x2".into(),
            });
        }
        r
    }

    #[test]
    fn arena_ratio_gate_passes_at_100x_and_fails_below() {
        let ok = with_hash_pair(sample_report(), 3, 300, 512);
        assert!(compare_reports(&ok, &ok, 10.0, true).is_empty());

        let thin = with_hash_pair(sample_report(), 3, 299, 512);
        let v = compare_reports(&thin, &thin, 10.0, true);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].what.contains("arena alloc ratio collapsed"), "{v:?}");

        // A zero-alloc arena path still needs a ≥ 100-alloc dense side:
        // the ratio denominator clamps at 1.
        let zero = with_hash_pair(sample_report(), 0, 99, 512);
        let v = compare_reports(&zero, &zero, 10.0, true);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn arena_ratio_gate_checks_current_even_without_baseline_join() {
        // Baseline predates the kernel pair (or ran at a different n):
        // the ratio invariant must still gate on the current report.
        let base = sample_report();
        let cur = with_hash_pair(sample_report(), 50, 200, 512);
        let v = compare_reports(&base, &cur, 10.0, true);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].what.contains("arena alloc ratio"), "{v:?}");

        // Dense reference filtered out of the run entirely → nothing to
        // compare against, no violation.
        let mut lone = sample_report();
        lone.kernels.push(KernelResult {
            name: "alltoallv_by_hash".into(),
            group: "collectives".into(),
            n: 512,
            elements: 512 * 256,
            min_iter_ns: 1_000_000,
            ns_per_elem: 10.0,
            melem_per_s: 100.0,
            allocs_per_iter: 1_000_000,
            alloc_bytes_per_iter: 0,
            checksum: "0x2".into(),
        });
        assert!(compare_reports(&base, &lone, 10.0, true).is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Report::from_json("not json").is_err());
        assert!(Report::from_json("{\"schema\": \"other/9\"}").is_err());
        assert!(Report::from_json("{} trailing").is_err());
    }
}
