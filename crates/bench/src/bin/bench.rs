//! The `bench` runner: measures the kernel registry and emits / gates on
//! `BENCH_<host>.json` (see DESIGN.md §13).
//!
//! ```text
//! bench run [--tiny] [--filter SUBSTR] [--samples K] [--out PATH]
//! bench compare --baseline PATH [--current PATH] [--max-regression PCT] [--allocs-only]
//! bench list
//! ```
//!
//! `run` writes `BENCH_<host>.json` to the repository root (override with
//! `--out`). `compare` exits nonzero when `current` regresses past the
//! threshold (default 10%) against `baseline` — checksum drift and
//! allocation-count regressions gate even under `--allocs-only`.

use optipart_bench::alloc_count::{self, CountingAllocator};
use optipart_bench::kernels::{self, Kernel};
use optipart_bench::report::{compare_reports, KernelResult, Report};
use optipart_mpisim::par;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("list") => cmd_list(),
        _ => {
            eprintln!(
                "usage: bench run [--tiny] [--filter SUBSTR] [--samples K] [--out PATH]\n       \
                 bench compare --baseline PATH [--current PATH] [--max-regression PCT] [--allocs-only]\n       \
                 bench list"
            );
            2
        }
    };
    std::process::exit(code);
}

fn cmd_list() -> i32 {
    for k in kernels::registry() {
        println!(
            "{:<28} group={:<12} full_n={:<8} tiny_n={}",
            k.name, k.group, k.full_n, k.tiny_n
        );
    }
    0
}

fn cmd_run(args: &[String]) -> i32 {
    let mut tiny = false;
    let mut filter: Option<String> = None;
    let mut samples: usize = 0;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => tiny = true,
            "--filter" => filter = it.next().cloned(),
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bad_flag("--samples"))
            }
            "--out" => out = it.next().map(PathBuf::from),
            other => bad_flag(other),
        }
    }
    if samples == 0 {
        samples = if tiny { 3 } else { 10 };
    }
    let host = hostname();
    let threads = par::num_threads();
    let cores = cores();
    let mode = if tiny { "tiny" } else { "full" };
    eprintln!(
        "bench run: host={host} mode={mode} samples={samples} threads={threads} cores={cores}"
    );

    let mut results = Vec::new();
    for k in kernels::registry() {
        if let Some(f) = &filter {
            if !k.name.contains(f.as_str()) {
                continue;
            }
        }
        let n = if tiny { k.tiny_n } else { k.full_n };
        let r = measure(&k, n, samples);
        eprintln!(
            "  {:<28} n={:<8} {:>10.2} ns/elem  {:>9.2} Melem/s  {:>8} allocs/iter",
            r.name, r.n, r.ns_per_elem, r.melem_per_s, r.allocs_per_iter
        );
        results.push(r);
    }

    let mut derived = BTreeMap::new();
    let ns_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.ns_per_elem)
    };
    if let (Some(opt), Some(reference)) = (ns_of("treesort_seq"), ns_of("treesort_reference")) {
        if opt > 0.0 {
            derived.insert("treesort_speedup_vs_reference".to_string(), reference / opt);
        }
    }
    if let (Some(par_t), Some(seq)) = (ns_of("treesort_par"), ns_of("treesort_seq")) {
        if par_t > 0.0 {
            derived.insert("treesort_parallel_speedup".to_string(), seq / par_t);
        }
    }
    if let (Some(warm), Some(cold)) = (ns_of("optipart_amr_loop_warm"), ns_of("optipart_ladder")) {
        if warm > 0.0 {
            derived.insert("optipart_warm_amortized_speedup".to_string(), cold / warm);
        }
    }
    if let Some(ns_per_req) = ns_of("serve_requests_per_sec") {
        if ns_per_req > 0.0 {
            derived.insert("serve_requests_per_sec".to_string(), 1e9 / ns_per_req);
        }
    }
    // The machine-awareness headline (EXPERIMENTS.md §hierarchy): on the
    // pinned skewed mesh, OptiPart under the two-level machine chooses a
    // partition whose node-crossing ghost traffic is over 20% lower than
    // the flat model's choice.
    if filter.is_none() {
        let pt = optipart_bench::figs::hier::demo();
        derived.insert("hier_inter_bytes_reduction".to_string(), pt.reduction);
        derived.insert("hier_inter_bytes_flat".to_string(), pt.inter_flat as f64);
        derived.insert(
            "hier_inter_bytes_two_level".to_string(),
            pt.inter_hier as f64,
        );
    }
    // Real-time figures the serve kernels publish out-of-band (p99 wall
    // latency, warm-request rate) — see `kernels::SERVE_STATS`.
    for (k, v) in kernels::SERVE_STATS.lock().unwrap().iter() {
        if v.is_finite() {
            derived.insert(k.clone(), *v);
        }
    }
    // Full runs append the paper-scale strong-scaling curves (Fig. 4
    // rank counts, 4,096 → 262,144): per-p virtual makespan and real
    // steady-state allocation counts. Tiny (CI) runs skip the sweep; the
    // CI `scale` job runs `figures scaling` at a reduced top p instead.
    if !tiny && filter.is_none() {
        eprintln!("  scaling sweep: p = 4096 .. 262144 (hypercube, warm arena)");
        for pt in optipart_bench::figs::scaling::sweep(262_144) {
            derived.insert(format!("scaling_p{}_makespan_s", pt.p), pt.makespan_s);
            derived.insert(
                format!("scaling_p{}_steady_allocs", pt.p),
                pt.steady_allocs as f64,
            );
        }
    }

    let report = Report {
        schema: Report::SCHEMA.into(),
        host: host.clone(),
        mode: mode.into(),
        samples: samples as u64,
        threads: threads as u64,
        cores,
        kernels: results,
        derived,
    };
    let path = out.unwrap_or_else(|| repo_root().join(format!("BENCH_{host}.json")));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("bench run: cannot write {}: {e}", path.display());
        return 1;
    }
    println!("wrote {}", path.display());
    for (k, v) in &report.derived {
        println!("  {k} = {v:.3}");
    }
    0
}

/// Warmup, one counted steady-state iteration for allocations, then
/// `samples` timed iterations; the minimum is reported (least-noise
/// estimator for a deterministic workload).
fn measure(k: &Kernel, n: usize, samples: usize) -> KernelResult {
    let mut prep = (k.build)(n);
    let checksum = (prep.run)();
    let (a0, b0) = alloc_count::counters();
    let check2 = (prep.run)();
    let (a1, b1) = alloc_count::counters();
    assert_eq!(
        checksum, check2,
        "kernel {} is not deterministic across iterations",
        k.name
    );
    let mut min_ns = u64::MAX;
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        let c = (prep.run)();
        let dt = t.elapsed().as_nanos() as u64;
        assert_eq!(checksum, c, "kernel {} checksum drifted mid-run", k.name);
        min_ns = min_ns.min(dt.max(1));
    }
    let elements = prep.elements.max(1);
    KernelResult {
        name: k.name.into(),
        group: k.group.into(),
        n: n as u64,
        elements,
        min_iter_ns: min_ns,
        ns_per_elem: min_ns as f64 / elements as f64,
        melem_per_s: elements as f64 * 1e3 / min_ns as f64,
        allocs_per_iter: a1 - a0,
        alloc_bytes_per_iter: b1 - b0,
        checksum: format!("{:#018x}", checksum),
    }
}

fn cmd_compare(args: &[String]) -> i32 {
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut max_regression = 10.0f64;
    let mut allocs_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = it.next().map(PathBuf::from),
            "--current" => current = it.next().map(PathBuf::from),
            "--max-regression" => {
                max_regression = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bad_flag("--max-regression"))
            }
            "--allocs-only" => allocs_only = true,
            other => bad_flag(other),
        }
    }
    let Some(baseline) = baseline else {
        eprintln!("bench compare: --baseline PATH is required");
        return 2;
    };
    let current = current.unwrap_or_else(|| repo_root().join(format!("BENCH_{}.json", hostname())));
    let base = match load(&baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench compare: {e}");
            return 2;
        }
    };
    let cur = match load(&current) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench compare: {e}");
            return 2;
        }
    };
    // Host-capability sanity: parallel-speedup figures (e.g.
    // treesort_parallel_speedup) recorded on hosts with different core
    // counts are not comparable — warn, don't gate (times are already
    // covered by --allocs-only for cross-machine compares).
    if base.cores != 0 && cur.cores != 0 && base.cores != cur.cores {
        println!(
            "warning: baseline was recorded on a {}-core host, current on {}-core — \
             parallel-speedup figures (treesort_parallel_speedup, serve throughput) \
             are not comparable across core counts",
            base.cores, cur.cores
        );
    } else if base.cores == 0 || cur.cores == 0 {
        println!(
            "warning: {} report(s) predate the host-capability stanza (cores unknown) — \
             re-record with `bench run` to enable core-count comparison",
            if base.cores == 0 && cur.cores == 0 {
                "both"
            } else {
                "one"
            }
        );
    }
    let violations = compare_reports(&base, &cur, max_regression, allocs_only);
    println!(
        "compared {} kernels of {} against {} (threshold {max_regression}%{})",
        cur.kernels.len(),
        current.display(),
        baseline.display(),
        if allocs_only { ", allocs-only" } else { "" },
    );
    if violations.is_empty() {
        println!("OK: no regressions");
        return 0;
    }
    for v in &violations {
        println!("FAIL {}: {}", v.kernel, v.what);
    }
    1
}

fn load(path: &Path) -> Result<Report, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Report::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// `BENCH_HOST` env override, else the kernel hostname, sanitised to
/// filename-safe characters.
fn hostname() -> String {
    let raw = std::env::var("BENCH_HOST")
        .ok()
        .or_else(|| std::fs::read_to_string("/etc/hostname").ok())
        .or_else(|| std::fs::read_to_string("/proc/sys/kernel/hostname").ok())
        .unwrap_or_default();
    let clean: String = raw
        .trim()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if clean.is_empty() {
        "unknown-host".into()
    } else {
        clean
    }
}

/// CPU cores visible to this process — the host-capability stanza.
fn cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn bad_flag(flag: &str) -> ! {
    eprintln!("bench: unknown or malformed flag {flag:?} (see `bench` with no args for usage)");
    std::process::exit(2)
}
