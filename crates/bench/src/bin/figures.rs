//! `figures` — regenerates every measured figure of the paper (§5).
//!
//! ```text
//! cargo run -p optipart-bench --release --bin figures -- all
//! cargo run -p optipart-bench --release --bin figures -- fig7 fig8 --scale 2 --out results/
//! cargo run -p optipart-bench --release --bin figures -- fig4 --trace amr.json
//! ```
//!
//! Figure ids: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 (or `all`),
//! plus `ablations` (design-choice studies), `recovery` (fail-stop
//! checkpoint/recovery ablation), `hier` (flat vs two-level machine model
//! inter-node ghost-traffic comparison) and `scaling` (paper-scale
//! collectives strong-scaling sweep, 4,096 → `--max-p` virtual ranks,
//! default 262,144); none of the four is part of `all`.
//! `--scale` multiplies the scaled default problem sizes (1.0 = defaults
//! documented in DESIGN.md §6; the paper's full sizes need a cluster-class
//! machine). `--seed` changes the mesh RNG seed; `--out DIR` also writes
//! CSVs. Every run ends by writing `BENCH_summary.json` (per-figure wall
//! times plus every emitted table) to `--out DIR` or the working directory.
//!
//! `--trace FILE` additionally runs a small traced AMR demo twice — once
//! clean, once under an injected fault plan — exporting Chrome-trace JSON
//! to `FILE` and `FILE`'s sibling `*-faults.json`, and printing each run's
//! critical path and Eq. (3) model attribution.

use optipart_bench::alloc_count::CountingAllocator;
use optipart_bench::common::{write_summary, RunConfig};
use optipart_bench::figs;
use optipart_fem::amr::{amr_simulation, AmrConfig, Strategy};
use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::{Engine, FaultPlan};
use std::process::exit;
use std::time::Instant;

// The `scaling` sweep reports real allocation counts per exchange round —
// count every allocation this process makes.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = RunConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage("--scale needs a value"));
                cfg.scale = v.parse().unwrap_or_else(|_| usage("bad --scale value"));
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                cfg.seed = v.parse().unwrap_or_else(|_| usage("bad --seed value"));
            }
            "--out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--out needs a directory"));
                cfg.out_dir = Some(v.into());
            }
            "--trace" => {
                let v = it.next().unwrap_or_else(|| usage("--trace needs a path"));
                trace_path = Some(v);
            }
            "--max-p" => {
                let v = it.next().unwrap_or_else(|| usage("--max-p needs a value"));
                cfg.max_p = v.parse().unwrap_or_else(|_| usage("bad --max-p value"));
            }
            "all" => ids.extend(figs::ALL.iter().map(|s| s.to_string())),
            "-h" | "--help" => {
                usage("");
            }
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() && trace_path.is_none() {
        usage("no figure ids given");
    }
    let mut timings: Vec<(String, f64)> = Vec::new();
    for id in ids {
        let t0 = Instant::now();
        if let Err(e) = figs::run(&id, &cfg) {
            eprintln!("error: {e}");
            exit(1);
        }
        timings.push((id, t0.elapsed().as_secs_f64()));
    }
    if let Some(path) = &trace_path {
        let t0 = Instant::now();
        traced_amr_demo(&cfg, path);
        timings.push(("traced-amr".into(), t0.elapsed().as_secs_f64()));
    }
    write_summary(&cfg, &timings);
}

/// Runs the AMR loop with full tracing, clean and fault-perturbed, and
/// exports both Chrome traces. The critical path is checked against the
/// engine's makespan — the trace is not a second clock, it is the same one.
fn traced_amr_demo(cfg: &RunConfig, path: &str) {
    let amr = AmrConfig {
        steps: 4,
        max_level: 4,
        matvecs_per_step: 3,
        strategy: Strategy::OptiPart,
        ..Default::default()
    };
    let perf = || {
        PerfModel::new(
            MachineModel::cloudlab_wisconsin(),
            AppModel::laplacian_matvec(),
        )
    };
    let faults = FaultPlan::new(cfg.seed)
        .with_stragglers(0.25, 4.0)
        .with_tw_jitter(0.4)
        .with_transient_failures(0.2)
        .with_retry_policy(4, 1e-4);
    let faults_path = match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-faults.{ext}"),
        None => format!("{path}-faults"),
    };
    for (label, out, plan) in [
        ("clean", path, None),
        ("faults", faults_path.as_str(), Some(faults)),
    ] {
        let mut e = Engine::new(8, perf()).with_tracing();
        if let Some(plan) = plan {
            e = e.with_faults(plan);
        }
        let rep = amr_simulation(&mut e, &amr);
        std::fs::write(out, e.trace_json()).expect("write trace");
        eprintln!(
            "\n== traced AMR ({label}): {} steps, {:.3} ms simulated, trace -> {out} ==",
            rep.steps.len(),
            rep.total_seconds * 1e3
        );
        let cp = e.critical_path();
        assert!(
            (cp.covered_s() - e.makespan()).abs() <= 1e-9 * e.makespan().max(1.0),
            "critical path ({}) must tile the makespan ({})",
            cp.covered_s(),
            e.makespan()
        );
        println!("{}", cp.render());
        println!("{}", e.model_attribution().render());
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: figures <fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|all>... \
         [ablations] [recovery] [hier] [scaling] [--scale X] [--seed N] [--max-p P] \
         [--out DIR] [--trace FILE]"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}
