//! `figures` — regenerates every measured figure of the paper (§5).
//!
//! ```text
//! cargo run -p optipart-bench --release --bin figures -- all
//! cargo run -p optipart-bench --release --bin figures -- fig7 fig8 --scale 2 --out results/
//! ```
//!
//! Figure ids: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 (or `all`),
//! plus `ablations` (design-choice studies; not part of `all`).
//! `--scale` multiplies the scaled default problem sizes (1.0 = defaults
//! documented in DESIGN.md §6; the paper's full sizes need a cluster-class
//! machine). `--seed` changes the mesh RNG seed; `--out DIR` also writes
//! CSVs.

use optipart_bench::common::RunConfig;
use optipart_bench::figs;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = RunConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage("--scale needs a value"));
                cfg.scale = v.parse().unwrap_or_else(|_| usage("bad --scale value"));
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                cfg.seed = v.parse().unwrap_or_else(|_| usage("bad --seed value"));
            }
            "--out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--out needs a directory"));
                cfg.out_dir = Some(v.into());
            }
            "all" => ids.extend(figs::ALL.iter().map(|s| s.to_string())),
            "-h" | "--help" => {
                usage("");
            }
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage("no figure ids given");
    }
    for id in ids {
        if let Err(e) = figs::run(&id, &cfg) {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: figures <fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|all>... \
         [ablations] [--scale X] [--seed N] [--out DIR]"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}
