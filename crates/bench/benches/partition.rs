//! End-to-end partitioner throughput on the virtual engine: distributed
//! TreeSort (exact and tolerant), OptiPart and the SampleSort baseline.
//!
//! Measures host wall-clock of the simulation itself (not virtual time) —
//! the cost a user of this library pays to compute a partition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use optipart_core::optipart::{optipart, OptiPartOptions};
use optipart_core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart_core::samplesort::{samplesort_partition, SampleSortOptions};
use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::Engine;
use optipart_octree::MeshParams;
use optipart_sfc::Curve;

fn bench_partitioners(c: &mut Criterion) {
    let n = 100_000;
    let p = 64;
    let tree = MeshParams::normal(n, 5).build::<3>(Curve::Hilbert);
    let elems = tree.len() as u64;

    let mut g = c.benchmark_group("partitioners");
    g.throughput(Throughput::Elements(elems));
    g.sample_size(10);

    let engine = || {
        Engine::new(
            p,
            PerfModel::new(
                MachineModel::cloudlab_wisconsin(),
                AppModel::laplacian_matvec(),
            ),
        )
    };

    g.bench_function(BenchmarkId::new("treesort_exact", p), |b| {
        b.iter(|| {
            let mut e = engine();
            treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact())
                .dist
                .total_len()
        })
    });
    g.bench_function(BenchmarkId::new("treesort_tol_0.3", p), |b| {
        b.iter(|| {
            let mut e = engine();
            treesort_partition(
                &mut e,
                distribute_tree(&tree, p),
                PartitionOptions::with_tolerance(0.3),
            )
            .dist
            .total_len()
        })
    });
    g.bench_function(BenchmarkId::new("optipart", p), |b| {
        b.iter(|| {
            let mut e = engine();
            optipart(
                &mut e,
                distribute_tree(&tree, p),
                OptiPartOptions::default(),
            )
            .dist
            .total_len()
        })
    });
    g.bench_function(BenchmarkId::new("samplesort", p), |b| {
        b.iter(|| {
            let mut e = engine();
            samplesort_partition(
                &mut e,
                distribute_tree(&tree, p),
                SampleSortOptions::default(),
            )
            .dist
            .total_len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
