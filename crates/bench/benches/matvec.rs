//! Matvec kernel throughput (host wall-clock) on a partitioned mesh,
//! including the halo exchange.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use optipart_core::partition::{distribute_tree, treesort_partition, PartitionOptions};
use optipart_fem::{laplacian_matvec, DistMesh};
use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::{DistVec, Engine};
use optipart_octree::MeshParams;
use optipart_sfc::Curve;

fn bench_matvec(c: &mut Criterion) {
    let n = 50_000;
    let p = 16;
    let tree = MeshParams::normal(n, 3).build::<3>(Curve::Hilbert);
    let mut e = Engine::new(
        p,
        PerfModel::new(
            MachineModel::cloudlab_wisconsin(),
            AppModel::laplacian_matvec(),
        ),
    );
    let out = treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact());
    let mesh = DistMesh::build(&mut e, out.dist, Curve::Hilbert);
    let elems = mesh.total_cells() as u64;

    let mut g = c.benchmark_group("matvec");
    g.throughput(Throughput::Elements(elems));
    g.bench_function("laplacian_with_halo", |b| {
        let mut x = DistVec::from_parts(
            mesh.cells
                .counts()
                .iter()
                .map(|&c| vec![1.0f64; c])
                .collect(),
        );
        b.iter(|| {
            let (y, _) = laplacian_matvec(&mut e, &mesh, &mut x);
            y.total_len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_matvec);
criterion_main!(benches);
