//! Sequential TreeSort (Algorithm 1) vs comparison sort on SFC keys.
//!
//! TreeSort's MSD-radix structure should be competitive with (or beat) the
//! general-purpose comparison sort while additionally exposing the induced
//! partitions the distributed algorithm exploits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use optipart_core::treesort::treesort;
use optipart_mpisim::rng::SplitMix64;
use optipart_octree::{sample_points, tree_from_points, Distribution};
use optipart_sfc::{Curve, KeyedCell};
use std::hint::black_box;

fn shuffled(n: usize, curve: Curve) -> Vec<KeyedCell<3>> {
    let pts = sample_points::<3>(Distribution::Normal, n, 7);
    let tree = tree_from_points(&pts, 1, 18, curve);
    let mut cells = tree.into_leaves();
    SplitMix64::new(99).shuffle(&mut cells);
    cells
}

fn bench_sorts(c: &mut Criterion) {
    let input = shuffled(100_000, Curve::Hilbert);
    let n = input.len() as u64;

    let mut g = c.benchmark_group("sequential_sort");
    g.throughput(Throughput::Elements(n));
    g.bench_with_input(BenchmarkId::new("treesort", n), &input, |b, input| {
        b.iter(|| {
            let mut a = input.clone();
            treesort(black_box(&mut a));
            a.len()
        })
    });
    g.bench_with_input(BenchmarkId::new("sort_unstable", n), &input, |b, input| {
        b.iter(|| {
            let mut a = input.clone();
            black_box(&mut a).sort_unstable();
            a.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sorts);
criterion_main!(benches);
