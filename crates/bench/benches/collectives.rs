//! Virtual-engine collective overhead: dense vs sparse all-to-all and the
//! vector all-reduce that carries OptiPart's bucket counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optipart_machine::{AppModel, MachineModel, PerfModel};
use optipart_mpisim::{AllToAllAlgo, Engine};

fn engine(p: usize) -> Engine {
    Engine::new(
        p,
        PerfModel::new(MachineModel::titan(), AppModel::laplacian_matvec()),
    )
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(20);

    for p in [64usize, 512] {
        // Neighbour-pattern all-to-all: each rank talks to ~6 peers.
        g.bench_with_input(BenchmarkId::new("alltoallv_sparse_6nbr", p), &p, |b, &p| {
            b.iter(|| {
                let mut e = engine(p);
                let send: Vec<Vec<(usize, Vec<u64>)>> = (0..p)
                    .map(|r| {
                        (1..=6)
                            .map(|k| (((r + k * 7) % p), vec![r as u64; 64]))
                            .collect()
                    })
                    .collect();
                e.alltoallv_sparse(send, AllToAllAlgo::Direct).len()
            })
        });
        g.bench_with_input(BenchmarkId::new("alltoallv_dense_6nbr", p), &p, |b, &p| {
            b.iter(|| {
                let mut e = engine(p);
                let send: Vec<Vec<Vec<u64>>> = (0..p)
                    .map(|r| {
                        (0..p)
                            .map(|d| {
                                if (1..=6).any(|k| (r + k * 7) % p == d) {
                                    vec![r as u64; 64]
                                } else {
                                    vec![]
                                }
                            })
                            .collect()
                    })
                    .collect();
                e.alltoallv(send, AllToAllAlgo::Direct).len()
            })
        });
        // Bucket-count reduction (Eq. 2's (ts + tw k) log p term).
        g.bench_with_input(BenchmarkId::new("allreduce_vec_512", p), &p, |b, &p| {
            let contribs: Vec<Vec<u64>> = (0..p).map(|r| vec![r as u64; 512]).collect();
            b.iter(|| {
                let mut e = engine(p);
                e.allreduce_sum_vec_u64(&contribs).len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
