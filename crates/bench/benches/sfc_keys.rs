//! Key-generation throughput: Morton interleave vs Hilbert (Skilling).
//!
//! Backs the §2.1 claim that level-dependent orderings like Hilbert cost
//! only a constant factor over Morton.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use optipart_octree::{sample_points, Distribution};
use optipart_sfc::{Cell3, Curve, SfcKey};
use std::hint::black_box;

fn bench_keys(c: &mut Criterion) {
    let n = 100_000;
    let points = sample_points::<3>(Distribution::Normal, n, 42);
    let cells: Vec<Cell3> = points.iter().map(|&p| Cell3::new(p, 20)).collect();

    let mut g = c.benchmark_group("sfc_key_generation");
    g.throughput(Throughput::Elements(n as u64));
    for curve in Curve::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(curve), &curve, |b, &curve| {
            b.iter(|| {
                let mut acc = 0u128;
                for cell in &cells {
                    acc ^= SfcKey::of(black_box(cell), curve).path();
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_keys);
criterion_main!(benches);
