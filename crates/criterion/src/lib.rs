//! A minimal, dependency-free stand-in for the `criterion` bench harness.
//!
//! The workspace builds with **no network or registry access** (see
//! DESIGN.md, "Offline dependency policy"), so the real criterion crate
//! cannot be fetched. This shim implements exactly the API surface the
//! `optipart-bench` benches use — groups, throughput, parameterised ids,
//! `Bencher::iter` — with plain `std::time::Instant` timing and plain-text
//! reporting. Numbers from it are honest wall-clock means, but without
//! criterion's outlier rejection or statistical machinery; swap the
//! workspace `criterion` entry back to crates.io when a vendored copy is
//! available and everything compiles unchanged.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (reported per-iteration).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for groups benchmarking one function over a
    /// parameter sweep).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function` — plain strings or full ids.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Passed to the closure under measurement.
pub struct Bencher {
    samples: usize,
    last_mean: Duration,
}

impl Bencher {
    /// Times `routine`: a few warm-up runs, then `samples` timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        let t0 = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.last_mean = t0.elapsed() / self.samples as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<ID: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.id, b.last_mean);
        self
    }

    /// Runs one benchmark receiving a borrowed input.
    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.id, b.last_mean);
        self
    }

    fn report(&self, id: &str, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:.1} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!(
                    "  {:.1} MiB/s",
                    n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("{}/{id}: mean {mean:.2?}{rate}", self.name);
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// The harness entry point handed to every bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: 10,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        println!("{name}: mean {:.2?}", b.last_mean);
        self
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a group of bench functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        g.bench_function(BenchmarkId::new("count", 100), |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.finish();
        assert!(ran >= 3, "routine must run at least the sampled iterations");
    }
}
