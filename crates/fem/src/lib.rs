//! # optipart-fem — the paper's test application (§5.3)
//!
//! "Our target applications are solving PDEs using adaptive discretizations
//! using the Finite Element method. In most computational codes, the basic
//! building block is the **matvec** … The communication as well as the
//! compute pattern for most PDEs is characterized by the matvec. For this
//! reason, we evaluate the effectiveness of OptiPart using an adaptively
//! discretized Laplacian operator," i.e. a 3D Poisson problem with zero
//! Dirichlet boundary conditions on the unit cube, run for 100 matvecs.
//!
//! This crate provides that application on the virtual BSP engine:
//!
//! * [`mesh`] — a distributed mesh over a partitioned linear octree:
//!   ghost/halo layer discovery via a two-phase probe exchange, static
//!   send/receive lists, and face-flux coefficients for a finite-volume
//!   discretisation of the Laplacian.
//! * [`matvec`] — the halo-exchange + stencil kernel whose communication
//!   volume *is* the communication matrix `M` of §5.5 and whose α ≈ `2D+2`
//!   memory accesses per element matches the paper's "7-point stencil → α ∼
//!   8" example.
//! * [`solver`] — a conjugate-gradient solver for the Poisson problem (the
//!   "iterative solvers … can all be represented as a series of matvecs").
//! * [`driver`] — the §5.4 experiment: run `k` matvecs on a given partition
//!   and report simulated time, per-node energy, and traffic.
//!
//! Ghost discovery probes the `2^(D-1)` level-`l+1` sample points behind
//! each face, which finds **all** face neighbours of a 2:1-balanced mesh
//! (the class Dendro produces and the paper uses); on unbalanced meshes
//! neighbours more than one level finer than a cell are not ghosted (their
//! flux is dropped), which leaves the communication *pattern* — what the
//! partitioning study measures — intact.

pub mod amr;
pub mod driver;
pub mod matvec;
pub mod mesh;
pub mod recovery;
pub mod solver;

pub use amr::{amr_simulation, AmrConfig, AmrReport, Strategy};
pub use driver::{initial_vector, repartition_sequence, run_matvec_experiment, MatvecExperiment};
pub use matvec::{laplacian_matvec, MatvecStats};
pub use mesh::{DistMesh, LocalMesh, Slot};
pub use recovery::{amr_simulation_ft, run_matvec_ft, DeathRecord, FtAmrReport, FtReport};
pub use solver::{cg_solve, CgReport};

// Property-test suites need the external `proptest` crate, which the
// offline tier-1 build cannot fetch; enable with `--features proptest`
// once a vendored copy is available.
#[cfg(all(test, feature = "proptest"))]
mod proptests;
