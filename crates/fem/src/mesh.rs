//! Distributed octree mesh with ghost layers and FV Laplacian coefficients.
//!
//! Built from a partitioned linear octree (the output of any of the
//! `optipart-core` partitioners). Construction is a two-phase exchange:
//!
//! 1. every rank probes the sample points behind each face of each local
//!    cell; probes whose owner (by splitter lookup) is remote are shipped to
//!    that owner with one `Alltoallv`;
//! 2. owners resolve each probe to their local leaf and reply with the leaf
//!    cell and its local index; requesters deduplicate the replies into
//!    static ghost receive lists (and the symmetric send lists).
//!
//! The per-face coupling coefficient is the finite-volume transmissibility
//! `κ = A_f / d` (shared face area over centre distance, in unit-cube
//! units); domain-boundary faces contribute `κ` to the diagonal, realising
//! zero Dirichlet conditions and making the operator symmetric positive
//! definite.

use optipart_mpisim::{AllToAllAlgo, DistVec, Engine};
use optipart_octree::neighbors::overlapping_leaves_keyed;
use optipart_sfc::{Cell, Curve, KeyedCell, SfcKey, MAX_DEPTH};

/// Reference to a neighbour value slot in the matvec working set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Index into the rank's own value vector.
    Local(u32),
    /// Index into the rank's ghost value array (filled by the halo
    /// exchange, ordered by `recv_from`).
    Ghost(u32),
}

/// One rank's share of the distributed mesh.
#[derive(Clone, Debug, Default)]
pub struct LocalMesh {
    /// Off-diagonal couplings per local cell: `(neighbour slot, κ)`.
    pub entries: Vec<Vec<(Slot, f64)>>,
    /// Diagonal per local cell: `Σ κ` over all faces incl. Dirichlet
    /// boundary faces.
    pub diag: Vec<f64>,
    /// Ghost receive lists: `(owner rank, remote local indices)`, sorted by
    /// rank; ghost slot `g` is position `g` in their concatenation.
    pub recv_from: Vec<(usize, Vec<u32>)>,
    /// Ghost send lists: `(requester rank, local indices)`, mirroring the
    /// requesters' `recv_from` entry for this rank, order preserved.
    pub send_to: Vec<(usize, Vec<u32>)>,
    /// Total ghost slots.
    pub num_ghosts: usize,
}

/// A distributed mesh: partitioned cells + per-rank structure.
#[derive(Clone, Debug)]
pub struct DistMesh<const D: usize> {
    /// Curve the cells are keyed with.
    pub curve: Curve,
    /// Partitioned, SFC-sorted cells.
    pub cells: DistVec<KeyedCell<D>>,
    /// Leaf-aligned splitters (snapped to first element per rank).
    pub splitters: Vec<SfcKey>,
    /// Per-rank mesh structure.
    pub locals: Vec<LocalMesh>,
}

/// A ghost probe: a sample point plus the local cell/face it came from.
#[derive(Clone, Copy, Debug)]
struct Probe<const D: usize> {
    point: [u32; D],
    src_cell: u32,
}

/// A resolved probe: the owner's leaf covering the point.
#[derive(Clone, Copy, Debug)]
struct Resolved<const D: usize> {
    src_cell: u32,
    leaf_idx: u32,
    leaf: Cell<D>,
}

impl<const D: usize> DistMesh<D> {
    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.cells.p()
    }

    /// Global element count.
    pub fn total_cells(&self) -> usize {
        self.cells.total_len()
    }

    /// Builds the distributed mesh from partitioned cells.
    ///
    /// `cells` must be SFC-sorted per rank with contiguous global ranges in
    /// rank order — exactly what the partitioners produce.
    pub fn build(engine: &mut Engine, cells: DistVec<KeyedCell<D>>, curve: Curve) -> Self {
        let p = engine.p();
        let mut cells = cells;

        // Leaf-aligned splitters: the first key on each rank (empty ranks
        // inherit the next non-empty rank's key).
        let firsts: Vec<Vec<SfcKey>> = engine.compute_map(&mut cells, |_r, buf| {
            (
                0.0,
                buf.first().map(|kc| kc.key).into_iter().collect::<Vec<_>>(),
            )
        });
        let flat: Vec<Option<SfcKey>> = firsts.iter().map(|v| v.first().copied()).collect();
        let gathered = engine.allgather(
            &flat
                .iter()
                .map(|o| o.map(|k| vec![k]).unwrap_or_default())
                .collect::<Vec<_>>(),
        );
        // gathered holds first-keys of non-empty ranks in rank order; rebuild
        // the p-1 splitters by walking ranks.
        let mut splitters = Vec::with_capacity(p.saturating_sub(1));
        let mut gi = 0usize;
        for (r, has_first) in flat.iter().enumerate() {
            let key = if has_first.is_some() {
                let k = gathered[gi];
                gi += 1;
                Some(k)
            } else {
                None
            };
            if r > 0 {
                splitters.push(key.unwrap_or(SfcKey::MAX));
            }
        }
        // Empty-rank gaps: make splitters monotone from the right.
        for i in (0..splitters.len().saturating_sub(1)).rev() {
            if splitters[i] > splitters[i + 1] {
                splitters[i] = splitters[i + 1];
            }
        }

        // ---- Phase 1: local adjacency + probe generation ----------------
        let elem_bytes = std::mem::size_of::<KeyedCell<D>>() as f64;
        let sp = splitters.clone();
        #[allow(clippy::type_complexity)]
        let phase1: Vec<(LocalMesh, Vec<(usize, Probe<D>)>)> =
            engine.compute_map(&mut cells, |r, buf| {
                let mut lm = LocalMesh {
                    entries: vec![Vec::new(); buf.len()],
                    diag: vec![0.0; buf.len()],
                    ..Default::default()
                };
                // Rank r owns keys in [lo_r, hi_r).
                let lo_r = if r == 0 { SfcKey::MIN } else { sp[r - 1] };
                let hi_r = if r == p - 1 { SfcKey::MAX } else { sp[r] };
                let mut probes: Vec<(usize, Probe<D>)> = Vec::new();
                for (i, kc) in buf.iter().enumerate() {
                    for axis in 0..D {
                        for dir in [-1i8, 1] {
                            match kc.cell.face_neighbor(axis, dir) {
                                None => {
                                    // Domain boundary: Dirichlet-0 flux.
                                    lm.diag[i] += boundary_kappa(&kc.cell);
                                }
                                Some(region) => {
                                    // One key computation per face; the
                                    // region's whole subtree occupies the
                                    // contiguous path range [key, key+span).
                                    let key = SfcKey::of(&region, curve);
                                    let span =
                                        1u128 << ((MAX_DEPTH - region.level()) as u32 * D as u32);
                                    let key_hi =
                                        SfcKey::from_parts(key.path() + (span - 1), u8::MAX);
                                    let fully_local = lo_r <= key && key_hi < hi_r;
                                    if fully_local {
                                        for j in overlapping_leaves_keyed(buf, &region, key) {
                                            let nb = buf[j].cell;
                                            if kc.cell.shares_face_with(&nb) {
                                                let k = kappa(&kc.cell, &nb);
                                                lm.entries[i].push((Slot::Local(j as u32), k));
                                                lm.diag[i] += k;
                                            }
                                        }
                                    } else {
                                        for pt in face_probes(&region, axis, dir) {
                                            let key = SfcKey::of(&Cell::<D>::from_point(pt), curve);
                                            let owner = crate::mesh::owner_of(&sp, &key);
                                            probes.push((
                                                owner,
                                                Probe {
                                                    point: pt,
                                                    src_cell: i as u32,
                                                },
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                (buf.len() as f64 * elem_bytes * (2 * D) as f64, (lm, probes))
            });

        let mut locals: Vec<LocalMesh> = Vec::with_capacity(p);
        let mut probe_rows: Vec<Vec<(usize, Vec<Probe<D>>)>> = Vec::with_capacity(p);
        for (lm, mut probes) in phase1 {
            locals.push(lm);
            probes.sort_by_key(|(owner, _)| *owner);
            let mut row: Vec<(usize, Vec<Probe<D>>)> = Vec::new();
            for (owner, pr) in probes {
                match row.last_mut() {
                    Some((o, list)) if *o == owner => list.push(pr),
                    _ => row.push((owner, vec![pr])),
                }
            }
            probe_rows.push(row);
        }

        // ---- Phase 2: ship probes, resolve, reply ------------------------
        let mut recv_probes = engine.alltoallv_sparse(probe_rows, AllToAllAlgo::Hypercube);
        // recv_probes[owner] : (src, probes) pairs for `owner` to resolve.
        let reply_rows: Vec<Vec<(usize, Vec<Resolved<D>>)>> = {
            // Resolve in parallel per owner (read-only on cells).
            let cells_ref = &cells;
            use optipart_mpisim::par;
            par::par_map_mut(&mut recv_probes, |owner, rows| {
                let rows = std::mem::take(rows);
                let buf = cells_ref.rank(owner);
                rows.into_iter()
                    .map(|(src, probes)| {
                        let resolved = probes
                            .into_iter()
                            .filter_map(|pr| {
                                let cell = Cell::<D>::from_point(pr.point);
                                let key = SfcKey::of(&cell, curve);
                                let idx = buf.partition_point(|kc| kc.key <= key);
                                if idx == 0 {
                                    return None;
                                }
                                let leaf = buf[idx - 1];
                                if !leaf.cell.contains_point(pr.point) {
                                    return None;
                                }
                                Some(Resolved {
                                    src_cell: pr.src_cell,
                                    leaf_idx: (idx - 1) as u32,
                                    leaf: leaf.cell,
                                })
                            })
                            .collect();
                        (src, resolved)
                    })
                    .collect()
            })
        };
        let replies = engine.alltoallv_sparse(reply_rows, AllToAllAlgo::Hypercube);
        // replies[requester] : (owner, resolved ghosts) pairs, sorted by owner.

        // ---- Phase 3: assemble ghost lists and remote couplings ----------
        use std::collections::HashMap;
        for (r, local) in locals.iter_mut().enumerate() {
            let my_cells = cells.rank(r);
            // Deduplicate ghosts per owner; assign slots.
            let mut ghost_slot: HashMap<(usize, u32), u32> = HashMap::new();
            let mut per_owner: Vec<(usize, Vec<u32>)> = Vec::new();
            let mut seen_pairs: std::collections::HashSet<(u32, usize, u32)> =
                std::collections::HashSet::new();
            // First pass: allocate slots in (owner, arrival) order.
            for (owner, row) in replies[r].iter().map(|(o, v)| (*o, v)) {
                if owner == r {
                    continue;
                }
                for res in row {
                    ghost_slot.entry((owner, res.leaf_idx)).or_insert_with(|| {
                        match per_owner.iter_mut().find(|(o, _)| *o == owner) {
                            Some((_, list)) => list.push(res.leaf_idx),
                            None => per_owner.push((owner, vec![res.leaf_idx])),
                        }
                        u32::MAX // placeholder, fixed below
                    });
                }
            }
            per_owner.sort_by_key(|(o, _)| *o);
            let mut slot = 0u32;
            for (owner, list) in &per_owner {
                for idx in list {
                    ghost_slot.insert((*owner, *idx), slot);
                    slot += 1;
                }
            }
            local.num_ghosts = slot as usize;
            local.recv_from = per_owner;

            // Second pass: attach couplings (dedup identical (src, ghost)).
            for (owner, row) in replies[r].iter().map(|(o, v)| (*o, v)) {
                for res in row {
                    if owner == r {
                        // Self-probe: straddling region resolved locally.
                        let j = res.leaf_idx as usize;
                        if j as u32 != res.src_cell
                            && seen_pairs.insert((res.src_cell, owner, res.leaf_idx))
                        {
                            let src = my_cells[res.src_cell as usize].cell;
                            if src.shares_face_with(&res.leaf) {
                                let k = kappa(&src, &res.leaf);
                                local.entries[res.src_cell as usize]
                                    .push((Slot::Local(j as u32), k));
                                local.diag[res.src_cell as usize] += k;
                            }
                        }
                        continue;
                    }
                    if seen_pairs.insert((res.src_cell, owner, res.leaf_idx)) {
                        let src = my_cells[res.src_cell as usize].cell;
                        if src.shares_face_with(&res.leaf) {
                            let k = kappa(&src, &res.leaf);
                            let g = ghost_slot[&(owner, res.leaf_idx)];
                            local.entries[res.src_cell as usize].push((Slot::Ghost(g), k));
                            local.diag[res.src_cell as usize] += k;
                        }
                    }
                }
            }
        }

        // ---- Phase 4: exchange request lists to build send lists ---------
        let req_rows: Vec<Vec<(usize, Vec<u32>)>> =
            locals.iter().map(|local| local.recv_from.clone()).collect();
        let recv_reqs = engine.alltoallv_sparse(req_rows, AllToAllAlgo::Hypercube);
        for (owner, rows) in recv_reqs.into_iter().enumerate() {
            // Already sorted by requester rank; self/empty never occur.
            locals[owner].send_to = rows
                .into_iter()
                .filter(|(req, list)| *req != owner && !list.is_empty())
                .collect();
        }

        DistMesh {
            curve,
            cells,
            splitters,
            locals,
        }
    }
}

/// Owner rank of a key under the splitters.
#[inline]
pub(crate) fn owner_of(splitters: &[SfcKey], key: &SfcKey) -> usize {
    splitters.partition_point(|s| s <= key)
}

/// Face-flux transmissibility between two face-adjacent cells, in unit-cube
/// units: shared area / centre distance.
pub(crate) fn kappa<const D: usize>(a: &Cell<D>, b: &Cell<D>) -> f64 {
    let h = (1u64 << MAX_DEPTH) as f64;
    let area = a.shared_face_area(b) as f64 / h.powi(D as i32 - 1);
    let ca = a.center_unit();
    let cb = b.center_unit();
    let dist: f64 = (0..D).map(|d| (ca[d] - cb[d]).powi(2)).sum::<f64>().sqrt();
    area / dist.max(f64::MIN_POSITIVE)
}

/// Dirichlet boundary transmissibility of one domain-boundary face.
pub(crate) fn boundary_kappa<const D: usize>(c: &Cell<D>) -> f64 {
    let h = (1u64 << MAX_DEPTH) as f64;
    let side = c.side() as f64 / h;
    let area = side.powi(D as i32 - 1);
    area / (side * 0.5)
}

/// Sample points just inside `region` adjacent to the face it shares with
/// the probing cell: the centres of the `2^(D-1)` level-`l+1` subcells on
/// that face (all face neighbours of a 2:1-balanced mesh contain one).
fn face_probes<const D: usize>(region: &Cell<D>, axis: usize, dir: i8) -> Vec<[u32; D]> {
    let side = region.side();
    let anchor = region.anchor();
    if side < 4 {
        // Finest cells: single probe at the anchor.
        return vec![anchor];
    }
    let q = side / 4;
    // Offset along the probing axis: touching face is region's low side when
    // dir=+1 (cell below region), high side when dir=-1.
    let axis_off = if dir == 1 { q } else { side - q };
    let mut pts = Vec::with_capacity(1 << (D - 1));
    let free: Vec<usize> = (0..D).filter(|&d| d != axis).collect();
    for mask in 0..(1u32 << free.len()) {
        let mut pt = anchor;
        pt[axis] = anchor[axis] + axis_off;
        for (bi, &d) in free.iter().enumerate() {
            let off = if (mask >> bi) & 1 == 1 { 3 * q } else { q };
            pt[d] = anchor[d] + off;
        }
        pts.push(pt);
    }
    pts
}
