//! The Laplacian matvec with halo exchange — the measured kernel of §5.4.

use crate::mesh::{DistMesh, Slot};
use optipart_mpisim::{AllToAllAlgo, DistVec, Engine};

/// Phase label for the halo exchange (communication share of the matvec).
pub const PHASE_GHOST: &str = "matvec_ghost";
/// Phase label for the stencil application.
pub const PHASE_STENCIL: &str = "matvec_stencil";

/// Traffic summary of one matvec.
#[derive(Clone, Copy, Debug, Default)]
pub struct MatvecStats {
    /// Ghost values moved (elements).
    pub ghost_elements: u64,
    /// Simulated seconds this matvec took (makespan delta).
    pub seconds: f64,
}

/// Applies the FV Laplacian: `y = A x` with
/// `(Ax)_i = diag_i·x_i − Σ_f κ_f·x_{nbr(f)}`.
///
/// One halo exchange ([`AllToAllAlgo::Hypercube`]-staged, so the ghost
/// traffic rides the same sparse neighbourhood schedule as the partitioner
/// exchanges) followed by the stencil pass, which is charged `α ≈ 2D+2`
/// memory accesses per element — the paper's "7-point stencil ⇒ α ∼ 8".
pub fn laplacian_matvec<const D: usize>(
    engine: &mut Engine,
    mesh: &DistMesh<D>,
    x: &mut DistVec<f64>,
) -> (DistVec<f64>, MatvecStats) {
    assert_eq!(x.p(), mesh.p());
    let t0 = engine.makespan();
    let p = mesh.p();
    let locals = &mesh.locals;

    // Halo exchange: gather requested values per destination (sparse — a
    // rank only talks to its geometric neighbours).
    let send_rows: Vec<Vec<(usize, Vec<f64>)>> = engine.phase(PHASE_GHOST, |e| {
        e.compute_map(x, |r, buf| {
            let lm = &locals[r];
            let mut rows: Vec<(usize, Vec<f64>)> = Vec::with_capacity(lm.send_to.len());
            let mut touched = 0usize;
            for (req, list) in &lm.send_to {
                let mut vals = Vec::with_capacity(list.len());
                for &i in list {
                    vals.push(buf[i as usize]);
                }
                touched += list.len();
                rows.push((*req, vals));
            }
            (touched as f64 * 8.0, rows)
        })
    });
    let ghost_elements: u64 = send_rows
        .iter()
        .flat_map(|rows| rows.iter().map(|(_, v)| v.len() as u64))
        .sum();
    let recv = engine.phase(PHASE_GHOST, |e| {
        e.alltoallv_sparse(send_rows, AllToAllAlgo::Hypercube)
    });

    // Assemble ghost arrays per rank: both `recv[r]` and `recv_from` are
    // sorted by the peer's rank, and owners reply with exactly the
    // requested lists, so they zip 1:1.
    let ghosts: Vec<Vec<f64>> = (0..p)
        .map(|r| {
            let lm = &locals[r];
            let mut g = Vec::with_capacity(lm.num_ghosts);
            debug_assert_eq!(recv[r].len(), lm.recv_from.len(), "halo peer mismatch");
            for ((owner, list), (src, vals)) in lm.recv_from.iter().zip(&recv[r]) {
                debug_assert_eq!(owner, src);
                debug_assert_eq!(vals.len(), list.len(), "halo reply length mismatch");
                g.extend_from_slice(vals);
            }
            g
        })
        .collect();

    // Stencil pass.
    let alpha = (2 * D + 2) as f64;
    let ys: Vec<Vec<f64>> = engine.phase(PHASE_STENCIL, |e| {
        e.compute_map(x, |r, buf| {
            let lm = &locals[r];
            let gh = &ghosts[r];
            let mut y = vec![0.0f64; buf.len()];
            for (i, yi) in y.iter_mut().enumerate() {
                let mut acc = lm.diag[i] * buf[i];
                for &(slot, k) in &lm.entries[i] {
                    let v = match slot {
                        Slot::Local(j) => buf[j as usize],
                        Slot::Ghost(g) => gh[g as usize],
                    };
                    acc -= k * v;
                }
                *yi = acc;
            }
            (buf.len() as f64 * 8.0 * alpha, y)
        })
    });

    let stats = MatvecStats {
        ghost_elements,
        seconds: engine.makespan() - t0,
    };
    (DistVec::from_parts(ys), stats)
}

/// Distributed dot product `xᵀ y` (one all-reduce).
pub fn dot(engine: &mut Engine, x: &mut DistVec<f64>, y: &DistVec<f64>) -> f64 {
    let parts: Vec<Vec<f64>> = y.parts().to_vec();
    let local: Vec<f64> = engine.compute_map(x, |r, buf| {
        let s: f64 = buf.iter().zip(&parts[r]).map(|(a, b)| a * b).sum();
        (buf.len() as f64 * 16.0, s)
    });
    engine.allreduce_sum_f64(&local)
}

/// Distributed squared norm `xᵀ x` (one all-reduce).
pub fn norm2(engine: &mut Engine, x: &mut DistVec<f64>) -> f64 {
    let local: Vec<f64> = engine.compute_map(x, |_r, buf| {
        let s: f64 = buf.iter().map(|a| a * a).sum();
        (buf.len() as f64 * 8.0, s)
    });
    engine.allreduce_sum_f64(&local)
}

/// `y ← y + a·x` (axpy), charged as streaming traffic.
pub fn axpy(engine: &mut Engine, a: f64, x: &DistVec<f64>, y: &mut DistVec<f64>) {
    let parts: Vec<Vec<f64>> = x.parts().to_vec();
    engine.compute(y, |r, buf| {
        for (yi, xi) in buf.iter_mut().zip(&parts[r]) {
            *yi += a * xi;
        }
        buf.len() as f64 * 24.0
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_core::partition::{distribute_tree, treesort_partition, PartitionOptions};
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_octree::{balance::balance21, LinearTree, MeshParams};
    use optipart_sfc::Curve;

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(
                MachineModel::cloudlab_wisconsin(),
                AppModel::laplacian_matvec(),
            ),
        )
        .record_comm_matrix()
    }

    fn build_mesh(tree: &LinearTree<3>, p: usize, tol: f64) -> (Engine, DistMesh<3>) {
        let mut e = engine(p);
        let out = treesort_partition(
            &mut e,
            distribute_tree(tree, p),
            PartitionOptions::with_tolerance(tol),
        );
        let mesh = DistMesh::build(&mut e, out.dist, tree.curve());
        (e, mesh)
    }

    fn uniform_tree(level: u8) -> LinearTree<3> {
        LinearTree::root(Curve::Hilbert).refine_where(|c| c.level() < level, level)
    }

    #[test]
    fn constant_vector_yields_boundary_only_residual() {
        // For x ≡ 1, interior fluxes cancel: (Ax)_i equals the Dirichlet
        // boundary κ of cell i. Interior cells give exactly 0.
        let tree = uniform_tree(2);
        let (mut e, mesh) = build_mesh(&tree, 4, 0.0);
        let mut x =
            DistVec::from_parts(mesh.cells.counts().iter().map(|&c| vec![1.0; c]).collect());
        let (y, _) = laplacian_matvec(&mut e, &mesh, &mut x);
        for (r, buf) in y.parts().iter().enumerate() {
            for (i, &v) in buf.iter().enumerate() {
                let cell = mesh.cells.rank(r)[i].cell;
                let on_boundary = (0..3).any(|ax| {
                    cell.face_neighbor(ax, -1).is_none() || cell.face_neighbor(ax, 1).is_none()
                });
                if on_boundary {
                    assert!(v > 0.0, "boundary cell must feel Dirichlet");
                } else {
                    assert!(v.abs() < 1e-9, "interior residual {v}");
                }
            }
        }
    }

    #[test]
    fn matvec_matches_single_rank_reference() {
        // The same operator on p=1 and p=6 must agree (communication is an
        // implementation detail, not a semantic one).
        let tree = balance21(&MeshParams::normal(400, 91).build::<3>(Curve::Hilbert));
        let n = tree.len();
        // Deterministic input: value = f(cell center).
        let val = |c: &optipart_sfc::Cell3| {
            let ctr = c.center_unit();
            (ctr[0] * 3.1).sin() + ctr[1] * ctr[2]
        };

        let run = |p: usize| -> Vec<(optipart_sfc::SfcKey, f64)> {
            let (mut e, mesh) = build_mesh(&tree, p, 0.0);
            let mut x = DistVec::from_parts(
                (0..p)
                    .map(|r| mesh.cells.rank(r).iter().map(|kc| val(&kc.cell)).collect())
                    .collect(),
            );
            let (y, _) = laplacian_matvec(&mut e, &mesh, &mut x);
            let mut out = Vec::with_capacity(n);
            for r in 0..p {
                for (kc, v) in mesh.cells.rank(r).iter().zip(y.rank(r)) {
                    out.push((kc.key, *v));
                }
            }
            out
        };

        let seq = run(1);
        let par = run(6);
        assert_eq!(seq.len(), par.len());
        for ((k1, v1), (k2, v2)) in seq.iter().zip(&par) {
            assert_eq!(k1, k2);
            assert!(
                (v1 - v2).abs() <= 1e-9 * (1.0 + v1.abs()),
                "mismatch at {k1:?}: {v1} vs {v2}"
            );
        }
    }

    #[test]
    fn operator_is_symmetric() {
        // xᵀ(Ay) == yᵀ(Ax) for random-ish x, y.
        let tree = balance21(&MeshParams::normal(300, 97).build::<3>(Curve::Hilbert));
        let (mut e, mesh) = build_mesh(&tree, 4, 0.0);
        let f1 = |c: &optipart_sfc::Cell3| c.center_unit()[0] - 0.3;
        let f2 = |c: &optipart_sfc::Cell3| (c.center_unit()[1] * 7.0).cos();
        let mk = |f: &dyn Fn(&optipart_sfc::Cell3) -> f64| {
            DistVec::from_parts(
                (0..4)
                    .map(|r| mesh.cells.rank(r).iter().map(|kc| f(&kc.cell)).collect())
                    .collect(),
            )
        };
        let mut x = mk(&f1);
        let mut y = mk(&f2);
        let (ax, _) = laplacian_matvec(&mut e, &mesh, &mut x);
        let (ay, _) = laplacian_matvec(&mut e, &mesh, &mut y);
        let xay = dot(&mut e, &mut x, &ay);
        let yax = dot(&mut e, &mut y, &ax);
        assert!(
            (xay - yax).abs() <= 1e-9 * (1.0 + xay.abs()),
            "not symmetric: {xay} vs {yax}"
        );
    }

    #[test]
    fn ghost_traffic_positive_and_recorded() {
        let tree = uniform_tree(3);
        let (mut e, mesh) = build_mesh(&tree, 8, 0.0);
        let mut x =
            DistVec::from_parts(mesh.cells.counts().iter().map(|&c| vec![1.0; c]).collect());
        let before = e.stats().bytes_total;
        let (_, stats) = laplacian_matvec(&mut e, &mesh, &mut x);
        assert!(stats.ghost_elements > 0);
        assert!(e.stats().bytes_total > before);
        assert!(e.comm_matrix().unwrap().nnz() > 0);
    }

    #[test]
    fn dot_and_axpy_basics() {
        let mut e = engine(3);
        let mut x = DistVec::from_parts(vec![vec![1.0, 2.0], vec![3.0], vec![4.0]]);
        let y = DistVec::from_parts(vec![vec![1.0, 1.0], vec![1.0], vec![0.5]]);
        assert!((dot(&mut e, &mut x, &y) - 8.0).abs() < 1e-12);
        let mut z = y.clone();
        axpy(&mut e, 2.0, &x, &mut z);
        assert_eq!(z.rank(0), &vec![3.0, 5.0]);
        assert_eq!(z.rank(2), &vec![8.5]);
    }
}
