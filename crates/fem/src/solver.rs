//! Conjugate-gradient Poisson solver.
//!
//! "Complex operations such as non-linear operators, time-dependent
//! problems, and using iterative solvers to solve a linear system can all be
//! represented as a series of matvecs" (§5.3). CG is the canonical such
//! series for the SPD Laplacian; each iteration is one matvec, two dots and
//! three axpys, all cost-accounted on the engine.

use crate::matvec::{axpy, dot, laplacian_matvec, norm2};
use crate::mesh::DistMesh;
use optipart_mpisim::{DistVec, Engine};

/// Convergence report of a CG solve.
#[derive(Clone, Debug)]
pub struct CgReport {
    /// Iterations performed (= matvecs).
    pub iterations: usize,
    /// Final relative residual `‖r‖/‖b‖`.
    pub rel_residual: f64,
    /// Whether the tolerance was reached within the iteration cap.
    pub converged: bool,
    /// Simulated seconds for the whole solve.
    pub seconds: f64,
}

/// Solves `A x = b` (FV Laplacian with Dirichlet-0 boundary) by CG.
///
/// Returns the solution and the report. `x` starts at zero.
pub fn cg_solve<const D: usize>(
    engine: &mut Engine,
    mesh: &DistMesh<D>,
    b: &DistVec<f64>,
    rel_tol: f64,
    max_iters: usize,
) -> (DistVec<f64>, CgReport) {
    let t0 = engine.makespan();
    let zeros: Vec<Vec<f64>> = b.counts().iter().map(|&c| vec![0.0; c]).collect();
    let mut x = DistVec::from_parts(zeros);
    let mut r = b.clone();
    let mut pdir = r.clone();
    let mut rr = norm2(engine, &mut r);
    let bb = rr.max(f64::MIN_POSITIVE);
    let target = rel_tol * rel_tol * bb;

    let mut iters = 0usize;
    while iters < max_iters && rr > target {
        let (ap, _) = laplacian_matvec(engine, mesh, &mut pdir);
        let pap = dot(engine, &mut pdir, &ap);
        if pap <= 0.0 {
            break; // numerically singular direction; operator should be SPD
        }
        let alpha = rr / pap;
        axpy(engine, alpha, &pdir, &mut x);
        axpy(engine, -alpha, &ap, &mut r);
        let rr_new = norm2(engine, &mut r);
        let beta = rr_new / rr;
        // p ← r + β p
        engine.compute(&mut pdir, |rank, buf| {
            for (pi, ri) in buf.iter_mut().zip(r.rank(rank)) {
                *pi = ri + beta * *pi;
            }
            buf.len() as f64 * 24.0
        });
        rr = rr_new;
        iters += 1;
    }

    let rel = (rr / bb).sqrt();
    let report = CgReport {
        iterations: iters,
        rel_residual: rel,
        converged: rel <= rel_tol,
        seconds: engine.makespan() - t0,
    };
    (x, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_core::partition::{distribute_tree, treesort_partition, PartitionOptions};
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_octree::{balance::balance21, LinearTree, MeshParams};
    use optipart_sfc::Curve;

    fn setup(tree: &LinearTree<3>, p: usize) -> (Engine, DistMesh<3>) {
        let mut e = Engine::new(
            p,
            PerfModel::new(
                MachineModel::cloudlab_wisconsin(),
                AppModel::laplacian_matvec(),
            ),
        );
        let out = treesort_partition(&mut e, distribute_tree(tree, p), PartitionOptions::exact());
        let mesh = DistMesh::build(&mut e, out.dist, tree.curve());
        (e, mesh)
    }

    fn ones(mesh: &DistMesh<3>) -> DistVec<f64> {
        DistVec::from_parts(mesh.cells.counts().iter().map(|&c| vec![1.0; c]).collect())
    }

    #[test]
    fn cg_converges_on_uniform_grid() {
        let tree = LinearTree::root(Curve::Hilbert).refine_where(|c| c.level() < 3, 3);
        let (mut e, mesh) = setup(&tree, 4);
        let b = ones(&mesh);
        let (x, rep) = cg_solve(&mut e, &mesh, &b, 1e-8, 500);
        assert!(
            rep.converged,
            "CG must converge: residual {}",
            rep.rel_residual
        );
        // Residual check: ‖Ax − b‖ small.
        let mut xs = x;
        let (ax, _) = laplacian_matvec(&mut e, &mesh, &mut xs);
        let mut worst = 0.0f64;
        for r in 0..4 {
            for (axi, bi) in ax.rank(r).iter().zip(b.rank(r)) {
                worst = worst.max((axi - bi).abs());
            }
        }
        assert!(worst < 1e-5, "residual entry {worst}");
        // Solution of −Δu = 1 with zero Dirichlet is positive inside.
        for r in 0..4 {
            for &v in xs.rank(r) {
                assert!(v > 0.0, "maximum principle violated: {v}");
            }
        }
    }

    #[test]
    fn cg_converges_on_adaptive_mesh() {
        let tree = balance21(&MeshParams::normal(400, 101).build::<3>(Curve::Hilbert));
        let (mut e, mesh) = setup(&tree, 6);
        let b = ones(&mesh);
        let (_, rep) = cg_solve(&mut e, &mesh, &b, 1e-7, 1000);
        assert!(rep.converged, "residual {}", rep.rel_residual);
        assert!(rep.iterations > 1);
        assert!(rep.seconds > 0.0);
    }

    #[test]
    fn partition_does_not_change_solution() {
        let tree = balance21(&MeshParams::normal(250, 103).build::<3>(Curve::Hilbert));
        let solve = |p: usize| -> f64 {
            let (mut e, mesh) = setup(&tree, p);
            let b = ones(&mesh);
            let (x, rep) = cg_solve(&mut e, &mesh, &b, 1e-9, 1000);
            assert!(rep.converged);
            // Global max of the solution as a partition-independent scalar.
            x.parts().iter().flatten().fold(0.0f64, |m, &v| m.max(v))
        };
        let a = solve(1);
        let b = solve(5);
        assert!(
            (a - b).abs() <= 1e-6 * a.abs(),
            "p=1 max {a} vs p=5 max {b}"
        );
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let tree = LinearTree::root(Curve::Morton).refine_where(|c| c.level() < 2, 2);
        let (mut e, mesh) = setup(&tree, 2);
        let zeros =
            DistVec::from_parts(mesh.cells.counts().iter().map(|&c| vec![0.0; c]).collect());
        let (_, rep) = cg_solve(&mut e, &mesh, &zeros, 1e-8, 10);
        assert_eq!(rep.iterations, 0);
        assert!(rep.converged);
    }
}
