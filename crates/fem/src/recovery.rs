//! Fail-stop recovery drivers: checkpointed solve loops that survive rank
//! deaths by shrinking to the survivor set and re-running OptiPart.
//!
//! The protocol (DESIGN.md §11) on top of the engine's fail-stop machinery:
//!
//! 1. **Checkpoint** — at each opportunity the [`CheckpointStore`] deems due,
//!    snapshot the partitioned octant buffer plus the solver vector
//!    (in-memory partner mirror, charged `tc·bytes + ts + tw·bytes` on the
//!    virtual clocks).
//! 2. **Detect** — a scheduled kill makes the victim stop arriving at sync
//!    points; survivors charge a detection timeout at the next collective and
//!    the engine unwinds with a [`RankDeath`](optipart_mpisim::RankDeath),
//!    caught here with [`catch_rank_death`].
//! 3. **Shrink** — [`Engine::shrink_after_death`] drops the victim's slot:
//!    the same engine continues as a `p − 1`-rank machine (original rank ids
//!    are kept for fault factors, placement and trace tracks).
//! 4. **Restore + repartition** — survivors re-fetch the lost parts
//!    (charged), globally re-run OptiPart over the survivor set, rebuild the
//!    distributed mesh, and resume from the snapshot's progress label.
//!
//! Everything stays on the virtual BSP clock, so a faulted run with a fixed
//! seed and kill schedule is bit-deterministic at any host thread count, and
//! the recovery cost shows up in the critical path and model attribution.

use crate::amr::{partition_step, step_mesh, AmrConfig, AmrStep};
use crate::driver::initial_vector;
use crate::matvec::laplacian_matvec;
use crate::mesh::DistMesh;
use optipart_core::optipart::{
    optipart_survivors, optipart_survivors_with_state, OptiPartOptions, PartitionState, WarmStats,
};
use optipart_core::partition::owner_of;
use optipart_mpisim::{
    catch_rank_death, CheckpointPolicy, CheckpointStats, CheckpointStore, DistVec, Engine,
    Replicated,
};
use optipart_sfc::{Curve, KeyedCell, SfcKey};

/// Checkpointed state: the partitioned octant buffer plus the solver vector.
type SolveState<const D: usize> = (DistVec<KeyedCell<D>>, DistVec<f64>);

/// The AMR driver's checkpointed state: octants + solver vector + the
/// partitioner's warm-start cache (rank-replicated), so a rollback restores
/// the ladder memory alongside the data it was derived from.
type AmrSolveState = (
    DistVec<KeyedCell<3>>,
    DistVec<f64>,
    Replicated<PartitionState>,
);

/// One recovered rank death.
#[derive(Clone, Debug)]
pub struct DeathRecord {
    /// Original rank id of the victim.
    pub rank: usize,
    /// Virtual time at which survivors detected the death.
    pub detected_at_s: f64,
    /// Progress label (iteration or AMR step) the run resumed from.
    pub resumed_from: u64,
    /// Completed progress units (iterations / steps) invalidated by the
    /// rollback — work done since the restored snapshot, excluding the
    /// partially-executed unit the death interrupted.
    pub lost_units: u64,
    /// Virtual seconds spent on restore + survivor repartition + remesh
    /// (detection timeout is charged separately, before the unwind).
    pub recovery_s: f64,
}

impl DeathRecord {
    /// A record for a just-detected death; the recovery fields are filled
    /// in once the (possibly retried) recovery completes.
    fn detected(death: &optipart_mpisim::RankDeath) -> Self {
        DeathRecord {
            rank: death.rank,
            detected_at_s: death.t_detect,
            resumed_from: 0,
            lost_units: 0,
            recovery_s: 0.0,
        }
    }
}

/// Report of a fault-tolerant matvec run ([`run_matvec_ft`]).
#[derive(Clone, Debug)]
pub struct FtReport {
    /// Iterations completed (the requested count — recovery re-runs lost ones).
    pub iterations: usize,
    /// Total simulated seconds, including checkpoints and recoveries.
    pub seconds: f64,
    /// Every death survived, in order.
    pub deaths: Vec<DeathRecord>,
    /// Checkpoint/restore accounting.
    pub checkpoint: CheckpointStats,
    /// Total iterations re-executed due to rollbacks.
    pub lost_iterations: u64,
    /// Ranks still alive at the end.
    pub final_p: usize,
    /// Ghost elements actually moved (re-executed iterations count again).
    pub ghost_elements: u64,
    /// The final solver vector as globally key-sorted `(octant, value)`
    /// pairs — partition-independent, for comparing faulted vs. fault-free.
    pub solution: Vec<(SfcKey, f64)>,
    /// Warm-start decisions taken by recovery repartitions (a shrink always
    /// invalidates the cache, so the first recovery after a death is cold).
    pub warm: WarmStats,
}

/// Report of a fault-tolerant AMR run ([`amr_simulation_ft`]).
#[derive(Clone, Debug)]
pub struct FtAmrReport {
    /// One entry per *executed* step attempt, in execution order — a step
    /// re-run after a rollback appears again, so with deaths
    /// `steps.len() > cfg.steps`.
    pub steps: Vec<AmrStep>,
    /// Total simulated seconds, including checkpoints and recoveries.
    pub total_seconds: f64,
    /// Total energy, Joules.
    pub total_energy_j: f64,
    /// Ghost elements moved by all executed matvecs.
    pub total_ghosts: u64,
    /// Every death survived, in order.
    pub deaths: Vec<DeathRecord>,
    /// Checkpoint/restore accounting.
    pub checkpoint: CheckpointStats,
    /// Completed AMR steps re-executed due to rollbacks.
    pub lost_steps: u64,
    /// Ranks still alive at the end.
    pub final_p: usize,
    /// Final step's solution as globally key-sorted `(octant, value)` pairs;
    /// its keys are the final mesh's global octant multiset.
    pub solution: Vec<(SfcKey, f64)>,
    /// Warm-start decisions over the whole run (per-step repartitions and
    /// recovery repartitions; all zeros with `warm_start` off).
    pub warm: WarmStats,
}

/// `‖x‖∞` rescale as in [`crate::driver::run_matvec_experiment`] — an
/// order-independent max-reduction, so the result is partition-invariant.
fn rescale(e: &mut Engine, x: &mut DistVec<f64>) {
    let max = e
        .allreduce_max_f64(
            &x.parts()
                .iter()
                .map(|b| b.iter().fold(0.0f64, |m, v| m.max(v.abs())))
                .collect::<Vec<_>>(),
        )
        .max(f64::MIN_POSITIVE);
    e.compute(x, |_r, buf| {
        for v in buf.iter_mut() {
            *v /= max;
        }
        buf.len() as f64 * 16.0
    });
}

/// The all-ones vector over a mesh's cells (the AMR per-step initial state).
fn ones<const D: usize>(mesh: &DistMesh<D>) -> DistVec<f64> {
    DistVec::from_parts(
        mesh.cells
            .counts()
            .iter()
            .map(|&c| vec![1.0f64; c])
            .collect(),
    )
}

/// Flattens `(mesh, x)` into globally key-sorted `(octant, value)` pairs.
fn global_solution<const D: usize>(mesh: &DistMesh<D>, x: &DistVec<f64>) -> Vec<(SfcKey, f64)> {
    let mut out: Vec<(SfcKey, f64)> = mesh
        .cells
        .parts()
        .iter()
        .zip(x.parts())
        .flat_map(|(cells, vals)| cells.iter().zip(vals).map(|(kc, &v)| (kc.key, v)))
        .collect();
    out.sort_unstable_by_key(|a| a.0);
    out
}

/// The shared tail of a recovery: re-run OptiPart over the survivor set
/// (warm-started when a [`PartitionState`] is threaded through — the rank
/// count changed, so its entries are invalidated and the repartition runs
/// cold, re-seeding the cache for the shrunk machine), rebuild the mesh,
/// and re-scatter the solver vector onto the new partition by octant key.
fn repartition_survivors<const D: usize>(
    engine: &mut Engine,
    cells: &[KeyedCell<D>],
    vals: &[f64],
    curve: Curve,
    warm: Option<&mut PartitionState>,
) -> (DistMesh<D>, DistVec<f64>, f64) {
    let opts = OptiPartOptions::for_curve(curve);
    let out = engine.phase("ft.partition", |e| match warm {
        Some(st) => optipart_survivors_with_state(e, cells, opts, st),
        None => optipart_survivors(e, cells, opts),
    });
    let lambda = out.report.lambda;
    let mesh = engine.phase("ft.mesh", |e| DistMesh::build(e, out.dist, curve));
    let keys: Vec<SfcKey> = cells.iter().map(|kc| kc.key).collect();
    let x = DistVec::from_parts(
        mesh.cells
            .parts()
            .iter()
            .map(|buf| {
                buf.iter()
                    .map(|kc| {
                        let i = keys
                            .binary_search(&kc.key)
                            .expect("restored octant missing from snapshot");
                        vals[i]
                    })
                    .collect()
            })
            .collect(),
    );
    (mesh, x, lambda)
}

/// Post-shrink recovery for the matvec driver: restore the latest snapshot
/// (charged) and repartition the survivors. Returns
/// `(label, mesh, x, lambda, recovery_seconds)`.
fn recover<const D: usize>(
    engine: &mut Engine,
    store: &mut CheckpointStore<SolveState<D>>,
    curve: Curve,
    warm: &mut PartitionState,
) -> (u64, DistMesh<D>, DistVec<f64>, f64, f64) {
    let t0 = engine.makespan();
    let (label, cells, vals) = {
        let snap = store.restore(engine);
        (snap.label, snap.state.0.concat(), snap.state.1.concat())
    };
    let (mesh, x, lambda) = repartition_survivors(engine, &cells, &vals, curve, Some(warm));
    (label, mesh, x, lambda, engine.makespan() - t0)
}

/// Post-shrink recovery for the AMR driver: like [`recover`], but the
/// snapshot also carries the partitioner's warm-start cache — the payload
/// rolls back with the data it was derived from, while the decision
/// counters (run-scoped accounting) keep going.
fn recover_amr(
    engine: &mut Engine,
    store: &mut CheckpointStore<AmrSolveState>,
    curve: Curve,
    mut warm: Option<&mut PartitionState>,
) -> (u64, DistMesh<3>, DistVec<f64>, f64, f64) {
    let t0 = engine.makespan();
    let (label, cells, vals, saved) = {
        let snap = store.restore(engine);
        (
            snap.label,
            snap.state.0.concat(),
            snap.state.1.concat(),
            snap.state.2.value.clone(),
        )
    };
    if let Some(w) = warm.as_deref_mut() {
        let stats = w.stats;
        *w = saved;
        w.stats = stats;
    }
    let (mesh, x, lambda) = repartition_survivors(engine, &cells, &vals, curve, warm);
    (label, mesh, x, lambda, engine.makespan() - t0)
}

/// [`crate::driver::run_matvec_experiment`] hardened against fail-stop
/// deaths: the iteration loop checkpoints under `policy` (labels are global
/// iteration indices), and every death scheduled in the engine's
/// [`FaultPlan`](optipart_mpisim::FaultPlan) is survived by shrinking,
/// restoring the last snapshot, repartitioning the survivors with OptiPart
/// and re-running the lost iterations.
///
/// The rescale cadence is keyed to the *absolute* iteration index, so a
/// replayed segment applies exactly the ops the fault-free run would — on a
/// 2:1-balanced mesh (where ghost discovery is complete and the stencil is
/// partition-independent) final solutions agree to round-off (`≤ 1e-12`
/// relative) regardless of where deaths strike.
///
/// Panics (from [`CheckpointStore::restore`]) if a death strikes under
/// [`CheckpointPolicy::Never`] or before the first save.
pub fn run_matvec_ft<const D: usize>(
    engine: &mut Engine,
    mesh: &DistMesh<D>,
    iterations: usize,
    policy: CheckpointPolicy,
) -> FtReport {
    engine.reset();
    let curve = mesh.curve;
    let mut store: CheckpointStore<SolveState<D>> = CheckpointStore::new(policy);
    let mut warm = PartitionState::new();
    let mut deaths: Vec<DeathRecord> = Vec::new();
    let mut owned_mesh: Option<DistMesh<D>> = None;
    let mut x = initial_vector(mesh);
    let mut next_it: u64 = 0;
    let total = iterations as u64;
    let mut ghosts = 0u64;

    // A death anywhere — in the solve loop *or inside a recovery's own
    // collectives* — lands in a `catch_rank_death`; `needs_recovery` makes
    // the loop retry the recovery until it completes on a live survivor set.
    let mut needs_recovery = false;
    loop {
        if needs_recovery {
            match catch_rank_death(|| recover(engine, &mut store, curve, &mut warm)) {
                Ok((label, new_mesh, new_x, _lambda, recovery_s)) => {
                    let d = deaths.last_mut().expect("recovery follows a death");
                    d.resumed_from = label;
                    d.lost_units = next_it - label;
                    d.recovery_s += recovery_s;
                    next_it = label;
                    x = new_x;
                    owned_mesh = Some(new_mesh);
                    needs_recovery = false;
                }
                Err(death) => {
                    engine.shrink_after_death();
                    deaths.push(DeathRecord::detected(&death));
                }
            }
            continue;
        }
        let res = {
            let m = owned_mesh.as_ref().unwrap_or(mesh);
            catch_rank_death(|| {
                while next_it < total {
                    if store.due(engine) {
                        let state = (m.cells.clone(), x.clone());
                        engine.phase("ft.checkpoint", |e| store.save(e, next_it, &state));
                    }
                    let it = next_it;
                    let (y, stats) = engine.phase("matvec", |e| laplacian_matvec(e, m, &mut x));
                    ghosts += stats.ghost_elements;
                    x = y;
                    if it % 10 == 9 {
                        engine.phase("rescale", |e| rescale(e, &mut x));
                    }
                    next_it = it + 1;
                }
            })
        };
        match res {
            Ok(()) => break,
            Err(death) => {
                engine.shrink_after_death();
                deaths.push(DeathRecord::detected(&death));
                needs_recovery = true;
            }
        }
    }

    let final_mesh = owned_mesh.as_ref().unwrap_or(mesh);
    let solution = global_solution(final_mesh, &x);
    let lost_iterations = deaths.iter().map(|d| d.lost_units).sum();
    FtReport {
        iterations,
        seconds: engine.makespan(),
        deaths,
        checkpoint: store.stats(),
        lost_iterations,
        final_p: engine.p(),
        ghost_elements: ghosts,
        solution,
        warm: warm.stats,
    }
}

/// [`crate::amr::amr_simulation`] hardened against fail-stop deaths.
///
/// Checkpoint opportunities come once per AMR step, right after the step's
/// mesh is built (label = step index, state = partitioned octants + initial
/// solver vector). A death anywhere in a step — partition, mesh build,
/// checkpoint or solve — rolls back to the latest snapshot: survivors
/// restore its octants, repartition them with OptiPart, rebuild the mesh
/// *without* redistributing from scratch, and re-run the snapshot's step
/// solve before continuing. Since each step's refinement derives from the
/// global front (not from rank count), the surviving run produces the same
/// global octant multiset and a solution matching the fault-free run.
pub fn amr_simulation_ft(
    engine: &mut Engine,
    cfg: &AmrConfig,
    policy: CheckpointPolicy,
) -> FtAmrReport {
    engine.reset();
    let mut store: CheckpointStore<AmrSolveState> = CheckpointStore::new(policy);
    let mut steps: Vec<AmrStep> = Vec::new();
    let mut deaths: Vec<DeathRecord> = Vec::new();
    let mut warm = cfg
        .warm_start
        .then(|| PartitionState::with_cap(cfg.state_cap));
    let mut prev_splitters: Option<Vec<SfcKey>> = None;
    // A restored step: mesh + solver vector + recovery partition's lambda.
    let mut recovered: Option<(DistMesh<3>, DistVec<f64>, f64)> = None;
    let mut last: Option<(DistMesh<3>, DistVec<f64>)> = None;
    let mut total_ghosts = 0u64;
    let mut t = 0usize;

    // Like [`run_matvec_ft`], a death during a recovery's own collectives is
    // survived too: the rollback is retried until it completes.
    let mut rollback_from: Option<u64> = None;
    while t < cfg.steps {
        if let Some(before) = rollback_from {
            match catch_rank_death(|| recover_amr(engine, &mut store, cfg.curve, warm.as_mut())) {
                Ok((label, mesh, x, lambda, recovery_s)) => {
                    let d = deaths.last_mut().expect("recovery follows a death");
                    d.resumed_from = label;
                    d.lost_units = before - label;
                    d.recovery_s += recovery_s;
                    t = label as usize;
                    prev_splitters = Some(mesh.splitters.clone());
                    recovered = Some((mesh, x, lambda));
                    rollback_from = None;
                }
                Err(death) => {
                    engine.shrink_after_death();
                    deaths.push(DeathRecord::detected(&death));
                }
            }
            continue;
        }
        let res = {
            let sp = &prev_splitters;
            catch_rank_death(|| {
                let p = engine.p();
                let t_start = engine.makespan();
                let (mesh, x0, migrated, lambda, new_splitters) = match recovered.take() {
                    // Rolled back: the recovery already rebuilt this step's
                    // partition over the survivors — go straight to the solve.
                    Some((mesh, x, lambda)) => (mesh, x, 0u64, lambda, None),
                    None => {
                        let tree = step_mesh(t, cfg);
                        let n = tree.len();
                        let input: DistVec<KeyedCell<3>> = match sp {
                            None => DistVec::from_global(tree.leaves(), p),
                            Some(spl) => {
                                let mut parts: Vec<Vec<KeyedCell<3>>> =
                                    (0..p).map(|_| Vec::new()).collect();
                                for kc in tree.leaves() {
                                    parts[owner_of(spl, &kc.key)].push(*kc);
                                }
                                DistVec::from_parts(parts)
                            }
                        };
                        let out = engine.phase("amr.partition", |e| {
                            partition_step(e, input, cfg, warm.as_mut())
                        });
                        let mut migrated = 0u64;
                        let mut idx = 0usize;
                        for (r, buf) in out.dist.parts().iter().enumerate() {
                            for kc in buf {
                                let was = match sp {
                                    None => (idx * p / n.max(1)).min(p - 1),
                                    Some(spl) => owner_of(spl, &kc.key),
                                };
                                if was != r {
                                    migrated += 1;
                                }
                                idx += 1;
                            }
                        }
                        let lambda = out.report.lambda;
                        let splitters = out.splitters.clone();
                        let mesh =
                            engine.phase("amr.mesh", |e| DistMesh::build(e, out.dist, cfg.curve));
                        let x = ones(&mesh);
                        (mesh, x, migrated, lambda, Some(splitters))
                    }
                };
                if store.due(engine) {
                    // The warm-start cache snapshots alongside the data it
                    // was derived from (zero wire bytes when warm-start is
                    // off — the wrapper still keeps the state type uniform).
                    let cache = warm.clone().unwrap_or_default();
                    let bytes = warm.as_ref().map_or(0, |w| w.footprint_bytes());
                    let state = (
                        mesh.cells.clone(),
                        x0.clone(),
                        Replicated::new(cache, bytes, p),
                    );
                    engine.phase("ft.checkpoint", |e| store.save(e, t as u64, &state));
                }
                let (x, ghosts) = engine.phase("amr.solve", |e| {
                    let mut x = x0;
                    let mut g = 0u64;
                    for _ in 0..cfg.matvecs_per_step {
                        let (y, stats) = laplacian_matvec(e, &mesh, &mut x);
                        g += stats.ghost_elements;
                        x = y;
                    }
                    (x, g)
                });
                let elements = mesh.cells.total_len();
                engine.trace_decision(
                    "amr.step",
                    &[
                        ("step", t as f64),
                        ("elements", elements as f64),
                        ("migrated", migrated as f64),
                        ("lambda", lambda),
                    ],
                );
                let step = AmrStep {
                    step: t,
                    elements,
                    migrated,
                    lambda,
                    seconds: engine.makespan() - t_start,
                };
                (step, mesh, x, ghosts, new_splitters)
            })
        };
        match res {
            Ok((step, mesh, x, ghosts, new_splitters)) => {
                total_ghosts += ghosts;
                steps.push(step);
                if let Some(spl) = new_splitters {
                    prev_splitters = Some(spl);
                }
                last = Some((mesh, x));
                t += 1;
            }
            Err(death) => {
                engine.shrink_after_death();
                deaths.push(DeathRecord::detected(&death));
                rollback_from = Some(t as u64);
            }
        }
    }

    let solution = match &last {
        Some((mesh, x)) => global_solution(mesh, x),
        None => Vec::new(),
    };
    let lost_steps = deaths.iter().map(|d| d.lost_units).sum();
    FtAmrReport {
        steps,
        total_seconds: engine.makespan(),
        total_energy_j: engine.energy_report().total_j,
        total_ghosts,
        deaths,
        checkpoint: store.stats(),
        lost_steps,
        final_p: engine.p(),
        solution,
        warm: warm.map(|s| s.stats).unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_core::partition::{distribute_tree, treesort_partition, PartitionOptions};
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_mpisim::FaultPlan;
    use optipart_octree::{balance::balance21, MeshParams};

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(
                MachineModel::cloudlab_wisconsin(),
                AppModel::laplacian_matvec(),
            ),
        )
    }

    /// Values must agree to `1e-12` relative to the solution's ∞-norm
    /// (per-element relative error is meaningless where the stencil
    /// cancels to ~0).
    fn assert_solutions_match(want: &[(SfcKey, f64)], got: &[(SfcKey, f64)]) {
        let norm = want
            .iter()
            .map(|(_, v)| v.abs())
            .fold(f64::MIN_POSITIVE, f64::max);
        for ((_, a), (_, b)) in want.iter().zip(got) {
            assert!(
                (a - b).abs() <= 1e-12 * norm,
                "solution diverged: {a} vs {b} (norm {norm:e})"
            );
        }
    }

    fn meshed(e: &mut Engine, n: usize, seed: u64) -> DistMesh<3> {
        // 2:1-balanced, so the stencil (and thus the solution) does not
        // depend on the partition — required for faulted-vs-clean matching.
        let tree = balance21(&MeshParams::normal(n, seed).build::<3>(Curve::Hilbert));
        let out = treesort_partition(e, distribute_tree(&tree, e.p()), PartitionOptions::exact());
        DistMesh::build(e, out.dist, Curve::Hilbert)
    }

    #[test]
    fn clean_ft_run_matches_plain_driver_solution() {
        let mut e = engine(8);
        let mesh = meshed(&mut e, 1500, 41);
        let ft = run_matvec_ft(&mut e, &mesh, 12, CheckpointPolicy::Never);
        assert!(ft.deaths.is_empty());
        assert_eq!(ft.final_p, 8);
        assert_eq!(ft.checkpoint.saves, 0);
        // Same mesh + same ops ⇒ the plain driver's x is reproduced exactly.
        let mut e2 = engine(8);
        let mesh2 = meshed(&mut e2, 1500, 41);
        let ft2 = run_matvec_ft(&mut e2, &mesh2, 12, CheckpointPolicy::EveryN(3));
        assert_eq!(ft.solution, ft2.solution, "checkpoints must not touch data");
        assert!(ft2.checkpoint.saves >= 4);
        assert!(ft2.seconds > ft.seconds, "checkpoints cost virtual time");
    }

    #[test]
    fn killed_rank_recovers_and_matches_fault_free() {
        // Fault-free reference, which also probes the sync-point timeline so
        // the kill can be aimed at the middle of the run.
        let mut clean = engine(6);
        let mesh_c = meshed(&mut clean, 1200, 43);
        let want = run_matvec_ft(&mut clean, &mesh_c, 15, CheckpointPolicy::EveryStep);
        let mid = clean.sync_points() / 2;
        assert!(mid >= 2, "probe run too short to aim a mid-run kill");

        // Arm the plan only after the mesh is built, so the kill lands in
        // the solve loop (run_matvec_ft's reset re-arms the schedule).
        let mut e = engine(6);
        let mesh = meshed(&mut e, 1200, 43);
        let mut e = e.with_faults(FaultPlan::new(7).kill_rank(2, mid));
        let got = run_matvec_ft(&mut e, &mesh, 15, CheckpointPolicy::EveryStep);
        assert_eq!(got.deaths.len(), 1);
        assert_eq!(got.deaths[0].rank, 2);
        assert_eq!(got.final_p, 5);
        assert_eq!(got.checkpoint.restores, 1);
        assert!(got.seconds > want.seconds);

        // Same octant multiset…
        let keys_w: Vec<SfcKey> = want.solution.iter().map(|(k, _)| *k).collect();
        let keys_g: Vec<SfcKey> = got.solution.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys_w, keys_g, "recovery must conserve the octants");
        // …and the same values to round-off (relative to the ∞-norm, which
        // keeps cancellation-dominated near-zero entries comparable).
        assert_solutions_match(&want.solution, &got.solution);
    }

    #[test]
    fn amr_ft_survives_mid_run_death() {
        let cfg = AmrConfig {
            steps: 4,
            max_level: 4,
            matvecs_per_step: 3,
            ..Default::default()
        };
        let mut clean = engine(8);
        let want = amr_simulation_ft(&mut clean, &cfg, CheckpointPolicy::EveryStep);
        assert!(want.deaths.is_empty());
        assert_eq!(want.steps.len(), 4);

        // Kill a rank halfway through the run's sync-point timeline.
        let mid = clean.sync_points() / 2;
        let mut e = engine(8).with_faults(FaultPlan::new(11).kill_rank(3, mid));
        let got = amr_simulation_ft(&mut e, &cfg, CheckpointPolicy::EveryStep);
        assert_eq!(got.deaths.len(), 1);
        assert_eq!(got.final_p, 7);
        assert!(got.steps.len() >= 4, "redone steps are recorded");
        assert_eq!(got.steps.last().unwrap().step, 3);
        let keys_w: Vec<SfcKey> = want.solution.iter().map(|(k, _)| *k).collect();
        let keys_g: Vec<SfcKey> = got.solution.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys_w, keys_g, "final octant multiset must match");
        assert_solutions_match(&want.solution, &got.solution);
        assert!(got.total_seconds > want.total_seconds);
    }

    #[test]
    #[should_panic(expected = "no checkpoint to restore")]
    fn death_without_checkpoint_is_unrecoverable() {
        let mut e = engine(4);
        let mesh = meshed(&mut e, 800, 47);
        let mut e = e.with_faults(FaultPlan::new(3).kill_rank(1, 5));
        let _ = run_matvec_ft(&mut e, &mesh, 20, CheckpointPolicy::Never);
    }
}
