//! The §5.4 measurement driver: `k` matvecs on a given partition, reporting
//! simulated time, per-node energy and traffic — the data behind Figs. 7–10.

use crate::matvec::laplacian_matvec;
use crate::mesh::DistMesh;
use optipart_core::optipart::{optipart, optipart_with_state, OptiPartOptions, PartitionState};
use optipart_core::partition::{owner_of, PartitionOutcome};
use optipart_machine::EnergyReport;
use optipart_mpisim::{DistVec, Engine};
use optipart_octree::LinearTree;
use optipart_sfc::{KeyedCell, SfcKey};

/// Results of one matvec experiment.
#[derive(Clone, Debug)]
pub struct MatvecExperiment {
    /// Iterations run (the paper uses 100).
    pub iterations: usize,
    /// Simulated seconds for the matvec loop only.
    pub seconds: f64,
    /// Whole-run energy (matvec loop only; the engine is reset first).
    pub energy: EnergyReport,
    /// Total ghost elements moved over all iterations.
    pub ghost_elements: u64,
    /// NNZ of the engine's communication matrix, if recording was enabled.
    pub comm_nnz: Option<usize>,
    /// Total bytes over the network.
    pub bytes_total: u64,
    /// Per-rank virtual clocks at the end of the loop — `seconds` is their
    /// maximum. Under an injected fault plan the spread between ranks shows
    /// who straggled; on a clean machine matvec's trailing collective leaves
    /// them (nearly) equal.
    pub rank_clocks: Vec<f64>,
    /// Transient-failure retries charged during the loop (0 without faults).
    pub retries: u64,
}

/// The driver's deterministic initial vector: a cell-centre based linear
/// ramp, so the value attached to an octant depends only on the octant —
/// not on which rank holds it or how many ranks exist. Recovery drivers
/// rely on this to compare faulted and fault-free solutions.
pub fn initial_vector<const D: usize>(mesh: &DistMesh<D>) -> DistVec<f64> {
    DistVec::from_parts(
        (0..mesh.p())
            .map(|r| {
                mesh.cells
                    .rank(r)
                    .iter()
                    .map(|kc| {
                        let c = kc.cell.center_unit();
                        1.0 + c[0] * 0.5 - c[D - 1] * 0.25
                    })
                    .collect()
            })
            .collect(),
    )
}

/// Repartitions a sequence of meshes (successive AMR fronts) with OptiPart:
/// each step's elements start where the previous step's splitters put their
/// region (first step: block distribution), exactly as
/// [`crate::amr::amr_simulation`] redistributes — but without the solve, so
/// this is the pure repeated-partitioning cost an AMR run pays.
///
/// With `state`, the ladder warm-starts from the previous step (bit-identical
/// outcomes; see [`optipart_with_state`]); with `None` every step runs the
/// full cold tolerance ladder. The two modes produce identical splitters —
/// the amortized-cost benchmark compares only their partitioning cost.
pub fn repartition_sequence<const D: usize>(
    engine: &mut Engine,
    steps: &[LinearTree<D>],
    opts: OptiPartOptions,
    mut state: Option<&mut PartitionState>,
) -> Vec<PartitionOutcome<D>> {
    let p = engine.p();
    let mut prev: Option<Vec<SfcKey>> = None;
    let mut outs = Vec::with_capacity(steps.len());
    for tree in steps {
        let input: DistVec<KeyedCell<D>> = match &prev {
            None => DistVec::from_global(tree.leaves(), p),
            Some(sp) => {
                let mut parts: Vec<Vec<KeyedCell<D>>> = (0..p).map(|_| Vec::new()).collect();
                for kc in tree.leaves() {
                    parts[owner_of(sp, &kc.key)].push(*kc);
                }
                DistVec::from_parts(parts)
            }
        };
        let out = engine.phase("amr.partition", |e| match state.as_deref_mut() {
            Some(st) => optipart_with_state(e, input, opts, st),
            None => optipart(e, input, opts),
        });
        prev = Some(out.splitters.clone());
        outs.push(out);
    }
    outs
}

/// Runs `iterations` Laplacian matvecs (`y ← A x; x ← y/‖y‖∞`-ish chain,
/// keeping values bounded) and reports time, energy and traffic.
///
/// The engine's clocks/energy are reset at entry so the report covers the
/// matvec loop alone, matching the paper's measurement of the matvec phase.
pub fn run_matvec_experiment<const D: usize>(
    engine: &mut Engine,
    mesh: &DistMesh<D>,
    iterations: usize,
) -> MatvecExperiment {
    engine.reset();
    let mut x = initial_vector(mesh);

    let mut ghost_elements = 0u64;
    for it in 0..iterations {
        let (y, stats) = engine.phase("matvec", |e| laplacian_matvec(e, mesh, &mut x));
        ghost_elements += stats.ghost_elements;
        x = y;
        // Rescale occasionally so repeated application stays in range (the
        // physics is irrelevant; only the compute/comm pattern matters).
        if it % 10 == 9 {
            engine.phase("rescale", |e| {
                let max = e
                    .allreduce_max_f64(
                        &x.parts()
                            .iter()
                            .map(|b| b.iter().fold(0.0f64, |m, v| m.max(v.abs())))
                            .collect::<Vec<_>>(),
                    )
                    .max(f64::MIN_POSITIVE);
                e.compute(&mut x, |_r, buf| {
                    for v in buf.iter_mut() {
                        *v /= max;
                    }
                    buf.len() as f64 * 16.0
                });
            });
        }
    }

    let energy = engine.energy_report();
    MatvecExperiment {
        iterations,
        seconds: engine.makespan(),
        energy,
        ghost_elements,
        comm_nnz: engine.comm_matrix().map(|m| m.nnz()),
        bytes_total: engine.stats().bytes_total,
        rank_clocks: engine.clocks().to_vec(),
        retries: engine.stats().retries_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_core::optipart::{optipart, OptiPartOptions};
    use optipart_core::partition::{distribute_tree, treesort_partition, PartitionOptions};
    use optipart_machine::{AppModel, MachineModel, PerfModel};
    use optipart_octree::MeshParams;
    use optipart_sfc::Curve;

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(
                MachineModel::cloudlab_wisconsin(),
                AppModel::laplacian_matvec(),
            ),
        )
        .record_comm_matrix()
    }

    #[test]
    fn experiment_reports_consistent_numbers() {
        let tree = MeshParams::normal(2000, 107).build::<3>(Curve::Hilbert);
        let p = 8;
        let mut e = engine(p);
        let out = treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact());
        let mesh = DistMesh::build(&mut e, out.dist, Curve::Hilbert);
        let rep = run_matvec_experiment(&mut e, &mesh, 10);
        assert_eq!(rep.iterations, 10);
        assert!(rep.seconds > 0.0);
        assert!(rep.energy.total_j > 0.0);
        assert!(rep.energy.comm_j > 0.0);
        assert!(rep.energy.comm_j < rep.energy.total_j);
        assert!(rep.ghost_elements > 0);
        assert_eq!(rep.energy.per_node_j.len(), 1); // 8 ranks @ 32/node
        assert!(rep.comm_nnz.unwrap() > 0);
    }

    #[test]
    fn energy_tracks_runtime() {
        // §3.3: "the overall energy will be strongly correlated with the
        // overall runtime". Double the iterations ⇒ roughly double both.
        let tree = MeshParams::normal(1500, 109).build::<3>(Curve::Hilbert);
        let p = 4;
        let mut e = engine(p);
        let out = treesort_partition(&mut e, distribute_tree(&tree, p), PartitionOptions::exact());
        let mesh = DistMesh::build(&mut e, out.dist, Curve::Hilbert);
        let r1 = run_matvec_experiment(&mut e, &mesh, 5);
        let r2 = run_matvec_experiment(&mut e, &mesh, 10);
        let time_ratio = r2.seconds / r1.seconds;
        let energy_ratio = r2.energy.total_j / r1.energy.total_j;
        assert!((time_ratio - 2.0).abs() < 0.3, "time ratio {time_ratio}");
        assert!(
            (energy_ratio - 2.0).abs() < 0.3,
            "energy ratio {energy_ratio}"
        );
    }

    #[test]
    fn optipart_partition_not_slower_than_exact() {
        // The paper's headline: the flexible partition reduces (simulated)
        // matvec time on the communication-bound cluster.
        let tree = MeshParams::normal(4000, 113).build::<3>(Curve::Hilbert);
        let p = 16;

        let mut e1 = engine(p);
        let exact = treesort_partition(
            &mut e1,
            distribute_tree(&tree, p),
            PartitionOptions::exact(),
        );
        let mesh1 = DistMesh::build(&mut e1, exact.dist, Curve::Hilbert);
        let t_exact = run_matvec_experiment(&mut e1, &mesh1, 20).seconds;

        let mut e2 = engine(p);
        let opti = optipart(
            &mut e2,
            distribute_tree(&tree, p),
            OptiPartOptions::default(),
        );
        let mesh2 = DistMesh::build(&mut e2, opti.dist, Curve::Hilbert);
        let t_opti = run_matvec_experiment(&mut e2, &mesh2, 20).seconds;

        assert!(
            t_opti <= t_exact * 1.05,
            "optipart {t_opti:e} should not lose to exact {t_exact:e}"
        );
    }
}
