//! Adaptive time-stepping driver: the repeated-partitioning scenario that
//! motivates SFC partitioners in the first place.
//!
//! "…performance and parallel scalability is challenging, especially for
//! applications requiring repeated partitioning, such as Adaptive Mesh
//! Refinement (AMR). In many such cases, SFC are used as a scalable and
//! effective partitioning technique." (§1, Related Work)
//!
//! Each step moves a spherical refinement front through the unit cube,
//! rebuilds the adaptive mesh around it, redistributes the elements starting
//! from where their ancestors lived (so migration volume is what a real AMR
//! code would pay), repartitions with a chosen strategy, and runs a few
//! matvecs. The report aggregates partition time, migration volume, solve
//! time and energy over the whole run — the end-to-end quantity OptiPart is
//! supposed to minimise.

use crate::mesh::DistMesh;
use optipart_core::optipart::{
    optipart, optipart_with_state, OptiPartOptions, PartitionState, WarmStats,
};
use optipart_core::partition::{owner_of, treesort_partition, PartitionOptions, PartitionOutcome};
use optipart_mpisim::{DistVec, Engine};
use optipart_octree::{balance::balance21, LinearTree};
use optipart_sfc::{Cell, Curve, KeyedCell, SfcKey, MAX_DEPTH};

/// Repartitioning strategy per step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Strategy {
    /// Conventional equal-work SFC partitioning (tolerance 0).
    EqualWork,
    /// Fixed user tolerance.
    Tolerance(f64),
    /// OptiPart: the machine/application model picks the tolerance.
    OptiPart,
    /// OptiPart with the latency-extended model (`ts·Mmax` term).
    OptiPartLatencyAware,
}

impl Strategy {
    /// Short name for table output.
    pub fn name(&self) -> String {
        match self {
            Strategy::EqualWork => "equal-work".into(),
            Strategy::Tolerance(t) => format!("tol={t}"),
            Strategy::OptiPart => "optipart".into(),
            Strategy::OptiPartLatencyAware => "optipart+lat".into(),
        }
    }
}

/// Configuration of an AMR run.
#[derive(Clone, Copy, Debug)]
pub struct AmrConfig {
    /// Time steps (front positions).
    pub steps: usize,
    /// Refinement depth at the front.
    pub max_level: u8,
    /// Matvecs per step (solver work between remeshings).
    pub matvecs_per_step: usize,
    /// Partitioning strategy.
    pub strategy: Strategy,
    /// Curve.
    pub curve: Curve,
    /// Carry a [`PartitionState`] across steps so the OptiPart strategies
    /// warm-start each repartition (bit-identical to cold; see
    /// [`optipart_with_state`]). Ignored by the TreeSort strategies.
    pub warm_start: bool,
    /// LRU bound of the carried [`PartitionState`] (entries, not bytes);
    /// a loop cycling through `k` distinct meshes wants `state_cap ≥ k` to
    /// stay on the exact-hit path. Ignored with `warm_start` off.
    pub state_cap: usize,
}

impl Default for AmrConfig {
    fn default() -> Self {
        AmrConfig {
            steps: 6,
            max_level: 5,
            matvecs_per_step: 10,
            strategy: Strategy::OptiPart,
            curve: Curve::Hilbert,
            warm_start: true,
            state_cap: optipart_core::optipart::DEFAULT_STATE_CAP,
        }
    }
}

/// Per-step measurements.
#[derive(Clone, Debug)]
pub struct AmrStep {
    /// Step index.
    pub step: usize,
    /// Elements in this step's mesh.
    pub elements: usize,
    /// Elements that changed owner during redistribution.
    pub migrated: u64,
    /// Load imbalance after partitioning.
    pub lambda: f64,
    /// Seconds of simulated time the step took (partition + mesh + solve).
    pub seconds: f64,
}

/// Whole-run report.
#[derive(Clone, Debug)]
pub struct AmrReport {
    /// Per-step data.
    pub steps: Vec<AmrStep>,
    /// Total simulated seconds.
    pub total_seconds: f64,
    /// Total energy, Joules.
    pub total_energy_j: f64,
    /// Total ghost elements moved by matvecs.
    pub total_ghosts: u64,
    /// Warm-start decisions taken by the partitioner over the run (all
    /// zeros when `warm_start` is off or the strategy is not OptiPart).
    pub warm: WarmStats,
}

/// The refinement front at step `t`: a sphere orbiting the cube centre.
fn front_center(t: usize, steps: usize) -> [f64; 3] {
    let phase = t as f64 / steps.max(1) as f64 * std::f64::consts::TAU;
    [0.5 + 0.22 * phase.cos(), 0.5 + 0.22 * phase.sin(), 0.5]
}

/// Builds the step-`t` mesh: refined in a shell around the moving front,
/// then 2:1 face-balanced — the invariant Dendro meshes carry, and what
/// makes the FEM stencil independent of the partition (ghost discovery
/// finds every face neighbour of a balanced mesh, so faulted runs that
/// repartition over survivors reproduce the fault-free solution).
pub fn step_mesh(t: usize, cfg: &AmrConfig) -> LinearTree<3> {
    let c = front_center(t, cfg.steps);
    let radius = 0.18;
    balance21(&LinearTree::root(cfg.curve).refine_where(
        |cell: &Cell<3>| {
            let ctr = cell.center_unit();
            let d = (0..3).map(|k| (ctr[k] - c[k]).powi(2)).sum::<f64>().sqrt();
            let half_diag = 3f64.sqrt() * 0.5 * cell.side() as f64 / (1u64 << MAX_DEPTH) as f64;
            (d - radius).abs() <= half_diag * 1.5
        },
        cfg.max_level,
    ))
}

/// Runs the AMR loop on the engine and reports aggregate cost.
pub fn amr_simulation(engine: &mut Engine, cfg: &AmrConfig) -> AmrReport {
    let p = engine.p();
    engine.reset();
    let mut steps = Vec::with_capacity(cfg.steps);
    let mut prev_splitters: Option<Vec<SfcKey>> = None;
    let mut warm = cfg
        .warm_start
        .then(|| PartitionState::with_cap(cfg.state_cap));
    let mut total_ghosts = 0u64;
    let mut energy_j = 0.0;

    for t in 0..cfg.steps {
        let t_start = engine.makespan();
        let tree = step_mesh(t, cfg);
        let n = tree.len();

        // New elements start where their region lived last step: distribute
        // by the previous splitters (first step: block distribution).
        let input: DistVec<KeyedCell<3>> = match &prev_splitters {
            None => DistVec::from_global(tree.leaves(), p),
            Some(sp) => {
                let mut parts: Vec<Vec<KeyedCell<3>>> = (0..p).map(|_| Vec::new()).collect();
                for kc in tree.leaves() {
                    parts[owner_of(sp, &kc.key)].push(*kc);
                }
                DistVec::from_parts(parts)
            }
        };

        // Repartition; migration = elements that change rank.
        let out: PartitionOutcome<3> = engine.phase("amr.partition", |e| {
            partition_step(e, input, cfg, warm.as_mut())
        });
        // Count migrations: compare each element's final owner with where
        // the block/previous distribution had put it. (Sequential check over
        // the global view — measurement, not simulation.)
        let mut migrated = 0u64;
        {
            let mut idx = 0usize;
            for (r, buf) in out.dist.parts().iter().enumerate() {
                for kc in buf {
                    let was = match &prev_splitters {
                        None => (idx * p / n.max(1)).min(p - 1),
                        Some(sp) => owner_of(sp, &kc.key),
                    };
                    if was != r {
                        migrated += 1;
                    }
                    idx += 1;
                }
            }
        }

        // Solve on the new partition.
        let mesh = engine.phase("amr.mesh", |e| DistMesh::build(e, out.dist, cfg.curve));
        let rep = engine.phase("amr.solve", |e| {
            run_matvec_experiment_nonreset(e, &mesh, cfg.matvecs_per_step)
        });
        total_ghosts += rep.0;
        energy_j = engine.energy_report().total_j;

        engine.trace_decision(
            "amr.step",
            &[
                ("step", t as f64),
                ("elements", n as f64),
                ("migrated", migrated as f64),
                ("lambda", out.report.lambda),
            ],
        );

        steps.push(AmrStep {
            step: t,
            elements: n,
            migrated,
            lambda: out.report.lambda,
            seconds: engine.makespan() - t_start,
        });
        prev_splitters = Some(out.splitters);
    }

    AmrReport {
        steps,
        total_seconds: engine.makespan(),
        total_energy_j: energy_j,
        total_ghosts,
        warm: warm.map(|s| s.stats).unwrap_or_default(),
    }
}

/// One step's repartition under `cfg.strategy` — shared between
/// [`amr_simulation`] and the fail-stop recovery driver
/// ([`crate::recovery::amr_simulation_ft`]). With `state`, the OptiPart
/// strategies resume from the previous step's ladder (the TreeSort
/// strategies have no ladder and ignore it).
pub(crate) fn partition_step(
    e: &mut Engine,
    input: DistVec<KeyedCell<3>>,
    cfg: &AmrConfig,
    state: Option<&mut PartitionState>,
) -> PartitionOutcome<3> {
    let opti = |latency_aware| OptiPartOptions {
        latency_aware,
        ..OptiPartOptions::for_curve(cfg.curve)
    };
    match cfg.strategy {
        Strategy::EqualWork => treesort_partition(e, input, PartitionOptions::exact()),
        Strategy::Tolerance(tol) => {
            treesort_partition(e, input, PartitionOptions::with_tolerance(tol))
        }
        Strategy::OptiPart => match state {
            Some(st) => optipart_with_state(e, input, opti(false), st),
            None => optipart(e, input, opti(false)),
        },
        Strategy::OptiPartLatencyAware => match state {
            Some(st) => optipart_with_state(e, input, opti(true), st),
            None => optipart(e, input, opti(true)),
        },
    }
}

/// Like [`crate::driver::run_matvec_experiment`] but without resetting the
/// engine, so the whole AMR run accumulates on one clock. Returns the ghost
/// element count.
fn run_matvec_experiment_nonreset<const D: usize>(
    engine: &mut Engine,
    mesh: &DistMesh<D>,
    iters: usize,
) -> (u64,) {
    use crate::matvec::laplacian_matvec;
    let mut x = DistVec::from_parts(
        mesh.cells
            .counts()
            .iter()
            .map(|&c| vec![1.0f64; c])
            .collect(),
    );
    let mut ghosts = 0u64;
    for _ in 0..iters {
        let (y, stats) = laplacian_matvec(engine, mesh, &mut x);
        ghosts += stats.ghost_elements;
        x = y;
    }
    (ghosts,)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optipart_machine::{AppModel, MachineModel, PerfModel};

    fn engine(p: usize) -> Engine {
        Engine::new(
            p,
            PerfModel::new(
                MachineModel::cloudlab_wisconsin(),
                AppModel::laplacian_matvec(),
            ),
        )
    }

    #[test]
    fn amr_loop_runs_and_tracks_migration() {
        let cfg = AmrConfig {
            steps: 4,
            max_level: 4,
            matvecs_per_step: 3,
            ..Default::default()
        };
        let mut e = engine(8);
        let rep = amr_simulation(&mut e, &cfg);
        assert_eq!(rep.steps.len(), 4);
        assert!(rep.total_seconds > 0.0);
        assert!(rep.total_energy_j > 0.0);
        assert!(rep.total_ghosts > 0);
        // The front moves, so later steps must migrate something.
        assert!(
            rep.steps[1..].iter().any(|s| s.migrated > 0),
            "front movement should cause migration: {:?}",
            rep.steps
        );
        // Meshes stay modest but non-trivial.
        assert!(rep.steps.iter().all(|s| s.elements > 100));
    }

    #[test]
    fn warm_amr_run_matches_cold_bit_for_bit() {
        let cold_cfg = AmrConfig {
            steps: 4,
            max_level: 4,
            matvecs_per_step: 2,
            warm_start: false,
            ..Default::default()
        };
        let warm_cfg = AmrConfig {
            warm_start: true,
            ..cold_cfg
        };
        let mut ec = engine(8);
        let cold = amr_simulation(&mut ec, &cold_cfg);
        let mut ew = engine(8);
        let warm = amr_simulation(&mut ew, &warm_cfg);

        assert_eq!(cold.warm, WarmStats::default());
        // Step 0 seeds the state cold; every later step replays it on the
        // moved front's mesh.
        assert_eq!(warm.warm.colds, 1);
        assert_eq!(warm.warm.replays as usize, warm_cfg.steps - 1);
        assert_eq!(warm.warm.rejected, 0);
        // Identical partitions ⇒ identical migration counts and imbalance.
        for (c, w) in cold.steps.iter().zip(&warm.steps) {
            assert_eq!(c.elements, w.elements);
            assert_eq!(c.migrated, w.migrated, "step {}", c.step);
            assert_eq!(c.lambda.to_bits(), w.lambda.to_bits(), "step {}", c.step);
        }
        assert_eq!(cold.total_ghosts, warm.total_ghosts);
    }

    #[test]
    fn step_meshes_are_complete_and_move() {
        let cfg = AmrConfig::default();
        let a = step_mesh(0, &cfg);
        let b = step_mesh(cfg.steps / 2, &cfg);
        assert!(a.is_complete());
        assert!(b.is_complete());
        let cells_a: std::collections::HashSet<_> = a.leaves().iter().map(|kc| kc.cell).collect();
        let cells_b: std::collections::HashSet<_> = b.leaves().iter().map(|kc| kc.cell).collect();
        assert_ne!(cells_a, cells_b, "the refinement front must move");
    }

    #[test]
    fn strategies_produce_same_meshes_different_partitions() {
        let mut cfgs = vec![];
        for strategy in [
            Strategy::EqualWork,
            Strategy::Tolerance(0.3),
            Strategy::OptiPart,
        ] {
            cfgs.push(AmrConfig {
                steps: 3,
                max_level: 4,
                matvecs_per_step: 2,
                strategy,
                ..Default::default()
            });
        }
        let reports: Vec<AmrReport> = cfgs
            .iter()
            .map(|cfg| {
                let mut e = engine(8);
                amr_simulation(&mut e, cfg)
            })
            .collect();
        // Same element counts per step across strategies.
        for step in 0..3 {
            let n0 = reports[0].steps[step].elements;
            assert!(reports.iter().all(|r| r.steps[step].elements == n0));
        }
        // Tolerance strategy tolerates more imbalance than equal-work.
        let max_lambda = |r: &AmrReport| r.steps.iter().map(|s| s.lambda).fold(1.0f64, f64::max);
        assert!(max_lambda(&reports[1]) >= max_lambda(&reports[0]) - 1e-9);
    }
}
