//! Property-based tests for the FEM substrate, including the 2D (quadtree)
//! instantiation.
//!
//! Strategies, engines and meshes come from `optipart-testkit`; all types
//! are the testkit re-exports (`optipart_testkit::fem::…`), never
//! `crate::…` paths — the unit-test target is a separate compilation of
//! this crate, so mixing the two would break type identity.

use optipart_testkit::core::partition::{
    distribute_shuffled, treesort_partition, PartitionOptions,
};
use optipart_testkit::fem::matvec::laplacian_matvec;
use optipart_testkit::fem::mesh::DistMesh;
use optipart_testkit::gen::{balanced_tree, engine_wisconsin as engine};
use optipart_testkit::mpisim::DistVec;
use optipart_testkit::octree::LinearTree;
use optipart_testkit::sfc::{Curve, SfcKey};
use proptest::prelude::*;

/// Runs one matvec and returns `(key, value)` pairs in global order.
fn matvec_fingerprint<const D: usize>(
    tree: &LinearTree<D>,
    p: usize,
    tol: f64,
    seed: u64,
) -> Vec<(SfcKey, f64)> {
    let mut e = engine(p);
    let out = treesort_partition(
        &mut e,
        distribute_shuffled(tree, p, seed),
        PartitionOptions::with_tolerance(tol),
    );
    let mesh = DistMesh::build(&mut e, out.dist, tree.curve());
    let mut x = DistVec::from_parts(
        (0..p)
            .map(|r| {
                mesh.cells
                    .rank(r)
                    .iter()
                    .map(|kc| {
                        let c = kc.cell.center_unit();
                        (c[0] * 5.0).sin() + c[D - 1]
                    })
                    .collect()
            })
            .collect(),
    );
    let (y, _) = laplacian_matvec(&mut e, &mesh, &mut x);
    let mut pairs = Vec::new();
    for r in 0..p {
        for (kc, v) in mesh.cells.rank(r).iter().zip(y.rank(r)) {
            pairs.push((kc.key, *v));
        }
    }
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The operator's action is independent of the partition (p and
    /// tolerance are implementation details), in 3D.
    #[test]
    fn matvec_partition_independent_3d(
        seed in 0u64..200,
        p in 2usize..10,
        tol in 0.0f64..0.5,
    ) {
        let tree = balanced_tree::<3>(seed, 120, Curve::Hilbert);
        let reference = matvec_fingerprint(&tree, 1, 0.0, seed);
        let parallel = matvec_fingerprint(&tree, p, tol, seed);
        prop_assert_eq!(reference.len(), parallel.len());
        for ((k1, v1), (k2, v2)) in reference.iter().zip(&parallel) {
            prop_assert_eq!(k1, k2);
            prop_assert!(
                (v1 - v2).abs() <= 1e-9 * (1.0 + v1.abs()),
                "{:?}: {} vs {}", k1, v1, v2
            );
        }
    }

    /// Same property for the 2D (quadtree) instantiation.
    #[test]
    fn matvec_partition_independent_2d(
        seed in 0u64..200,
        p in 2usize..8,
    ) {
        let tree = balanced_tree::<2>(seed, 100, Curve::Hilbert);
        let reference = matvec_fingerprint(&tree, 1, 0.0, seed);
        let parallel = matvec_fingerprint(&tree, p, 0.2, seed);
        prop_assert_eq!(reference.len(), parallel.len());
        for ((k1, v1), (k2, v2)) in reference.iter().zip(&parallel) {
            prop_assert_eq!(k1, k2);
            prop_assert!((v1 - v2).abs() <= 1e-9 * (1.0 + v1.abs()));
        }
    }

    /// Constant null-space behaviour: for x ≡ c, interior entries vanish
    /// (fluxes cancel), regardless of mesh, curve or partition.
    #[test]
    fn constant_vector_interior_zero(seed in 0u64..200, p in 1usize..8, c in -3.0f64..3.0) {
        let tree = balanced_tree::<3>(seed, 80, Curve::Morton);
        let mut e = engine(p);
        let out = treesort_partition(
            &mut e,
            distribute_shuffled(&tree, p, seed),
            PartitionOptions::exact(),
        );
        let mesh = DistMesh::build(&mut e, out.dist, Curve::Morton);
        let mut x = DistVec::from_parts(
            mesh.cells.counts().iter().map(|&n| vec![c; n]).collect(),
        );
        let (y, _) = laplacian_matvec(&mut e, &mesh, &mut x);
        for r in 0..p {
            for (kc, &v) in mesh.cells.rank(r).iter().zip(y.rank(r)) {
                let interior = (0..3).all(|ax| {
                    kc.cell.face_neighbor(ax, -1).is_some()
                        && kc.cell.face_neighbor(ax, 1).is_some()
                });
                if interior {
                    prop_assert!(
                        v.abs() <= 1e-9 * (1.0 + c.abs()),
                        "interior residual {} at {:?}", v, kc.cell
                    );
                }
            }
        }
    }

    /// Ghost lists are symmetric: bytes sent by r to s equal bytes s expects
    /// from r.
    #[test]
    fn ghost_lists_symmetric(seed in 0u64..200, p in 2usize..10) {
        let tree = balanced_tree::<3>(seed, 120, Curve::Hilbert);
        let mut e = engine(p);
        let out = treesort_partition(
            &mut e,
            distribute_shuffled(&tree, p, seed),
            PartitionOptions::exact(),
        );
        let mesh = DistMesh::build(&mut e, out.dist, Curve::Hilbert);
        for (r, lm) in mesh.locals.iter().enumerate() {
            for (owner, list) in &lm.recv_from {
                let peer = &mesh.locals[*owner];
                let back = peer
                    .send_to
                    .iter()
                    .find(|(req, _)| *req == r)
                    .map(|(_, l)| l.len())
                    .unwrap_or(0);
                prop_assert_eq!(list.len(), back, "rank {} vs owner {}", r, owner);
            }
        }
    }
}
