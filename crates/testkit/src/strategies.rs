//! `proptest` `Strategy` wrappers over the shared generators — the single
//! home of the strategies the per-crate property suites used to duplicate.
//!
//! Only compiled with the `proptest` feature, which (like the per-crate
//! `proptest` features that forward to it) requires a vendored `proptest`
//! crate the offline tier-1 build cannot fetch.

use optipart_machine::NodePower;
use optipart_mpisim::AllToAllAlgo;
use optipart_octree::Distribution;
use optipart_sfc::cell::Coord;
use optipart_sfc::{Cell2, Cell3, Curve, MAX_DEPTH};
use proptest::prelude::*;

/// Either space-filling curve.
pub fn curve() -> impl Strategy<Value = Curve> {
    prop_oneof![Just(Curve::Morton), Just(Curve::Hilbert)]
}

/// Any of the §4.2 point distributions.
pub fn distribution() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        Just(Distribution::Uniform),
        Just(Distribution::Normal),
        Just(Distribution::LogNormal)
    ]
}

/// Any all-to-all schedule.
pub fn alltoall() -> impl Strategy<Value = AllToAllAlgo> {
    prop_oneof![
        Just(AllToAllAlgo::Direct),
        Just(AllToAllAlgo::Staged),
        Just(AllToAllAlgo::Hypercube)
    ]
}

/// A lattice coordinate in the domain.
pub fn coord() -> impl Strategy<Value = Coord> {
    0u32..(1 << MAX_DEPTH)
}

/// An arbitrary octree cell (any anchor, any level).
pub fn cell3() -> impl Strategy<Value = Cell3> {
    (coord(), coord(), coord(), 0u8..=MAX_DEPTH).prop_map(|(x, y, z, l)| Cell3::new([x, y, z], l))
}

/// An arbitrary quadtree cell.
pub fn cell2() -> impl Strategy<Value = Cell2> {
    (coord(), coord(), 0u8..=MAX_DEPTH).prop_map(|(x, y, l)| Cell2::new([x, y], l))
}

/// A physically plausible node power envelope.
pub fn node_power() -> impl Strategy<Value = NodePower> {
    (50.0f64..200.0, 1.0f64..400.0, 0.0f64..1e-8).prop_map(|(idle, dynr, nic)| NodePower {
        idle_w: idle,
        peak_w: idle + dynr,
        nic_j_per_byte: nic,
    })
}
