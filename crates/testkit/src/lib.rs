//! # optipart-testkit — the workspace's single correctness layer
//!
//! The paper's claims (exact-splitter TreeSort §3.1, Eq. (3) optimality of
//! OptiPart's stopping point, monotone surface reduction under tolerance)
//! are invariants that silently rot as the engine grows faults,
//! checkpointing and tracing. This crate pins them with machinery instead
//! of ad-hoc per-crate tests:
//!
//! * [`scenario`] — a seeded, SplitMix64-driven **scenario generator**: one
//!   `u64` deterministically expands into an octree workload (uniform,
//!   Gaussian, log-normal, surface-concentrated or adversarially skewed),
//!   a machine/application model, a tolerance, a split budget and a fault
//!   plan. Every failure message carries the scenario and a copy-pastable
//!   `testkit replay --seed …` command.
//! * [`oracles`] — **differential oracles**: distributed TreeSort vs the
//!   sequential [`treesort`](optipart_core::treesort::treesort) vs the
//!   real-threads rank view (bit-identical partitions); OptiPart vs a
//!   brute-force tolerance sweep minimising Eq. (3); SampleSort vs TreeSort
//!   multiset equality; faulted/recovered runs vs fault-free solutions.
//! * [`metamorphic`] — **metamorphic properties**: permutation and
//!   duplication robustness of partitions, tolerance-monotonicity of
//!   `Cmax` and comm-matrix NNZ, bit-exact scale invariance of Eq. (3)
//!   under power-of-two `tc`/`tw` rescaling.
//! * [`mod@soak`] — a bounded **fuzz driver** (`testkit soak --budget N
//!   --seed S`) running scenarios through the full
//!   engine+faults+checkpoint+trace stack, shrinking any failure and
//!   printing its one-line replay.
//! * [`gen`] / `strategies` — the shared seeded generators (and, behind
//!   the `proptest` feature, `Strategy` wrappers) that the per-crate
//!   property suites import instead of carrying private copies.
//!
//! The dependency crates are re-exported below so downstream test code —
//! in particular the per-crate `proptests.rs` modules, whose unit-test
//! targets are *separate compilations* of their own crate — can name the
//! exact type instances this crate's generators produce.

pub use optipart_core as core;
pub use optipart_fem as fem;
pub use optipart_machine as machine;
pub use optipart_mpisim as mpisim;
pub use optipart_octree as octree;
pub use optipart_sfc as sfc;
pub use optipart_trace as trace;

/// Re-export of [`optipart_scenario`]: the seeded scenario generator lives
/// in its own crate so `optipart-serve` can share the one-seed request
/// encoding without a dependency cycle (scenario ← serve ← testkit). All
/// historical `optipart_testkit::scenario::…` paths keep working.
pub use optipart_scenario as scenario;

pub mod corpus;
pub mod gen;
pub mod metamorphic;
pub mod oracles;
pub mod soak;

#[cfg(feature = "proptest")]
pub mod strategies;

pub use scenario::{MeshShape, Scenario};
pub use soak::{run_scenario, soak, SoakFailure, SoakReport, CHECKS};

/// Asserts a named condition about a scenario; on failure panics with the
/// scenario description **and a copy-pastable single-seed replay command**
/// — the acceptance contract for every testkit failure message.
#[macro_export]
macro_rules! tk_assert {
    ($scn:expr, $cond:expr, $($arg:tt)+) => {{
        let holds: bool = $cond;
        if !holds {
            panic!(
                "testkit failure: {}\n  scenario: {}\n  replay:   {}",
                format_args!($($arg)+),
                $scn,
                $scn.replay_cmd()
            );
        }
    }};
}

/// [`tk_assert`] for equality, printing both sides on failure.
#[macro_export]
macro_rules! tk_assert_eq {
    ($scn:expr, $a:expr, $b:expr, $($arg:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            panic!(
                "testkit failure: {} (left != right)\n  left:  {:?}\n  right: {:?}\n  scenario: {}\n  replay:   {}",
                format_args!($($arg)+),
                lhs,
                rhs,
                $scn,
                $scn.replay_cmd()
            );
        }
    }};
}
