//! Differential oracles: every generated scenario is checked against an
//! *independent* computation of the same answer.
//!
//! | oracle | claim under test | independent reference |
//! |---|---|---|
//! | [`treesort_differential`] | distributed TreeSort partitions correctly (§3.1–3.2) | sequential comparison sort + real-threads rank view |
//! | [`optipart_bruteforce`] | OptiPart's stopping point minimises Eq. (3) (Alg. 3) | brute-force sweep over the induced tolerance grid |
//! | [`samplesort_equivalence`] | SampleSort ≡ TreeSort as a sorting network (§5.2) | multiset/order equality of outputs |
//! | [`fault_recovery`] | faults never corrupt data; fail-stop recovery is exact | fault-free runs of the same scenario |
//! | [`treesort_optimized`] | the ping-pong/parallel TreeSort is a pure optimisation | bit-identity vs the retained `treesort_reference` |
//! | [`warm_vs_cold`] | the warm-started tolerance ladder is a pure optimisation | a cold ladder run on every step of the same AMR loop |
//! | [`serve_vs_library`] | optipart-serve responses are bit-identical to direct calls | [`optipart_serve::direct`] on a fresh engine and state |
//! | [`sparse_vs_dense_collectives`] | the sparse/flat-arena all-to-alls are pure optimisations | the dense p×p `Engine::alltoallv` (the `reference` feature) |
//! | [`hierarchy_flattening`] | a degenerate two-level machine is the flat model | the same scenario with no hierarchy, bit for bit |
//!
//! All failures panic through [`tk_assert!`], so the message always carries
//! the scenario and its one-line replay command.

use crate::scenario::{HierKind, NamedCheck, Scenario, Workload};
use crate::{tk_assert, tk_assert_eq};
use optipart_core::optipart::{optipart_with_state, PartitionState};
use optipart_core::partition::{
    audit_splitters, distribute_shuffled, distribute_tree, owner_of, treesort_partition,
};
use optipart_core::quality::partition_quality;
use optipart_core::samplesort::{samplesort_partition, SampleSortOptions};
use optipart_core::threaded::threaded_treesort_partition;
use optipart_core::treesort::{
    treesort, treesort_levels, treesort_levels_reference, treesort_reference, treesort_threaded,
    treesort_with_scratch, PAR_CUTOFF,
};
use optipart_core::{optipart, OptiPartOptions};
use optipart_fem::amr::{step_mesh, AmrConfig};
use optipart_fem::{run_matvec_ft, DistMesh};
use optipart_mpisim::rng::SplitMix64;
use optipart_mpisim::{
    threaded, AllToAllAlgo, AlltoallvArena, CheckpointPolicy, DistVec, Engine, FaultPlan,
};
use optipart_octree::LinearTree;
use optipart_sfc::{KeyedCell, SfcKey};

/// The registry the soak driver and the tier-1 harness iterate over.
pub const ORACLES: &[NamedCheck] = &[
    ("treesort-differential", treesort_differential),
    ("optipart-bruteforce", optipart_bruteforce),
    ("samplesort-equivalence", samplesort_equivalence),
    ("fault-recovery", fault_recovery),
    ("treesort-optimized", treesort_optimized),
    ("warm-vs-cold", warm_vs_cold),
    ("serve-vs-library", serve_vs_library),
    ("sparse-vs-dense-collectives", sparse_vs_dense_collectives),
    ("hierarchy-flattening", hierarchy_flattening),
];

/// **Oracle 9 — hierarchy flattening.** A two-level machine whose
/// intra-node figures *equal* the inter-node ones ([`HierKind::Flat`],
/// i.e. `MachineModel::hierarchical_flat`) must be indistinguishable from
/// the flat model down to the last bit: every hierarchical term in the
/// codebase is written in the additive-discount form
/// `flat + (intra − inter) · intra_quantity`, so the degenerate hierarchy
/// contributes exactly `+0.0` everywhere. The oracle runs the full
/// OptiPart ladder plus an Algorithm 2 quality evaluation under both
/// machines and asserts identical splitters, per-rank slices, report
/// fields, quality fields (including `Tp` bits), per-rank clocks, makespan
/// bits and the complete energy report.
pub fn hierarchy_flattening(scn: &Scenario) {
    let tree = scn.build_tree();
    let p = scn.p;
    let opts = OptiPartOptions {
        curve: scn.curve,
        max_split_per_round: scn.split_budget,
        ..Default::default()
    };
    let run = |hier: HierKind| {
        let mut s = scn.clone();
        s.hier = hier;
        let mut e = Engine::new(p, s.perf());
        let out = optipart(
            &mut e,
            distribute_shuffled(&tree, p, scn.shuffle_seed(40)),
            opts,
        );
        let mut eq = Engine::new(p, s.perf());
        let mut block = distribute_tree(&tree, p);
        let q = partition_quality(&mut eq, &mut block, &out.splitters, scn.curve);
        let energy = e.energy_report();
        (out, e.makespan(), e.clocks().to_vec(), q, energy)
    };
    let (a, mk_a, clk_a, qa, en_a) = run(HierKind::None);
    let (b, mk_b, clk_b, qb, en_b) = run(HierKind::Flat);

    tk_assert!(
        scn,
        a.splitters == b.splitters,
        "degenerate hierarchy changed the splitters"
    );
    for r in 0..p {
        tk_assert!(
            scn,
            a.dist.rank(r) == b.dist.rank(r),
            "degenerate hierarchy changed rank {r}'s partition slice"
        );
    }
    let (ra, rb) = (&a.report, &b.report);
    tk_assert!(
        scn,
        ra.counts == rb.counts
            && ra.rounds == rb.rounds
            && ra.splitter_level == rb.splitter_level
            && ra.wmax == rb.wmax
            && ra.cmax == rb.cmax
            && ra.achieved_tolerance.to_bits() == rb.achieved_tolerance.to_bits()
            && ra.lambda.to_bits() == rb.lambda.to_bits()
            && ra.predicted_tp.to_bits() == rb.predicted_tp.to_bits(),
        "degenerate hierarchy changed the partition report ({ra:?} vs {rb:?})"
    );
    tk_assert!(
        scn,
        qa.wmax == qb.wmax
            && qa.cmax == qb.cmax
            && qa.cmax_intra == qb.cmax_intra
            && qa.c_total == qb.c_total
            && qa.c_intra_total == qb.c_intra_total
            && qa.mmax == qb.mmax
            && qa.tp.to_bits() == qb.tp.to_bits(),
        "degenerate hierarchy changed the quality metrics ({qa:?} vs {qb:?})"
    );
    tk_assert!(
        scn,
        mk_a.to_bits() == mk_b.to_bits(),
        "degenerate hierarchy changed the makespan ({mk_a} vs {mk_b})"
    );
    tk_assert!(
        scn,
        clk_a == clk_b,
        "degenerate hierarchy changed the per-rank clocks"
    );
    let same_vec = |x: &[f64], y: &[f64]| {
        x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
    };
    tk_assert!(
        scn,
        same_vec(&en_a.per_node_j, &en_b.per_node_j)
            && en_a.total_j.to_bits() == en_b.total_j.to_bits()
            && en_a.comm_j.to_bits() == en_b.comm_j.to_bits()
            && en_a.makespan_s.to_bits() == en_b.makespan_s.to_bits(),
        "degenerate hierarchy changed the energy report ({en_a:?} vs {en_b:?})"
    );
}

/// The scenario's sparse traffic pattern for the collectives oracle: ring
/// neighbours, a seeded long-range route, a self-message and ragged
/// payload lengths including empty buffers — at most one buffer per
/// `(src, dst)` link, so the dense, sparse and flat-arena views of the
/// same exchange stay directly comparable.
pub(crate) fn collective_traffic(scn: &Scenario) -> Vec<Vec<(usize, Vec<u64>)>> {
    let p = scn.p;
    let mut rng = SplitMix64::new(scn.shuffle_seed(30));
    let mut rows: Vec<Vec<(usize, Vec<u64>)>> = (0..p).map(|_| Vec::new()).collect();
    for (src, row) in rows.iter_mut().enumerate() {
        let mut dsts = vec![
            (src + 1) % p,
            (src + p - 1) % p,
            src,
            rng.next_below(p as u64) as usize,
        ];
        dsts.sort_unstable();
        dsts.dedup();
        for dst in dsts {
            let len = rng.next_below(5) as usize;
            let buf: Vec<u64> = (0..len as u64)
                .map(|i| ((src as u64) << 32) | ((dst as u64) << 16) | i)
                .collect();
            row.push((dst, buf));
        }
    }
    rows
}

/// **Oracle 8 — sparse vs dense collectives.** The production all-to-all
/// entry points ([`Engine::alltoallv_sparse`] and the flat-arena
/// [`Engine::alltoallv_flat`]) must be *pure* optimisations of the dense
/// `p × p` reference [`Engine::alltoallv`] retained behind the
/// `reference` feature: on the same scenario-derived neighbourhood
/// traffic, all three must deliver bit-identical payloads, record equal
/// communication matrices and run statistics, and charge bit-identical
/// per-rank virtual clocks — for every staging algorithm (Direct, Staged,
/// Hypercube) and both on a clean machine and under the scenario's benign
/// fault plan (stragglers, `tw` jitter, transient retries).
pub fn sparse_vs_dense_collectives(scn: &Scenario) {
    let p = scn.p;
    let traffic = collective_traffic(scn);
    // Expected delivery, straight from the pattern: per destination, the
    // non-empty (src, buf) pairs in ascending source order.
    let mut expected: Vec<Vec<(usize, Vec<u64>)>> = (0..p).map(|_| Vec::new()).collect();
    for (src, row) in traffic.iter().enumerate() {
        for (dst, buf) in row {
            if !buf.is_empty() {
                expected[*dst].push((src, buf.clone()));
            }
        }
    }

    for faulted in [false, true] {
        let engine = || {
            let e = if faulted {
                scn.engine_faulted()
            } else {
                scn.engine()
            };
            e.record_comm_matrix()
        };
        for algo in [
            AllToAllAlgo::Direct,
            AllToAllAlgo::Staged,
            AllToAllAlgo::Hypercube,
        ] {
            let what = format!("algo {algo:?}, faulted {faulted}");

            // Dense reference: one p × p buffer grid.
            let mut ed = engine();
            let mut dense: Vec<Vec<Vec<u64>>> = (0..p).map(|_| vec![Vec::new(); p]).collect();
            for (src, row) in traffic.iter().enumerate() {
                for (dst, buf) in row {
                    dense[src][*dst] = buf.clone();
                }
            }
            let got_d = ed.alltoallv(dense, algo);

            // Sparse production path.
            let mut es = engine();
            let got_s = es.alltoallv_sparse(traffic.clone(), algo);

            // Flat-arena production path, staged in the same order.
            let mut ef = engine();
            let mut arena: AlltoallvArena<u64> = AlltoallvArena::new();
            for (src, row) in traffic.iter().enumerate() {
                for (dst, buf) in row {
                    arena.send(src, *dst, buf.iter().copied());
                }
            }
            ef.alltoallv_flat(&mut arena, algo);

            // Payload bit-identity against the independently built
            // expectation (empty buffers normalised away — the arena drops
            // them at staging time, the other two deliver them).
            for (dst, want) in expected.iter().enumerate() {
                let d: Vec<(usize, Vec<u64>)> = got_d[dst]
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| !b.is_empty())
                    .map(|(src, b)| (src, b.clone()))
                    .collect();
                tk_assert!(
                    scn,
                    &d == want,
                    "{what}: dense delivery to rank {dst} diverges"
                );
                let sp: Vec<(usize, Vec<u64>)> = got_s[dst]
                    .iter()
                    .filter(|(_, b)| !b.is_empty())
                    .cloned()
                    .collect();
                tk_assert!(
                    scn,
                    &sp == want,
                    "{what}: sparse delivery to rank {dst} diverges"
                );
            }
            let flat: Vec<(usize, usize, Vec<u64>)> = arena
                .recv()
                .map(|(src, dst, items)| (src, dst, items.to_vec()))
                .collect();
            let want_flat: Vec<(usize, usize, Vec<u64>)> = expected
                .iter()
                .enumerate()
                .flat_map(|(dst, row)| row.iter().map(move |(src, buf)| (*src, dst, buf.clone())))
                .collect();
            tk_assert!(
                scn,
                flat == want_flat,
                "{what}: flat-arena delivery diverges from the pattern"
            );

            // Identical virtual-time charges, down to float bits.
            for (label, e) in [("sparse", &es), ("flat", &ef)] {
                tk_assert!(
                    scn,
                    e.clocks() == ed.clocks(),
                    "{what}: {label} clocks diverge from the dense reference"
                );
                let (a, b) = (e.stats(), ed.stats());
                tk_assert!(
                    scn,
                    a.bytes_total == b.bytes_total
                        && a.msgs_total == b.msgs_total
                        && a.collectives == b.collectives
                        && a.retries_total == b.retries_total,
                    "{what}: {label} run stats diverge from the dense reference \
                     ({a:?} vs {b:?})"
                );
                // Entry iteration order is insertion order, which
                // legitimately differs between entry points — the *matrix*
                // must be equal, so compare the sorted entry sets.
                let sorted = |e: &Engine| {
                    let mut v: Vec<_> = e.comm_matrix().expect("recording on").entries().collect();
                    v.sort_unstable();
                    v
                };
                tk_assert_eq!(
                    scn,
                    sorted(e),
                    sorted(&ed),
                    "{what}: {label} comm matrix diverges from the dense reference"
                );
            }
        }
    }
}

/// **Oracle 5 — optimised TreeSort vs retained reference.** The hot-path
/// rework (single ping-pong scratch, parallel child-bucket recursion,
/// small-sort cutoffs) must be a *pure* optimisation: every public entry
/// point produces output bit-identical to the pre-optimisation
/// implementation retained as `treesort_reference`.
///
/// Fuzz-scale meshes sit below [`PAR_CUTOFF`], so the scenario's shuffled
/// leaves are additionally tiled just past the cutoff — the parallel
/// fan-out and its boundary both run on every scenario.
pub fn treesort_optimized(scn: &Scenario) {
    let tree = scn.build_tree();
    let mut base: Vec<KeyedCell<3>> = tree.leaves().to_vec();
    if base.is_empty() {
        return;
    }
    SplitMix64::new(scn.shuffle_seed(14)).shuffle(&mut base);
    let mut tiled = base.clone();
    while tiled.len() <= PAR_CUTOFF {
        tiled.extend_from_slice(&base);
    }
    for (what, input) in [("raw", &base), ("tiled", &tiled)] {
        let mut expected = input.clone();
        treesort_reference(&mut expected);
        for threads in [1usize, 4] {
            let mut a = input.clone();
            treesort_threaded(&mut a, threads);
            tk_assert!(
                scn,
                a == expected,
                "{what} input ({} cells): treesort_threaded({threads}) diverged from reference",
                input.len()
            );
        }
        let mut a = input.clone();
        let mut scratch = Vec::new();
        treesort_with_scratch(&mut a, &mut scratch);
        tk_assert!(
            scn,
            a == expected,
            "{what} input: treesort_with_scratch diverged from reference"
        );
        // Windowed partial sorts must match too (the distributed variant
        // sorts level ranges).
        for (l1, l2) in [(0u8, 3u8), (0, 6)] {
            let mut a = input.clone();
            treesort_levels(&mut a, l1, l2);
            let mut b = input.clone();
            treesort_levels_reference(&mut b, l1, l2);
            tk_assert!(
                scn,
                a == b,
                "{what} input: treesort_levels([{l1}, {l2})) diverged from reference"
            );
        }
    }
}

/// Steps of the moving-front loop the warm-vs-cold oracle replays. Each
/// step runs a full cold ladder *and* a warm one, so this is deliberately
/// shorter than the bench kernel's 10-step loop to keep 100 scenarios
/// inside the tier-1 budget — the decision paths (cold seed, table replay,
/// exact hit) are all exercised from step 2 onwards.
const WARM_STEPS: usize = 4;

/// **Oracle 6 — warm vs cold.** The warm-started tolerance ladder
/// ([`optipart_with_state`]) must be a *pure* optimisation: over an AMR
/// loop, every step's warm outcome — splitters, per-rank slices, counts
/// and all report fields down to float bits — must be identical to an
/// independent cold ladder on the same input, for both the
/// table-accelerated replay path (pass 1: the mesh changes every step) and
/// the exact fingerprint-hit path (pass 2: the same meshes resubmitted).
///
/// Static scenarios replay the canonical `fem::amr` moving-front loop;
/// time-varying scenarios ([`Workload::MovingFront`] /
/// [`Workload::BoundaryLayer`]) drive the scenario's own
/// [`Scenario::mesh_at`] sequence, whose expected cold/replay/hit split is
/// derived independently from the leaf multisets (a frozen boundary layer
/// legitimately produces exact hits mid-pass-1).
pub fn warm_vs_cold(scn: &Scenario) {
    let p = scn.p;
    let cfg = AmrConfig {
        steps: WARM_STEPS,
        max_level: 3 + (scn.seed & 1) as u8,
        curve: scn.curve,
        ..Default::default()
    };
    let opts = OptiPartOptions {
        curve: scn.curve,
        max_split_per_round: scn.split_budget,
        ..Default::default()
    };
    let trees: Vec<LinearTree<3>> = if matches!(scn.workload, Workload::Static) {
        (0..cfg.steps).map(|t| step_mesh(t, &cfg)).collect()
    } else {
        (0..WARM_STEPS).map(|t| scn.mesh_at(t)).collect()
    };
    // Expected warm-path split, derived straight from the meshes: the first
    // never-seen multiset is cold, later never-seen ones replay, repeats of
    // any cached multiset are exact fingerprint hits.
    let (mut want_colds, mut want_replays, mut want_hits) = (0u64, 0u64, 0u64);
    {
        let mut seen: Vec<&[KeyedCell<3>]> = Vec::new();
        for tree in &trees {
            if seen.iter().any(|s| *s == tree.leaves()) {
                want_hits += 1;
            } else {
                if seen.is_empty() {
                    want_colds += 1;
                } else {
                    want_replays += 1;
                }
                seen.push(tree.leaves());
            }
        }
    }

    // Elements start where the previous step's splitters put their region —
    // the same redistribution policy as `fem::amr_simulation`.
    let input_for = |prev: &Option<Vec<SfcKey>>, tree: &LinearTree<3>| -> DistVec<KeyedCell<3>> {
        match prev {
            None => DistVec::from_global(tree.leaves(), p),
            Some(sp) => {
                let mut parts: Vec<Vec<KeyedCell<3>>> = (0..p).map(|_| Vec::new()).collect();
                for kc in tree.leaves() {
                    parts[owner_of(sp, &kc.key)].push(*kc);
                }
                DistVec::from_parts(parts)
            }
        }
    };

    let assert_identical =
        |what: &str,
         warm: &optipart_core::partition::PartitionOutcome<3>,
         cold: &optipart_core::partition::PartitionOutcome<3>| {
            tk_assert!(
                scn,
                warm.splitters == cold.splitters,
                "{what}: warm splitters diverge from cold"
            );
            for r in 0..p {
                tk_assert!(
                    scn,
                    warm.dist.rank(r) == cold.dist.rank(r),
                    "{what}: warm rank {r} slice diverges from cold"
                );
            }
            let (w, c) = (&warm.report, &cold.report);
            tk_assert!(
                scn,
                w.counts == c.counts
                    && w.rounds == c.rounds
                    && w.splitter_level == c.splitter_level
                    && w.wmax == c.wmax
                    && w.cmax == c.cmax
                    && w.achieved_tolerance.to_bits() == c.achieved_tolerance.to_bits()
                    && w.lambda.to_bits() == c.lambda.to_bits()
                    && w.predicted_tp.to_bits() == c.predicted_tp.to_bits(),
                "{what}: warm report diverges from cold ({w:?} vs {c:?})"
            );
        };

    // Pass 1: step 1 seeds the cache cold; every later step takes the
    // table-accelerated replay path (or an exact hit, when the workload
    // resubmits a mesh it already froze on).
    let mut state = PartitionState::new();
    let mut prev: Option<Vec<SfcKey>> = None;
    let mut pass1 = Vec::with_capacity(trees.len());
    for (t, tree) in trees.iter().enumerate() {
        let input = input_for(&prev, tree);
        let mut ec = scn.engine();
        let cold = optipart(&mut ec, input.clone(), opts);
        let mut ew = scn.engine();
        let warm = optipart_with_state(&mut ew, input, opts, &mut state);
        assert_identical(&format!("step {t}"), &warm, &cold);
        prev = Some(cold.splitters);
        pass1.push(warm);
    }
    tk_assert_eq!(scn, state.stats.colds, want_colds, "cold-seed count");
    tk_assert_eq!(scn, state.stats.replays, want_replays, "replay-path count");
    tk_assert_eq!(scn, state.stats.hits, want_hits, "pass-1 exact-hit count");
    tk_assert_eq!(scn, state.stats.rejected, 0, "no self-check rejections");
    tk_assert_eq!(scn, state.stats.invalidated, 0, "no rank-count churn");

    // Pass 2: the same meshes resubmitted — every step must be an exact
    // fingerprint hit (the ladder skipped entirely) and still identical.
    let hits_after_pass1 = state.stats.hits;
    let mut prev: Option<Vec<SfcKey>> = None;
    for (t, (tree, first)) in trees.iter().zip(&pass1).enumerate() {
        let input = input_for(&prev, tree);
        let mut ew = scn.engine();
        let warm = optipart_with_state(&mut ew, input, opts, &mut state);
        assert_identical(&format!("pass 2 step {t}"), &warm, first);
        prev = Some(warm.splitters);
    }
    tk_assert_eq!(
        scn,
        state.stats.hits,
        hits_after_pass1 + trees.len() as u64,
        "pass 2 must be exact fingerprint hits throughout"
    );
}

/// The globally SFC-sorted leaf multiset — the ground-truth output of every
/// partitioner on `tree`.
pub fn sorted_leaves(tree: &LinearTree<3>) -> Vec<KeyedCell<3>> {
    let mut v = tree.leaves().to_vec();
    v.sort_unstable();
    v
}

/// `|a - b| ≤ tol` relative to the solution's ∞-norm, with identical key
/// multisets (per-element relative error is meaningless where the stencil
/// cancels to ~0 — same contract as `tests/recovery.rs`).
pub fn assert_solutions_match(
    scn: &Scenario,
    what: &str,
    want: &[(SfcKey, f64)],
    got: &[(SfcKey, f64)],
) {
    tk_assert!(
        scn,
        want.len() == got.len(),
        "{what}: solution lengths diverge ({} vs {})",
        want.len(),
        got.len()
    );
    let norm = want
        .iter()
        .map(|(_, v)| v.abs())
        .fold(f64::MIN_POSITIVE, f64::max);
    for ((ka, a), (kb, b)) in want.iter().zip(got) {
        tk_assert!(scn, ka == kb, "{what}: octant multiset diverged");
        tk_assert!(
            scn,
            (a - b).abs() <= 1e-12 * norm,
            "{what}: solution diverged: {a} vs {b} (norm {norm:e})"
        );
    }
}

/// **Oracle 1 — TreeSort differential.** Three independent executions of
/// the same partitioning problem must agree bit-for-bit:
///
/// 1. sequential [`treesort`] vs a comparison sort (Algorithm 1);
/// 2. the distributed virtual-engine run vs the sorted global multiset,
///    with every element on its `owner_of` rank and audited splitters;
/// 3. the real-threads rank-view [`threaded_treesort_partition`] vs the
///    virtual engine — identical splitters and per-rank slices.
pub fn treesort_differential(scn: &Scenario) {
    let tree = scn.build_tree();
    let expected = sorted_leaves(&tree);
    let n = expected.len();
    let p = scn.p;

    // Leg 1: sequential TreeSort == comparison sort on a shuffled copy.
    let mut shuffled = tree.leaves().to_vec();
    SplitMix64::new(scn.shuffle_seed(1)).shuffle(&mut shuffled);
    let mut by_treesort = shuffled.clone();
    treesort(&mut by_treesort);
    tk_assert!(
        scn,
        by_treesort == expected,
        "sequential TreeSort diverged from comparison sort ({n} cells)"
    );

    // Leg 2: distributed run on the virtual engine.
    let input = distribute_shuffled(&tree, p, scn.shuffle_seed(2));
    let mut e = scn.engine();
    let virt = treesort_partition(&mut e, input.clone(), scn.opts());
    tk_assert!(
        scn,
        virt.dist.concat() == expected,
        "distributed TreeSort output is not the sorted global multiset"
    );
    audit_splitters(&virt.splitters, n, p);
    for (r, buf) in virt.dist.parts().iter().enumerate() {
        for kc in buf {
            tk_assert_eq!(
                scn,
                owner_of(&virt.splitters, &kc.key),
                r,
                "element on rank {r} not owned by it"
            );
        }
    }
    tk_assert_eq!(
        scn,
        virt.report.counts.iter().sum::<u64>(),
        n as u64,
        "partition counts must conserve the element count"
    );
    // The achieved tolerance honours the request whenever the non-empty
    // constraint cannot interfere (request < 0.5) and the input is not
    // degenerate (§3.2; `choose_splitters` docs).
    if scn.tolerance < 0.45 && n >= p {
        tk_assert!(
            scn,
            virt.report.achieved_tolerance <= scn.tolerance + 1e-9,
            "achieved tolerance {} exceeds requested {}",
            virt.report.achieved_tolerance,
            scn.tolerance
        );
    }

    // Leg 3: real-threads rank view, bit-identical to the virtual engine.
    let parts = input.into_parts();
    let opts = scn.opts();
    let results = threaded::run(p, |comm| {
        let local = parts[comm.rank()].clone();
        threaded_treesort_partition(comm, local, opts)
    });
    for (r, (mine, splitters)) in results.into_iter().enumerate() {
        tk_assert!(
            scn,
            splitters == virt.splitters,
            "threaded rank {r}: splitters diverge from the virtual engine"
        );
        tk_assert!(
            scn,
            mine == *virt.dist.rank(r),
            "threaded rank {r}: partition slice diverges from the virtual engine"
        );
    }
}

/// Slack for the differential greedy emulation on the §4.2 workload
/// class. OptiPart descends the same 0.1-step tolerance ladder the
/// brute-force sweep samples, so the oracle replays Algorithm 3's exact
/// stopping rule over the independently computed grid candidates and
/// compares endpoints. The residual divergence is the global feasibility
/// forcing: which bucket it splits first depends on the refinement order,
/// so OptiPart's incremental ladder state can differ slightly from a
/// from-scratch TreeSort at the same tolerance, shifting a candidate or
/// the stop point by one rung. A 1.10× envelope absorbs that while still
/// flagging wired-wrong models, which miss by integer factors.
const OPTIPART_SLACK: f64 = 1.10;

/// On adversarial shapes (surface shells, skewed corners with duplicate
/// keys) the ladder states diverge more (feasibility forcing fires often,
/// duplicate runs make bucket splits degenerate) — the paper makes no
/// claim there. The oracle still pins a sanity envelope: never worse than
/// 2× the emulated greedy.
const OPTIPART_SLACK_ADVERSARIAL: f64 = 2.0;

/// **Oracle 2 — OptiPart vs brute force.** Algorithm 3's chosen partition,
/// as measured by its own Eq. (3) prediction, must match a brute-force
/// re-enactment of the greedy over the paper's tolerance grid `[0, 0.7]` —
/// each grid point being a full TreeSort partition scored by Algorithm 2,
/// walked coarse-to-fine under the same admissibility cap, candidate
/// dedup and patience rule OptiPart itself uses. On unimodal `Tp(tol)`
/// profiles this equals the global grid optimum (the paper's Fig. 10
/// claim); on non-unimodal ones it is exactly what the greedy contract
/// promises.
pub fn optipart_bruteforce(scn: &Scenario) {
    let tree = scn.build_tree();
    let p = scn.p;
    let mut e = scn.engine();
    let chosen = optipart(
        &mut e,
        distribute_shuffled(&tree, p, scn.shuffle_seed(3)),
        OptiPartOptions {
            curve: scn.curve,
            max_split_per_round: scn.split_budget,
            ..Default::default()
        },
    );
    tk_assert!(
        scn,
        chosen.dist.concat() == sorted_leaves(&tree),
        "OptiPart output is not the sorted global multiset"
    );

    // Full grid: (tolerance, achieved, splitters, tp) per rung.
    let grid: Vec<_> = (0..=7)
        .map(|k| {
            let tol = 0.1 * k as f64;
            let mut es = scn.engine();
            let out = treesort_partition(
                &mut es,
                distribute_shuffled(&tree, p, scn.shuffle_seed(3)),
                optipart_core::partition::PartitionOptions {
                    tolerance: tol,
                    max_split_per_round: scn.split_budget,
                    ..Default::default()
                },
            );
            let mut eq = scn.engine();
            let mut block = distribute_tree(&tree, p);
            let q = partition_quality(&mut eq, &mut block, &out.splitters, scn.curve);
            if std::env::var_os("OPTIPART_DEBUG").is_some() {
                eprintln!(
                    "grid tol={tol:.1} achieved={:.4} tp={:.6e}",
                    out.report.achieved_tolerance, q.tp
                );
            }
            (tol, out.report.achieved_tolerance, out.splitters, q.tp)
        })
        .collect();

    // Re-enact the greedy over the grid, coarse to fine: skip candidates
    // the admissibility cap rejects (at loose tolerances two targets can
    // contend for one shared bucket edge and TreeSort then *achieves* more
    // imbalance than requested), skip unchanged candidates, and stop after
    // `patience` consecutive evaluations that failed to improve.
    let defaults = OptiPartOptions::default();
    let mut best = f64::INFINITY;
    let mut best_tol = 0.0;
    let mut worse = 0usize;
    let mut prev: Option<&[optipart_sfc::SfcKey]> = None;
    for (tol, achieved, splitters, tp) in grid.iter().rev() {
        if *achieved > defaults.max_tolerance {
            continue;
        }
        if prev.is_some_and(|s| s == &splitters[..]) {
            continue;
        }
        prev = Some(splitters);
        if *tp < best {
            best = *tp;
            best_tol = *tol;
            worse = 0;
        } else {
            worse += 1;
            if best.is_finite() && worse > defaults.patience {
                break;
            }
        }
    }
    let slack = if matches!(
        scn.shape,
        crate::MeshShape::Surface | crate::MeshShape::Skewed
    ) {
        OPTIPART_SLACK_ADVERSARIAL
    } else {
        OPTIPART_SLACK
    };
    tk_assert!(
        scn,
        chosen.report.predicted_tp <= best * slack + 1e-15,
        "OptiPart tp {} beaten by the emulated greedy's tol {best_tol}: {best} (slack ×{slack})",
        chosen.report.predicted_tp
    );
}

/// **Oracle 3 — SampleSort vs TreeSort.** The baseline partitioner and the
/// paper's partitioner are both distributed sorts: from independently
/// shuffled inputs they must produce the identical global sequence, and
/// both must conserve the element count rank-by-rank sum.
pub fn samplesort_equivalence(scn: &Scenario) {
    let tree = scn.build_tree();
    let p = scn.p;
    let mut e1 = scn.engine();
    let a = treesort_partition(
        &mut e1,
        distribute_shuffled(&tree, p, scn.shuffle_seed(4)),
        scn.opts(),
    );
    let mut e2 = scn.engine();
    let b = samplesort_partition(
        &mut e2,
        distribute_shuffled(&tree, p, scn.shuffle_seed(5)),
        SampleSortOptions::default(),
    );
    tk_assert!(
        scn,
        a.dist.concat() == b.dist.concat(),
        "SampleSort and TreeSort disagree on the global order"
    );
    tk_assert_eq!(
        scn,
        b.dist.total_len(),
        tree.len(),
        "SampleSort lost or duplicated elements"
    );
}

/// Points for the fail-stop leg's balanced mesh — recovery re-runs whole
/// iteration windows, so this is deliberately smaller than the scenario
/// mesh to keep 100 scenarios inside the tier-1 budget.
const FT_POINTS: usize = 72;
/// Iterations of the fail-stop matvec run.
const FT_ITERS: usize = 5;

/// **Oracle 4 — faulted vs fault-free.** Two independent guarantees:
///
/// 1. *Benign faults never touch payload data*: a run under the scenario's
///    straggler/jitter/transient plan produces bit-identical splitters and
///    partition slices to the fault-free run (only clocks differ).
/// 2. *Fail-stop recovery is exact*: a checkpointed matvec run that loses
///    a rank mid-solve reproduces the fault-free solution to `1e-12`
///    relative on a 2:1-balanced mesh, finishing on `p − 1` survivors.
pub fn fault_recovery(scn: &Scenario) {
    // Leg 1: benign-fault data identity on the scenario's own mesh.
    let tree = scn.build_tree();
    let input = distribute_shuffled(&tree, scn.p, scn.shuffle_seed(6));
    let mut clean = scn.engine();
    let want = treesort_partition(&mut clean, input.clone(), scn.opts());
    let plan = scn.faults.clone().unwrap_or_else(|| {
        FaultPlan::new(scn.seed)
            .with_stragglers(0.5, 3.0)
            .with_tw_jitter(0.2)
    });
    let mut faulted = scn.engine().with_faults(plan);
    let got = treesort_partition(&mut faulted, input, scn.opts());
    tk_assert!(
        scn,
        got.splitters == want.splitters,
        "benign faults changed the splitters"
    );
    for r in 0..scn.p {
        tk_assert!(
            scn,
            got.dist.rank(r) == want.dist.rank(r),
            "benign faults changed rank {r}'s partition slice"
        );
    }

    // Leg 2: fail-stop recovery on a small balanced mesh.
    let p = scn.p.clamp(2, 8);
    let btree = crate::gen::balanced_tree::<3>(scn.shuffle_seed(7), FT_POINTS, scn.curve);
    let built = |e: &mut Engine| -> DistMesh<3> {
        let out = treesort_partition(
            e,
            distribute_tree(&btree, e.p()),
            optipart_core::partition::PartitionOptions::exact(),
        );
        DistMesh::build(e, out.dist, scn.curve)
    };

    let mut ec = Engine::new(p, scn.perf());
    let mesh_c = built(&mut ec);
    let want_ft = run_matvec_ft(&mut ec, &mesh_c, FT_ITERS, CheckpointPolicy::EveryN(2));
    tk_assert!(
        scn,
        want_ft.deaths.is_empty(),
        "clean run must see no deaths"
    );
    let mid = ec.sync_points() / 2;
    tk_assert!(scn, mid >= 2, "clean run too short to aim a mid-solve kill");

    let victim = (scn.seed % p as u64) as usize;
    let mut ef = Engine::new(p, scn.perf());
    let mesh_f = built(&mut ef);
    let mut ef = ef.with_faults(FaultPlan::new(scn.seed).kill_rank(victim, mid));
    let got_ft = run_matvec_ft(&mut ef, &mesh_f, FT_ITERS, CheckpointPolicy::EveryN(2));
    tk_assert_eq!(scn, got_ft.deaths.len(), 1, "the scheduled kill must fire");
    tk_assert_eq!(scn, got_ft.deaths[0].rank, victim, "wrong victim died");
    tk_assert_eq!(scn, got_ft.final_p, p - 1, "survivor count after one kill");
    assert_solutions_match(
        scn,
        "fail-stop recovery",
        &want_ft.solution,
        &got_ft.solution,
    );
}

/// **Oracle 7 — serve-vs-library.** Every response a live optipart-serve
/// server produces must carry a [`optipart_serve::Payload`] bit-identical
/// to a *direct* library call on a fresh engine and default state
/// ([`optipart_serve::direct`]) — regardless of worker count, batching,
/// warm-cache history, deadlines, or fail-stop kills absorbed mid-serve.
///
/// Per scenario the oracle builds a small adversarial request set — the
/// scenario itself three times (same-key batching + warm exact-hit), a
/// sibling scenario (cross-key sharding), a deadline-carrying repeat, and
/// (when the communicator can survive a shrink) a killed variant — and
/// streams it through three server shapes: a paused single-worker burst
/// with batching (must actually merge same-key requests into one engine
/// pass), a three-worker pool with batching off, and a two-worker pool
/// with batching on. All three exchanges verify against one shared
/// [`optipart_serve::soak::DirectCache`], and every request must survive
/// a wire round-trip through the flat-JSON protocol unchanged.
pub fn serve_vs_library(scn: &Scenario) {
    use optipart_serve::soak::{verify_responses_with, DirectCache};
    use optipart_serve::{Request, ServeConfig, Server};

    let mut killed = scn.clone();
    let mut reqs = vec![
        Request {
            id: 0,
            scn: scn.clone(),
            deadline_s: None,
        },
        Request {
            id: 1,
            scn: scn.clone(),
            deadline_s: None,
        },
        Request {
            id: 2,
            scn: Scenario::from_seed(scn.shuffle_seed(21)),
            deadline_s: None,
        },
        Request {
            id: 3,
            scn: scn.clone(),
            deadline_s: Some(if scn.seed.is_multiple_of(2) {
                1e-9
            } else {
                1e9
            }),
        },
    ];
    if scn.p >= 3 {
        // A shrink must leave a working communicator, so only arm the kill
        // when at least two ranks survive it.
        let victim = (scn.seed % scn.p as u64) as usize;
        let plan = killed
            .faults
            .take()
            .unwrap_or_else(|| FaultPlan::new(scn.seed));
        killed.faults = Some(plan.kill_rank(victim, 4));
        reqs.push(Request {
            id: 4,
            scn: killed,
            deadline_s: None,
        });
    }

    for req in &reqs {
        let wire = Request::from_json(&req.to_json());
        match wire {
            Err(e) => tk_assert!(scn, false, "request does not round-trip the wire: {e}"),
            Ok(back) => {
                tk_assert_eq!(scn, back.id, req.id, "wire round-trip changed the id");
                tk_assert_eq!(
                    scn,
                    back.key(),
                    req.key(),
                    "wire round-trip changed the scenario key"
                );
                tk_assert!(
                    scn,
                    back.deadline_s == req.deadline_s,
                    "wire round-trip changed the deadline"
                );
            }
        }
    }

    let mut cache = DirectCache::new();
    let shapes: [(&str, usize, bool, bool); 3] = [
        ("1 worker, batching, paused burst", 1, true, true),
        ("3 workers, no batching", 3, false, false),
        ("2 workers, batching", 2, true, false),
    ];
    for (label, workers, batching, burst) in shapes {
        let server = Server::start(ServeConfig {
            workers,
            queue_cap: 64,
            state_cap: 8,
            engine_cache: 4,
            batching,
            admission: Default::default(),
        });
        if burst {
            server.pause();
        }
        for r in &reqs {
            tk_assert!(
                scn,
                server.submit(r.clone()),
                "{label}: queue_cap 64 must not shed {} requests",
                reqs.len()
            );
        }
        if burst {
            server.release();
        }
        let resps = server.drain(reqs.len());
        let stats = server.shutdown();
        if let Err(e) = verify_responses_with(&reqs, &resps, &mut cache) {
            tk_assert!(scn, false, "{label}: {e}");
        }
        tk_assert_eq!(
            scn,
            stats.completed,
            reqs.len() as u64,
            "{label}: all requests must complete"
        );
        if burst && batching {
            // The paused burst queues three same-key requests before the
            // worker wakes: batching must fold them into fewer passes.
            tk_assert!(
                scn,
                stats.engine_passes < reqs.len() as u64,
                "{label}: batching never merged a same-key burst ({stats:?})"
            );
            tk_assert!(
                scn,
                stats.batched_extra >= 2,
                "{label}: expected >= 2 batched riders ({stats:?})"
            );
        }
    }

    // Shape 4 — chaos-panicked: the single worker's first pass is armed to
    // panic *after* it completes (caches already mutated, the harshest
    // quarantine point). The first wave fails loudly with replay + panic
    // summary; a repeat wave on the respawned worker must then serve every
    // request bit-identically, and the whole exchange must conserve.
    {
        use optipart_serve::chaos::{PanicPoint, PanicSchedule};
        use optipart_serve::Status;
        let label = "1 worker, chaos panic at pass 0";
        let server = Server::start_chaos(
            ServeConfig {
                workers: 1,
                queue_cap: 64,
                state_cap: 8,
                engine_cache: 4,
                batching: false,
                admission: Default::default(),
            },
            PanicSchedule::default().arm(0, 0, PanicPoint::After),
        );
        for r in &reqs {
            server.submit(r.clone());
        }
        let first = server.drain(reqs.len());
        let failed: Vec<_> = first
            .iter()
            .filter(|r| r.status == Status::Failed)
            .collect();
        tk_assert_eq!(scn, failed.len(), 1, "{label}: exactly pass 0 panics");
        for f in &failed {
            tk_assert!(
                scn,
                f.replay.as_deref().is_some_and(|c| c.contains("--seed")),
                "{label}: failed response must carry a replay command"
            );
            tk_assert!(
                scn,
                f.error.as_deref().is_some_and(|e| e.contains("chaos")),
                "{label}: failed response must name its panic ({:?})",
                f.error
            );
        }
        let repeat: Vec<Request> = reqs
            .iter()
            .map(|r| Request {
                id: r.id + 100,
                scn: r.scn.clone(),
                deadline_s: r.deadline_s,
            })
            .collect();
        for r in &repeat {
            server.submit(r.clone());
        }
        let second = server.drain(repeat.len());
        if let Err(e) = verify_responses_with(&repeat, &second, &mut cache) {
            tk_assert!(scn, false, "{label}: respawned worker diverges: {e}");
        }
        let stats = server.shutdown();
        tk_assert_eq!(scn, stats.panics, 1, "{label}: one armed panic fires");
        tk_assert!(
            scn,
            stats.failed >= 1,
            "{label}: the panicked pass must fail its request ({stats:?})"
        );
        if let Err(e) = stats.conservation() {
            tk_assert!(scn, false, "{label}: conservation broken: {e}");
        }
    }
}
